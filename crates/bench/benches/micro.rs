//! Criterion micro-benchmarks for the hot paths of the balancing stack:
//! the IF model, the pattern analyzer's per-access update, candidate
//! aggregation, subtree selection, and whole simulation ticks.
//!
//! The paper's overhead claim (Section 3.4) is that Lunule's bookkeeping is
//! negligible next to request processing; these benches quantify each
//! piece on this implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lunule_core::{
    build_candidates, decide_roles, make_balancer, select_subtrees, AnalyzerConfig,
    BalancerKind, ImbalanceFactorModel, IfModelConfig, LoadHistory, PatternAnalyzer,
    RoleConfig, SelectorConfig,
};
use lunule_namespace::{build_flat_dataset, FlatDataset, InodeId, MdsRank, Namespace, SubtreeMap};
use lunule_sim::{SimConfig, Simulation};
use lunule_workloads::{WorkloadKind, WorkloadSpec};
use std::hint::black_box;

fn bench_if_model(c: &mut Criterion) {
    let model = ImbalanceFactorModel::new(IfModelConfig::default());
    let mut group = c.benchmark_group("if_model");
    for n in [5usize, 16, 64] {
        let loads: Vec<f64> = (0..n).map(|i| (i * 37 % 100) as f64 * 50.0).collect();
        group.bench_with_input(BenchmarkId::new("imbalance_factor", n), &loads, |b, l| {
            b.iter(|| black_box(model.imbalance_factor(black_box(l))))
        });
    }
    group.finish();
}

fn bench_roles(c: &mut Criterion) {
    let cfg = RoleConfig::default();
    let mut group = c.benchmark_group("algorithm1");
    for n in [5usize, 16, 64] {
        let loads: Vec<f64> = (0..n).map(|i| ((i * 61) % 97) as f64 * 40.0).collect();
        let mut history = LoadHistory::new(6);
        for e in 0..6u64 {
            history.push(&lunule_core::EpochStats::new(
                e,
                10.0,
                loads.iter().map(|l| (*l * 10.0) as u64).collect(),
            ));
        }
        group.bench_with_input(BenchmarkId::new("decide_roles", n), &loads, |b, l| {
            b.iter(|| black_box(decide_roles(black_box(l), &history, &cfg)))
        });
    }
    group.finish();
}

fn scan_fixture(dirs: usize, files: usize) -> (Namespace, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let ds = build_flat_dataset(
        &mut ns,
        "bench",
        FlatDataset {
            dirs,
            files_per_dir: files,
            file_size: 1,
        },
    );
    let order = ds.files_in_scan_order();
    (ns, order)
}

fn bench_analyzer(c: &mut Criterion) {
    let (ns, files) = scan_fixture(100, 100);
    c.bench_function("analyzer/record_access", |b| {
        let mut an = PatternAnalyzer::new(AnalyzerConfig::default());
        let mut i = 0;
        b.iter(|| {
            an.record_access(&ns, files[i % files.len()], false);
            i += 1;
        })
    });
    c.bench_function("analyzer/mindex_of", |b| {
        let mut an = PatternAnalyzer::new(AnalyzerConfig::default());
        for f in &files {
            an.record_access(&ns, *f, false);
        }
        let dir = ns.inode(files[0]).parent().unwrap();
        b.iter(|| black_box(an.mindex_of(black_box(dir))))
    });
}

fn bench_candidates_and_selection(c: &mut Criterion) {
    let (ns, files) = scan_fixture(200, 50);
    let map = SubtreeMap::new(MdsRank(0));
    let mut an = PatternAnalyzer::new(AnalyzerConfig::default());
    for f in &files {
        an.record_access(&ns, *f, false);
    }
    c.bench_function("dirload/build_candidates_10k_inodes", |b| {
        b.iter(|| black_box(build_candidates(&ns, &map, &|d| an.mindex_of(d))))
    });
    let candidates = build_candidates(&ns, &map, &|d| an.mindex_of(d));
    c.bench_function("selector/select_subtrees", |b| {
        b.iter(|| {
            black_box(select_subtrees(
                &ns,
                black_box(&candidates),
                black_box(500.0),
                &SelectorConfig::default(),
            ))
        })
    });
}

fn bench_sim_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("zipf_100clients_60s", |b| {
        b.iter(|| {
            let (ns, streams) = WorkloadSpec {
                kind: WorkloadKind::ZipfRead,
                clients: 100,
                scale: 0.05,
                seed: 42,
            }
            .build();
            let cfg = SimConfig {
                n_mds: 5,
                mds_capacity: 500.0,
                epoch_secs: 10,
                duration_secs: 60,
                stop_when_done: false,
                client_rate: 50.0,
                ..SimConfig::default()
            };
            let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
            black_box(Simulation::new(cfg, ns, balancer, streams).run())
        })
    });
    group.finish();
}

fn bench_namespace(c: &mut Criterion) {
    let (ns, files) = scan_fixture(100, 100);
    let map = SubtreeMap::new(MdsRank(0));
    c.bench_function("namespace/path_chain", |b| {
        let mut i = 0;
        b.iter(|| {
            let id = files[i % files.len()];
            i += 1;
            black_box(ns.path_chain(black_box(id)))
        })
    });
    c.bench_function("namespace/authority_resolution", |b| {
        let mut i = 0;
        b.iter(|| {
            let id = files[i % files.len()];
            i += 1;
            black_box(map.authority(&ns, black_box(id)))
        })
    });
    c.bench_function("namespace/create_file", |b| {
        let mut ns = Namespace::new();
        let dir = ns.mkdir(InodeId::ROOT, "bench").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(ns.create_file(dir, "f", 0).unwrap())
        })
    });
    c.bench_function("namespace/frag_split_dir_1000", |b| {
        b.iter_batched(
            || {
                let mut ns = Namespace::new();
                let d = ns.mkdir(InodeId::ROOT, "big").unwrap();
                for i in 0..1000 {
                    ns.create_file(d, &format!("f{i}"), 0).unwrap();
                }
                (ns, d)
            },
            |(mut ns, d)| {
                black_box(
                    ns.split_frag(d, &lunule_namespace::Frag::root(), 3)
                        .unwrap(),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_if_model,
    bench_roles,
    bench_analyzer,
    bench_candidates_and_selection,
    bench_namespace,
    bench_sim_tick
);
criterion_main!(benches);
