//! Micro-benchmarks for the hot paths of the balancing stack: the IF
//! model, the pattern analyzer's per-access update, candidate aggregation,
//! subtree selection, and whole simulation runs.
//!
//! The paper's overhead claim (Section 3.4) is that Lunule's bookkeeping is
//! negligible next to request processing; these benches quantify each
//! piece on this implementation. The harness is a plain std timing loop
//! (`harness = false`) so the workspace stays dependency-free; run with
//! `cargo bench -p lunule-bench`.

use lunule_core::{
    build_candidates, decide_roles, make_balancer, select_subtrees, AnalyzerConfig, BalancerKind,
    IfModelConfig, ImbalanceFactorModel, LoadHistory, PatternAnalyzer, RoleConfig, SelectorConfig,
};
use lunule_namespace::{build_flat_dataset, FlatDataset, InodeId, MdsRank, Namespace, SubtreeMap};
use lunule_sim::{SimConfig, Simulation};
use lunule_workloads::{WorkloadKind, WorkloadSpec};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` with auto-calibrated iteration counts (target ~80 ms of
/// measurement) and prints nanoseconds per iteration.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    for _ in 0..3 {
        black_box(f());
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(80) || iters >= 1 << 22 {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<48} {per_iter:>14.1} ns/iter  ({iters} iters)");
            return;
        }
        iters = iters.saturating_mul(4);
    }
}

/// Times `f` exactly once — for whole-simulation runs where a single
/// invocation already takes long enough to be a stable sample.
fn bench_once<R>(name: &str, mut f: impl FnMut() -> R) {
    let start = Instant::now();
    black_box(f());
    let millis = start.elapsed().as_secs_f64() * 1e3;
    println!("{name:<48} {millis:>14.2} ms/run");
}

fn bench_if_model() {
    let model = ImbalanceFactorModel::new(IfModelConfig::default());
    for n in [5usize, 16, 64] {
        let loads: Vec<f64> = (0..n).map(|i| (i * 37 % 100) as f64 * 50.0).collect();
        bench(&format!("if_model/imbalance_factor/{n}"), || {
            model.imbalance_factor(black_box(&loads))
        });
    }
}

fn bench_roles() {
    let cfg = RoleConfig::default();
    for n in [5usize, 16, 64] {
        let loads: Vec<f64> = (0..n).map(|i| ((i * 61) % 97) as f64 * 40.0).collect();
        let mut history = LoadHistory::new(6);
        for e in 0..6u64 {
            history.push(&lunule_core::EpochStats::new(
                e,
                10.0,
                loads.iter().map(|l| (*l * 10.0) as u64).collect(),
            ));
        }
        bench(&format!("algorithm1/decide_roles/{n}"), || {
            decide_roles(black_box(&loads), &history, &cfg)
        });
    }
}

fn scan_fixture(dirs: usize, files: usize) -> (Namespace, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let ds = build_flat_dataset(
        &mut ns,
        "bench",
        FlatDataset {
            dirs,
            files_per_dir: files,
            file_size: 1,
        },
    );
    let order = ds.files_in_scan_order();
    (ns, order)
}

fn bench_analyzer() {
    let (ns, files) = scan_fixture(100, 100);
    let mut an = PatternAnalyzer::new(AnalyzerConfig::default());
    let mut i = 0;
    bench("analyzer/record_access", || {
        an.record_access(&ns, files[i % files.len()], false);
        i += 1;
    });
    let mut an = PatternAnalyzer::new(AnalyzerConfig::default());
    for f in &files {
        an.record_access(&ns, *f, false);
    }
    let dir = ns.inode(files[0]).parent().unwrap();
    bench("analyzer/mindex_of", || an.mindex_of(black_box(dir)));
}

fn bench_candidates_and_selection() {
    let (ns, files) = scan_fixture(200, 50);
    let map = SubtreeMap::new(MdsRank(0));
    let mut an = PatternAnalyzer::new(AnalyzerConfig::default());
    for f in &files {
        an.record_access(&ns, *f, false);
    }
    bench("dirload/build_candidates_10k_inodes", || {
        build_candidates(&ns, &map, &|d| an.mindex_of(d))
    });
    let candidates = build_candidates(&ns, &map, &|d| an.mindex_of(d));
    bench("selector/select_subtrees", || {
        select_subtrees(
            &ns,
            black_box(&candidates),
            black_box(500.0),
            &SelectorConfig::default(),
        )
    });
}

fn bench_namespace() {
    let (ns, files) = scan_fixture(100, 100);
    let map = SubtreeMap::new(MdsRank(0));
    let mut i = 0;
    bench("namespace/path_chain", || {
        let id = files[i % files.len()];
        i += 1;
        ns.path_chain(black_box(id))
    });
    let mut i = 0;
    bench("namespace/authority_resolution", || {
        let id = files[i % files.len()];
        i += 1;
        map.authority(&ns, black_box(id))
    });
    let mut grow = Namespace::new();
    let dir = grow.mkdir(InodeId::ROOT, "bench").unwrap();
    bench("namespace/create_file", || {
        grow.create_file(dir, "f", 0).unwrap()
    });
    bench_once("namespace/frag_split_dir_1000", || {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "big").unwrap();
        for i in 0..1000 {
            ns.create_file(d, &format!("f{i}"), 0).unwrap();
        }
        ns.split_frag(d, &lunule_namespace::Frag::root(), 3)
            .unwrap()
    });
}

fn bench_sim() {
    bench_once("simulation/zipf_100clients_60s", || {
        let (ns, streams) = WorkloadSpec {
            kind: WorkloadKind::ZipfRead,
            clients: 100,
            scale: 0.05,
            seed: 42,
        }
        .build();
        let cfg = SimConfig {
            n_mds: 5,
            mds_capacity: 500.0,
            epoch_secs: 10,
            duration_secs: 60,
            stop_when_done: false,
            client_rate: 50.0,
            ..SimConfig::default()
        };
        let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
        Simulation::new(cfg, ns, balancer, streams).run()
    });
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    println!("lunule micro-benchmarks (std timing harness)\n");
    bench_if_model();
    bench_roles();
    bench_analyzer();
    bench_candidates_and_selection();
    bench_namespace();
    bench_sim();
}
