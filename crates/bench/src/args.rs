//! Minimal CLI argument parsing shared by the experiment binaries.
//!
//! Hand-rolled on purpose: the binaries take four flags, which does not
//! justify an argument-parsing dependency in the workspace.

use lunule_sim::{ClientModel, SimConfig};

/// Flags every experiment binary understands.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Dataset/op-count scale relative to the paper (default 0.1 — fits a
    /// laptop while preserving shapes).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Concurrent clients (paper default: 100).
    pub clients: usize,
    /// Directory for JSON result dumps; `None` disables them.
    pub out_dir: Option<String>,
    /// Directory for telemetry exports (JSONL events, CSV metrics, Chrome
    /// trace); `None` keeps telemetry disabled and the hot path free.
    pub telemetry_out: Option<String>,
    /// Quick mode: shrink scale/duration further for CI smoke runs.
    pub quick: bool,
    /// Fault-schedule spec (scripted `crash@T:R:D;...` or seeded
    /// `seed=7,crashes=2,...`); `None` runs fault-free. Parsed by
    /// `lunule_faults::parse_spec` against the run's MDS count and
    /// duration.
    pub faults: Option<String>,
    /// Worker-pool width for parallel drivers (`run_all`, grid sweeps, the
    /// chaos battery). `0` = auto (`available_parallelism`). Results are
    /// byte-identical regardless of the value — only wall time changes.
    pub jobs: usize,
    /// Client execution engine: the aggregated cohort model (default) or
    /// the legacy one-struct-per-client path. The two journal
    /// byte-identically; legacy exists as the differential baseline and as
    /// an escape hatch, and is infeasible past ~10^5 clients.
    pub client_model: ClientModel,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: 0.1,
            seed: 42,
            clients: 100,
            out_dir: Some("results".to_string()),
            telemetry_out: None,
            quick: false,
            faults: None,
            jobs: 0,
            client_model: ClientModel::Cohort,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args()`; unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = CommonArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => out.scale = expect_value(&mut it, "--scale"),
                "--seed" => out.seed = expect_value(&mut it, "--seed"),
                "--clients" => out.clients = expect_value(&mut it, "--clients"),
                "--out" => {
                    out.out_dir = Some(
                        it.next()
                            .unwrap_or_else(|| usage("--out needs a directory")),
                    )
                }
                "--no-out" => out.out_dir = None,
                "--telemetry-out" => {
                    out.telemetry_out = Some(
                        it.next()
                            .unwrap_or_else(|| usage("--telemetry-out needs a directory")),
                    )
                }
                "--faults" => {
                    out.faults = Some(
                        it.next()
                            .unwrap_or_else(|| usage("--faults needs a spec string")),
                    )
                }
                "--jobs" => out.jobs = expect_value(&mut it, "--jobs"),
                "--client-model" => {
                    out.client_model = match it.next().as_deref() {
                        Some("cohort") => ClientModel::Cohort,
                        Some("legacy") => ClientModel::Legacy,
                        _ => usage("--client-model needs 'cohort' or 'legacy'"),
                    }
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => usage("usage"),
                other => usage(&format!("unknown flag: {other}")),
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.02);
            out.clients = out.clients.min(20);
        }
        out
    }

    /// Stamps the flags that map directly onto simulator knobs —
    /// `--client-model` and `--jobs` — onto a config the binary built.
    pub fn configure_sim(&self, sim: &mut SimConfig) {
        sim.client_model = self.client_model;
        sim.jobs = self.jobs;
    }
}

fn expect_value<T: std::str::FromStr, I: Iterator<Item = String>>(it: &mut I, flag: &str) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

// The bench harness is a CLI: exiting with a usage message is the contract.
#[allow(clippy::exit)]
fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\n\nflags:\n  --scale <f>     dataset/op scale (default 0.1)\n  --seed <u64>    master seed (default 42)\n  --clients <n>   concurrent clients (default 100)\n  --out <dir>     JSON dump directory (default ./results)\n  --no-out        disable JSON dumps\n  --telemetry-out <dir>  export telemetry (events JSONL, metrics CSV, Chrome trace)\n  --faults <spec> fault schedule: crash@T:R:D;limp@T:R:F:D;loss@T:R:E;stall@T:R:D, or seed=N,crashes=2,...\n  --jobs <n>      worker-pool width for parallel drivers (0 = auto)\n  --client-model <m>  client engine: cohort (default) or legacy\n  --quick         CI smoke mode (tiny scale)"
    );
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.clients, 100);
        assert!(!a.quick);
    }

    #[test]
    fn overrides() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--clients",
            "10",
            "--no-out",
        ]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.clients, 10);
        assert!(a.out_dir.is_none());
    }

    #[test]
    fn telemetry_out_flag() {
        assert!(parse(&[]).telemetry_out.is_none());
        let a = parse(&["--telemetry-out", "traces"]);
        assert_eq!(a.telemetry_out.as_deref(), Some("traces"));
    }

    #[test]
    fn faults_flag() {
        assert!(parse(&[]).faults.is_none());
        let a = parse(&["--faults", "crash@30:1:20"]);
        assert_eq!(a.faults.as_deref(), Some("crash@30:1:20"));
    }

    #[test]
    fn jobs_flag() {
        assert_eq!(parse(&[]).jobs, 0);
        assert_eq!(parse(&["--jobs", "4"]).jobs, 4);
        // 0 stays 0 (auto) — resolution happens in the pool.
        assert_eq!(parse(&["--jobs", "0"]).jobs, 0);
    }

    #[test]
    fn client_model_flag() {
        assert_eq!(parse(&[]).client_model, ClientModel::Cohort);
        assert_eq!(
            parse(&["--client-model", "legacy"]).client_model,
            ClientModel::Legacy
        );
        assert_eq!(
            parse(&["--client-model", "cohort"]).client_model,
            ClientModel::Cohort
        );
    }

    #[test]
    fn configure_sim_stamps_model_and_jobs() {
        let a = parse(&["--client-model", "legacy", "--jobs", "3"]);
        let mut sim = SimConfig::default();
        a.configure_sim(&mut sim);
        assert_eq!(sim.client_model, ClientModel::Legacy);
        assert_eq!(sim.jobs, 3);
    }

    #[test]
    fn quick_caps_scale_and_clients() {
        let a = parse(&["--quick"]);
        assert!(a.scale <= 0.02);
        assert!(a.clients <= 20);
    }
}
