//! Ablation study: which of Lunule's design choices carries how much of the
//! win. Beyond the paper's own Lunule-Light variant, this toggles off, one
//! at a time: the urgency term (U ≡ 1), the importer future-load
//! correction, sibling-correlation propagation, and the per-epoch
//! migration-capacity clamp.

use lunule_bench::{default_sim, write_json, CommonArgs};
use lunule_core::{AnalyzerConfig, IfModelConfig, LunuleBalancer, LunuleConfig, RoleConfig};
use lunule_sim::Simulation;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

struct Variant {
    name: &'static str,
    cfg: LunuleConfig,
}

fn variants(capacity: f64) -> Vec<Variant> {
    let base = LunuleConfig {
        if_model: IfModelConfig {
            mds_capacity: capacity,
            ..IfModelConfig::default()
        },
        roles: RoleConfig {
            migration_capacity: capacity * 0.5,
            ..RoleConfig::default()
        },
        ..LunuleConfig::default()
    };
    vec![
        Variant {
            name: "full",
            cfg: base.clone(),
        },
        Variant {
            name: "no-urgency",
            cfg: LunuleConfig {
                ablate_urgency: true,
                ..base.clone()
            },
        },
        Variant {
            name: "no-future-load",
            cfg: LunuleConfig {
                ablate_future_load: true,
                ..base.clone()
            },
        },
        Variant {
            name: "no-sibling",
            cfg: LunuleConfig {
                analyzer: AnalyzerConfig {
                    sibling_probability: 0.0,
                    ..AnalyzerConfig::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "no-migration-cap",
            cfg: LunuleConfig {
                roles: RoleConfig {
                    migration_capacity: f64::MAX,
                    ..base.roles
                },
                ..base.clone()
            },
        },
        Variant {
            name: "heat-selection (Light)",
            cfg: LunuleConfig {
                workload_aware: false,
                ..base.clone()
            },
        },
    ]
}

fn main() {
    let args = CommonArgs::parse();
    let sim = default_sim();
    let mut dump = Vec::new();
    for kind in [WorkloadKind::Cnn, WorkloadKind::ZipfRead] {
        println!("\n# Ablation — {kind}");
        println!(
            "{:<24} {:>9} {:>10} {:>10} {:>10}",
            "variant", "mean IF", "mean IOPS", "migrated", "JCT p99(s)"
        );
        for v in variants(sim.mds_capacity) {
            let spec = WorkloadSpec {
                kind,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            };
            let (ns, streams) = spec.build();
            let balancer = Box::new(LunuleBalancer::new(v.cfg));
            let r = Simulation::new(sim.clone(), ns, balancer, streams).run();
            let jct = r
                .jct_percentile(0.99)
                .map(|x| x.to_string())
                .unwrap_or_else(|| "n/a".into());
            println!(
                "{:<24} {:>9.3} {:>10.0} {:>10} {:>10}",
                v.name,
                r.mean_if(),
                r.mean_iops(),
                r.migrated_inodes(),
                jct
            );
            dump.push((
                kind.label(),
                v.name,
                r.mean_if(),
                r.mean_iops(),
                r.migrated_inodes(),
            ));
        }
    }
    write_json(&args.out_dir, "ablation", &dump);
}
