//! Chaos run: replays a fault schedule — scripted or seeded — against a
//! Lunule-balanced cluster and reports how service and migration behave
//! around crashes, limps, report losses, and migration stalls.
//!
//! The schedule comes from `--faults <spec>` (see `lunule_faults::parse_spec`);
//! without the flag a default seeded profile derived from `--seed` is used,
//! so `cargo run -p lunule-bench --bin chaos` is a one-command chaos soak.

use lunule_bench::{default_sim, print_series, write_json, CommonArgs, Series, TelemetrySink};
use lunule_core::{make_balancer, BalancerKind};
use lunule_sim::{seeded, ChaosProfile, SimConfig, Simulation};
use lunule_workloads::{WorkloadKind, WorkloadSpec};

const N_MDS: usize = 5;
const DURATION: u64 = 1_200;

fn main() {
    let args = CommonArgs::parse();
    let mut sink = TelemetrySink::from_args(&args);
    let duration = if args.quick { 300 } else { DURATION };

    let schedule = match &args.faults {
        Some(spec) => match lunule_faults::parse_spec(spec, N_MDS, duration) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bad --faults spec: {e}");
                std::process::exit(2);
            }
        },
        None => seeded(args.seed, N_MDS, duration, &ChaosProfile::default()),
    };
    println!(
        "chaos: {} fault events over {duration}s (seed {})",
        schedule.len(),
        args.seed
    );

    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: args.clients,
        scale: (args.scale * 4.0).min(1.0),
        seed: args.seed,
    };
    let sim_cfg = SimConfig {
        n_mds: N_MDS,
        stop_when_done: false,
        duration_secs: duration,
        migration_timeout_ticks: 30,
        migration_max_retries: 3,
        migration_backoff_ticks: 5,
        seed: args.seed,
        telemetry: sink.handle("chaos"),
        faults: schedule,
        ..default_sim()
    };
    let (ns, streams) = spec.build();
    let balancer = make_balancer(BalancerKind::Lunule, sim_cfg.mds_capacity);
    let mut sim = Simulation::new(sim_cfg.clone(), ns, balancer, streams);
    sim.run_until(duration);

    let c = sim.migration_counters();
    let inflight = sim.inflight_migrations();
    let tel = sim.telemetry().clone();
    assert_eq!(
        c.started_jobs,
        c.completed_jobs + c.abandoned_jobs + inflight,
        "migration ledger failed to balance"
    );
    println!(
        "faults injected: {} | crashes: {} | recoveries: {}",
        tel.count_kind("fault_injected"),
        tel.count_kind("rank_crashed"),
        tel.count_kind("rank_recovered"),
    );
    println!(
        "migrations: {} started | {} committed | {} abandoned | {} in flight | {} timeouts | {} retries",
        c.started_jobs, c.completed_jobs, c.abandoned_jobs, inflight, c.timed_out_jobs, c.retried_jobs,
    );

    let r = sim.finish();
    let mut series: Vec<Series> = (0..N_MDS)
        .map(|rank| {
            Series::new(
                format!("mds.{rank}"),
                r.epochs
                    .iter()
                    .map(|e| {
                        (
                            e.time_secs as f64 / 60.0,
                            e.per_mds_iops.get(rank).copied().unwrap_or(0.0),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    series.push(Series::new(
        "total",
        r.epochs
            .iter()
            .map(|e| (e.time_secs as f64 / 60.0, e.total_iops))
            .collect(),
    ));
    print_series(
        "Chaos — per-MDS IOPS under a fault schedule, Lunule, Zipf",
        "min",
        &series,
    );
    write_json(&args.out_dir, "chaos", &series);
    match sink.flush() {
        Ok(files) => {
            for f in files {
                println!("telemetry: {}", f.display());
            }
        }
        Err(e) => eprintln!("telemetry export failed: {e}"),
    }
}
