//! Developer utility: per-epoch trace of one workload × one balancer.

use lunule_bench::{default_sim, run_experiment, ExperimentConfig};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let balancer = match args.first().map(String::as_str) {
        Some("vanilla") => BalancerKind::Vanilla,
        Some("greedy") => BalancerKind::GreedySpill,
        Some("light") => BalancerKind::LunuleLight,
        Some("lunule") => BalancerKind::Lunule,
        Some("dirhash") => BalancerKind::DirHash,
        Some("off") => BalancerKind::Off,
        _ => BalancerKind::Vanilla,
    };
    let kind = match args.get(1).map(String::as_str) {
        Some("cnn") => WorkloadKind::Cnn,
        Some("nlp") => WorkloadKind::Nlp,
        Some("web") => WorkloadKind::Web,
        Some("md") => WorkloadKind::MdCreate,
        Some("mixed") => WorkloadKind::Mixed,
        _ => WorkloadKind::ZipfRead,
    };
    let mut sim = default_sim();
    if let Ok(cap) = std::env::var("LUNULE_CACHE_CAP") {
        sim.client_cache_cap = cap.parse().expect("LUNULE_CACHE_CAP must be an integer");
    }
    let cfg = ExperimentConfig {
        workload: WorkloadSpec {
            kind,
            clients: 100,
            scale: 0.1,
            seed: 42,
        },
        balancer,
        sim,
    };
    let r = run_experiment(&cfg);
    println!("balancer={} workload={kind}", r.balancer);
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>8} | per-mds iops",
        "t", "IF", "IOPS", "mig_cum", "fwd_cum", "inflight"
    );
    for e in r.epochs.iter().take(60) {
        let mds: Vec<String> = e.per_mds_iops.iter().map(|i| format!("{i:6.0}")).collect();
        println!(
            "{:>6} {:>8.3} {:>8.0} {:>10} {:>10} {:>8} | {}",
            e.time_secs,
            e.imbalance_factor,
            e.total_iops,
            e.migrated_inodes_cum,
            e.forwards_cum,
            e.inflight_migrations,
            mds.join(" ")
        );
    }
    println!(
        "mean_if={:.3} mean_iops={:.0} migrated={} rejected={} ops={}",
        r.mean_if(),
        r.mean_iops(),
        r.migrated_inodes(),
        r.rejected_choices,
        r.total_ops
    );
}
