//! Figure 10: per-MDS throughput over time for the mixed workload, Vanilla
//! vs Lunule. Vanilla's panel shows skewed, sloshing loads; Lunule's shows
//! five tight, even bands with a higher aggregate.

use lunule_bench::{
    default_sim, print_series, run_grid, write_json, CommonArgs, ExperimentConfig, Series,
    TelemetrySink,
};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let mut sink = TelemetrySink::from_args(&args);
    let cells: Vec<ExperimentConfig> = [BalancerKind::Vanilla, BalancerKind::Lunule]
        .iter()
        .map(|b| ExperimentConfig {
            workload: WorkloadSpec {
                kind: WorkloadKind::Mixed,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: *b,
            sim: lunule_sim::SimConfig {
                duration_secs: 7_200,
                telemetry: sink.handle(&format!("fig10_mixed_{}", b.label())),
                ..default_sim()
            },
        })
        .collect();
    let results = run_grid(&cells);
    for r in &results {
        let n_mds = r.epochs.last().map(|e| e.per_mds_iops.len()).unwrap_or(0);
        let mut series: Vec<Series> = (0..n_mds)
            .map(|rank| {
                Series::new(
                    format!("mds.{rank}"),
                    r.epochs
                        .iter()
                        .map(|e| {
                            (
                                e.time_secs as f64 / 60.0,
                                e.per_mds_iops.get(rank).copied().unwrap_or(0.0),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        series.push(Series::new(
            "total",
            r.epochs
                .iter()
                .map(|e| (e.time_secs as f64 / 60.0, e.total_iops))
                .collect(),
        ));
        print_series(
            &format!("Fig 10 — per-MDS IOPS, mixed workload, {}", r.balancer),
            "min",
            &series,
        );
        write_json(
            &args.out_dir,
            &format!(
                "fig10_mixed_{}",
                r.balancer.to_lowercase().replace('-', "_")
            ),
            &series,
        );
    }
    sink.flush_and_report();
}
