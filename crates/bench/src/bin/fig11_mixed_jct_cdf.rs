//! Figure 11: CDF of job completion time across all clients under the
//! mixed workload, Lunule vs Vanilla. The paper's tail numbers: Lunule's
//! p99 completion is ~1.4x better, and ~80 % of clients finish markedly
//! earlier.

use lunule_bench::{
    default_sim, print_series, run_grid, write_json, CommonArgs, ExperimentConfig, Series,
};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let cells: Vec<ExperimentConfig> = [BalancerKind::Vanilla, BalancerKind::Lunule]
        .iter()
        .map(|b| ExperimentConfig {
            workload: WorkloadSpec {
                kind: WorkloadKind::Mixed,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: *b,
            sim: lunule_sim::SimConfig {
                duration_secs: 14_400,
                ..default_sim()
            },
        })
        .collect();
    let results = run_grid(&cells);

    let series: Vec<Series> = results
        .iter()
        .map(|r| {
            let mut done: Vec<u64> = r.client_completion_secs.iter().flatten().copied().collect();
            done.sort_unstable();
            let n = r.client_completion_secs.len().max(1) as f64;
            Series::new(
                r.balancer.clone(),
                done.iter()
                    .enumerate()
                    .map(|(i, t)| (*t as f64 / 60.0, (i + 1) as f64 / n))
                    .collect(),
            )
        })
        .collect();
    // For the CDF, x is time and y is the fraction — print percentile rows.
    print_series(
        "Fig 11 — JCT CDF points (x=min, y=fraction)",
        "min",
        &series,
    );

    println!("\n# completion-time percentiles (minutes)");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "balancer", "p50", "p80", "p99", "max"
    );
    for r in &results {
        let p = |q: f64| {
            r.jct_percentile(q)
                .map(|v| format!("{:.1}", v as f64 / 60.0))
                .unwrap_or_else(|| "n/a".into())
        };
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8}",
            r.balancer,
            p(0.5),
            p(0.8),
            p(0.99),
            p(1.0)
        );
    }
    write_json(&args.out_dir, "fig11_mixed_jct_cdf", &series);
}
