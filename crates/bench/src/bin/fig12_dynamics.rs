//! Figure 12: Lunule's dynamic adaptation under the Zipfian workload.
//!
//! * (a) MDS cluster expansion: 4 MDSs at start, one more added at the
//!   10- and 20-minute marks — the new ranks absorb load and the
//!   aggregate throughput steps up.
//! * (b) client growth: 10 clients at start, 10 more at each phase —
//!   per-MDS load rises in even steps, and the early benign imbalance does
//!   not trigger needless re-balances.

use lunule_bench::{default_sim, print_series, write_json, CommonArgs, Series};
use lunule_core::{make_balancer, BalancerKind};
use lunule_sim::Simulation;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    expansion(&args);
    client_growth(&args);
}

/// Fig 12(a): add one MDS at 10 and at 20 minutes.
fn expansion(args: &CommonArgs) {
    // Quadruple the op budget so clients outlast all three phases.
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: args.clients,
        scale: (args.scale * 4.0).min(1.0),
        seed: args.seed,
    };
    let sim_cfg = lunule_sim::SimConfig {
        n_mds: 4,
        stop_when_done: false,
        duration_secs: 1_800,
        ..default_sim()
    };
    let (ns, streams) = spec.build();
    let balancer = make_balancer(BalancerKind::Lunule, sim_cfg.mds_capacity);
    let mut sim = Simulation::new(sim_cfg.clone(), ns, balancer, streams);
    sim.run_until(600);
    sim.add_mds();
    sim.run_until(1200);
    sim.add_mds();
    sim.run_until(1800);
    let r = sim.finish();

    let mut series: Vec<Series> = (0..6)
        .map(|rank| {
            Series::new(
                format!("mds.{rank}"),
                r.epochs
                    .iter()
                    .map(|e| {
                        (
                            e.time_secs as f64 / 60.0,
                            e.per_mds_iops.get(rank).copied().unwrap_or(0.0),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    series.push(Series::new(
        "total",
        r.epochs
            .iter()
            .map(|e| (e.time_secs as f64 / 60.0, e.total_iops))
            .collect(),
    ));
    print_series(
        "Fig 12a — MDS expansion 4 -> 5 -> 6 (adds at 10 and 20 min), Lunule, Zipf",
        "min",
        &series,
    );
    let phase_mean = |lo: u64, hi: u64| {
        let v: Vec<f64> = r
            .epochs
            .iter()
            .filter(|e| e.time_secs > lo && e.time_secs <= hi)
            .map(|e| e.total_iops)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "phase means: 4 MDSs {:.0} IOPS | 5 MDSs {:.0} IOPS | 6 MDSs {:.0} IOPS",
        phase_mean(60, 600),
        phase_mean(660, 1200),
        phase_mean(1260, 1800)
    );
    write_json(&args.out_dir, "fig12a_expansion", &series);
}

/// Fig 12(b): 4 phases of 10 extra clients each.
fn client_growth(args: &CommonArgs) {
    let per_phase = (args.clients / 4).max(1);
    let sim_cfg = lunule_sim::SimConfig {
        stop_when_done: false,
        duration_secs: 1_600,
        ..default_sim()
    };
    // Build one Zipf workload sized for all phases, hand the streams out in
    // batches so every phase's clients use their own private directory.
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: per_phase * 4,
        scale: (args.scale * 4.0).min(1.0),
        seed: args.seed,
    };
    let (ns, mut streams) = spec.build();
    let rest = streams.split_off(per_phase);
    let balancer = make_balancer(BalancerKind::Lunule, sim_cfg.mds_capacity);
    let mut sim = Simulation::new(sim_cfg.clone(), ns, balancer, streams);
    let mut rest = rest;
    for phase in 1..4u64 {
        sim.run_until(phase * 400);
        let next: Vec<_> = rest.drain(..per_phase.min(rest.len())).collect();
        sim.add_clients(next);
    }
    sim.run_until(1_600);
    let r = sim.finish();

    let mut series: Vec<Series> = (0..5)
        .map(|rank| {
            Series::new(
                format!("mds.{rank}"),
                r.epochs
                    .iter()
                    .map(|e| {
                        (
                            e.time_secs as f64 / 60.0,
                            e.per_mds_iops.get(rank).copied().unwrap_or(0.0),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    series.push(Series::new(
        "total",
        r.epochs
            .iter()
            .map(|e| (e.time_secs as f64 / 60.0, e.total_iops))
            .collect(),
    ));
    print_series(
        &format!(
            "Fig 12b — client growth {per_phase} -> {} in 4 phases, Lunule, Zipf",
            per_phase * 4
        ),
        "min",
        &series,
    );
    write_json(&args.out_dir, "fig12b_client_growth", &series);
}
