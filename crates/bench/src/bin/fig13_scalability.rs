//! Figure 13: (a) Lunule's peak throughput as the MDS cluster grows from 1
//! to 16 ranks under the MDtest workload — expected to scale near-linearly
//! until the fixed client population stops saturating the cluster; and
//! (b) Lunule vs CephFS-Vanilla vs Dir-Hash on the Web workload.

use lunule_bench::{
    build_sim, default_sim, run_grid_jobs, write_json, CommonArgs, ExperimentConfig, ScaleSpec,
};
use lunule_core::BalancerKind;
use lunule_telemetry::Telemetry;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    scalability(&args);
    hash_comparison(&args);
    scale_frontier(&args);
}

/// Fig 13(a): peak IOPS vs MDS count.
fn scalability(args: &CommonArgs) {
    let counts = [1usize, 2, 4, 8, 12, 16];
    let cells: Vec<ExperimentConfig> = counts
        .iter()
        .map(|n| ExperimentConfig {
            workload: WorkloadSpec {
                kind: WorkloadKind::MdCreate,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: BalancerKind::Lunule,
            sim: lunule_sim::SimConfig {
                n_mds: *n,
                ..default_sim()
            },
        })
        .collect();
    let results = run_grid_jobs(&cells, args.jobs);
    println!("# Fig 13a — Lunule scalability, MDtest create");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>12}",
        "MDSs", "peak IOPS", "mean IOPS", "linear ref", "efficiency"
    );
    let base = results[0].peak_iops().max(1.0);
    let mut dump = Vec::new();
    for (n, r) in counts.iter().zip(&results) {
        let linear = base * *n as f64;
        let eff = r.peak_iops() / linear * 100.0;
        println!(
            "{:<6} {:>10.0} {:>10.0} {:>10.0} {:>11.1}%",
            n,
            r.peak_iops(),
            r.mean_iops(),
            linear,
            eff
        );
        dump.push((*n, r.peak_iops(), r.mean_iops(), eff));
    }
    write_json(&args.out_dir, "fig13a_scalability", &dump);
}

/// Fig 13(b): Lunule vs Vanilla vs Dir-Hash, Web workload.
fn hash_comparison(args: &CommonArgs) {
    let balancers = [
        BalancerKind::Lunule,
        BalancerKind::Vanilla,
        BalancerKind::DirHash,
    ];
    let cells: Vec<ExperimentConfig> = balancers
        .iter()
        .map(|b| ExperimentConfig {
            workload: WorkloadSpec {
                kind: WorkloadKind::Web,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: *b,
            sim: default_sim(),
        })
        .collect();
    let results = run_grid_jobs(&cells, args.jobs);
    println!("\n# Fig 13b — Lunule vs Vanilla vs Dir-Hash, Web workload");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10}",
        "balancer", "mean IOPS", "peak IOPS", "JCT p99 (s)", "forwards"
    );
    let mut dump = Vec::new();
    for r in &results {
        let jct = r
            .jct_percentile(0.99)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:<10} {:>10.0} {:>10.0} {:>12} {:>10}",
            r.balancer,
            r.mean_iops(),
            r.peak_iops(),
            jct,
            r.total_forwards()
        );
        dump.push((
            r.balancer.clone(),
            r.mean_iops(),
            r.peak_iops(),
            r.total_forwards(),
        ));
    }
    write_json(&args.out_dir, "fig13b_hash_comparison", &dump);
}

/// Fig 13(c): the scale frontier the paper never reaches — 32 to 128 ranks
/// under a million-client cohort population on a 10^7-inode namespace.
/// Quick mode shrinks the population two orders so `run_all --quick` stays
/// within CI budgets; the `megascale` binary owns the full-size CI gate.
fn scale_frontier(args: &CommonArgs) {
    let (counts, base): (&[usize], ScaleSpec) = if args.quick {
        (
            &[32],
            ScaleSpec {
                clients: 10_000,
                dirs: 250,
                files_per_dir: 400,
                duration_secs: 8,
                epoch_secs: 4,
                ..ScaleSpec::quick()
            },
        )
    } else {
        (&[32, 64, 128], ScaleSpec::full())
    };
    println!("\n# Fig 13c — scale frontier, cohort client model");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "MDSs", "clients", "flows", "total ops", "peak IOPS"
    );
    let mut dump = Vec::new();
    for n in counts {
        let spec = ScaleSpec {
            n_mds: *n,
            seed: args.seed,
            ..base
        };
        let sim = build_sim(&spec, args.client_model, args.jobs, Telemetry::disabled());
        let flows = sim.n_flows();
        let r = sim.run();
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10.0}",
            n,
            spec.clients,
            flows,
            r.total_ops,
            r.peak_iops()
        );
        dump.push((*n, spec.clients, flows, r.total_ops, r.peak_iops()));
    }
    write_json(&args.out_dir, "fig13c_scale_frontier", &dump);
}
