//! Figure 14: the Dir-Hash deep-dive on the Web workload — (a) inodes
//! spread evenly across MDSs by static hashing, yet (b) the request load is
//! skewed and cannot be re-balanced, and path traversal forwards are much
//! higher than dynamic subtree partitioning's.

use lunule_bench::{default_sim, run_experiment, write_json, CommonArgs, ExperimentConfig};
use lunule_core::{Balancer, BalancerKind, DirHashBalancer};
use lunule_namespace::{MdsRank, SubtreeMap};
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let spec = WorkloadSpec {
        kind: WorkloadKind::Web,
        clients: args.clients,
        scale: args.scale,
        seed: args.seed,
    };
    // (a) Static inode distribution: apply the pinning and count.
    let (ns, _) = spec.build();
    let mut map = SubtreeMap::new(MdsRank(0));
    let mut pinning = DirHashBalancer::default();
    pinning.setup(&ns, &mut map, 5);
    let inode_counts = map.inode_counts(&ns, 5);
    let total_inodes: usize = inode_counts.iter().sum();
    println!("# Fig 14a — Dir-Hash inode distribution (static)");
    println!("{:>8} {:>10} {:>8}", "rank", "inodes", "share");
    for (rank, c) in inode_counts.iter().enumerate() {
        println!(
            "{:>8} {:>10} {:>7.1}%",
            format!("mds.{rank}"),
            c,
            *c as f64 / total_inodes as f64 * 100.0
        );
    }

    // (b) Runtime request distribution + forwards vs the dynamic balancers.
    let mut rows = Vec::new();
    for balancer in [
        BalancerKind::DirHash,
        BalancerKind::Vanilla,
        BalancerKind::Lunule,
    ] {
        let r = run_experiment(&ExperimentConfig {
            workload: spec,
            balancer,
            sim: default_sim(),
        });
        rows.push(r);
    }
    println!("\n# Fig 14b — runtime request distribution and forwards");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "balancer", "mds.0", "mds.1", "mds.2", "mds.3", "mds.4", "forwards", "fwd/op"
    );
    let mut dump = Vec::new();
    for r in &rows {
        let total: u64 = r.per_mds_requests_total.iter().sum();
        let shares: Vec<f64> = r
            .per_mds_requests_total
            .iter()
            .map(|c| *c as f64 / total.max(1) as f64 * 100.0)
            .collect();
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>10} {:>9.3}",
            r.balancer,
            shares[0],
            shares[1],
            shares[2],
            shares[3],
            shares[4],
            r.total_forwards(),
            r.total_forwards() as f64 / r.total_ops.max(1) as f64
        );
        dump.push((r.balancer.clone(), shares, r.total_forwards(), r.total_ops));
    }
    let dh = rows[0].total_forwards() as f64;
    let lu = rows[2].total_forwards() as f64;
    let va = rows[1].total_forwards() as f64;
    println!(
        "\nDir-Hash forwards vs Vanilla: {:+.1}% | vs Lunule: {:+.1}%",
        (dh / va - 1.0) * 100.0,
        (dh / lu - 1.0) * 100.0
    );
    write_json(&args.out_dir, "fig14_dirhash", &(inode_counts, dump));
}
