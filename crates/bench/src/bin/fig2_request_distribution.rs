//! Figure 2: per-MDS share of all metadata requests under the built-in
//! (Vanilla) balancer, for each of the five workloads on a 5-MDS cluster.
//!
//! The paper's motivating measurement: even with active migration, the
//! built-in balancer leaves the load badly skewed — CNN's busiest MDS
//! serves ~90 % of all requests.

use lunule_bench::{default_sim, run_grid, write_json, CommonArgs, ExperimentConfig};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let cells: Vec<ExperimentConfig> = WorkloadKind::SINGLES
        .iter()
        .map(|kind| ExperimentConfig {
            workload: WorkloadSpec {
                kind: *kind,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: BalancerKind::Vanilla,
            sim: default_sim(),
        })
        .collect();
    let results = run_grid(&cells);

    println!("# Fig 2 — metadata request distribution, Vanilla balancer, 5 MDSs");
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8} {:>8}   {:>9}",
        "wl", "mds.0", "mds.1", "mds.2", "mds.3", "mds.4", "max/min"
    );
    let mut dump = Vec::new();
    for (cell, r) in cells.iter().zip(&results) {
        let total: u64 = r.per_mds_requests_total.iter().sum();
        let shares: Vec<f64> = r
            .per_mds_requests_total
            .iter()
            .map(|c| *c as f64 / total.max(1) as f64 * 100.0)
            .collect();
        let max = r.per_mds_requests_total.iter().max().copied().unwrap_or(0);
        let min = r.per_mds_requests_total.iter().min().copied().unwrap_or(0);
        let ratio = max as f64 / min.max(1) as f64;
        println!(
            "{:<6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%   {:>8.1}x",
            cell.workload.kind.label(),
            shares[0],
            shares[1],
            shares[2],
            shares[3],
            shares[4],
            ratio
        );
        dump.push((cell.workload.kind.label(), shares, ratio));
    }
    write_json(&args.out_dir, "fig2_request_distribution", &dump);
}
