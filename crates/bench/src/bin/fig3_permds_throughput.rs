//! Figure 3: per-MDS instantaneous metadata throughput over time under the
//! Vanilla balancer, for the Zipfian and CNN workloads.
//!
//! Zipf shows load sloshing between MDSs (the ping-pong effect); CNN shows
//! one MDS doing all the work for the whole run.

use lunule_bench::{
    default_sim, print_series, run_experiment, write_json, CommonArgs, ExperimentConfig, Series,
};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    for kind in [WorkloadKind::ZipfRead, WorkloadKind::Cnn] {
        let cfg = ExperimentConfig {
            workload: WorkloadSpec {
                kind,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: BalancerKind::Vanilla,
            sim: default_sim(),
        };
        let r = run_experiment(&cfg);
        let n_mds = r.epochs.last().map(|e| e.per_mds_iops.len()).unwrap_or(0);
        let series: Vec<Series> = (0..n_mds)
            .map(|rank| {
                Series::new(
                    format!("mds.{rank}"),
                    r.epochs
                        .iter()
                        .map(|e| {
                            (
                                e.time_secs as f64 / 60.0,
                                e.per_mds_iops.get(rank).copied().unwrap_or(0.0),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        print_series(
            &format!("Fig 3 — per-MDS IOPS over time, Vanilla, {kind}"),
            "min",
            &series,
        );
        write_json(
            &args.out_dir,
            &format!("fig3_permds_{}", kind.label().to_lowercase()),
            &series,
        );
    }
}
