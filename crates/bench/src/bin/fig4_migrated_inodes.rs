//! Figure 4: cumulative migrated inodes over time under the Vanilla
//! balancer, Zipf and CNN workloads.
//!
//! Zipf shows big bursts followed by quiet periods despite persistent
//! imbalance; CNN shows continuous migration whose subjects are never
//! visited again (invalid migrations).

use lunule_bench::{
    default_sim, print_series, run_experiment, write_json, CommonArgs, ExperimentConfig, Series,
};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let mut series = Vec::new();
    for kind in [WorkloadKind::ZipfRead, WorkloadKind::Cnn] {
        let cfg = ExperimentConfig {
            workload: WorkloadSpec {
                kind,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: BalancerKind::Vanilla,
            sim: default_sim(),
        };
        let r = run_experiment(&cfg);
        series.push(Series::new(
            format!("{kind} (Vanilla)"),
            r.epochs
                .iter()
                .map(|e| (e.time_secs as f64 / 60.0, e.migrated_inodes_cum as f64))
                .collect(),
        ));
    }
    print_series(
        "Fig 4 — cumulative migrated inodes, Vanilla",
        "min",
        &series,
    );
    write_json(&args.out_dir, "fig4_migrated_inodes", &series);
}
