//! Figure 6: imbalance factor over time for the five workloads under the
//! four balancers (Vanilla, GreedySpill, Lunule-Light, Lunule). Lower is
//! better; the paper's headline is that Lunule stays lowest nearly
//! everywhere, GreedySpill sits near 1, and Vanilla only handles the
//! temporally-local workloads.

use lunule_bench::{
    default_sim, print_series, run_grid, write_json, CommonArgs, ExperimentConfig, Series,
    TelemetrySink,
};
use lunule_core::BalancerKind;
use lunule_sim::SimConfig;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let mut sink = TelemetrySink::from_args(&args);
    let mut summary: Vec<(String, String, f64)> = Vec::new();
    for kind in WorkloadKind::SINGLES {
        let cells: Vec<ExperimentConfig> = BalancerKind::FIG6_SET
            .iter()
            .map(|b| ExperimentConfig {
                workload: WorkloadSpec {
                    kind,
                    clients: args.clients,
                    scale: args.scale,
                    seed: args.seed,
                },
                balancer: *b,
                sim: SimConfig {
                    telemetry: sink.handle(&format!("fig6_{}_{}", kind.label(), b.label())),
                    ..default_sim()
                },
            })
            .collect();
        let results = run_grid(&cells);
        let series: Vec<Series> = results
            .iter()
            .map(|r| {
                Series::new(
                    r.balancer.clone(),
                    r.epochs
                        .iter()
                        .map(|e| (e.time_secs as f64 / 60.0, e.imbalance_factor))
                        .collect(),
                )
            })
            .collect();
        print_series(&format!("Fig 6 — imbalance factor, {kind}"), "min", &series);
        for r in &results {
            summary.push((kind.label().to_string(), r.balancer.clone(), r.mean_if()));
        }
        write_json(
            &args.out_dir,
            &format!("fig6_if_{}", kind.label().to_lowercase()),
            &series,
        );
    }
    println!("\n# mean IF summary (lower is better)");
    println!(
        "{:<6} {:>10} {:>12} {:>13} {:>8}",
        "wl", "Vanilla", "GreedySpill", "Lunule-Light", "Lunule"
    );
    for kind in WorkloadKind::SINGLES {
        let row: Vec<f64> = BalancerKind::FIG6_SET
            .iter()
            .map(|b| {
                summary
                    .iter()
                    .find(|(w, n, _)| w == kind.label() && n == b.label())
                    .map(|(_, _, v)| *v)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        println!(
            "{:<6} {:>10.3} {:>12.3} {:>13.3} {:>8.3}",
            kind.label(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    write_json(&args.out_dir, "fig6_mean_if_summary", &summary);
    sink.flush_and_report();
}
