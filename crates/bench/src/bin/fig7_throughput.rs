//! Figure 7: aggregate metadata throughput over time for the five workloads
//! under the four balancers. The paper's headline numbers: Lunule improves
//! CNN by ~2.8x over Vanilla, NLP by ~1.8x, and stays ahead (by smaller
//! margins) on the temporally-local workloads.

use lunule_bench::{
    default_sim, print_series, run_grid, write_json, CommonArgs, ExperimentConfig, Series,
};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let mut summary: Vec<(String, String, f64, f64)> = Vec::new();
    for kind in WorkloadKind::SINGLES {
        let cells: Vec<ExperimentConfig> = BalancerKind::FIG6_SET
            .iter()
            .map(|b| ExperimentConfig {
                workload: WorkloadSpec {
                    kind,
                    clients: args.clients,
                    scale: args.scale,
                    seed: args.seed,
                },
                balancer: *b,
                sim: default_sim(),
            })
            .collect();
        let results = run_grid(&cells);
        let series: Vec<Series> = results
            .iter()
            .map(|r| {
                Series::new(
                    r.balancer.clone(),
                    r.epochs
                        .iter()
                        .map(|e| (e.time_secs as f64 / 60.0, e.total_iops))
                        .collect(),
                )
            })
            .collect();
        print_series(
            &format!("Fig 7 — aggregate metadata throughput (IOPS), {kind}"),
            "min",
            &series,
        );
        for r in &results {
            summary.push((
                kind.label().to_string(),
                r.balancer.clone(),
                r.mean_iops(),
                r.peak_iops(),
            ));
        }
        write_json(
            &args.out_dir,
            &format!("fig7_iops_{}", kind.label().to_lowercase()),
            &series,
        );
    }
    println!("\n# mean IOPS summary (higher is better; x = vs Vanilla)");
    println!(
        "{:<6} {:>9} {:>12} {:>13} {:>9} {:>9}",
        "wl", "Vanilla", "GreedySpill", "Lunule-Light", "Lunule", "speedup"
    );
    for kind in WorkloadKind::SINGLES {
        let row: Vec<f64> = BalancerKind::FIG6_SET
            .iter()
            .map(|b| {
                summary
                    .iter()
                    .find(|(w, n, _, _)| w == kind.label() && n == b.label())
                    .map(|(_, _, v, _)| *v)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        println!(
            "{:<6} {:>9.0} {:>12.0} {:>13.0} {:>9.0} {:>8.2}x",
            kind.label(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[3] / row[0]
        );
    }
    write_json(&args.out_dir, "fig7_iops_summary", &summary);
}
