//! Figure 8: end-to-end job completion time with data access enabled, for
//! CNN / NLP / Zipf / Web under Vanilla vs Lunule.
//!
//! The paper reports 18.6–64.6 % JCT reduction for CNN/NLP/Zipf and limited
//! gains for Web (its metadata imbalance is low to begin with, and the data
//! path dilutes what remains).

use lunule_bench::{default_sim, run_grid, write_json, CommonArgs, ExperimentConfig};
use lunule_core::BalancerKind;
use lunule_sim::DataPathConfig;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let workloads = [
        WorkloadKind::Cnn,
        WorkloadKind::Nlp,
        WorkloadKind::ZipfRead,
        WorkloadKind::Web,
    ];
    let sim = lunule_sim::SimConfig {
        // ~12 OSDs at ~200 MB/s each, scaled like the datasets: enough that
        // metadata dominates (the paper's premise) while the CNN dataset's
        // bulk reads remain visible in the completion time.
        data_path: Some(DataPathConfig::with_bandwidth((2.4e10 * args.scale) as u64)),
        duration_secs: 40_000,
        ..default_sim()
    };
    let mut cells = Vec::new();
    for kind in workloads {
        for balancer in [BalancerKind::Vanilla, BalancerKind::Lunule] {
            cells.push(ExperimentConfig {
                workload: WorkloadSpec {
                    kind,
                    clients: args.clients,
                    scale: args.scale,
                    seed: args.seed,
                },
                balancer,
                sim: sim.clone(),
            });
        }
    }
    let results = run_grid(&cells);

    println!("# Fig 8 — end-to-end job completion time (data access enabled)");
    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "wl", "Vanilla JCT(s)", "Lunule JCT(s)", "reduction"
    );
    let mut dump = Vec::new();
    for (i, kind) in workloads.iter().enumerate() {
        let vanilla = &results[i * 2];
        let lunule = &results[i * 2 + 1];
        let jct = |r: &lunule_sim::RunResult| {
            r.jct_percentile(0.99)
                .map(|v| v as f64)
                .unwrap_or(r.duration_secs as f64)
        };
        let (jv, jl) = (jct(vanilla), jct(lunule));
        let reduction = (jv - jl) / jv * 100.0;
        println!(
            "{:<6} {:>16.0} {:>16.0} {:>9.1}%",
            kind.label(),
            jv,
            jl,
            reduction
        );
        dump.push((kind.label(), jv, jl, reduction));
    }
    write_json(&args.out_dir, "fig8_end_to_end_jct", &dump);
}
