//! Figure 9: imbalance factor over time for the mixed workload (four client
//! groups running CNN/NLP/Web/Zipf concurrently), Lunule vs Vanilla.
//!
//! The paper's observations: Vanilla fluctuates up to ~0.6 and re-skews
//! whenever a client group finishes, while Lunule stays near zero and
//! finishes the whole mixture sooner.

use lunule_bench::{
    default_sim, print_series, run_grid, write_json, CommonArgs, ExperimentConfig, Series,
    TelemetrySink,
};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let mut sink = TelemetrySink::from_args(&args);
    let cells: Vec<ExperimentConfig> = [BalancerKind::Vanilla, BalancerKind::Lunule]
        .iter()
        .map(|b| ExperimentConfig {
            workload: WorkloadSpec {
                kind: WorkloadKind::Mixed,
                clients: args.clients,
                scale: args.scale,
                seed: args.seed,
            },
            balancer: *b,
            sim: lunule_sim::SimConfig {
                duration_secs: 7_200,
                telemetry: sink.handle(&format!("fig9_mixed_{}", b.label())),
                ..default_sim()
            },
        })
        .collect();
    let results = run_grid(&cells);
    let series: Vec<Series> = results
        .iter()
        .map(|r| {
            Series::new(
                r.balancer.clone(),
                r.epochs
                    .iter()
                    .map(|e| (e.time_secs as f64 / 60.0, e.imbalance_factor))
                    .collect(),
            )
        })
        .collect();
    print_series("Fig 9 — imbalance factor, mixed workload", "min", &series);
    for r in &results {
        println!(
            "{:<10} mean IF {:.3}, max IF {:.3}, finished at {} min",
            r.balancer,
            r.mean_if(),
            r.epochs
                .iter()
                .map(|e| e.imbalance_factor)
                .fold(0.0, f64::max),
            r.duration_secs / 60
        );
    }
    write_json(&args.out_dir, "fig9_mixed_if", &series);
    sink.flush_and_report();
}
