//! Extension experiment: heterogeneous MDS capacities. The paper assumes
//! identical MDSs (footnote 1) and calls heterogeneity orthogonal; this
//! binary runs a cluster where rank 0 is 2x and ranks 3-4 are 0.5x the
//! baseline, and compares
//!
//! * Vanilla (capacity-unaware baseline),
//! * Lunule as published (uniform-capacity model), and
//! * Lunule-hetero (utilisation-based IF + capacity-share targets in
//!   Algorithm 1 — the `capacities` extension of `LunuleConfig`).

use lunule_bench::{default_sim, write_json, CommonArgs};
use lunule_core::{
    make_balancer, BalancerKind, IfModelConfig, LunuleBalancer, LunuleConfig, RoleConfig,
};
use lunule_sim::Simulation;
use lunule_util::WorkerPool;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let base = default_sim();
    // Rank capacities: one beefy node, two baseline, two weak.
    let caps: Vec<f64> = vec![
        base.mds_capacity * 2.0,
        base.mds_capacity,
        base.mds_capacity,
        base.mds_capacity * 0.5,
        base.mds_capacity * 0.5,
    ];
    let sim = lunule_sim::SimConfig {
        mds_capacities: caps.clone(),
        ..base
    };
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: args.clients,
        scale: args.scale,
        seed: args.seed,
    };

    println!(
        "# heterogeneous cluster: capacities {:?} (total {})",
        caps,
        caps.iter().sum::<f64>()
    );
    println!(
        "{:<16} {:>9} {:>10} {:>10} {:>10}",
        "balancer", "mean IF", "mean IOPS", "migrated", "JCT p99"
    );
    let mut dump = Vec::new();

    let lunule_cfg = |capacities: Option<Vec<f64>>| LunuleConfig {
        if_model: IfModelConfig {
            mds_capacity: base.mds_capacity,
            ..IfModelConfig::default()
        },
        roles: RoleConfig {
            migration_capacity: base.mds_capacity * 0.5,
            ..RoleConfig::default()
        },
        capacities,
        ..LunuleConfig::default()
    };
    // Balancers are boxed trait objects (not Send), so each pool worker
    // constructs its own from the cell's recipe.
    let rows: Vec<&str> = vec!["Vanilla", "Lunule(uniform)", "Lunule-hetero"];
    let results = WorkerPool::new(args.jobs).map(&rows, |_, name| {
        let balancer: Box<dyn lunule_core::Balancer> = match *name {
            "Vanilla" => make_balancer(BalancerKind::Vanilla, base.mds_capacity),
            "Lunule(uniform)" => Box::new(LunuleBalancer::new(lunule_cfg(None))),
            _ => Box::new(LunuleBalancer::new(lunule_cfg(Some(caps.clone())))),
        };
        let (ns, streams) = spec.build();
        Simulation::new(sim.clone(), ns, balancer, streams).run()
    });
    for (name, r) in rows.iter().zip(results) {
        let jct = r
            .jct_percentile(0.99)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:<16} {:>9.3} {:>10.0} {:>10} {:>10}",
            name,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes(),
            jct
        );
        dump.push((*name, r.mean_if(), r.mean_iops(), r.migrated_inodes()));
    }
    println!(
        "\nNote: mean IF here is computed by the harness with the uniform model\n\
         (per-rank IOPS dispersion); on a heterogeneous cluster a *higher*\n\
         dispersion can be the correct, capacity-proportional placement —\n\
         compare throughput and completion time, not IF, across these rows."
    );
    write_json(&args.out_dir, "hetero", &dump);
}
