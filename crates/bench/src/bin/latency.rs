//! Extension experiment: per-op stall-latency distributions across
//! balancers. The paper names latency as one of its three metrics
//! (throughput, latency, job completion time); in the closed-loop
//! simulation the observable is how many ticks each op spends stalled
//! behind a saturated or frozen MDS before it is served.

use lunule_bench::{default_sim, run_grid, write_json, CommonArgs, ExperimentConfig};
use lunule_core::BalancerKind;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    for kind in [
        WorkloadKind::Cnn,
        WorkloadKind::ZipfRead,
        WorkloadKind::Mixed,
    ] {
        let cells: Vec<ExperimentConfig> = BalancerKind::FIG6_SET
            .iter()
            .map(|b| ExperimentConfig {
                workload: WorkloadSpec {
                    kind,
                    clients: args.clients,
                    scale: args.scale,
                    seed: args.seed,
                },
                balancer: *b,
                sim: lunule_sim::SimConfig {
                    duration_secs: 3_600,
                    ..default_sim()
                },
            })
            .collect();
        let results = run_grid(&cells);
        println!("\n# stall latency — {kind} (ticks an op waits before service)");
        println!(
            "{:<14} {:>10} {:>8} {:>6} {:>6} {:>6} {:>6}",
            "balancer", "immediate", "mean", "p50", "p90", "p99", "p999"
        );
        let mut dump = Vec::new();
        for r in &results {
            println!(
                "{:<14} {:>9.1}% {:>8.3} {:>6} {:>6} {:>6} {:>6}",
                r.balancer,
                r.latency.immediate_share() * 100.0,
                r.latency.mean(),
                r.latency.percentile(0.5),
                r.latency.percentile(0.9),
                r.latency.percentile(0.99),
                r.latency.percentile(0.999),
            );
            dump.push((
                r.balancer.clone(),
                r.latency.immediate_share(),
                r.latency.mean(),
                r.latency.percentile(0.99),
            ));
        }
        write_json(
            &args.out_dir,
            &format!("latency_{}", kind.label().to_lowercase()),
            &dump,
        );
    }
}
