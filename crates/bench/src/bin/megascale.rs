//! Determinism-at-scale smoke: a million-client, 10^7-inode run on 128
//! simulated ranks, executed twice — `--jobs 1` and `--jobs N` — with the
//! two telemetry journals required to be byte-identical. This is the CI
//! gate for the cohort engine's sharded fan-out: the worker count may only
//! change wall time, never a single journal byte.
//!
//! The run also enforces a wall-clock budget (the point of cohorts is that
//! a million clients cost what eight flows cost), overridable via
//! `MEGASCALE_BUDGET_SECS` for slow runners.
//!
//! Usage: `megascale [--quick] [--jobs N] [--client-model cohort|legacy]
//! [--telemetry-out <dir>]`

use lunule_bench::{write_json, CommonArgs, ScaleSpec, TelemetrySink};
use lunule_telemetry::{events_jsonl, Telemetry};
use std::time::Instant;

fn main() {
    let args = CommonArgs::parse();
    let spec = if args.quick {
        ScaleSpec::quick()
    } else {
        ScaleSpec::full()
    };
    let budget_secs: u64 = std::env::var("MEGASCALE_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if args.quick { 900 } else { 3600 });
    let jobs_n = if args.jobs == 0 { 4 } else { args.jobs.max(2) };
    println!(
        "# megascale — {} clients, {} inodes, {} ranks, {} ticks, jobs 1 vs {}",
        spec.clients,
        spec.n_inodes(),
        spec.n_mds,
        spec.duration_secs,
        jobs_n
    );

    let t0 = Instant::now();
    let mut sink = TelemetrySink::from_args(&args);
    let mut journals = Vec::new();
    let mut dump = Vec::new();
    for jobs in [1usize, jobs_n] {
        let tel = if sink.is_enabled() {
            sink.handle(&format!("megascale-jobs{jobs}"))
        } else {
            Telemetry::enabled()
        };
        let build_start = Instant::now();
        let sim = lunule_bench::build_sim(&spec, args.client_model, jobs, tel.clone());
        let built = build_start.elapsed();
        let flows = sim.n_flows();
        let run_start = Instant::now();
        let r = sim.run();
        let ran = run_start.elapsed();
        println!(
            "jobs={jobs}: {} clients as {flows} flow(s); {} ops, peak {:.0} IOPS; \
             build {:.1}s, run {:.1}s",
            spec.clients,
            r.total_ops,
            r.peak_iops(),
            built.as_secs_f64(),
            ran.as_secs_f64()
        );
        journals.push(events_jsonl(&tel.snapshot().expect("telemetry enabled")));
        dump.push((jobs, flows, r.total_ops, r.peak_iops()));
    }

    if journals[0] != journals[1] {
        eprintln!(
            "megascale: FAILED — jobs=1 and jobs={jobs_n} journals differ \
             ({} vs {} bytes)",
            journals[0].len(),
            journals[1].len()
        );
        std::process::exit(1);
    }
    println!(
        "journals byte-identical across worker counts ({} bytes each)",
        journals[0].len()
    );
    sink.flush_and_report();
    write_json(&args.out_dir, "megascale", &dump);

    let elapsed = t0.elapsed().as_secs();
    if elapsed > budget_secs {
        eprintln!("megascale: FAILED — {elapsed}s exceeds the {budget_secs}s wall-clock budget");
        std::process::exit(1);
    }
    println!("megascale: ok — {elapsed}s within the {budget_secs}s budget");
}
