//! Extension experiment: metadata-memory pressure. The Fig. 6 caption of
//! the paper notes that the MDtest runs ended early because the MDSs ran
//! out of memory; this binary reproduces the mechanism with the simulator's
//! resident-inode memory model — a rank whose authoritative metadata
//! outgrows its cache limit thrashes against the object store and serves
//! at a fraction of its rate. Balancing helps twice here: it spreads load
//! *and* it spreads the memory footprint.

use lunule_bench::{default_sim, print_series, write_json, CommonArgs, Series};
use lunule_core::{make_balancer, BalancerKind};
use lunule_sim::Simulation;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let spec = WorkloadSpec {
        kind: WorkloadKind::MdCreate,
        clients: args.clients,
        scale: args.scale,
        seed: args.seed,
    };
    // Cluster-wide memory comfortably exceeds the dataset only when the
    // footprint is spread: per-rank limit = dataset / 4 on a 5-rank
    // cluster, so any rank hoarding much more than its share thrashes.
    let total_creates = (100_000.0 * args.scale) as u64 * args.clients as u64;
    let limit = total_creates / 4;
    println!(
        "# MDtest with per-MDS memory limit {limit} resident inodes (dataset grows to {total_creates})"
    );
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>16}",
        "balancer", "mean IOPS", "peak IOPS", "final inodes", "max resident/mds"
    );
    let mut dump = Vec::new();
    let mut series = Vec::new();
    for kind in [BalancerKind::Vanilla, BalancerKind::Lunule] {
        let sim = lunule_sim::SimConfig {
            mds_memory_inodes: limit,
            memory_thrash_factor: 0.25,
            duration_secs: 2_400,
            ..default_sim()
        };
        let (ns, streams) = spec.build();
        let balancer = make_balancer(kind, sim.mds_capacity);
        let r = Simulation::new(sim, ns, balancer, streams).run();
        let max_resident = r
            .epochs
            .iter()
            .flat_map(|e| e.per_mds_resident_inodes.iter().copied())
            .max()
            .unwrap_or(0);
        println!(
            "{:<12} {:>10.0} {:>10.0} {:>14} {:>16}",
            r.balancer,
            r.mean_iops(),
            r.peak_iops(),
            r.final_inodes,
            max_resident
        );
        series.push(Series::new(
            format!("{} IOPS", r.balancer),
            r.epochs
                .iter()
                .map(|e| (e.time_secs as f64 / 60.0, e.total_iops))
                .collect(),
        ));
        series.push(Series::new(
            format!("{} max-resident", r.balancer),
            r.epochs
                .iter()
                .map(|e| {
                    (
                        e.time_secs as f64 / 60.0,
                        e.per_mds_resident_inodes.iter().copied().max().unwrap_or(0) as f64,
                    )
                })
                .collect(),
        ));
        dump.push((kind.label(), r.mean_iops(), max_resident));
    }
    print_series(
        "Memory pressure — throughput and hottest rank's resident inodes",
        "min",
        &series,
    );
    write_json(&args.out_dir, "memory_pressure", &dump);
}
