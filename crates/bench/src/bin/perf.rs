//! The fixed microbenchmark basket behind `BENCH.json`: hot paths of the
//! simulator, balancer, namespace, and telemetry measured under the
//! warmup + median-of-K protocol in `lunule_bench::perf`.
//!
//! Every benchmark performs a *fixed* amount of deterministic work per
//! round, so `ns_per_op` is comparable across machines of the same class
//! and across PRs on the same machine — the latter is what the CI `bench`
//! job guards via `xtask bench-diff` against `bench-baseline.json`.
//!
//! `--quick` selects the CI protocol (1 warmup, median of 3); the work per
//! round is identical in both modes so quick and full numbers stay
//! comparable. `--out` names either a directory (gets `BENCH.json` inside)
//! or a `.json` file path. Benchmarks run sequentially on purpose —
//! parallel timing runs would contend for cores and poison the medians —
//! so `--jobs` is accepted but ignored here.

use lunule_bench::perf::to_bench_json;
use lunule_bench::{default_sim, run_bench, BenchResult, CommonArgs, Protocol};
use lunule_core::{
    make_balancer, Access, Balancer, BalancerKind, EpochStats, ExportTask, LunuleBalancer,
    LunuleConfig, MigrationPlan, OpKind, SubtreeChoice,
};
use lunule_namespace::{
    dentry_hash, AuthorityCache, Frag, FragKey, FragSet, InodeId, MdsRank, Namespace, SubtreeMap,
};
use lunule_sim::{SimConfig, Simulation};
use lunule_telemetry::Telemetry;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

/// The tiny-but-representative simulation cell shared by the end-to-end
/// benchmarks: 8 clients on a Zipf read workload over 4 MDSs.
fn bench_cell() -> (WorkloadSpec, SimConfig) {
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 8,
        scale: 0.005,
        seed: 42,
    };
    let sim = SimConfig {
        n_mds: 4,
        duration_secs: 240,
        ..default_sim()
    };
    (spec, sim)
}

fn run_cell(balancer: BalancerKind, telemetry: Telemetry) -> u64 {
    let (spec, mut sim) = bench_cell();
    sim.telemetry = telemetry;
    let (ns, streams) = spec.build();
    let b = make_balancer(balancer, sim.mds_capacity);
    let r = Simulation::new(sim, ns, b, streams).run();
    r.total_ops
}

/// End-to-end simulator tick loop (issue rounds, budgets, routing).
fn sim_tick_loop(p: Protocol) -> BenchResult {
    run_bench("sim_tick_loop", p, || {
        run_cell(BalancerKind::Vanilla, Telemetry::disabled())
    })
}

/// Telemetry overhead pair: the same cell with the collector off and on.
fn telemetry_off(p: Protocol) -> BenchResult {
    run_bench("telemetry_off", p, || {
        run_cell(BalancerKind::Lunule, Telemetry::disabled())
    })
}

fn telemetry_on(p: Protocol) -> BenchResult {
    run_bench("telemetry_on", p, || {
        run_cell(BalancerKind::Lunule, Telemetry::enabled())
    })
}

/// Balancer epoch close with the IF-model math: a stream of recorded
/// accesses followed by `on_epoch` over a multi-rank namespace.
fn balancer_epoch_if(p: Protocol) -> BenchResult {
    // 40 directories of 25 files each; accesses rotate through them.
    let mut ns = Namespace::new();
    let mut files = Vec::new();
    for d in 0..40 {
        let dir = ns
            .mkdir(InodeId::ROOT, &format!("d{d}"))
            .unwrap_or(InodeId::ROOT);
        for f in 0..25 {
            if let Ok(id) = ns.create_file(dir, &format!("f{f}"), 0) {
                files.push(id);
            }
        }
    }
    let map = SubtreeMap::new(MdsRank(0));
    const N_MDS: usize = 4;
    const EPOCHS: u64 = 30;
    run_bench("balancer_epoch_if", p, || {
        let mut balancer = LunuleBalancer::new(LunuleConfig::default());
        let mut accesses = 0u64;
        for epoch in 0..EPOCHS {
            let mut requests = vec![0u64; N_MDS];
            for (i, ino) in files.iter().enumerate() {
                // Skewed: rank 0 serves most files, mimicking a hotspot.
                let rank = if i % 4 == 0 { i % N_MDS } else { 0 };
                balancer.record_access(
                    &ns,
                    Access {
                        ino: *ino,
                        served_by: MdsRank(rank as u16),
                        kind: OpKind::Read,
                    },
                );
                requests[rank] += 1;
                accesses += 1;
            }
            let stats = EpochStats::new(epoch, 10.0, requests);
            let _plan = balancer.on_epoch(&ns, &map, &stats);
        }
        accesses
    })
}

/// Dirfrag split/merge churn plus hash→frag resolution.
fn frag_split_merge(p: Protocol) -> BenchResult {
    const ROUNDS: u64 = 400;
    const LOOKUPS: u64 = 256;
    run_bench("frag_split_merge", p, || {
        let mut ops = 0u64;
        for round in 0..ROUNDS {
            let mut set = FragSet::new_root();
            // Churn: root → 4 frags → 16 frags, resolve, merge all back.
            set.split(&Frag::root(), 2);
            ops += 1;
            for f in Frag::root().split(2) {
                set.split(&f, 2);
                ops += 1;
            }
            for k in 0..LOOKUPS {
                let h = dentry_hash(round.wrapping_mul(LOOKUPS) + k);
                std::hint::black_box(set.frag_for_hash(h));
                ops += 1;
            }
            for f in Frag::root().split(2) {
                set.merge(&f);
                ops += 1;
            }
            for f in Frag::root().split(1) {
                set.merge(&f);
                ops += 1;
            }
            set.merge(&Frag::root());
            ops += 1;
        }
        ops
    })
}

/// A balancer that re-exports every top-level directory each epoch,
/// keeping the migration pipeline saturated regardless of load.
struct ChurnBalancer {
    dirs: Vec<InodeId>,
    n_mds: usize,
    epoch: u64,
}

impl Balancer for ChurnBalancer {
    fn name(&self) -> &'static str {
        "PerfChurn"
    }

    fn record_access(&mut self, _ns: &Namespace, _access: Access) {}

    fn on_epoch(&mut self, ns: &Namespace, map: &SubtreeMap, _stats: &EpochStats) -> MigrationPlan {
        self.epoch += 1;
        let mut exports: Vec<ExportTask> = Vec::new();
        for (i, dir) in self.dirs.iter().enumerate() {
            let from = map.frag_authority(ns, *dir, &Frag::root());
            let to = MdsRank(((i as u64 + self.epoch) % self.n_mds as u64) as u16);
            if from == to {
                continue;
            }
            exports.push(ExportTask {
                from,
                to,
                target_amount: 1.0,
                subtrees: vec![SubtreeChoice {
                    subtree: FragKey::whole(*dir),
                    estimated_load: 1.0,
                }],
            });
        }
        MigrationPlan { exports }
    }
}

/// Migration pipeline throughput: subtrees exported/committed per epoch by
/// a balancer that always migrates; ops = inodes shipped.
fn migration_pipeline(p: Protocol) -> BenchResult {
    run_bench("migration_pipeline", p, || {
        let mut ns = Namespace::new();
        let mut dirs = Vec::new();
        for d in 0..8 {
            let dir = ns
                .mkdir(InodeId::ROOT, &format!("m{d}"))
                .unwrap_or(InodeId::ROOT);
            for f in 0..200 {
                let _ = ns.create_file(dir, &format!("f{f}"), 0);
            }
            dirs.push(dir);
        }
        let sim = SimConfig {
            n_mds: 4,
            epoch_secs: 5,
            duration_secs: 150,
            stop_when_done: false,
            migration_bw: 50_000.0,
            ..default_sim()
        };
        let balancer = Box::new(ChurnBalancer {
            dirs,
            n_mds: sim.n_mds,
            epoch: 0,
        });
        let r = Simulation::new(sim, ns, balancer, Vec::new()).run();
        r.migrated_inodes()
    })
}

/// The deep-namespace fixture shared by the authority benchmarks: a
/// 12-level directory chain with authority boundaries at three depths and
/// 64 files at the bottom.
fn authority_fixture() -> (Namespace, SubtreeMap, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let mut dir = InodeId::ROOT;
    let mut levels = Vec::new();
    for d in 0..12 {
        dir = ns.mkdir(dir, &format!("l{d}")).unwrap_or(dir);
        levels.push(dir);
    }
    let files: Vec<InodeId> = (0..64)
        .filter_map(|f| ns.create_file(dir, &format!("f{f}"), 0).ok())
        .collect();
    let mut map = SubtreeMap::new(MdsRank(0));
    map.set_authority(FragKey::whole(levels[3]), MdsRank(1));
    map.set_authority(FragKey::whole(levels[7]), MdsRank(2));
    map.set_authority(FragKey::whole(levels[10]), MdsRank(3));
    (ns, map, files)
}

/// Subtree-authority resolution as the simulator performs it per op: a
/// tick-scoped [`AuthorityCache`] memoizes the walk, so the steady state is
/// one paged-map probe instead of a parent-link climb. The cache is rebuilt
/// every round (`sync` + cold misses) exactly like a tick boundary after a
/// subtree-map mutation, so the number includes the amortized fill cost.
fn authority_resolve(p: Protocol) -> BenchResult {
    let (ns, map, files) = authority_fixture();
    const REPS: u64 = 2_000;
    run_bench("authority_resolve", p, || {
        let mut auth = AuthorityCache::new();
        let mut ops = 0u64;
        for _ in 0..REPS {
            for ino in &files {
                std::hint::black_box(auth.authority(&map, &ns, *ino));
                ops += 1;
            }
        }
        ops
    })
}

/// The uncached walk the cache replaced — kept as the reference cell so
/// the memoization win stays visible (and honest) in BENCH.json.
fn authority_walk(p: Protocol) -> BenchResult {
    let (ns, map, files) = authority_fixture();
    const REPS: u64 = 2_000;
    run_bench("authority_walk", p, || {
        let mut ops = 0u64;
        for _ in 0..REPS {
            for ino in &files {
                std::hint::black_box(map.authority(&ns, *ino));
                ops += 1;
            }
        }
        ops
    })
}

fn main() {
    let args = CommonArgs::parse();
    let protocol = if args.quick {
        Protocol::quick()
    } else {
        Protocol::full()
    };
    let results = vec![
        sim_tick_loop(protocol),
        balancer_epoch_if(protocol),
        frag_split_merge(protocol),
        migration_pipeline(protocol),
        telemetry_off(protocol),
        telemetry_on(protocol),
        authority_resolve(protocol),
        authority_walk(protocol),
    ];

    println!(
        "{:<20} {:>12} {:>14} {:>14}",
        "bench", "iters", "ns/op", "ops/sec"
    );
    for r in &results {
        println!(
            "{:<20} {:>12} {:>14.1} {:>14.0}",
            r.bench, r.iters, r.ns_per_op, r.ops_per_sec
        );
    }

    if let Some(out) = &args.out_dir {
        let path = if out.ends_with(".json") {
            std::path::PathBuf::from(out)
        } else {
            if let Err(e) = std::fs::create_dir_all(out) {
                eprintln!("perf: cannot create {out}: {e}");
                return;
            }
            std::path::Path::new(out).join("BENCH.json")
        };
        let json = to_bench_json(&results).to_string_pretty();
        match std::fs::write(&path, json + "\n") {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("perf: cannot write {}: {e}", path.display()),
        }
    }
}
