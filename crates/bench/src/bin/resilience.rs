//! Extension experiment: MDS failure / decommission. The paper only grows
//! the cluster (Fig. 12a); here a rank is drained mid-run — its subtrees
//! fail over to the survivors — and the series shows the throughput dip
//! and Lunule re-balancing the failed-over load.

use lunule_bench::{default_sim, print_series, write_json, CommonArgs, Series};
use lunule_core::{make_balancer, BalancerKind};
use lunule_namespace::MdsRank;
use lunule_sim::Simulation;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: args.clients,
        scale: (args.scale * 4.0).min(1.0),
        seed: args.seed,
    };
    let sim_cfg = lunule_sim::SimConfig {
        stop_when_done: false,
        duration_secs: 1_200,
        ..default_sim()
    };
    let (ns, streams) = spec.build();
    let balancer = make_balancer(BalancerKind::Lunule, sim_cfg.mds_capacity);
    let mut sim = Simulation::new(sim_cfg.clone(), ns, balancer, streams);

    sim.run_until(600);
    println!("draining mds.2 at t=600s (subtrees fail over to the least-loaded survivors)");
    sim.drain_mds(MdsRank(2));
    sim.run_until(1_200);
    let r = sim.finish();

    let mut series: Vec<Series> = (0..5)
        .map(|rank| {
            Series::new(
                format!("mds.{rank}"),
                r.epochs
                    .iter()
                    .map(|e| {
                        (
                            e.time_secs as f64 / 60.0,
                            e.per_mds_iops.get(rank).copied().unwrap_or(0.0),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    series.push(Series::new(
        "total",
        r.epochs
            .iter()
            .map(|e| (e.time_secs as f64 / 60.0, e.total_iops))
            .collect(),
    ));
    print_series(
        "Resilience — per-MDS IOPS around a rank drain at t=10 min, Lunule, Zipf",
        "min",
        &series,
    );
    let phase = |lo: u64, hi: u64| {
        let v: Vec<f64> = r
            .epochs
            .iter()
            .filter(|e| e.time_secs > lo && e.time_secs <= hi)
            .map(|e| e.total_iops)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "aggregate: before drain {:.0} IOPS | first 2 min after {:.0} | steady after {:.0}",
        phase(120, 600),
        phase(600, 720),
        phase(720, 1_200),
    );
    write_json(&args.out_dir, "resilience", &series);
}
