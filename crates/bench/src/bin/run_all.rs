//! Runs the whole experiment suite — every table and figure binary — in
//! sequence, forwarding the common flags. `run_all --quick` is the CI smoke
//! path.

use std::process::Command;

const EXPERIMENTS: [&str; 19] = [
    "table1",
    "fig2_request_distribution",
    "fig3_permds_throughput",
    "fig4_migrated_inodes",
    "fig6_imbalance_factor",
    "fig7_throughput",
    "fig8_end_to_end",
    "fig9_mixed_if",
    "fig10_mixed_throughput",
    "fig11_mixed_jct_cdf",
    "fig12_dynamics",
    "fig13_scalability",
    "fig14_dirhash",
    "latency",
    "ablation",
    "sweep",
    "hetero",
    "resilience",
    "memory",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current_exe");
    let bin_dir = me.parent().expect("binary directory");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        println!("\n================ {exp} ================");
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("cannot launch {exp} at {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{exp} failed with {status}");
            failures.push(exp);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
