//! Runs the whole experiment suite — every table and figure binary — on
//! the worker pool, forwarding the common flags. `run_all --quick` is the
//! CI smoke path.
//!
//! Each experiment runs as a child process with captured output; sections
//! are printed in suite order once all children finish, so the console
//! transcript is identical regardless of `--jobs`. A binary that cannot be
//! launched (missing, not executable) is a listed failure like any other —
//! never a panic. All failure paths funnel through the single
//! [`std::process::ExitCode`] returned from `main`.

use std::fmt;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

use lunule_util::WorkerPool;

const EXPERIMENTS: [&str; 20] = [
    "table1",
    "fig2_request_distribution",
    "fig3_permds_throughput",
    "fig4_migrated_inodes",
    "fig6_imbalance_factor",
    "fig7_throughput",
    "fig8_end_to_end",
    "fig9_mixed_if",
    "fig10_mixed_throughput",
    "fig11_mixed_jct_cdf",
    "fig12_dynamics",
    "fig13_scalability",
    "fig14_dirhash",
    "latency",
    "ablation",
    "sweep",
    "hetero",
    "resilience",
    "memory",
    "session",
];

/// Why the suite (or one experiment in it) could not run.
#[derive(Debug)]
enum SuiteError {
    /// The harness could not locate its own binary directory.
    NoBinDir(std::io::Error),
    /// The experiment binary could not be launched at all.
    Launch {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The experiment ran but exited unsuccessfully.
    Failed { status: std::process::ExitStatus },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::NoBinDir(e) => write!(f, "cannot locate experiment binaries: {e}"),
            SuiteError::Launch { path, source } => {
                write!(f, "cannot launch {}: {source}", path.display())
            }
            SuiteError::Failed { status } => write!(f, "exited with {status}"),
        }
    }
}

/// Captured outcome of one experiment child.
struct Report {
    name: &'static str,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    error: Option<SuiteError>,
}

fn run_one(bin_dir: &std::path::Path, name: &'static str, args: &[String]) -> Report {
    let path = bin_dir.join(name);
    match Command::new(&path).args(args).output() {
        Err(source) => Report {
            name,
            stdout: Vec::new(),
            stderr: Vec::new(),
            error: Some(SuiteError::Launch { path, source }),
        },
        Ok(out) => Report {
            name,
            stdout: out.stdout,
            stderr: out.stderr,
            error: if out.status.success() {
                None
            } else {
                Some(SuiteError::Failed { status: out.status })
            },
        },
    }
}

/// Extracts the `--jobs N` value from the forwarded flags (the flag is
/// still forwarded to the children, whose internal grids honour it too).
fn jobs_from(args: &[String]) -> usize {
    let mut it = args.iter();
    let mut jobs = 0;
    while let Some(flag) = it.next() {
        if flag == "--jobs" {
            if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                jobs = n;
            }
        }
    }
    jobs
}

fn run_suite() -> Result<Vec<Report>, SuiteError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().map_err(SuiteError::NoBinDir)?;
    let bin_dir = me
        .parent()
        .ok_or_else(|| {
            SuiteError::NoBinDir(std::io::Error::other("executable has no parent directory"))
        })?
        .to_path_buf();
    let pool = WorkerPool::new(jobs_from(&args));
    eprintln!(
        "run_all: {} experiments across {} workers",
        EXPERIMENTS.len(),
        pool.jobs()
    );
    Ok(pool.map_indices(EXPERIMENTS.len(), |i| {
        eprintln!("run_all: starting {}", EXPERIMENTS[i]);
        run_one(&bin_dir, EXPERIMENTS[i], &args)
    }))
}

fn main() -> ExitCode {
    let reports = match run_suite() {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("run_all: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failures = Vec::new();
    for report in &reports {
        println!("\n================ {} ================", report.name);
        print!("{}", String::from_utf8_lossy(&report.stdout));
        if !report.stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(&report.stderr));
        }
        if let Some(e) = &report.error {
            eprintln!("{}: {e}", report.name);
            failures.push(report.name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", reports.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        ExitCode::FAILURE
    }
}
