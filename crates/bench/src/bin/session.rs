//! Daemon smoke experiment: runs the checked-in demonstration session
//! (`examples/session.lds`) through the daemon loop at max speed *and*
//! through the one-shot reference path, asserts the two telemetry
//! journals are byte-identical, and reports what the session did. This is
//! the operability story of the daemon distilled into a suite entry: if a
//! refactor ever makes the live loop journal differently from a batch
//! run, this experiment fails before any CI diff does.

use lunule_bench::{write_json, CommonArgs};
use lunule_daemon::{run_oneshot, Daemon, JsonlWriter, MaxSpeed, ScriptSource, Session};
use lunule_telemetry::{events_jsonl, Telemetry};

const SESSION_SCRIPT: &str = include_str!("../../../../examples/session.lds");

fn main() {
    let args = CommonArgs::parse();
    let session = match Session::parse(SESSION_SCRIPT) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("session: examples/session.lds does not parse: {e}");
            std::process::exit(1);
        }
    };

    // Daemon path: stream the journal into a buffer subscriber.
    let (sim, pool) = session.build(Telemetry::enabled());
    let mut daemon = Daemon::new(sim, pool, ScriptSource::new(session.commands.clone()));
    daemon.subscribe(Box::new(JsonlWriter::new(Vec::new())));
    let streamed = (|| -> std::io::Result<String> {
        daemon.run(&mut MaxSpeed)?;
        let telemetry = daemon.sim().telemetry().clone();
        let result = daemon.finish()?;
        let (events, _) = telemetry.events_since(0);
        println!(
            "# daemon: {} ticks, {} total ops, {} journal events",
            result.duration_secs,
            result.total_ops,
            events.len()
        );
        Ok(events_jsonl(&lunule_telemetry::Snapshot {
            events,
            ..Default::default()
        }))
    })()
    .unwrap_or_else(|e| {
        eprintln!("session: daemon run failed: {e}");
        std::process::exit(1);
    });

    // Reference path: same session, batch semantics.
    let (result, snapshot) = run_oneshot(&session);
    let exported = events_jsonl(&snapshot);
    println!(
        "# oneshot: {} ticks, {} total ops, {} journal events",
        result.duration_secs,
        result.total_ops,
        snapshot.events.len()
    );

    let identical = streamed == exported;
    println!(
        "# journals byte-identical: {}",
        if identical { "yes" } else { "NO" }
    );
    let count = |kind: &str| {
        snapshot
            .events
            .iter()
            .filter(|r| r.event.kind() == kind)
            .count()
    };
    let summary = vec![
        ("journal_events", snapshot.events.len()),
        ("rank_crashed", count("rank_crashed")),
        ("rank_recovered", count("rank_recovered")),
        ("mds_add", count("mds_add")),
        ("knob_set", count("knob_set")),
        ("byte_identical", usize::from(identical)),
    ];
    for (name, value) in &summary {
        println!("{name:<16} {value:>8}");
    }
    write_json(&args.out_dir, "session_smoke", &summary);
    if !identical {
        eprintln!("session: daemon journal diverged from one-shot journal");
        std::process::exit(1);
    }
}
