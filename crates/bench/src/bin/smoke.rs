//! Quick sanity run: one workload × all balancers, printing summary rows.
//! Useful for eyeballing whether the simulation produces the paper's
//! qualitative ordering before running the full figure suite.

use lunule_bench::{default_sim, run_grid, CommonArgs, ExperimentConfig, TelemetrySink};
use lunule_core::BalancerKind;
use lunule_sim::SimConfig;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    let mut sink = TelemetrySink::from_args(&args);
    let kinds = [
        BalancerKind::Vanilla,
        BalancerKind::GreedySpill,
        BalancerKind::LunuleLight,
        BalancerKind::Lunule,
    ];
    for workload in [WorkloadKind::ZipfRead, WorkloadKind::Cnn] {
        let cells: Vec<ExperimentConfig> = kinds
            .iter()
            .map(|b| ExperimentConfig {
                workload: WorkloadSpec {
                    kind: workload,
                    clients: args.clients,
                    scale: args.scale,
                    seed: args.seed,
                },
                balancer: *b,
                sim: SimConfig {
                    telemetry: sink.handle(&format!("smoke_{workload}_{}", b.label())),
                    ..default_sim()
                },
            })
            .collect();
        let t0 = std::time::Instant::now();
        let results = run_grid(&cells);
        println!(
            "\n== {workload} (scale {}, {} clients; {:.1}s wall) ==",
            args.scale,
            args.clients,
            t0.elapsed().as_secs_f64()
        );
        println!(
            "{:<14} {:>9} {:>10} {:>10} {:>10} {:>12} {:>9}",
            "balancer", "mean IF", "mean IOPS", "peak IOPS", "migrated", "total ops", "sim secs"
        );
        for r in &results {
            println!(
                "{:<14} {:>9.3} {:>10.0} {:>10.0} {:>10} {:>12} {:>9}",
                r.balancer,
                r.mean_if(),
                r.mean_iops(),
                r.peak_iops(),
                r.migrated_inodes(),
                r.total_ops,
                r.duration_secs
            );
        }
    }
    sink.flush_and_report();
}
