//! Sensitivity sweeps over the design parameters the paper fixes by fiat:
//! epoch length (10 s), migration bandwidth, the IF trigger threshold, and
//! the urgency smoothness `S` (0.2). Each sweep varies one knob with the
//! others at defaults and reports the quality/overhead trade-off, so a
//! deployment can see how sharp each cliff is.

use lunule_bench::{default_sim, write_json, CommonArgs};
use lunule_core::{IfModelConfig, LunuleBalancer, LunuleConfig, RoleConfig};
use lunule_sim::{SimConfig, Simulation};
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn run(spec: &WorkloadSpec, sim: SimConfig, lunule: LunuleConfig) -> lunule_sim::RunResult {
    let (ns, streams) = spec.build();
    Simulation::new(
        sim.clone(),
        ns,
        Box::new(LunuleBalancer::new(lunule)),
        streams,
    )
    .run()
}

fn lunule_cfg(sim: &SimConfig) -> LunuleConfig {
    LunuleConfig {
        if_model: IfModelConfig {
            mds_capacity: sim.mds_capacity,
            ..IfModelConfig::default()
        },
        roles: RoleConfig {
            migration_capacity: sim.mds_capacity * 0.5,
            ..RoleConfig::default()
        },
        ..LunuleConfig::default()
    }
}

fn main() {
    let args = CommonArgs::parse();
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: args.clients,
        scale: args.scale,
        seed: args.seed,
    };
    let base = default_sim();
    let mut dump: Vec<(String, f64, f64, f64, u64)> = Vec::new();

    println!("# sweep: epoch length (re-balance interval)");
    println!(
        "{:>10} {:>9} {:>10} {:>10}",
        "epoch (s)", "mean IF", "mean IOPS", "migrated"
    );
    for epoch in [2u64, 5, 10, 20, 40] {
        let sim = SimConfig {
            epoch_secs: epoch,
            ..base.clone()
        };
        let r = run(&spec, sim.clone(), lunule_cfg(&sim));
        println!(
            "{:>10} {:>9.3} {:>10.0} {:>10}",
            epoch,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes()
        );
        dump.push((
            "epoch_secs".into(),
            epoch as f64,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes(),
        ));
    }

    println!("\n# sweep: migration bandwidth (inodes/s per exporter)");
    println!(
        "{:>10} {:>9} {:>10} {:>10}",
        "bw", "mean IF", "mean IOPS", "migrated"
    );
    for bw in [500.0f64, 1_000.0, 5_000.0, 20_000.0, 100_000.0] {
        let sim = SimConfig {
            migration_bw: bw,
            ..base.clone()
        };
        let r = run(&spec, sim.clone(), lunule_cfg(&sim));
        println!(
            "{:>10} {:>9.3} {:>10.0} {:>10}",
            bw,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes()
        );
        dump.push((
            "migration_bw".into(),
            bw,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes(),
        ));
    }

    println!("\n# sweep: IF trigger threshold");
    println!(
        "{:>10} {:>9} {:>10} {:>10}",
        "threshold", "mean IF", "mean IOPS", "migrated"
    );
    for threshold in [0.02f64, 0.05, 0.10, 0.20, 0.40] {
        let r = run(
            &spec,
            base.clone(),
            LunuleConfig {
                if_threshold: threshold,
                ..lunule_cfg(&base)
            },
        );
        println!(
            "{:>10} {:>9.3} {:>10.0} {:>10}",
            threshold,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes()
        );
        dump.push((
            "if_threshold".into(),
            threshold,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes(),
        ));
    }

    println!("\n# sweep: urgency smoothness S");
    println!(
        "{:>10} {:>9} {:>10} {:>10}",
        "S", "mean IF", "mean IOPS", "migrated"
    );
    for s in [0.05f64, 0.1, 0.2, 0.4, 0.8] {
        let r = run(
            &spec,
            base.clone(),
            LunuleConfig {
                if_model: IfModelConfig {
                    mds_capacity: base.mds_capacity,
                    smoothness: s,
                },
                ..lunule_cfg(&base)
            },
        );
        println!(
            "{:>10} {:>9.3} {:>10.0} {:>10}",
            s,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes()
        );
        dump.push((
            "smoothness".into(),
            s,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes(),
        ));
    }

    write_json(&args.out_dir, "sweep", &dump);
}
