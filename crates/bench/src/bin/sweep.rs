//! Sensitivity sweeps over the design parameters the paper fixes by fiat:
//! epoch length (10 s), migration bandwidth, the IF trigger threshold, and
//! the urgency smoothness `S` (0.2). Each sweep varies one knob with the
//! others at defaults and reports the quality/overhead trade-off, so a
//! deployment can see how sharp each cliff is.
//!
//! All four knob grids are flattened into one cell list and run on the
//! worker pool (`--jobs`); results print grouped in knob order, so the
//! transcript and the JSON dump are identical for any pool width.
//!
//! The runtime-tunable knobs (`if_threshold`, `if_smoothness`) get a second,
//! **warm-started** pass: the pre-change prefix (the first half of the run)
//! is simulated once and snapshotted, and every variant restores that common
//! prefix before its knob lands — the grid pays for the shared warm-up
//! exactly once, and every variant sees the knob change mid-flight on
//! byte-identical state.

use lunule_bench::{default_sim, write_json, CommonArgs};
use lunule_core::{IfModelConfig, LunuleBalancer, LunuleConfig, RoleConfig};
use lunule_sim::{SimConfig, Simulation};
use lunule_util::WorkerPool;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn run(spec: &WorkloadSpec, sim: SimConfig, lunule: LunuleConfig) -> lunule_sim::RunResult {
    let (ns, streams) = spec.build();
    Simulation::new(
        sim.clone(),
        ns,
        Box::new(LunuleBalancer::new(lunule)),
        streams,
    )
    .run()
}

fn lunule_cfg(sim: &SimConfig) -> LunuleConfig {
    LunuleConfig {
        if_model: IfModelConfig {
            mds_capacity: sim.mds_capacity,
            ..IfModelConfig::default()
        },
        roles: RoleConfig {
            migration_capacity: sim.mds_capacity * 0.5,
            ..RoleConfig::default()
        },
        ..LunuleConfig::default()
    }
}

/// One sweep cell: which knob group it belongs to, the knob value, and the
/// fully-resolved configuration pair to run.
struct Cell {
    group: &'static str,
    title: &'static str,
    x_label: &'static str,
    x: f64,
    sim: SimConfig,
    lunule: LunuleConfig,
}

fn main() {
    let args = CommonArgs::parse();
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: args.clients,
        scale: args.scale,
        seed: args.seed,
    };
    let base = default_sim();
    let mut cells: Vec<Cell> = Vec::new();

    for epoch in [2u64, 5, 10, 20, 40] {
        let sim = SimConfig {
            epoch_secs: epoch,
            ..base.clone()
        };
        let lunule = lunule_cfg(&sim);
        cells.push(Cell {
            group: "epoch_secs",
            title: "# sweep: epoch length (re-balance interval)",
            x_label: "epoch (s)",
            x: epoch as f64,
            sim,
            lunule,
        });
    }
    for bw in [500.0f64, 1_000.0, 5_000.0, 20_000.0, 100_000.0] {
        let sim = SimConfig {
            migration_bw: bw,
            ..base.clone()
        };
        let lunule = lunule_cfg(&sim);
        cells.push(Cell {
            group: "migration_bw",
            title: "# sweep: migration bandwidth (inodes/s per exporter)",
            x_label: "bw",
            x: bw,
            sim,
            lunule,
        });
    }
    for threshold in [0.02f64, 0.05, 0.10, 0.20, 0.40] {
        cells.push(Cell {
            group: "if_threshold",
            title: "# sweep: IF trigger threshold",
            x_label: "threshold",
            x: threshold,
            sim: base.clone(),
            lunule: LunuleConfig {
                if_threshold: threshold,
                ..lunule_cfg(&base)
            },
        });
    }
    for s in [0.05f64, 0.1, 0.2, 0.4, 0.8] {
        cells.push(Cell {
            group: "smoothness",
            title: "# sweep: urgency smoothness S",
            x_label: "S",
            x: s,
            sim: base.clone(),
            lunule: LunuleConfig {
                if_model: IfModelConfig {
                    mds_capacity: base.mds_capacity,
                    smoothness: s,
                },
                ..lunule_cfg(&base)
            },
        });
    }

    let results =
        WorkerPool::new(args.jobs).map(&cells, |_, c| run(&spec, c.sim.clone(), c.lunule.clone()));

    let mut dump: Vec<(String, f64, f64, f64, u64)> = Vec::new();
    let mut current_group = "";
    for (cell, r) in cells.iter().zip(&results) {
        if cell.group != current_group {
            if !current_group.is_empty() {
                println!();
            }
            current_group = cell.group;
            println!("{}", cell.title);
            println!(
                "{:>10} {:>9} {:>10} {:>10}",
                cell.x_label, "mean IF", "mean IOPS", "migrated"
            );
        }
        println!(
            "{:>10} {:>9.3} {:>10.0} {:>10}",
            cell.x,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes()
        );
        dump.push((
            cell.group.into(),
            cell.x,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes(),
        ));
    }

    // Warm-started pass over the runtime knobs: one shared prefix, then
    // restore-per-variant. Restoring with the same config and a freshly
    // built stream set is exactly the daemon's crash-recovery path, so this
    // doubles as a continuous exercise of the snapshot machinery.
    // `stop_when_done` ends runs well before `duration_secs` at small
    // scales, so anchor the snapshot at half the *observed* stop tick — a
    // point where client work is guaranteed to remain — rather than half
    // the nominal duration (where the flip would land on a drained
    // cluster and every variant would tie).
    let warm_tick = {
        let (ns, streams) = spec.build();
        let mut probe = Simulation::new(
            base.clone(),
            ns,
            Box::new(LunuleBalancer::new(lunule_cfg(&base))),
            streams,
        );
        probe.run_until(base.duration_secs);
        probe.now() / 2
    };
    let snap = {
        let (ns, streams) = spec.build();
        let mut warm = Simulation::new(
            base.clone(),
            ns,
            Box::new(LunuleBalancer::new(lunule_cfg(&base))),
            streams,
        );
        warm.run_until(warm_tick);
        warm.snapshot()
    };

    struct WarmCell {
        knob: &'static str,
        x: f64,
    }
    let mut warm_cells: Vec<WarmCell> = Vec::new();
    for threshold in [0.02f64, 0.05, 0.10, 0.20, 0.40] {
        warm_cells.push(WarmCell {
            knob: "if_threshold",
            x: threshold,
        });
    }
    for s in [0.05f64, 0.1, 0.2, 0.4, 0.8] {
        warm_cells.push(WarmCell {
            knob: "if_smoothness",
            x: s,
        });
    }
    let warm_results = WorkerPool::new(args.jobs).map(&warm_cells, |_, c| {
        let (_ns, streams) = spec.build();
        let mut sim = Simulation::restore(
            base.clone(),
            Box::new(LunuleBalancer::new(lunule_cfg(&base))),
            streams,
            &snap,
        )
        .expect("warm-start restore from the shared prefix snapshot");
        assert!(
            sim.set_balancer_knob(c.knob, c.x),
            "balancer rejected knob {}",
            c.knob
        );
        sim.run_until(base.duration_secs);
        sim.finish()
    });

    let mut current_knob = "";
    for (cell, r) in warm_cells.iter().zip(&warm_results) {
        if cell.knob != current_knob {
            current_knob = cell.knob;
            println!();
            println!(
                "# warm-started sweep: {} flipped at tick {warm_tick}",
                cell.knob
            );
            println!(
                "{:>10} {:>9} {:>10} {:>10}",
                cell.knob, "mean IF", "mean IOPS", "migrated"
            );
        }
        println!(
            "{:>10} {:>9.3} {:>10.0} {:>10}",
            cell.x,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes()
        );
        dump.push((
            format!("warm:{}", cell.knob),
            cell.x,
            r.mean_if(),
            r.mean_iops(),
            r.migrated_inodes(),
        ));
    }

    write_json(&args.out_dir, "sweep", &dump);
}
