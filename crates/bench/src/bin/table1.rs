//! Table 1: the five evaluated workloads — scenario, metadata-op ratio, and
//! the materialised dataset shape at the chosen scale.

use lunule_bench::CommonArgs;
use lunule_namespace::NamespaceStats;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let args = CommonArgs::parse();
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>12}  description",
        "name", "meta_ratio", "dirs", "files", "ops/client"
    );
    for kind in WorkloadKind::SINGLES {
        let spec = WorkloadSpec {
            kind,
            clients: args.clients,
            scale: args.scale,
            seed: args.seed,
        };
        let (ns, streams) = spec.build();
        let ops: u64 = streams
            .first()
            .and_then(|s| s.len_hint())
            .unwrap_or_default();
        let shape = NamespaceStats::of(&ns);
        println!(
            "{:<6} {:>9.1}% {:>10} {:>10} {:>12}  {}",
            kind.label(),
            kind.meta_op_ratio() * 100.0,
            ns.dir_count(),
            ns.file_count(),
            ops,
            kind.description()
        );
        println!("{:<6} shape: {shape}", "");
    }
}
