//! Round-trip validator for telemetry exports: parses every
//! `*.events.jsonl` back through the typed event decoder and structurally
//! validates every `*.trace.json` as Chrome `trace_event` JSON (the format
//! Perfetto loads). CI runs this against the artifacts a `--telemetry-out`
//! run produced; a malformed file fails the build.
//!
//! Usage: `telemetry_check <dir>`

use lunule_telemetry::{parse_events_jsonl, validate_chrome_trace, Event};
use std::path::Path;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: telemetry_check <dir>");
        std::process::exit(2);
    });
    match check_dir(Path::new(&dir)) {
        Ok((events, traces)) => {
            println!(
                "telemetry_check: ok — {events} event(s) across JSONL logs, \
                 {traces} Chrome trace entr(ies) validated in {dir}"
            );
        }
        Err(msg) => {
            eprintln!("telemetry_check: FAILED — {msg}");
            std::process::exit(1);
        }
    }
}

/// Validates every telemetry file under `dir`; returns (total events
/// round-tripped, total trace entries validated).
fn check_dir(dir: &Path) -> Result<(usize, usize), String> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    names.sort();
    let (mut n_events, mut n_trace, mut n_files) = (0usize, 0usize, 0usize);
    for path in &names {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".events.jsonl") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let events = parse_events_jsonl(&text)
                .map_err(|e| format!("{}: bad event log: {e}", path.display()))?;
            check_fault_events(&events).map_err(|e| format!("{}: {e}", path.display()))?;
            check_stamps(&events).map_err(|e| format!("{}: {e}", path.display()))?;
            n_events += events.len();
            n_files += 1;
        } else if name.ends_with(".trace.json") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            n_trace += validate_chrome_trace(&text)
                .map_err(|e| format!("{}: bad Chrome trace: {e}", path.display()))?;
            n_files += 1;
        }
    }
    if n_files == 0 {
        return Err(format!("no telemetry files found in {}", dir.display()));
    }
    Ok((n_events, n_trace))
}

/// Validates the `(t, seq)` stamping discipline the deterministic clock
/// guarantees: ticks never go backwards, the first event of each tick has
/// `seq == 0`, and within a tick `seq` is contiguous. An uninterrupted run
/// satisfies this by construction; a journal stitched together across a
/// crash/restore (`--restore`) must satisfy it too — a duplicate, dropped,
/// or out-of-order record at the stitch point fails here.
fn check_stamps(events: &[lunule_telemetry::EventRecord]) -> Result<(), String> {
    let mut prev: Option<(u64, u64)> = None;
    for rec in events {
        let ok = match prev {
            None => true,
            Some((t, seq)) if rec.t == t => rec.seq == seq + 1,
            Some((t, _)) => rec.t > t && rec.seq == 0,
        };
        if !ok {
            return Err(format!(
                "stamp ({}, {}) after {:?} breaks (t, seq) monotonicity",
                rec.t, rec.seq, prev
            ));
        }
        prev = Some((rec.t, rec.seq));
    }
    Ok(())
}

/// Structural validation of the fault-injection event family: every
/// `FaultInjected` must carry a known kind label, crash/recovery events
/// must pair up (recoveries never exceed crashes), and migration retries
/// never exceed timeouts — a journal violating these was not produced by
/// the simulator's fault path.
fn check_fault_events(events: &[lunule_telemetry::EventRecord]) -> Result<(), String> {
    const KNOWN_KINDS: [&str; 4] = ["crash", "limp", "report_loss", "migration_stall"];
    let (mut injected, mut crashes, mut recoveries) = (0u64, 0u64, 0u64);
    let (mut timeouts, mut retries) = (0u64, 0u64);
    for rec in events {
        match &rec.event {
            Event::FaultInjected { kind, .. } => {
                if !KNOWN_KINDS.contains(&kind.as_str()) {
                    return Err(format!("unknown fault kind '{kind}' in event log"));
                }
                injected += 1;
            }
            Event::RankCrashed { .. } => crashes += 1,
            Event::RankRecovered { .. } => recoveries += 1,
            Event::MigrationTimedOut { .. } => timeouts += 1,
            Event::MigrationRetried { .. } => retries += 1,
            _ => {}
        }
    }
    if crashes > injected {
        return Err(format!(
            "{crashes} rank_crashed events but only {injected} fault_injected"
        ));
    }
    if recoveries > crashes {
        return Err(format!("{recoveries} recoveries exceed {crashes} crashes"));
    }
    if retries > timeouts {
        return Err(format!(
            "{retries} migration retries exceed {timeouts} timeouts"
        ));
    }
    Ok(())
}
