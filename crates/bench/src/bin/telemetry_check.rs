//! Round-trip validator for telemetry exports: parses every
//! `*.events.jsonl` back through the typed event decoder and structurally
//! validates every `*.trace.json` as Chrome `trace_event` JSON (the format
//! Perfetto loads). CI runs this against the artifacts a `--telemetry-out`
//! run produced; a malformed file fails the build.
//!
//! Usage: `telemetry_check <dir>`

use lunule_telemetry::{parse_events_jsonl, validate_chrome_trace, Event};
use std::collections::BTreeMap;
use std::path::Path;

/// One run's shard journals: `(file name, its (t, seq) stamps)` per shard.
type ShardJournals = Vec<(String, Vec<(u64, u64)>)>;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: telemetry_check <dir>");
        std::process::exit(2);
    });
    match check_dir(Path::new(&dir)) {
        Ok((events, traces)) => {
            println!(
                "telemetry_check: ok — {events} event(s) across JSONL logs, \
                 {traces} Chrome trace entr(ies) validated in {dir}"
            );
        }
        Err(msg) => {
            eprintln!("telemetry_check: FAILED — {msg}");
            std::process::exit(1);
        }
    }
}

/// Validates every telemetry file under `dir`; returns (total events
/// round-tripped, total trace entries validated).
fn check_dir(dir: &Path) -> Result<(usize, usize), String> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    names.sort();
    let (mut n_events, mut n_trace, mut n_files) = (0usize, 0usize, 0usize);
    let mut groups: BTreeMap<String, ShardJournals> = BTreeMap::new();
    for path in &names {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".events.jsonl") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let events = parse_events_jsonl(&text)
                .map_err(|e| format!("{}: bad event log: {e}", path.display()))?;
            check_fault_events(&events).map_err(|e| format!("{}: {e}", path.display()))?;
            let (group, shard) = shard_group(name);
            if shard.is_none() {
                // A whole-run journal must be contiguous on its own; a
                // shard journal only carries its shard's slice of each
                // tick, so contiguity is a group property (checked below).
                check_stamps(&events).map_err(|e| format!("{}: {e}", path.display()))?;
            } else {
                check_stamp_order(&events).map_err(|e| format!("{}: {e}", path.display()))?;
            }
            let stamps: Vec<(u64, u64)> = events.iter().map(|r| (r.t, r.seq)).collect();
            groups
                .entry(group)
                .or_default()
                .push((name.to_string(), stamps));
            n_events += events.len();
            n_files += 1;
        } else if name.ends_with(".trace.json") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            n_trace += validate_chrome_trace(&text)
                .map_err(|e| format!("{}: bad Chrome trace: {e}", path.display()))?;
            n_files += 1;
        }
    }
    if n_files == 0 {
        return Err(format!("no telemetry files found in {}", dir.display()));
    }
    for (group, files) in &groups {
        check_shard_interleaving(files).map_err(|e| format!("run '{group}': {e}"))?;
    }
    Ok((n_events, n_trace))
}

/// Splits a journal file name into its run group and optional shard index:
/// `web.shard3.events.jsonl` → `("web", Some(3))`, `web.events.jsonl` →
/// `("web", None)`. Shard journals of one run are validated together.
fn shard_group(name: &str) -> (String, Option<usize>) {
    let Some(stem) = name.strip_suffix(".events.jsonl") else {
        return (name.to_string(), None);
    };
    if let Some((run, shard)) = stem.rsplit_once(".shard") {
        if let Ok(k) = shard.parse::<usize>() {
            return (run.to_string(), Some(k));
        }
    }
    (stem.to_string(), None)
}

/// Weak per-file discipline for shard journals: stamps strictly increase
/// lexicographically. Gaps are expected — the missing seqs live in sibling
/// shards — but reordering or duplication within one shard never is.
fn check_stamp_order(events: &[lunule_telemetry::EventRecord]) -> Result<(), String> {
    let mut prev: Option<(u64, u64)> = None;
    for rec in events {
        if let Some(p) = prev {
            if (rec.t, rec.seq) <= p {
                return Err(format!(
                    "stamp ({}, {}) after {p:?} breaks shard-journal ordering",
                    rec.t, rec.seq
                ));
            }
        }
        prev = Some((rec.t, rec.seq));
    }
    Ok(())
}

/// Cross-shard stamp interleaving: the union of `(t, seq)` stamps across
/// one run's journals must carry no duplicate stamp (two shards claiming
/// the same slot) and, within each tick, seqs must cover `0..n`
/// contiguously (a gap means a record was dropped in the shard merge).
/// The per-journal contiguity check cannot see either failure — each file
/// looks internally consistent while the run as a whole is not.
fn check_shard_interleaving(files: &[(String, Vec<(u64, u64)>)]) -> Result<(), String> {
    let mut per_tick: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut owner: BTreeMap<(u64, u64), &str> = BTreeMap::new();
    for (name, stamps) in files {
        for &(t, seq) in stamps {
            if let Some(first) = owner.insert((t, seq), name) {
                return Err(format!(
                    "stamp ({t}, {seq}) appears in both {first} and {name}"
                ));
            }
            per_tick.entry(t).or_default().push(seq);
        }
    }
    for (t, seqs) in &mut per_tick {
        seqs.sort_unstable();
        for (want, have) in seqs.iter().enumerate() {
            if *have != lunule_util::convert::usize_to_u64(want) {
                return Err(format!(
                    "tick {t}: seq {want} missing from every shard (found seq {have})"
                ));
            }
        }
    }
    Ok(())
}

/// Validates the `(t, seq)` stamping discipline the deterministic clock
/// guarantees: ticks never go backwards, the first event of each tick has
/// `seq == 0`, and within a tick `seq` is contiguous. An uninterrupted run
/// satisfies this by construction; a journal stitched together across a
/// crash/restore (`--restore`) must satisfy it too — a duplicate, dropped,
/// or out-of-order record at the stitch point fails here.
fn check_stamps(events: &[lunule_telemetry::EventRecord]) -> Result<(), String> {
    let mut prev: Option<(u64, u64)> = None;
    for rec in events {
        let ok = match prev {
            None => true,
            Some((t, seq)) if rec.t == t => rec.seq == seq + 1,
            Some((t, _)) => rec.t > t && rec.seq == 0,
        };
        if !ok {
            return Err(format!(
                "stamp ({}, {}) after {:?} breaks (t, seq) monotonicity",
                rec.t, rec.seq, prev
            ));
        }
        prev = Some((rec.t, rec.seq));
    }
    Ok(())
}

/// Structural validation of the fault-injection event family: every
/// `FaultInjected` must carry a known kind label, crash/recovery events
/// must pair up (recoveries never exceed crashes), and migration retries
/// never exceed timeouts — a journal violating these was not produced by
/// the simulator's fault path.
fn check_fault_events(events: &[lunule_telemetry::EventRecord]) -> Result<(), String> {
    const KNOWN_KINDS: [&str; 4] = ["crash", "limp", "report_loss", "migration_stall"];
    let (mut injected, mut crashes, mut recoveries) = (0u64, 0u64, 0u64);
    let (mut timeouts, mut retries) = (0u64, 0u64);
    for rec in events {
        match &rec.event {
            Event::FaultInjected { kind, .. } => {
                if !KNOWN_KINDS.contains(&kind.as_str()) {
                    return Err(format!("unknown fault kind '{kind}' in event log"));
                }
                injected += 1;
            }
            Event::RankCrashed { .. } => crashes += 1,
            Event::RankRecovered { .. } => recoveries += 1,
            Event::MigrationTimedOut { .. } => timeouts += 1,
            Event::MigrationRetried { .. } => retries += 1,
            _ => {}
        }
    }
    if crashes > injected {
        return Err(format!(
            "{crashes} rank_crashed events but only {injected} fault_injected"
        ));
    }
    if recoveries > crashes {
        return Err(format!("{recoveries} recoveries exceed {crashes} crashes"));
    }
    if retries > timeouts {
        return Err(format!(
            "{retries} migration retries exceed {timeouts} timeouts"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_group_parses_infix() {
        assert_eq!(shard_group("web.events.jsonl"), ("web".into(), None));
        assert_eq!(
            shard_group("web.shard3.events.jsonl"),
            ("web".into(), Some(3))
        );
        assert_eq!(
            shard_group("a.b.shard10.events.jsonl"),
            ("a.b".into(), Some(10))
        );
        // A non-numeric infix is part of the run name, not a shard index.
        assert_eq!(
            shard_group("web.shardx.events.jsonl"),
            ("web.shardx".into(), None)
        );
    }

    #[test]
    fn interleaving_accepts_a_clean_split() {
        // Tick 0's seqs 0..4 split across two shards; tick 1 lives in one.
        let files = vec![
            (
                "a.shard0.events.jsonl".to_string(),
                vec![(0, 0), (0, 2), (1, 0)],
            ),
            ("a.shard1.events.jsonl".to_string(), vec![(0, 1), (0, 3)]),
        ];
        assert!(check_shard_interleaving(&files).is_ok());
    }

    #[test]
    fn interleaving_rejects_duplicate_stamps() {
        let files = vec![
            ("a.shard0.events.jsonl".to_string(), vec![(0, 0), (0, 1)]),
            ("a.shard1.events.jsonl".to_string(), vec![(0, 1)]),
        ];
        let err = check_shard_interleaving(&files).unwrap_err();
        assert!(err.contains("appears in both"), "{err}");
    }

    #[test]
    fn interleaving_rejects_a_dropped_record() {
        // Seq 1 of tick 0 is in no shard: the merge dropped it. Each file
        // passes its own ordering check — only the union reveals the hole.
        let files = vec![
            ("a.shard0.events.jsonl".to_string(), vec![(0, 0)]),
            ("a.shard1.events.jsonl".to_string(), vec![(0, 2)]),
        ];
        let err = check_shard_interleaving(&files).unwrap_err();
        assert!(err.contains("missing from every shard"), "{err}");
    }

    #[test]
    fn shard_order_check_allows_gaps_but_not_reorders() {
        use lunule_telemetry::{Event, EventRecord};
        let rec = |t, seq| EventRecord {
            t,
            seq,
            event: Event::TickStart,
        };
        assert!(check_stamp_order(&[rec(0, 0), rec(0, 5), rec(2, 1)]).is_ok());
        assert!(check_stamp_order(&[rec(0, 5), rec(0, 0)]).is_err());
        assert!(check_stamp_order(&[rec(1, 0), rec(1, 0)]).is_err());
    }
}
