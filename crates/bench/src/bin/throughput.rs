//! Tick-throughput frontier: ticks/sec vs cluster size at three client
//! population scales, emitted as `THROUGHPUT.json` in the `BENCH.json`
//! entry format so `xtask bench-diff` doubles as the floor check.
//!
//! Each cell builds a megascale-style cohort run (reusing `ScaleSpec` /
//! `build_sim`, so populations match the scale experiments) and measures
//! the wall time of the whole tick loop under the warmup + median-of-K
//! protocol. `ns_per_op` is nanoseconds **per tick** and `ops_per_sec` is
//! the ticks/sec the entry name advertises; a regression verdict from
//! `bench-diff throughput-baseline.json THROUGHPUT.json` therefore means
//! "the simulator's tick rate fell through its floor at this cell".
//!
//! End-to-end cells are noisier than the microbench basket, so the
//! checked-in baseline carries per-bench `max_regress_pct` overrides
//! instead of leaning on the default +15% gate.
//!
//! `--quick` selects the CI grid (smaller populations, shorter horizon);
//! `--out` names either a directory (gets `THROUGHPUT.json` inside) or a
//! `.json` file path, mirroring the `perf` bin.

use lunule_bench::perf::to_bench_json;
use lunule_bench::{build_sim, run_bench, BenchResult, CommonArgs, Protocol, ScaleSpec};
use lunule_sim::ClientModel;
use lunule_telemetry::Telemetry;

/// One grid axis point: a total client population and a label for the
/// entry name (`10k`, `100k`, `1m`).
struct Population {
    label: &'static str,
    clients: u64,
}

/// Cluster sizes swept at every population scale.
const CLUSTER_SIZES: [usize; 3] = [8, 32, 128];

/// The three population scales. Quick mode drops each by 10× so the CI
/// cell stays inside the bench job's wall-clock budget; entry names keep
/// the same labels in both modes, so quick and full runs gate against
/// their own baselines (refreshed with matching flags).
fn populations(quick: bool) -> [Population; 3] {
    if quick {
        [
            Population {
                label: "1k",
                clients: 1_000,
            },
            Population {
                label: "10k",
                clients: 10_000,
            },
            Population {
                label: "100k",
                clients: 100_000,
            },
        ]
    } else {
        [
            Population {
                label: "10k",
                clients: 10_000,
            },
            Population {
                label: "100k",
                clients: 100_000,
            },
            Population {
                label: "1m",
                clients: 1_000_000,
            },
        ]
    }
}

/// The run shape of one grid cell. The namespace is kept fixed across
/// cluster sizes at a given population so the sweep isolates the cost of
/// rank fan-out, not of namespace construction.
fn cell_spec(clients: u64, n_mds: usize, quick: bool, seed: u64) -> ScaleSpec {
    ScaleSpec {
        clients,
        groups: 64,
        dirs: if quick { 256 } else { 1_024 },
        files_per_dir: if quick { 32 } else { 256 },
        n_mds,
        duration_secs: if quick { 4 } else { 16 },
        epoch_secs: if quick { 2 } else { 4 },
        seed,
    }
}

fn main() {
    let args = CommonArgs::parse();
    let protocol = if args.quick {
        Protocol::quick()
    } else {
        Protocol::full()
    };
    let mut results: Vec<BenchResult> = Vec::new();
    for pop in &populations(args.quick) {
        for &n_mds in &CLUSTER_SIZES {
            let spec = cell_spec(pop.clients, n_mds, args.quick, args.seed);
            let name = format!("tp_c{}_m{n_mds}", pop.label);
            let ticks = spec.duration_secs;
            let r = run_bench(&name, protocol, || {
                let sim = build_sim(&spec, ClientModel::Cohort, args.jobs, Telemetry::disabled());
                let res = sim.run();
                assert!(res.total_ops > 0, "throughput cell served no ops");
                ticks
            });
            println!(
                "{:<14} {:>9} clients {:>4} ranks {:>10.0} ticks/sec",
                r.bench, pop.clients, n_mds, r.ops_per_sec
            );
            results.push(r);
        }
    }

    if let Some(out) = &args.out_dir {
        let path = if out.ends_with(".json") {
            std::path::PathBuf::from(out)
        } else {
            if let Err(e) = std::fs::create_dir_all(out) {
                eprintln!("throughput: cannot create {out}: {e}");
                return;
            }
            std::path::Path::new(out).join("THROUGHPUT.json")
        };
        let json = to_bench_json(&results).to_string_pretty();
        match std::fs::write(&path, json + "\n") {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("throughput: cannot write {}: {e}", path.display()),
        }
    }
}
