//! # lunule-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md's experiment index), all built on the runner
//! in this library. Binaries print the human-readable series the paper
//! plots and optionally dump JSON next to them for post-processing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod perf;
pub mod report;
pub mod runner;
pub mod scale;
pub mod sink;

pub use args::CommonArgs;
pub use perf::{run_bench, BenchResult, Protocol};
pub use report::{print_series, write_json, Series};
pub use runner::{default_sim, run_experiment, run_grid, run_grid_jobs, ExperimentConfig};
pub use scale::{build_namespace, build_sim, ScaleSpec};
pub use sink::TelemetrySink;
