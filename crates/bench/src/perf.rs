//! The microbenchmark protocol behind the `perf` bin: fixed work, measured
//! wall time, warmup, median-of-K.
//!
//! Each benchmark is a closure performing a *fixed* amount of work (the
//! same op count every call — never "run for T seconds", which would make
//! the work depend on machine speed) and returning how many operations it
//! performed. The protocol runs it `warmup` times unmeasured (to populate
//! caches and the branch predictor), then `rounds` measured times, and
//! reports the **median** round — robust against one-off scheduling noise
//! in a way a mean is not. Entries serialize to the `BENCH.json` format
//! (`{bench, iters, ns_per_op, ops_per_sec}`) that `xtask bench-diff`
//! compares against the checked-in baseline.

use std::time::Instant;

use lunule_util::{Json, ToJson};

/// Measurement protocol: how many unmeasured warmup rounds and how many
/// measured rounds (the median of which is reported).
#[derive(Clone, Copy, Debug)]
pub struct Protocol {
    /// Unmeasured warmup calls before timing starts.
    pub warmup: usize,
    /// Measured calls; the median per-op time is reported.
    pub rounds: usize,
}

impl Protocol {
    /// CI-friendly protocol: 1 warmup round, median of 3.
    pub fn quick() -> Self {
        Protocol {
            warmup: 1,
            rounds: 3,
        }
    }

    /// Full protocol for local perf work: 2 warmup rounds, median of 5.
    pub fn full() -> Self {
        Protocol {
            warmup: 2,
            rounds: 5,
        }
    }
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol::full()
    }
}

/// One `BENCH.json` entry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (stable across PRs — the diff key).
    pub bench: String,
    /// Operations performed per measured round (fixed work).
    pub iters: u64,
    /// Median wall time per operation, nanoseconds.
    pub ns_per_op: f64,
    /// Throughput implied by the median round.
    pub ops_per_sec: f64,
}

lunule_util::impl_json_struct!(BenchResult {
    bench,
    iters,
    ns_per_op,
    ops_per_sec,
});

/// Runs `work` under `protocol` and reports the median round.
///
/// `work` performs a fixed basket of operations and returns the op count
/// (which must not vary between calls; the protocol asserts it doesn't).
pub fn run_bench<F>(name: &str, protocol: Protocol, mut work: F) -> BenchResult
where
    F: FnMut() -> u64,
{
    for _ in 0..protocol.warmup {
        let _ = work();
    }
    let rounds = protocol.rounds.max(1);
    let mut per_op: Vec<f64> = Vec::with_capacity(rounds);
    let mut iters = 0u64;
    for _ in 0..rounds {
        let start = Instant::now();
        let ops = work();
        let elapsed = start.elapsed();
        assert!(ops > 0, "benchmark {name} performed no work");
        assert!(
            iters == 0 || iters == ops,
            "benchmark {name} must do fixed work (got {ops} after {iters})"
        );
        iters = ops;
        per_op.push(elapsed.as_nanos() as f64 / ops as f64);
    }
    let ns_per_op = median(&mut per_op);
    BenchResult {
        bench: name.to_string(),
        iters,
        ns_per_op,
        ops_per_sec: if ns_per_op > 0.0 {
            1e9 / ns_per_op
        } else {
            f64::INFINITY
        },
    }
}

/// Median of a scratch slice (sorted in place; mean-of-two for even sizes).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Serializes a result set as the top-level `BENCH.json` array.
pub fn to_bench_json(results: &[BenchResult]) -> Json {
    Json::Arr(results.iter().map(ToJson::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_util::FromJson;

    #[test]
    fn protocol_reports_fixed_work_and_sane_rates() {
        let mut calls = 0u32;
        let r = run_bench("spin", Protocol::quick(), || {
            calls += 1;
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            10_000
        });
        // 1 warmup + 3 measured.
        assert_eq!(calls, 4);
        assert_eq!(r.iters, 10_000);
        assert!(r.ns_per_op > 0.0);
        assert!(r.ops_per_sec > 0.0);
        let roundtrip = r.ns_per_op * r.ops_per_sec;
        assert!((roundtrip - 1e9).abs() < 1.0, "{roundtrip}");
    }

    #[test]
    #[should_panic]
    fn variable_work_is_rejected() {
        let mut n = 0u64;
        run_bench("bad", Protocol::quick(), || {
            n += 1;
            n
        });
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        assert_eq!(median(&mut [5.0, 1.0, 100.0]), 5.0);
        assert_eq!(median(&mut [2.0, 4.0]), 3.0);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn bench_json_roundtrips() {
        let results = vec![BenchResult {
            bench: "sim_tick_loop".into(),
            iters: 1234,
            ns_per_op: 56.7,
            ops_per_sec: 1e9 / 56.7,
        }];
        let json = to_bench_json(&results).to_string_pretty();
        let parsed = Json::parse(&json).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        let back = BenchResult::from_json(&arr[0]).unwrap();
        assert_eq!(back.bench, "sim_tick_loop");
        assert_eq!(back.iters, 1234);
    }
}
