//! Output helpers: aligned text series for the terminal and JSON dumps for
//! post-processing.

use lunule_util::ToJson;
use std::io::Write;
use std::path::Path;

/// A named series of (x, y) points — the universal currency of the figure
/// binaries (time → IF, time → IOPS, MDS count → peak throughput, …).
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Legend label (e.g. "Lunule" or "mds.3").
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

lunule_util::impl_json_struct!(Series { name, points });

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Mean of the y values (0 for an empty series).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|(_, y)| y).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Maximum y value.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

/// Prints a set of series as one aligned table: first column x, one column
/// per series. Series may have different lengths; missing cells are blank.
/// X values are taken from the longest series.
pub fn print_series(title: &str, xlabel: &str, series: &[Series]) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "\n# {title}");
    let _ = write!(out, "{:>12}", xlabel);
    for s in series {
        let _ = write!(out, " {:>14}", truncate(&s.name, 14));
    }
    let _ = writeln!(out);
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    let x_src = series
        .iter()
        .max_by_key(|s| s.points.len())
        .map(|s| &s.points);
    for row in 0..rows {
        let x = x_src
            .and_then(|p| p.get(row))
            .map(|(x, _)| *x)
            .unwrap_or(0.0);
        let _ = write!(out, "{x:>12.1}");
        for s in series {
            match s.points.get(row) {
                Some((_, y)) => {
                    let _ = write!(out, " {y:>14.3}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "");
                }
            }
        }
        let _ = writeln!(out);
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Serialises `value` as pretty JSON into `<dir>/<name>.json`, creating the
/// directory if needed. A `None` dir disables the dump.
pub fn write_json<T: ToJson>(dir: &Option<String>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    let path = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(path) {
        eprintln!("warning: cannot create {dir}: {e}");
        return;
    }
    let file = path.join(format!("{name}.json"));
    let json = value.to_json().to_string_pretty();
    if let Err(e) = std::fs::write(&file, json) {
        eprintln!("warning: cannot write {}: {e}", file.display());
    } else {
        eprintln!("wrote {}", file.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stats() {
        let s = Series::new("a", vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s.mean_y(), 2.0);
        assert_eq!(s.max_y(), 3.0);
        assert_eq!(Series::new("e", vec![]).mean_y(), 0.0);
    }

    #[test]
    fn json_dump_roundtrip() {
        let dir = std::env::temp_dir().join("lunule_bench_test");
        let dir_s = Some(dir.to_string_lossy().to_string());
        let s = vec![Series::new("x", vec![(1.0, 2.0)])];
        write_json(&dir_s, "unit_test_series", &s);
        let content =
            std::fs::read_to_string(dir.join("unit_test_series.json")).expect("file written");
        assert!(content.contains("\"name\": \"x\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn none_dir_is_noop() {
        write_json(&None, "never", &42);
    }
}
