//! Experiment runner: builds a workload, wires it to a balancer and a
//! simulation, and runs grids of such combinations in parallel.

use lunule_core::{make_balancer, BalancerKind};
use lunule_sim::{RunResult, SimConfig, Simulation};
use lunule_util::WorkerPool;
use lunule_workloads::WorkloadSpec;

/// One experiment cell: a workload, a balancer, and simulator settings.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// The balancing policy.
    pub balancer: BalancerKind,
    /// Simulator parameters.
    pub sim: SimConfig,
}

/// The simulator settings the experiments default to. MDS capacity is
/// scaled down from the testbed's (absolute IOPS are not comparable anyway)
/// so that full runs complete in seconds of wall time; what matters is that
/// 100 clients at `client_rate` comfortably saturate a single MDS — the
/// condition that makes balancing matter.
pub fn default_sim() -> SimConfig {
    SimConfig {
        n_mds: 5,
        mds_capacity: 500.0,
        epoch_secs: 10,
        duration_secs: 1_800,
        stop_when_done: true,
        migration_bw: 5_000.0,
        migration_freeze_secs: 1,
        migration_op_cost: 0.02,
        client_rate: 50.0,
        mds_capacities: Vec::new(),
        client_cache_cap: 256,
        mds_memory_inodes: 0,
        memory_thrash_factor: 0.25,
        data_path: None,
        seed: 42,
        ..SimConfig::default()
    }
}

/// Runs one experiment cell to completion.
pub fn run_experiment(cfg: &ExperimentConfig) -> RunResult {
    let (ns, streams) = cfg.workload.build();
    let balancer = make_balancer(cfg.balancer, cfg.sim.mds_capacity);
    Simulation::new(cfg.sim.clone(), ns, balancer, streams).run()
}

/// Runs a grid of experiment cells on the sanctioned worker pool with
/// auto-sized parallelism. Each cell is single-threaded and deterministic,
/// so the grid's results are independent of scheduling and worker count.
pub fn run_grid(cells: &[ExperimentConfig]) -> Vec<RunResult> {
    run_grid_jobs(cells, 0)
}

/// [`run_grid`] with an explicit worker count (`0` = auto); this is what
/// the experiment binaries call with their `--jobs` flag.
pub fn run_grid_jobs(cells: &[ExperimentConfig], jobs: usize) -> Vec<RunResult> {
    WorkerPool::new(jobs).map(cells, |_, cell| run_experiment(cell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_workloads::WorkloadKind;

    fn tiny_cell(kind: WorkloadKind, balancer: BalancerKind) -> ExperimentConfig {
        ExperimentConfig {
            workload: WorkloadSpec {
                kind,
                clients: 4,
                scale: 0.002,
                seed: 1,
            },
            balancer,
            sim: SimConfig {
                duration_secs: 120,
                ..default_sim()
            },
        }
    }

    #[test]
    fn single_cell_runs() {
        let r = run_experiment(&tiny_cell(WorkloadKind::ZipfRead, BalancerKind::Lunule));
        assert!(r.total_ops > 0);
        assert!(!r.epochs.is_empty());
    }

    #[test]
    fn grid_matches_individual_runs() {
        let cells = vec![
            tiny_cell(WorkloadKind::ZipfRead, BalancerKind::Vanilla),
            tiny_cell(WorkloadKind::ZipfRead, BalancerKind::Lunule),
        ];
        let grid = run_grid(&cells);
        let solo: Vec<_> = cells.iter().map(run_experiment).collect();
        for (g, s) in grid.iter().zip(&solo) {
            assert_eq!(g.total_ops, s.total_ops);
            assert_eq!(g.per_mds_requests_total, s.per_mds_requests_total);
        }
    }

    #[test]
    fn grid_results_are_independent_of_worker_count() {
        let cells = vec![
            tiny_cell(WorkloadKind::ZipfRead, BalancerKind::Vanilla),
            tiny_cell(WorkloadKind::ZipfRead, BalancerKind::Lunule),
            tiny_cell(WorkloadKind::ZipfRead, BalancerKind::GreedySpill),
        ];
        let one = run_grid_jobs(&cells, 1);
        let four = run_grid_jobs(&cells, 4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.total_ops, b.total_ops);
            assert_eq!(a.per_mds_requests_total, b.per_mds_requests_total);
            assert_eq!(a.epochs.len(), b.epochs.len());
        }
    }
}
