//! Megascale run construction: million-client populations over
//! multi-million-inode namespaces, built through the cohort client model.
//!
//! The legacy one-struct-per-client engine tops out around 10^5 clients;
//! the cohort engine carries a population as a handful of flows, so the
//! only per-client cost left is arithmetic on counts. This module builds
//! the namespace and the grouped streams the scale experiments
//! (`megascale`, fig13's scale frontier) share, so their populations are
//! identical and their journals comparable.

use lunule_core::{make_balancer, BalancerKind};
use lunule_namespace::{InodeId, Namespace};
use lunule_sim::{ClientModel, FixedStream, OpStream, SimConfig, Simulation};
use lunule_telemetry::Telemetry;

/// Shape of one megascale run.
#[derive(Clone, Copy, Debug)]
pub struct ScaleSpec {
    /// Total client population (spread over [`ScaleSpec::groups`] cohorts).
    pub clients: u64,
    /// Number of identical-stream groups the population is split into.
    pub groups: usize,
    /// Directories under the root.
    pub dirs: usize,
    /// Files created in each directory.
    pub files_per_dir: usize,
    /// MDS ranks.
    pub n_mds: usize,
    /// Simulated duration, seconds.
    pub duration_secs: u64,
    /// Epoch length, seconds.
    pub epoch_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl ScaleSpec {
    /// The CI smoke shape: 1M clients over a 10^7-inode namespace on 128
    /// ranks, a few ticks — enough to exercise splits, shard fan-out, and
    /// an epoch close, small enough for a CI wall-clock budget. The group
    /// count sits above the engine's serial-resolve cutoff so a multi-job
    /// run actually fans route resolution out over the worker pool — the
    /// jobs-1-vs-N journal comparison would otherwise compare two serial
    /// walks.
    pub fn quick() -> ScaleSpec {
        ScaleSpec {
            clients: 1_000_000,
            groups: 512,
            dirs: 2_500,
            files_per_dir: 4_000,
            n_mds: 128,
            duration_secs: 8,
            epoch_secs: 4,
            seed: 42,
        }
    }

    /// The full shape: same population, a longer horizon so the balancer's
    /// migrations show up in the numbers.
    pub fn full() -> ScaleSpec {
        ScaleSpec {
            duration_secs: 60,
            epoch_secs: 10,
            ..ScaleSpec::quick()
        }
    }

    /// Total inodes the namespace will hold (root + dirs + files).
    pub fn n_inodes(&self) -> usize {
        1 + self.dirs + self.dirs * self.files_per_dir
    }
}

/// Number of read targets each group's stream cycles over. Kept well above
/// the ops a member can issue in a short run, far below the namespace — a
/// full per-file list would be tens of millions of ids nobody reads.
const TARGETS_PER_GROUP: usize = 512;

/// Builds the namespace and one read-target list per group. Group `g`
/// owns the directories `d` with `d % groups == g` and reads one file from
/// each in round-robin order, so groups touch disjoint directory sets and
/// the balancer sees a spread workload. A spec with fewer directories than
/// groups clamps to one group per directory — every group must own at
/// least one target or its members would have nothing to read.
pub fn build_namespace(spec: &ScaleSpec) -> (Namespace, Vec<Vec<InodeId>>) {
    let groups = spec.groups.min(spec.dirs).max(1);
    let mut ns = Namespace::new();
    let mut targets: Vec<Vec<InodeId>> = vec![Vec::new(); groups];
    for d in 0..spec.dirs {
        let dir = ns.mkdir_total(InodeId::ROOT, &format!("d{d}"));
        for f in 0..spec.files_per_dir {
            let id = ns.create_file_total(dir, &format!("f{f}"), 4_096);
            let bucket = &mut targets[d % groups];
            if f < 8 && bucket.len() < TARGETS_PER_GROUP {
                bucket.push(id);
            }
        }
    }
    (ns, targets)
}

/// Builds a megascale simulation: namespace per [`build_namespace`], one
/// cohort group per target list, population split evenly with the
/// remainder on the last group, Lunule balancing.
pub fn build_sim(
    spec: &ScaleSpec,
    model: ClientModel,
    jobs: usize,
    telemetry: Telemetry,
) -> Simulation {
    let (ns, targets) = build_namespace(spec);
    let cfg = SimConfig {
        n_mds: spec.n_mds,
        mds_capacity: 500.0,
        epoch_secs: spec.epoch_secs,
        duration_secs: spec.duration_secs,
        stop_when_done: false,
        migration_bw: 50_000.0,
        migration_freeze_secs: 1,
        migration_op_cost: 0.02,
        client_rate: 5.0,
        client_cache_cap: 256,
        seed: spec.seed,
        client_model: model,
        jobs,
        telemetry,
        ..SimConfig::default()
    };
    let n_groups = targets.len();
    let per_group = spec.clients / n_groups as u64;
    let groups: Vec<(Box<dyn OpStream>, u64)> = targets
        .into_iter()
        .enumerate()
        .map(|(g, ids)| {
            let count = if g + 1 == n_groups {
                spec.clients - per_group * (n_groups as u64 - 1)
            } else {
                per_group
            };
            (Box::new(FixedStream::new(ids)) as Box<dyn OpStream>, count)
        })
        .collect();
    let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
    Simulation::new_grouped(cfg, ns, balancer, groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleSpec {
        ScaleSpec {
            clients: 1_000,
            groups: 4,
            dirs: 8,
            files_per_dir: 16,
            n_mds: 4,
            duration_secs: 4,
            epoch_secs: 2,
            seed: 1,
        }
    }

    #[test]
    fn namespace_matches_spec() {
        let spec = tiny();
        let (ns, targets) = build_namespace(&spec);
        assert_eq!(ns.len(), spec.n_inodes());
        assert_eq!(targets.len(), spec.groups);
        assert!(targets.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn population_splits_evenly_with_remainder_on_last() {
        let spec = ScaleSpec {
            clients: 1_001,
            ..tiny()
        };
        let sim = build_sim(&spec, ClientModel::Cohort, 1, Telemetry::disabled());
        assert_eq!(sim.n_clients(), 1_001);
        assert_eq!(sim.n_flows(), spec.groups, "one cohort per group");
    }

    #[test]
    fn groups_clamp_to_directory_count() {
        // More groups than directories: one group per directory, no empty
        // target lists, full population still accounted for.
        let spec = ScaleSpec {
            groups: 32,
            dirs: 8,
            ..tiny()
        };
        let (_, targets) = build_namespace(&spec);
        assert_eq!(targets.len(), 8);
        assert!(targets.iter().all(|t| !t.is_empty()));
        let sim = build_sim(&spec, ClientModel::Cohort, 1, Telemetry::disabled());
        assert_eq!(sim.n_clients(), 1_000, "tiny() population, all placed");
        assert_eq!(sim.n_flows(), 8);
    }

    #[test]
    fn tiny_run_completes_and_serves_ops() {
        let spec = tiny();
        let sim = build_sim(&spec, ClientModel::Cohort, 2, Telemetry::disabled());
        let r = sim.run();
        assert!(r.total_ops > 0);
        assert!(!r.epochs.is_empty());
    }
}
