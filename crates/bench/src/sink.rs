//! Telemetry export plumbing for the experiment binaries.
//!
//! A [`TelemetrySink`] is the bridge between `--telemetry-out <dir>` and
//! the [`lunule_telemetry::Telemetry`] handles the simulator records into:
//! binaries mint one labelled handle per run, thread it through
//! `SimConfig`, and flush everything at the end. Without the flag every
//! minted handle is [`Telemetry::disabled`], so instrumentation stays a
//! single branch per site.

use lunule_telemetry::Telemetry;
use std::path::{Path, PathBuf};

/// Collects labelled telemetry handles and exports them on flush.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    dir: Option<PathBuf>,
    handles: Vec<(String, Telemetry)>,
}

impl TelemetrySink {
    /// Builds a sink from the parsed `--telemetry-out` flag.
    pub fn from_args(args: &crate::CommonArgs) -> Self {
        TelemetrySink {
            dir: args.telemetry_out.as_ref().map(PathBuf::from),
            handles: Vec::new(),
        }
    }

    /// A sink exporting into `dir`.
    pub fn to_dir(dir: impl AsRef<Path>) -> Self {
        TelemetrySink {
            dir: Some(dir.as_ref().to_path_buf()),
            handles: Vec::new(),
        }
    }

    /// True when exports were requested.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Mints a handle for one run. Enabled (and remembered for
    /// [`TelemetrySink::flush`]) when an export directory is set, disabled
    /// otherwise. Labels become file-name stems, so they are sanitised to
    /// `[a-z0-9_-]`.
    pub fn handle(&mut self, label: &str) -> Telemetry {
        if self.dir.is_none() {
            return Telemetry::disabled();
        }
        let tel = Telemetry::enabled();
        self.handles.push((sanitize(label), tel.clone()));
        tel
    }

    /// Exports every labelled handle into the sink directory, returning the
    /// files written (three per handle: events JSONL, metrics CSV, Chrome
    /// trace JSON).
    pub fn flush(&self) -> std::io::Result<Vec<PathBuf>> {
        let Some(dir) = &self.dir else {
            return Ok(Vec::new());
        };
        let mut written = Vec::new();
        for (label, tel) in &self.handles {
            written.extend(tel.export(dir, label)?);
        }
        Ok(written)
    }

    /// Flushes and prints a one-line summary; errors become a warning on
    /// stderr instead of aborting the experiment that already ran.
    pub fn flush_and_report(&self) {
        if !self.is_enabled() {
            return;
        }
        match self.flush() {
            Ok(files) => println!(
                "telemetry: wrote {} file(s) to {}",
                files.len(),
                self.dir.as_deref().unwrap_or(Path::new(".")).display()
            ),
            Err(e) => eprintln!("telemetry: export failed: {e}"),
        }
    }
}

/// Lowercases `label` and maps anything outside `[a-z0-9_-]` to `-` so the
/// label is safe as a file-name stem on every platform.
fn sanitize(label: &str) -> String {
    label
        .to_lowercase()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_mints_disabled_handles() {
        let mut sink = TelemetrySink::from_args(&crate::CommonArgs::default());
        assert!(!sink.is_enabled());
        assert!(!sink.handle("run").is_enabled());
        assert!(sink.flush().unwrap().is_empty());
    }

    #[test]
    fn enabled_sink_exports_labelled_files() {
        let dir = std::env::temp_dir().join(format!("lunule-sink-{}", std::process::id()));
        let mut sink = TelemetrySink::to_dir(&dir);
        assert!(sink.is_enabled());
        let tel = sink.handle("Fig 6 / zipf");
        assert!(tel.is_enabled());
        tel.set_clock(0);
        tel.counter_add("ops", 1);
        let files = sink.flush().unwrap();
        assert_eq!(files.len(), 3);
        for f in &files {
            let name = f.file_name().unwrap().to_string_lossy().into_owned();
            assert!(name.starts_with("fig-6---zipf."), "sanitised stem: {name}");
            assert!(f.is_file());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sanitize_keeps_safe_chars() {
        assert_eq!(sanitize("Fig6_mds-0.1"), "fig6_mds-0-1");
    }
}
