//! The determinism contract of the parallel experiment engine: every
//! driver that fans work out over the worker pool must produce results
//! that are byte-identical to a sequential run — pool width may only
//! change wall time, never output.
//!
//! Two layers are covered here: the `sweep` binary end-to-end (transcript
//! and JSON dump compared across `--jobs 1` / `--jobs 4`), and seeded
//! full simulations with telemetry journals run through the pool at
//! several widths.

use std::process::Command;

use lunule_core::{make_balancer, BalancerKind};
use lunule_sim::{SimConfig, Simulation};
use lunule_telemetry::Telemetry;
use lunule_util::WorkerPool;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

/// Runs the `sweep` binary with the given jobs width into a fresh temp
/// directory, returning `(stdout, sweep.json bytes)`.
fn run_sweep(jobs: usize, tag: &str) -> (Vec<u8>, Vec<u8>) {
    let out_dir = std::env::temp_dir().join(format!(
        "lunule-par-det-{tag}-{}-j{jobs}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&out_dir);
    let output = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args([
            "--quick",
            "--scale",
            "0.004",
            "--clients",
            "6",
            "--seed",
            "7",
            "--jobs",
            &jobs.to_string(),
            "--out",
        ])
        .arg(&out_dir)
        .output()
        .expect("sweep binary should launch");
    assert!(
        output.status.success(),
        "sweep --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json = std::fs::read(out_dir.join("sweep.json")).expect("sweep.json should be written");
    let _ = std::fs::remove_dir_all(&out_dir);
    (output.stdout, json)
}

#[test]
fn sweep_output_is_byte_identical_across_pool_widths() {
    let (stdout_seq, json_seq) = run_sweep(1, "seq");
    let (stdout_par, json_par) = run_sweep(4, "par");
    assert!(
        stdout_seq == stdout_par,
        "sweep transcript must not depend on --jobs:\n--- jobs=1 ---\n{}\n--- jobs=4 ---\n{}",
        String::from_utf8_lossy(&stdout_seq),
        String::from_utf8_lossy(&stdout_par)
    );
    assert!(
        json_seq == json_par,
        "sweep.json must be byte-identical across pool widths"
    );
    assert!(!json_seq.is_empty());
}

/// A compact fingerprint of one simulation run: op totals, migration
/// counters, and the telemetry journal (event-kind counts in order).
fn soak_fingerprint(seed: u64) -> String {
    const N_MDS: usize = 4;
    const DURATION: u64 = 120;
    let (ns, streams) = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 6,
        scale: 0.004,
        seed: seed ^ 0x5EED,
    }
    .build();
    let cfg = SimConfig {
        n_mds: N_MDS,
        mds_capacity: 100.0,
        epoch_secs: 4,
        duration_secs: DURATION,
        stop_when_done: false,
        migration_bw: 25.0,
        client_rate: 30.0,
        seed,
        telemetry: Telemetry::enabled(),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, cfg.mds_capacity),
        streams,
    );
    sim.run_until(DURATION);
    let tel = sim.telemetry().clone();
    let c = sim.migration_counters();
    let r = sim.finish();
    format!(
        "seed={seed} ops={} migrated={} started={} committed={} events:start={} commit={} abandon={}",
        r.total_ops,
        r.migrated_inodes(),
        c.started_jobs,
        c.completed_jobs,
        tel.count_kind("migration_start"),
        tel.count_kind("migration_commit"),
        tel.count_kind("migration_abandon"),
    )
}

#[test]
fn seeded_simulations_are_identical_at_any_pool_width() {
    const CASES: usize = 6;
    let fingerprints = |jobs: usize| -> Vec<String> {
        WorkerPool::new(jobs).map_indices(CASES, |i| soak_fingerprint(0xD0_0000 + i as u64))
    };
    let seq = fingerprints(1);
    let par4 = fingerprints(4);
    let par3 = fingerprints(3);
    assert_eq!(seq, par4, "jobs=4 must reproduce the sequential run");
    assert_eq!(seq, par3, "jobs=3 must reproduce the sequential run");
    // And the fingerprints are real (simulations actually ran).
    assert!(seq.iter().all(|f| !f.contains("ops=0 ")));
}
