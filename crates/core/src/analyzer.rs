//! The Pattern Analyzer: cutting windows, α/β locality factors, and the
//! migration index (`mIndex`) — Section 3.3 of the paper.
//!
//! Instead of the heat counter, Lunule assigns every subtree a *migration
//! index* predicting its future load:
//!
//! ```text
//! mIndex = α · l_t + β · l_s        (Eq. 4)
//! ```
//!
//! where, over the most recent *cutting windows* (we use one window per
//! epoch):
//! * `α` — temporal-locality inclination: the fraction of visits that were
//!   *recurrent* (the inode had already been visited in a recent window);
//! * `l_t` — the number of visits concentrated on the subtree;
//! * `β` — spatial-locality inclination: the ratio of still-unvisited inodes
//!   to recent visits (large when most of the subtree has never been
//!   touched, i.e. a scan has not reached it or is mid-flight);
//! * `l_s` — the number of *first* visits, plus probabilistic bumps from
//!   sibling subtrees (scans move between siblings, so a heavily
//!   first-visited directory predicts load on its neighbours).
//!
//! For a Zipfian workload α→1 and mIndex ≈ recent visit counts (classic
//! hotness); for a scan workload α→0, β ≫ 1 and mIndex ≈ the number of
//! unvisited inodes — exactly the "ship the unread part of the dataset
//! elsewhere" behaviour the paper credits for the CNN/NLP wins.

use lunule_namespace::{InodeId, Namespace};
use lunule_util::convert::{
    u32_to_usize, u64_to_f64, u64_to_usize, usize_to_f64, usize_to_u32, usize_to_u64,
};
use lunule_util::intern::PagedMap;

/// Number of cutting windows the per-inode visit mask can remember.
const MASK_BITS: u32 = 64;

/// Configuration of the pattern analyzer.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzerConfig {
    /// `N`: number of recent cutting windows aggregated into `l_t`, `l_s`,
    /// α and β.
    pub recent_windows: usize,
    /// How many windows back a repeat visit still counts as *recurrent*.
    pub recurrence_lookback: u32,
    /// Probability of propagating a first visit to a sibling subtree's
    /// `l_s` (the paper's "select one of its sibling subtrees with a certain
    /// probability").
    pub sibling_probability: f64,
    /// RNG seed for the sibling propagation choice.
    pub seed: u64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            recent_windows: 4,
            recurrence_lookback: 8,
            sibling_probability: 0.5,
            seed: 0x5EED_1A7E,
        }
    }
}

/// Per-inode visit state: a lazily shifted window bitmask.
///
/// Bit 0 of `mask` is "visited in window `last_window`", bit `k` is "visited
/// `k` windows before that". Shifting happens on touch, so idle inodes cost
/// nothing per epoch — the paper's "boolean queue of n length" per inode,
/// packed into a word.
#[derive(Clone, Copy, Debug, Default)]
struct InodeVisits {
    last_window: u64,
    mask: u64,
    ever_visited: bool,
}

/// Per-window counters of one directory.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct WindowCounters {
    visits: u32,
    recurrent: u32,
    first_visits: u32,
    sibling_bumps: u32,
}

/// Sliding per-directory statistics over the last `N` windows, stored as a
/// struct-of-arrays slab: one flat ring arena (stride `stride` per
/// directory) plus parallel scalar columns, all indexed by a stable dense
/// slot resolved through a [`PagedMap`] from the inode index. The hot
/// per-access path is two O(1) array probes instead of a `BTreeMap` walk,
/// and the window counters of a directory sit contiguously in one or two
/// cache lines.
///
/// Slots are allocated once per directory and never move — the analyzer
/// has no eviction — so the slab needs no compaction pass.
#[derive(Clone, Debug)]
struct DirSlab {
    /// Ring length per directory (`cfg.recent_windows`).
    stride: usize,
    /// Slot → directory id.
    ids: Vec<InodeId>,
    /// Flat ring arena; directory `s` owns `rings[s*stride .. (s+1)*stride]`
    /// and `rings[s*stride + cursor[s]]` is its current window.
    rings: Vec<WindowCounters>,
    /// Slot → position of the current window inside the directory's ring.
    cursor: Vec<u32>,
    /// Slot → window index the cursor corresponds to.
    window: Vec<u64>,
    /// Slot → direct children when first observed, plus creates.
    total_inodes: Vec<u64>,
    /// Slot → how many of those have ever been visited.
    visited_ever: Vec<u64>,
    /// Inode index → slot.
    index: PagedMap,
}

impl DirSlab {
    fn new(stride: usize) -> Self {
        DirSlab {
            stride,
            ids: Vec::new(),
            rings: Vec::new(),
            cursor: Vec::new(),
            window: Vec::new(),
            total_inodes: Vec::new(),
            visited_ever: Vec::new(),
            index: PagedMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn slot_of(&self, dir: InodeId) -> Option<usize> {
        self.index.get(dir.index()).map(u32_to_usize)
    }

    /// The slot for `dir`, allocating one (zeroed ring, `total_inodes` from
    /// the closure — only evaluated on insertion) on first sight.
    fn slot_or_insert(
        &mut self,
        dir: InodeId,
        window: u64,
        total_inodes: impl FnOnce() -> u64,
    ) -> usize {
        if let Some(s) = self.index.get(dir.index()) {
            return u32_to_usize(s);
        }
        let slot = self.ids.len();
        self.ids.push(dir);
        self.rings
            .resize(self.rings.len() + self.stride, WindowCounters::default());
        self.cursor.push(0);
        self.window.push(window);
        self.total_inodes.push(total_inodes());
        self.visited_ever.push(0);
        self.index.set(dir.index(), usize_to_u32(slot));
        slot
    }

    /// Rotates `slot`'s ring forward to `window`, zeroing skipped slots.
    fn roll_to(&mut self, slot: usize, window: u64) {
        let gap = window.saturating_sub(self.window[slot]);
        if gap == 0 {
            return;
        }
        let base = slot * self.stride;
        let mut c = u32_to_usize(self.cursor[slot]);
        for _ in 0..gap.min(usize_to_u64(self.stride)) {
            c = (c + 1) % self.stride;
            self.rings[base + c] = WindowCounters::default();
        }
        self.cursor[slot] = usize_to_u32(c);
        self.window[slot] = window;
    }

    /// The current-window counters of `slot`.
    fn current_mut(&mut self, slot: usize) -> &mut WindowCounters {
        let at = slot * self.stride + u32_to_usize(self.cursor[slot]);
        &mut self.rings[at]
    }

    /// Sums the counters of `slot`'s ring positions still inside the window
    /// span *as of* `current` (the analyzer's window). A directory idle
    /// since its last touch has `window[slot] < current`; its older
    /// positions age out without the ring being rolled, so its statistics
    /// decay to zero naturally.
    fn sums_at(&self, slot: usize, current: u64) -> (u64, u64, u64) {
        let n = usize_to_u64(self.stride);
        let base_age = current.saturating_sub(self.window[slot]);
        let base = slot * self.stride;
        let cursor = u32_to_usize(self.cursor[slot]);
        let mut visits = 0u64;
        let mut recurrent = 0u64;
        let mut spatial = 0u64;
        for back in 0..n {
            if base_age + back >= n {
                break;
            }
            let idx = (cursor + self.stride - u64_to_usize(back)) % self.stride;
            let w = &self.rings[base + idx];
            visits += u64::from(w.visits);
            recurrent += u64::from(w.recurrent);
            spatial += u64::from(w.first_visits + w.sibling_bumps);
        }
        (visits, recurrent, spatial)
    }
}

/// The locality factors and migration index of one directory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationIndex {
    /// Temporal-locality inclination in `[0, 1]`.
    pub alpha: f64,
    /// Spatial-locality inclination (unbounded above).
    pub beta: f64,
    /// Predicted temporal load: visits over the recent windows.
    pub l_t: f64,
    /// Predicted spatial load: first visits + sibling bumps.
    pub l_s: f64,
}

impl MigrationIndex {
    /// Eq. 4: `mIndex = α·l_t + β·l_s`, with the spatial term additionally
    /// weighted by the *non-temporal inclination* `(1 - α)`.
    ///
    /// The paper introduces α and β as "impact factors … indicating the
    /// inclination of the recent workloads on subtrees to either of the two
    /// access patterns". β alone is a ratio of unvisited inodes to recent
    /// visits and can exceed 1 by a large margin *during the warm-up of a
    /// temporal workload* (most files still unvisited, few visits yet) —
    /// which would let the spatial term dominate exactly where it predicts
    /// nothing. Scaling it by `1 - α` makes the two terms a proper
    /// arbitration: pure scans (α = 0) keep the full unvisited-remainder
    /// signal, pure re-access patterns (α → 1) reduce to recent-visit
    /// hotness.
    pub fn value(&self) -> f64 {
        self.alpha * self.l_t + (1.0 - self.alpha) * self.beta * self.l_s
    }
}

/// The Pattern Analyzer deployed on every MDS (here: one per cluster, keyed
/// by directory — equivalent because directories never share MDSs).
#[derive(Clone, Debug)]
pub struct PatternAnalyzer {
    cfg: AnalyzerConfig,
    window: u64,
    inodes: Vec<InodeVisits>,
    dirs: DirSlab,
    rng_state: u64,
}

impl PatternAnalyzer {
    /// Creates an analyzer starting at window 0.
    pub fn new(cfg: AnalyzerConfig) -> Self {
        assert!(cfg.recent_windows >= 1, "need at least one cutting window");
        assert!(
            cfg.recurrence_lookback >= 1 && cfg.recurrence_lookback < MASK_BITS,
            "recurrence lookback must fit the visit mask"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.sibling_probability),
            "sibling probability must be in [0, 1]"
        );
        PatternAnalyzer {
            cfg,
            window: 0,
            inodes: Vec::new(),
            dirs: DirSlab::new(cfg.recent_windows),
            rng_state: cfg.seed | 1,
        }
    }

    /// Current cutting-window index.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Advances to the next cutting window (call once per epoch).
    pub fn advance_window(&mut self) {
        self.window += 1;
    }

    /// xorshift64* — cheap deterministic coin for sibling propagation.
    fn next_coin(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        // as-ok: top 53 bits of a u64 are exact in f64; 2^53 likewise
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn inode_state(&mut self, ino: InodeId) -> &mut InodeVisits {
        let idx = ino.index();
        if idx >= self.inodes.len() {
            self.inodes.resize_with(idx + 1, InodeVisits::default);
        }
        &mut self.inodes[idx]
    }

    /// The slab slot of `dir`, allocating on first sight (population
    /// snapshotted from the namespace at that moment).
    fn dir_slot(&mut self, ns: &Namespace, dir: InodeId) -> usize {
        let window = self.window;
        self.dirs
            .slot_or_insert(dir, window, || usize_to_u64(ns.inode(dir).children().len()))
    }

    /// Records one metadata access to `ino`. `is_create` marks a freshly
    /// created inode (it grows its directory's total and counts as a first
    /// visit by definition).
    pub fn record_access(&mut self, ns: &Namespace, ino: InodeId, is_create: bool) {
        self.record_access_inner(ns, ino, is_create);
    }

    /// Records `n` identical accesses to `ino` in one call, bit-identically
    /// to `n` sequential [`PatternAnalyzer::record_access`] calls.
    ///
    /// Exactness argument: after the first access of a window, the inode's
    /// visit mask has bit 0 set, so repeats in the same window see the same
    /// `recurrent` verdict (the mask shifted right by one is unchanged by
    /// setting bit 0), are never `first_ever` (no sibling coin is drawn, so
    /// the RNG position matches the sequential run), and only bump the
    /// directory's integer visit counters — which add associatively.
    pub fn record_access_n(&mut self, ns: &Namespace, ino: InodeId, is_create: bool, n: u64) {
        if n == 0 {
            return;
        }
        let recurrent = self.record_access_inner(ns, ino, is_create);
        if n == 1 {
            return;
        }
        debug_assert!(
            !is_create,
            "batched accesses are reads; creates touch distinct inodes"
        );
        let window = self.window;
        let dir = ns.inode(ino).parent().unwrap_or(ino);
        let slot = self.dir_slot(ns, dir);
        self.dirs.roll_to(slot, window);
        let cur = self.dirs.current_mut(slot);
        // Window counters are u32; a cohort run is bounded by the client
        // count, which the simulator caps far below u32::MAX. Saturate
        // rather than abort if that ever stops holding.
        let extra = u32::try_from(n - 1).unwrap_or_else(|_| {
            debug_assert!(false, "batched access count exceeds u32");
            u32::MAX
        });
        cur.visits += extra;
        if recurrent {
            cur.recurrent += extra;
        }
    }

    /// Shared body of the single- and batched-access recorders; returns
    /// whether this access counted as recurrent (repeats within the same
    /// window share the verdict).
    fn record_access_inner(&mut self, ns: &Namespace, ino: InodeId, is_create: bool) -> bool {
        let window = self.window;
        let lookback = self.cfg.recurrence_lookback;

        // -- per-inode visit mask ------------------------------------------
        let st = self.inode_state(ino);
        let gap = window - st.last_window;
        if gap > 0 {
            st.mask = if gap >= u64::from(MASK_BITS) {
                0
            } else {
                st.mask << gap
            };
            st.last_window = window;
        }
        let already_this_window = st.mask & 1 != 0;
        let recurrent = (st.mask >> 1) & ((1u64 << lookback) - 1) != 0;
        let first_ever = !st.ever_visited;
        st.mask |= 1;
        st.ever_visited = true;

        // -- per-directory window counters ---------------------------------
        let dir = ns.inode(ino).parent().unwrap_or(ino);
        // A create grows the directory's population. Note: `dir_slot`
        // snapshots children().len() on first sight, which at that moment
        // already includes this create; only bump for dirs seen before.
        let known_dir = self.dirs.slot_of(dir).is_some();
        let slot = self.dir_slot(ns, dir);
        self.dirs.roll_to(slot, window);
        if is_create && known_dir {
            self.dirs.total_inodes[slot] += 1;
        }
        {
            let cur = self.dirs.current_mut(slot);
            cur.visits += 1;
            if recurrent {
                cur.recurrent += 1;
            }
            if first_ever {
                cur.first_visits += 1;
            }
        }
        if first_ever {
            self.dirs.visited_ever[slot] += 1;
        }
        let _ = already_this_window; // recurrence is cross-window only

        // -- sibling propagation -------------------------------------------
        if first_ever && self.cfg.sibling_probability > 0.0 {
            let coin = self.next_coin();
            if coin < self.cfg.sibling_probability {
                if let Some(sib) = next_sibling_dir(ns, dir) {
                    let slot = self.dir_slot(ns, sib);
                    self.dirs.roll_to(slot, window);
                    self.dirs.current_mut(slot).sibling_bumps += 1;
                }
            }
        }
        recurrent
    }

    /// The locality factors of `dir` over the recent windows, or `None` if
    /// the directory has never been observed.
    ///
    /// `l_t` and `l_s` are normalised to *per-window* rates so the
    /// resulting mIndex is directly comparable with the per-epoch request
    /// amounts Algorithm 1 hands to the subtree selector (one cutting
    /// window per epoch).
    pub fn index_of(&self, dir: InodeId) -> Option<MigrationIndex> {
        let slot = self.dirs.slot_of(dir)?;
        let (visits, recurrent, spatial) = self.dirs.sums_at(slot, self.window);
        let alpha = if visits == 0 {
            0.0
        } else {
            u64_to_f64(recurrent) / u64_to_f64(visits)
        };
        let unvisited = self.dirs.total_inodes[slot].saturating_sub(self.dirs.visited_ever[slot]);
        let beta = u64_to_f64(unvisited) / u64_to_f64(visits.max(1));
        let n = usize_to_f64(self.cfg.recent_windows);
        Some(MigrationIndex {
            alpha,
            beta,
            l_t: u64_to_f64(visits) / n,
            l_s: u64_to_f64(spatial) / n,
        })
    }

    /// `mIndex` of `dir` (0 for never-observed directories) — the local load
    /// metric fed into candidate aggregation.
    pub fn mindex_of(&self, dir: InodeId) -> f64 {
        self.index_of(dir).map(|m| m.value()).unwrap_or(0.0)
    }

    /// Accounts for the removal of `ino` from its directory: the population
    /// shrinks, and if the inode had ever been visited the visited counter
    /// shrinks with it so the unvisited balance stays correct.
    pub fn record_remove(&mut self, ns: &Namespace, ino: InodeId) {
        let ever = self
            .inodes
            .get(ino.index())
            .map(|s| s.ever_visited)
            .unwrap_or(false);
        let dir = ns.inode(ino).parent().unwrap_or(ino);
        if let Some(slot) = self.dirs.slot_of(dir) {
            self.dirs.total_inodes[slot] = self.dirs.total_inodes[slot].saturating_sub(1);
            if ever {
                self.dirs.visited_ever[slot] = self.dirs.visited_ever[slot].saturating_sub(1);
            }
        }
    }

    /// Visits to `dir` over the recent windows (`l_t` alone). Used as a
    /// selection fallback when every migration index is zero — e.g. a scan
    /// that has covered the whole namespace leaves nothing unvisited and
    /// nothing recurrent, yet load still has to move somewhere.
    pub fn recent_visits_of(&self, dir: InodeId) -> f64 {
        self.index_of(dir).map(|m| m.l_t).unwrap_or(0.0)
    }

    /// Number of directories with live statistics.
    pub fn tracked_dirs(&self) -> usize {
        self.dirs.len()
    }

    /// Writes the analyzer's dynamic state (window cursor, per-inode visit
    /// masks, per-directory rings, RNG position) to a snapshot section.
    /// The configuration is *not* serialized — a restored analyzer is
    /// rebuilt from the run configuration first.
    pub fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_u64(self.window);
        e.put_seq(&self.inodes, |e, iv| {
            e.put_u64(iv.last_window);
            e.put_u64(iv.mask);
            e.put_bool(iv.ever_visited);
        });
        // Slab slots are in first-sight order; snapshots are written in
        // `InodeId` order so the bytes stay independent of access order
        // (and identical to the ordered-map layout this replaces).
        let mut order: Vec<usize> = (0..self.dirs.len()).collect();
        order.sort_by_key(|&s| self.dirs.ids[s]);
        let stride = self.dirs.stride;
        e.put_seq(&order, |e, &slot| {
            e.put_u64(self.dirs.ids[slot].raw());
            let ring = &self.dirs.rings[slot * stride..(slot + 1) * stride];
            e.put_seq(ring, |e, w| {
                e.put_u32(w.visits);
                e.put_u32(w.recurrent);
                e.put_u32(w.first_visits);
                e.put_u32(w.sibling_bumps);
            });
            e.put_usize(u32_to_usize(self.dirs.cursor[slot]));
            e.put_u64(self.dirs.window[slot]);
            e.put_u64(self.dirs.total_inodes[slot]);
            e.put_u64(self.dirs.visited_ever[slot]);
        });
        e.put_u64(self.rng_state);
    }

    /// Restores the dynamic state written by [`PatternAnalyzer::save_state`]
    /// into this (freshly configured) analyzer.
    pub fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        use lunule_util::codec::CodecError;
        self.window = d.get_u64("analyzer window")?;
        self.inodes = d.get_seq("analyzer inodes", |d| {
            Ok(InodeVisits {
                last_window: d.get_u64("visit last_window")?,
                mask: d.get_u64("visit mask")?,
                ever_visited: d.get_bool("visit ever")?,
            })
        })?;
        let stride = self.cfg.recent_windows;
        let dirs = d.get_seq("analyzer dirs", |d| {
            let raw = d.get_u64("analyzer dir id")?;
            let idx = u32::try_from(raw).map_err(|_| CodecError::Invalid {
                what: "analyzer dir id",
            })?;
            let ring = d.get_seq("dir ring", |d| {
                Ok(WindowCounters {
                    visits: d.get_u32("ring visits")?,
                    recurrent: d.get_u32("ring recurrent")?,
                    first_visits: d.get_u32("ring first_visits")?,
                    sibling_bumps: d.get_u32("ring sibling_bumps")?,
                })
            })?;
            let cursor = d.get_usize("dir cursor")?;
            // The slab stores rings at a fixed stride, so a snapshot whose
            // ring length disagrees with this analyzer's configuration is
            // rejected outright instead of silently re-striding.
            if ring.len() != stride || cursor >= ring.len() {
                return Err(CodecError::Invalid {
                    what: "analyzer ring",
                });
            }
            let window = d.get_u64("dir window")?;
            let total_inodes = d.get_u64("dir total_inodes")?;
            let visited_ever = d.get_u64("dir visited_ever")?;
            Ok((
                InodeId::from_index(u32_to_usize(idx)),
                ring,
                cursor,
                window,
                total_inodes,
                visited_ever,
            ))
        })?;
        self.dirs = DirSlab::new(stride);
        for (id, ring, cursor, window, total_inodes, visited_ever) in dirs {
            if self.dirs.slot_of(id).is_some() {
                return Err(CodecError::Invalid {
                    what: "analyzer dirs",
                });
            }
            let slot = self.dirs.slot_or_insert(id, window, || total_inodes);
            self.dirs.rings[slot * stride..(slot + 1) * stride].copy_from_slice(&ring);
            self.dirs.cursor[slot] = usize_to_u32(cursor);
            self.dirs.visited_ever[slot] = visited_ever;
        }
        self.rng_state = d.get_u64("analyzer rng state")?;
        Ok(())
    }

    /// Records the analyzer's bookkeeping size into the telemetry stream:
    /// a `analyzer.tracked_dirs` gauge and a `analyzer.window` gauge (the
    /// cutting-window index). Called by the owning balancer at each epoch
    /// boundary; free when the handle is disabled.
    pub fn observe(&self, telemetry: &lunule_telemetry::Telemetry) {
        telemetry.gauge_set("analyzer.tracked_dirs", 0, usize_to_f64(self.dirs.len()));
        telemetry.gauge_set("analyzer.window", 0, u64_to_f64(self.window()));
    }
}

/// The next sibling directory of `dir` under its parent (wrapping), if any.
fn next_sibling_dir(ns: &Namespace, dir: InodeId) -> Option<InodeId> {
    let parent = ns.inode(dir).parent()?;
    let siblings: Vec<InodeId> = ns
        .inode(parent)
        .children()
        .iter()
        .copied()
        .filter(|c| ns.inode(*c).is_dir())
        .collect();
    if siblings.len() < 2 {
        return None;
    }
    let pos = siblings.iter().position(|s| *s == dir)?;
    Some(siblings[(pos + 1) % siblings.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(sibling_probability: f64) -> PatternAnalyzer {
        PatternAnalyzer::new(AnalyzerConfig {
            recent_windows: 4,
            recurrence_lookback: 8,
            sibling_probability,
            seed: 42,
        })
    }

    /// Builds /d0, /d1 each with `files` files; returns (ns, dirs, files).
    fn two_dirs(files: usize) -> (Namespace, Vec<InodeId>, Vec<Vec<InodeId>>) {
        let mut ns = Namespace::new();
        let mut dirs = Vec::new();
        let mut all = Vec::new();
        for d in 0..2 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            let fs: Vec<_> = (0..files)
                .map(|i| ns.create_file(dir, &format!("f{i}"), 1).unwrap())
                .collect();
            dirs.push(dir);
            all.push(fs);
        }
        (ns, dirs, all)
    }

    #[test]
    fn zipfian_pattern_yields_high_alpha() {
        let (ns, dirs, files) = two_dirs(10);
        let mut an = analyzer(0.0);
        // Revisit the same two files over several windows.
        for _ in 0..6 {
            for _ in 0..20 {
                an.record_access(&ns, files[0][0], false);
                an.record_access(&ns, files[0][1], false);
            }
            an.advance_window();
        }
        let idx = an.index_of(dirs[0]).unwrap();
        assert!(
            idx.alpha > 0.9,
            "repeat visits must read as temporal: {idx:?}"
        );
        // 40 visits/window over the 4 live windows.
        assert!(idx.l_t > 25.0);
        // Only 2 of 10 inodes were ever visited: beta reflects the 8 unread,
        // but l_s is ~0, so mIndex is dominated by the temporal term.
        assert!(idx.value() >= idx.alpha * idx.l_t);
    }

    #[test]
    fn scan_pattern_yields_spatial_dominance() {
        let (ns, dirs, files) = two_dirs(50);
        let mut an = analyzer(0.0);
        // Scan the first 10 files of d0 once, never revisiting.
        for f in &files[0][..10] {
            an.record_access(&ns, *f, false);
        }
        let idx = an.index_of(dirs[0]).unwrap();
        assert_eq!(idx.alpha, 0.0, "a scan has no recurrence");
        assert_eq!(idx.l_s, 10.0 / 4.0, "per-window first-visit rate");
        // 40 unvisited / 10 visits = 4.0.
        assert!((idx.beta - 4.0).abs() < 1e-9);
        // mIndex ≈ unvisited count per window: the "ship the unread
        // remainder" signal, normalised to the epoch rate.
        assert!((idx.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn windows_age_out() {
        let (ns, dirs, files) = two_dirs(5);
        let mut an = analyzer(0.0);
        an.record_access(&ns, files[0][0], false);
        for _ in 0..10 {
            an.advance_window();
        }
        // Force the ring to roll by touching the dir again in a later window.
        an.record_access(&ns, files[0][1], false);
        let idx = an.index_of(dirs[0]).unwrap();
        // Only the fresh visit remains inside the window span.
        assert_eq!(idx.l_t, 0.25);
    }

    #[test]
    fn recurrence_requires_cross_window_repeat() {
        let (ns, dirs, files) = two_dirs(5);
        let mut an = analyzer(0.0);
        // Two visits in the same window: not recurrent.
        an.record_access(&ns, files[0][0], false);
        an.record_access(&ns, files[0][0], false);
        let idx = an.index_of(dirs[0]).unwrap();
        assert_eq!(idx.alpha, 0.0);
        // A repeat in the next window is recurrent.
        an.advance_window();
        an.record_access(&ns, files[0][0], false);
        let idx = an.index_of(dirs[0]).unwrap();
        assert!(idx.alpha > 0.0);
    }

    #[test]
    fn sibling_propagation_bumps_neighbor() {
        let (ns, dirs, files) = two_dirs(20);
        let mut an = analyzer(1.0); // always propagate
        for f in &files[0][..10] {
            an.record_access(&ns, *f, false);
        }
        let sib = an.index_of(dirs[1]).expect("sibling must have been bumped");
        assert_eq!(sib.l_s, 2.5, "every first visit propagates at p=1");
        assert_eq!(sib.l_t, 0.0, "bumps are not visits");
        // The sibling has 20 unvisited inodes and no visits: beta = 20.
        assert!(
            sib.value() > 0.0,
            "sibling must become a migration candidate"
        );
    }

    #[test]
    fn creates_grow_population() {
        let mut ns = Namespace::new();
        let dir = ns.mkdir(InodeId::ROOT, "out").unwrap();
        let mut an = analyzer(0.0);
        // First create: dir enters the tracker with the post-create count.
        let f0 = ns.create_file(dir, "f0", 0).unwrap();
        an.record_access(&ns, f0, true);
        for i in 1..5 {
            let f = ns.create_file(dir, &format!("f{i}"), 0).unwrap();
            an.record_access(&ns, f, true);
        }
        let idx = an.index_of(dir).unwrap();
        // All 5 created inodes were visited at creation: nothing unvisited.
        assert_eq!(idx.beta, 0.0);
        assert_eq!(idx.l_s, 1.25);
        assert_eq!(idx.l_t, 1.25);
    }

    #[test]
    fn untouched_dir_has_zero_mindex() {
        let (ns, dirs, _) = two_dirs(5);
        let an = analyzer(0.0);
        assert_eq!(an.mindex_of(dirs[0]), 0.0);
        let _ = ns;
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let (ns, _, files) = two_dirs(30);
        let run = || {
            let mut an = analyzer(0.5);
            for f in files.iter().flatten() {
                an.record_access(&ns, *f, false);
            }
            (0..ns.len())
                .map(|i| an.mindex_of(InodeId::from_index(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
