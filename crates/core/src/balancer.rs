//! The balancer interface the simulator drives, and the plan types every
//! policy produces.

use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace, SubtreeMap};
use lunule_telemetry::Telemetry;

use crate::stats::EpochStats;

/// What kind of metadata operation an access was. Creates additionally grow
/// the namespace, which the pattern analyzer must account for when tracking
/// unvisited inodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Read-side metadata op (lookup, getattr, open, readdir…).
    Read,
    /// Create of a brand-new inode.
    Create,
    /// Unlink of an existing inode (shrinks its directory).
    Remove,
}

/// One recorded metadata access, as seen by the authoritative MDS.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Inode the operation targeted.
    pub ino: InodeId,
    /// Rank that served the operation.
    pub served_by: MdsRank,
    /// Operation class.
    pub kind: OpKind,
}

/// A subtree chosen for migration, with the load the selector believes it
/// carries (used by the simulator to size the transfer).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubtreeChoice {
    /// The dirfrag subtree to move.
    pub subtree: FragKey,
    /// Estimated load (same unit as the epoch loads) moving with it.
    pub estimated_load: f64,
}

/// All subtrees one exporter ships to one importer this epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct ExportTask {
    /// Source rank.
    pub from: MdsRank,
    /// Destination rank.
    pub to: MdsRank,
    /// Load amount the role decider asked to move.
    pub target_amount: f64,
    /// The subtrees selected to satisfy `target_amount`.
    pub subtrees: Vec<SubtreeChoice>,
}

impl ExportTask {
    /// Load the selected subtrees are estimated to carry.
    pub fn selected_load(&self) -> f64 {
        self.subtrees.iter().map(|s| s.estimated_load).sum()
    }
}

/// The migration plan a balancer returns for one epoch. An empty plan means
/// "do nothing".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MigrationPlan {
    /// Independent export tasks; the migrator executes them concurrently.
    pub exports: Vec<ExportTask>,
}

impl MigrationPlan {
    /// True when no migration was requested.
    pub fn is_empty(&self) -> bool {
        self.exports.is_empty()
    }

    /// Total number of subtrees across all tasks.
    pub fn subtree_count(&self) -> usize {
        self.exports.iter().map(|e| e.subtrees.len()).sum()
    }
}

/// A metadata load balancer: the component this paper replaces in CephFS.
///
/// The simulator calls [`Balancer::record_access`] for every served request
/// (this is the Load Monitor / stats-recording role) and
/// [`Balancer::on_epoch`] once per epoch with the cluster-wide stats (the
/// Migration Initiator role). Implementations return a [`MigrationPlan`]
/// that the simulator's Migrator then executes with real costs.
pub trait Balancer: Send {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// One-time hook before the run starts; static policies (Dir-Hash
    /// pinning) mutate the subtree map here.
    fn setup(&mut self, _ns: &Namespace, _map: &mut SubtreeMap, _n_mds: usize) {}

    /// Hands the balancer a telemetry handle so it can record phase spans
    /// and decision outcomes. Policies that do not instrument themselves
    /// keep this default and stay telemetry-free.
    fn attach_telemetry(&mut self, _telemetry: Telemetry) {}

    /// Sets a named tuning knob at runtime (the daemon control plane).
    /// Returns `true` when the knob exists and the value was applied;
    /// policies without runtime knobs keep this default and report `false`.
    fn set_knob(&mut self, _name: &str, _value: f64) -> bool {
        false
    }

    /// Records one served metadata request.
    fn record_access(&mut self, ns: &Namespace, access: Access);

    /// Records `n` identical served requests in one call. The contract is
    /// bit-exact equivalence with `n` sequential [`Balancer::record_access`]
    /// calls — the cohort client engine batches a run of identical client
    /// ops through here, and the differential tests compare the resulting
    /// balancer state byte-for-byte against the per-client path. Policies
    /// with a cheaper exact batch (integer counters) override this; the
    /// default simply loops.
    fn record_access_n(&mut self, ns: &Namespace, access: Access, n: u64) {
        for _ in 0..n {
            self.record_access(ns, access);
        }
    }

    /// Epoch boundary: decide whether and what to migrate.
    fn on_epoch(&mut self, ns: &Namespace, map: &SubtreeMap, stats: &EpochStats) -> MigrationPlan;

    /// Writes the policy's *dynamic* state (heat counters, histories,
    /// analyzer windows, runtime-tuned knobs) to a snapshot section.
    /// Stateless policies keep the default and write nothing; what matters
    /// is that `save_state` and [`Balancer::load_state`] agree.
    fn save_state(&self, _e: &mut lunule_util::codec::Encoder) {}

    /// Restores the state written by [`Balancer::save_state`] into this
    /// freshly configured policy instance.
    fn load_state(
        &mut self,
        _d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        Ok(())
    }
}

/// Identifies one of the shipped balancer implementations; used by the
/// experiment harness to construct policies by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BalancerKind {
    /// Full Lunule: IF model + Algorithm 1 + workload-aware selection.
    Lunule,
    /// Lunule-Light: IF model + Algorithm 1, heat-based selection.
    LunuleLight,
    /// CephFS built-in balancer model.
    Vanilla,
    /// GreedySpill (GIGA+/Mantle).
    GreedySpill,
    /// Static hash pinning; never migrates.
    DirHash,
    /// Never balances at all (control).
    Off,
}

impl BalancerKind {
    /// All dynamic policies compared in the paper's Figure 6/7 grids.
    pub const FIG6_SET: [BalancerKind; 4] = [
        BalancerKind::Vanilla,
        BalancerKind::GreedySpill,
        BalancerKind::LunuleLight,
        BalancerKind::Lunule,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            BalancerKind::Lunule => "Lunule",
            BalancerKind::LunuleLight => "Lunule-Light",
            BalancerKind::Vanilla => "Vanilla",
            BalancerKind::GreedySpill => "GreedySpill",
            BalancerKind::DirHash => "Dir-Hash",
            BalancerKind::Off => "Off",
        }
    }
}

impl std::fmt::Display for BalancerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A balancer that never migrates; the experimental control and a useful
/// fixture for simulator tests.
#[derive(Debug, Default)]
pub struct NoopBalancer;

impl Balancer for NoopBalancer {
    fn name(&self) -> &'static str {
        "Off"
    }

    fn record_access(&mut self, _ns: &Namespace, _access: Access) {}

    fn on_epoch(
        &mut self,
        _ns: &Namespace,
        _map: &SubtreeMap,
        _stats: &EpochStats,
    ) -> MigrationPlan {
        MigrationPlan::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_accounting() {
        let dir = InodeId::ROOT;
        let task = ExportTask {
            from: MdsRank(0),
            to: MdsRank(1),
            target_amount: 100.0,
            subtrees: vec![
                SubtreeChoice {
                    subtree: FragKey::whole(dir),
                    estimated_load: 60.0,
                },
                SubtreeChoice {
                    subtree: FragKey::whole(dir),
                    estimated_load: 35.0,
                },
            ],
        };
        assert_eq!(task.selected_load(), 95.0);
        let plan = MigrationPlan {
            exports: vec![task],
        };
        assert!(!plan.is_empty());
        assert_eq!(plan.subtree_count(), 2);
        assert!(MigrationPlan::default().is_empty());
    }

    #[test]
    fn noop_never_migrates() {
        let ns = Namespace::new();
        let map = SubtreeMap::new(MdsRank(0));
        let mut b = NoopBalancer;
        b.record_access(
            &ns,
            Access {
                ino: InodeId::ROOT,
                served_by: MdsRank(0),
                kind: OpKind::Read,
            },
        );
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![100, 0]));
        assert!(plan.is_empty());
    }

    #[test]
    fn kind_labels_are_unique() {
        use std::collections::HashSet;
        let all = [
            BalancerKind::Lunule,
            BalancerKind::LunuleLight,
            BalancerKind::Vanilla,
            BalancerKind::GreedySpill,
            BalancerKind::DirHash,
            BalancerKind::Off,
        ];
        let labels: HashSet<_> = all.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), all.len());
    }
}
