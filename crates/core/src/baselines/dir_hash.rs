//! The Dir-Hash baseline: static hash-based subtree pinning.
//!
//! The paper simulates a hash-based metadata service inside CephFS by
//! splitting the namespace into fine-grained subtrees and statically pinning
//! each directory to the MDS chosen by its hash (Fig. 13b/14). Inodes spread
//! evenly, but request load follows workload popularity and cannot be
//! rebalanced, and path traversal crosses many authority boundaries —
//! roughly doubling inter-MDS forwards in the paper's measurement.

use crate::balancer::{Access, Balancer, MigrationPlan};
use crate::stats::EpochStats;
use lunule_namespace::{FragKey, MdsRank, Namespace, SubtreeMap};
use lunule_util::convert::{u64_to_usize, usize_to_u64};

/// Tunables of the Dir-Hash baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirHashConfig {
    /// Hash seed, so experiments can explore different static placements.
    pub seed: u64,
}

/// The static-pinning balancer. All work happens in [`Balancer::setup`];
/// epochs never produce migrations.
pub struct DirHashBalancer {
    cfg: DirHashConfig,
}

impl DirHashBalancer {
    /// Builds the baseline.
    pub fn new(cfg: DirHashConfig) -> Self {
        DirHashBalancer { cfg }
    }

    /// The rank a directory id hashes to among `n_mds` ranks.
    pub fn rank_of(&self, raw_dir_id: u64, n_mds: usize) -> MdsRank {
        // SplitMix64 finalizer: uniform, deterministic, seedable.
        let mut z = raw_dir_id
            .wrapping_add(self.cfg.seed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        MdsRank::from_index(u64_to_usize(z % usize_to_u64(n_mds)))
    }
}

impl Default for DirHashBalancer {
    fn default() -> Self {
        Self::new(DirHashConfig::default())
    }
}

impl Balancer for DirHashBalancer {
    fn name(&self) -> &'static str {
        "Dir-Hash"
    }

    fn setup(&mut self, ns: &Namespace, map: &mut SubtreeMap, n_mds: usize) {
        // Pin every directory's contents to its hashed rank. Entries on
        // nested directories override the parent's, exactly like fine-
        // grained static subtree pinning in CephFS.
        for dir in ns.all_dirs() {
            let rank = self.rank_of(dir.raw(), n_mds);
            map.set_authority(FragKey::whole(dir), rank);
        }
    }

    fn record_access(&mut self, _ns: &Namespace, _access: Access) {}

    fn on_epoch(
        &mut self,
        _ns: &Namespace,
        _map: &SubtreeMap,
        _stats: &EpochStats,
    ) -> MigrationPlan {
        MigrationPlan::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_namespace::InodeId;

    #[test]
    fn pins_every_directory() {
        let mut ns = Namespace::new();
        for d in 0..50 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            ns.create_file(dir, "f", 1).unwrap();
        }
        let mut map = SubtreeMap::new(MdsRank(0));
        let mut b = DirHashBalancer::default();
        b.setup(&ns, &mut map, 5);
        // Every directory (root included) has an entry.
        assert_eq!(map.entry_count(), ns.dir_count());
        // Inodes spread across all ranks reasonably evenly.
        let counts = map.inode_counts(&ns, 5);
        assert_eq!(counts.iter().sum::<usize>(), ns.len());
        for c in &counts {
            assert!(*c >= 5, "static hashing should spread inodes: {counts:?}");
        }
    }

    #[test]
    fn never_migrates() {
        let ns = Namespace::new();
        let map = SubtreeMap::new(MdsRank(0));
        let mut b = DirHashBalancer::default();
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![100, 0]));
        assert!(plan.is_empty());
    }

    #[test]
    fn seed_changes_placement() {
        let a = DirHashBalancer::new(DirHashConfig { seed: 1 });
        let b = DirHashBalancer::new(DirHashConfig { seed: 2 });
        let moved = (0..100u64)
            .filter(|i| a.rank_of(*i, 5) != b.rank_of(*i, 5))
            .count();
        assert!(
            moved > 30,
            "different seeds must shuffle placements: {moved}"
        );
    }

    #[test]
    fn rank_always_in_range() {
        let b = DirHashBalancer::default();
        for i in 0..1000u64 {
            assert!(b.rank_of(i, 7).index() < 7);
        }
    }
}
