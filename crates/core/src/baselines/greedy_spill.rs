//! The GreedySpill baseline (GIGA+-style, via the Mantle framework).
//!
//! Policy as described in the paper's evaluation setup: re-balance triggers
//! whenever some MDSs carry no load at all, and each loaded MDS then spills
//! *half* of its load to its idle rank-neighbour. It consults almost no
//! global state, so it keeps shipping load back and forth and in the
//! paper's measurements its IF stays close to 1.

use crate::balancer::{Access, Balancer, ExportTask, MigrationPlan};
use crate::dirload::{build_candidates, candidates_of_rank};
use crate::heat::HeatMap;
use crate::selector::select_hottest;
use crate::stats::EpochStats;
use lunule_namespace::{MdsRank, Namespace, SubtreeMap};

/// Tunables of the GreedySpill baseline.
#[derive(Clone, Copy, Debug)]
pub struct GreedySpillConfig {
    /// IOPS below which a neighbour counts as "idle".
    pub idle_iops: f64,
    /// Fraction of the loaded MDS's load spilled per decision (the policy
    /// ships half).
    pub spill_fraction: f64,
    /// Heat decay per epoch (selection is hotspot-based, like Vanilla's).
    pub heat_decay: f64,
}

impl Default for GreedySpillConfig {
    fn default() -> Self {
        GreedySpillConfig {
            idle_iops: 1.0,
            spill_fraction: 0.5,
            heat_decay: 0.5,
        }
    }
}

/// The GreedySpill balancer. See module docs.
pub struct GreedySpillBalancer {
    cfg: GreedySpillConfig,
    heat: HeatMap,
}

impl GreedySpillBalancer {
    /// Builds the baseline.
    pub fn new(cfg: GreedySpillConfig) -> Self {
        GreedySpillBalancer {
            heat: HeatMap::new(cfg.heat_decay),
            cfg,
        }
    }
}

impl Default for GreedySpillBalancer {
    fn default() -> Self {
        Self::new(GreedySpillConfig::default())
    }
}

impl Balancer for GreedySpillBalancer {
    fn name(&self) -> &'static str {
        "GreedySpill"
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        self.heat.encode(e);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        self.heat = HeatMap::decode(d)?;
        Ok(())
    }

    fn record_access(&mut self, ns: &Namespace, access: Access) {
        self.heat.record(ns, access.ino);
    }

    fn record_access_n(&mut self, ns: &Namespace, access: Access, n: u64) {
        self.heat.record_n(ns, access.ino, n);
    }

    fn on_epoch(&mut self, ns: &Namespace, map: &SubtreeMap, stats: &EpochStats) -> MigrationPlan {
        self.heat.decay_epoch();
        let loads = stats.iops();
        let n = loads.len();
        if n < 2 {
            return MigrationPlan::default();
        }
        let heat = &self.heat;
        let candidates = build_candidates(ns, map, &|d| heat.heat_of(d));
        let mut exports = Vec::new();
        for (i, &load) in loads.iter().enumerate() {
            if load <= self.cfg.idle_iops {
                continue;
            }
            let neighbor = (i + 1) % n;
            if loads[neighbor] > self.cfg.idle_iops {
                continue;
            }
            let exporter = MdsRank::from_index(i);
            let mine = candidates_of_rank(&candidates, exporter);
            let demand = load * self.cfg.spill_fraction * stats.epoch_secs;
            let subtrees = select_hottest(ns, &mine, demand, exporter);
            if subtrees.is_empty() {
                continue;
            }
            exports.push(ExportTask {
                from: exporter,
                to: MdsRank::from_index(neighbor),
                target_amount: demand,
                subtrees,
            });
        }
        MigrationPlan { exports }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::OpKind;
    use lunule_namespace::InodeId;

    fn fixture() -> (Namespace, SubtreeMap, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let mut files = Vec::new();
        for d in 0..3 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            for i in 0..10 {
                files.push(ns.create_file(dir, &format!("f{i}"), 1).unwrap());
            }
        }
        (ns, SubtreeMap::new(MdsRank(0)), files)
    }

    fn feed(b: &mut GreedySpillBalancer, ns: &Namespace, files: &[InodeId]) {
        for f in files {
            b.record_access(
                ns,
                Access {
                    ino: *f,
                    served_by: MdsRank(0),
                    kind: OpKind::Read,
                },
            );
        }
    }

    #[test]
    fn spills_half_to_idle_neighbor() {
        let (ns, map, files) = fixture();
        let mut b = GreedySpillBalancer::default();
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![800, 0, 0]));
        assert_eq!(plan.exports.len(), 1);
        let task = &plan.exports[0];
        assert_eq!(task.from, MdsRank(0));
        assert_eq!(task.to, MdsRank(1));
        assert!((task.target_amount - 400.0).abs() < 1.0);
    }

    #[test]
    fn quiet_when_no_neighbor_is_idle() {
        let (ns, map, files) = fixture();
        let mut b = GreedySpillBalancer::default();
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![800, 200, 100]));
        assert!(plan.is_empty(), "all neighbours busy: nothing to spill to");
    }

    #[test]
    fn wraps_around_rank_space() {
        let (ns, map, files) = fixture();
        let mut b = GreedySpillBalancer::default();
        feed(&mut b, &ns, &files);
        // Loaded rank is the last one; its neighbour is rank 0... but rank 0
        // owns the namespace here, so give the load to rank 0 and idle the
        // rest: neighbour of 0 is 1.
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![500, 0, 0]));
        assert!(plan.exports.iter().all(|e| e.to == MdsRank(1)));
    }
}
