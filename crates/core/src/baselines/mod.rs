//! Baseline balancers the paper compares Lunule against.

pub mod dir_hash;
pub mod greedy_spill;
pub mod vanilla;

pub use dir_hash::{DirHashBalancer, DirHashConfig};
pub use greedy_spill::{GreedySpillBalancer, GreedySpillConfig};
pub use vanilla::{VanillaBalancer, VanillaConfig};
