//! Model of the CephFS built-in ("Vanilla") metadata load balancer.
//!
//! This baseline reproduces the three documented behaviours Section 2.2 of
//! the paper attributes to the stock balancer:
//!
//! 1. **Inaccurate trigger** — each rank compares its load to the cluster
//!    mean with a fixed relative margin and no urgency term: it stays quiet
//!    when the busiest rank is "close enough" to the mean even though light
//!    ranks idle, yet happily migrates on relative skew when the absolute
//!    load is trivial.
//! 2. **Aggressive amounts** — an exporter tries to shed its entire excess
//!    over the mean in one go, with no per-epoch cap and no view of the
//!    importer's future load (the ping-pong effect).
//! 3. **Hotspot selection** — candidates are chosen by decayed heat, which
//!    encodes *past* popularity and picks exactly the wrong subtrees for
//!    scan-type workloads.

use crate::balancer::{Access, Balancer, ExportTask, MigrationPlan};
use crate::dirload::{build_candidates, candidates_of_rank};
use crate::heat::HeatMap;
use crate::selector::select_hottest;
use crate::stats::EpochStats;
use lunule_namespace::{MdsRank, Namespace, SubtreeMap};
use lunule_util::convert::usize_to_f64;

/// Tunables of the Vanilla baseline.
#[derive(Clone, Copy, Debug)]
pub struct VanillaConfig {
    /// A rank exports only when `load > mean * (1 + margin)`. CephFS's
    /// need-factor behaviour corresponds to a sizeable margin, which is
    /// precisely why moderately skewed clusters are left alone.
    pub trigger_margin: f64,
    /// Minimum absolute load (IOPS) below which a rank never exports —
    /// stock CephFS uses a small constant; keep it small so that the
    /// "migrates on trivial load" behaviour is preserved.
    pub min_export_iops: f64,
    /// Heat decay per epoch.
    pub heat_decay: f64,
}

impl Default for VanillaConfig {
    fn default() -> Self {
        VanillaConfig {
            trigger_margin: 0.35,
            min_export_iops: 10.0,
            heat_decay: 0.5,
        }
    }
}

/// The CephFS built-in balancer model. See module docs.
pub struct VanillaBalancer {
    cfg: VanillaConfig,
    heat: HeatMap,
}

impl VanillaBalancer {
    /// Builds the baseline.
    pub fn new(cfg: VanillaConfig) -> Self {
        VanillaBalancer {
            heat: HeatMap::new(cfg.heat_decay),
            cfg,
        }
    }
}

impl Default for VanillaBalancer {
    fn default() -> Self {
        Self::new(VanillaConfig::default())
    }
}

impl Balancer for VanillaBalancer {
    fn name(&self) -> &'static str {
        "Vanilla"
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        self.heat.encode(e);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        self.heat = HeatMap::decode(d)?;
        Ok(())
    }

    fn record_access(&mut self, ns: &Namespace, access: Access) {
        self.heat.record(ns, access.ino);
    }

    fn record_access_n(&mut self, ns: &Namespace, access: Access, n: u64) {
        self.heat.record_n(ns, access.ino, n);
    }

    fn on_epoch(&mut self, ns: &Namespace, map: &SubtreeMap, stats: &EpochStats) -> MigrationPlan {
        self.heat.decay_epoch();
        let loads = stats.iops();
        let n = loads.len();
        if n < 2 {
            return MigrationPlan::default();
        }
        let mean = loads.iter().sum::<f64>() / usize_to_f64(n);
        if mean <= 0.0 {
            return MigrationPlan::default();
        }

        // Importers: every rank under the mean, each with capacity equal to
        // its full gap (no future-load correction, no cap).
        let mut import_room: Vec<(usize, f64)> = loads
            .iter()
            .enumerate()
            .filter(|(_, &l)| l < mean)
            .map(|(j, &l)| (j, mean - l))
            .collect();
        import_room.sort_by(|a, b| b.1.total_cmp(&a.1));

        let heat = &self.heat;
        let candidates = build_candidates(ns, map, &|d| heat.heat_of(d));

        let mut exports = Vec::new();
        for (i, &load) in loads.iter().enumerate() {
            if load <= mean * (1.0 + self.cfg.trigger_margin) || load < self.cfg.min_export_iops {
                continue;
            }
            // Shed the entire excess in one decision.
            let mut excess = load - mean;
            let exporter = MdsRank::from_index(i);
            let mut mine = candidates_of_rank(&candidates, exporter);
            for (j, room) in import_room.iter_mut() {
                if excess <= 0.0 || *room <= 0.0 {
                    continue;
                }
                let amount = excess.min(*room);
                let demand_heat = amount * stats.epoch_secs;
                let subtrees = select_hottest(ns, &mine, demand_heat, exporter);
                if subtrees.is_empty() {
                    break;
                }
                // Each importer selects from what earlier importers left.
                mine.retain(|c| {
                    !subtrees
                        .iter()
                        .any(|s| crate::selector::subtrees_overlap(ns, &s.subtree, &c.key))
                });
                exports.push(ExportTask {
                    from: exporter,
                    to: MdsRank::from_index(*j),
                    target_amount: demand_heat,
                    subtrees,
                });
                excess -= amount;
                *room -= amount;
            }
        }
        MigrationPlan { exports }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::OpKind;
    use lunule_namespace::InodeId;

    fn fixture() -> (Namespace, SubtreeMap, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let mut files = Vec::new();
        for d in 0..3 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            for i in 0..10 {
                files.push(ns.create_file(dir, &format!("f{i}"), 1).unwrap());
            }
        }
        (ns, SubtreeMap::new(MdsRank(0)), files)
    }

    fn feed(b: &mut VanillaBalancer, ns: &Namespace, files: &[InodeId]) {
        for f in files {
            b.record_access(
                ns,
                Access {
                    ino: *f,
                    served_by: MdsRank(0),
                    kind: OpKind::Read,
                },
            );
        }
    }

    #[test]
    fn misses_moderate_skew() {
        // The paper's observed miss: loads 13530/14567/15625/11610/2692 —
        // busiest only 1.35x the mean, so Vanilla stays idle while one rank
        // starves.
        let (ns, map, files) = fixture();
        let mut b = VanillaBalancer::default();
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(
            &ns,
            &map,
            &EpochStats::new(0, 1.0, vec![13_530, 14_567, 15_625, 11_610, 2_692]),
        );
        assert!(
            plan.is_empty(),
            "Vanilla must miss this skew (inefficiency #1)"
        );
    }

    #[test]
    fn migrates_even_trivial_absolute_load() {
        // Relative skew at negligible absolute load still triggers (no
        // urgency term) as long as the tiny export floor is passed.
        let (ns, map, files) = fixture();
        let mut b = VanillaBalancer::default();
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![60, 2, 2]));
        assert!(
            !plan.is_empty(),
            "Vanilla has no urgency model and must react to relative skew"
        );
    }

    #[test]
    fn sheds_up_to_full_excess() {
        let (ns, map, files) = fixture();
        let mut b = VanillaBalancer::default();
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![900, 0, 0]));
        assert!(!plan.is_empty());
        // Excess over mean = 600 IOPS * 1s epoch; Vanilla plans up to that
        // with no per-epoch cap, bounded only by running out of candidate
        // subtrees (each importer selects from what earlier ones left).
        let target: f64 = plan.exports.iter().map(|e| e.target_amount).sum();
        assert!(
            target <= 600.0 + 1.0,
            "never plans beyond the excess: {target}"
        );
        assert!(
            target >= 300.0 - 1.0,
            "first importer claims its full room: {target}"
        );
        // Every selected subtree is unique across the plan.
        let mut seen = std::collections::HashSet::new();
        for e in &plan.exports {
            for s in &e.subtrees {
                assert!(
                    seen.insert(s.subtree),
                    "duplicate selection across importers"
                );
            }
        }
    }

    #[test]
    fn quiet_on_idle_cluster() {
        let (ns, map, _) = fixture();
        let mut b = VanillaBalancer::default();
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![0, 0, 0]));
        assert!(plan.is_empty());
    }
}
