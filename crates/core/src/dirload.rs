//! Shared per-directory load bookkeeping and subtree aggregation.
//!
//! Every balancer needs the same two primitives: (a) charge each served
//! request to the directory containing the target inode, and (b) turn those
//! per-directory numbers into *candidate dirfrag subtrees with aggregated
//! loads* for a given exporter rank. This module provides both, generic over
//! the per-directory load metric (decayed heat for Vanilla/Lunule-Light,
//! migration index for Lunule).
//!
//! ## Aggregation invariant
//!
//! Selection and migration only ever operate on *live* fragments of a
//! directory's [`lunule_namespace::FragSet`], and authority entries are only
//! placed on live fragments. Live fragments are pairwise disjoint, so a
//! candidate `(dir, frag)` can never contain a deeper authority entry of the
//! same directory, and the aggregate of a candidate is simply its local load
//! share plus the aggregates of non-delegated child directories inside the
//! fragment.

use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace, SubtreeMap};
use lunule_util::convert::usize_to_f64;

/// A migration candidate: a dirfrag subtree with its aggregated load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// The dirfrag subtree.
    pub key: FragKey,
    /// Rank currently authoritative for the subtree.
    pub rank: MdsRank,
    /// Load of the whole subtree under the chosen metric (heat or mIndex).
    pub load: f64,
    /// The portion of `load` contributed by `key.dir`'s *direct* children
    /// (as opposed to nested directories). The selector uses this to decide
    /// between fragment splitting and descending.
    pub local_load: f64,
    /// Estimated number of inodes the subtree contains (sizes the transfer).
    pub inodes: usize,
}

/// Computes the candidate list for the whole cluster given a per-directory
/// local load metric.
///
/// `local` maps a directory to the load charged to its direct children.
/// Directories with zero aggregate load are skipped. The returned vector is
/// unsorted; callers filter by rank and order as their policy requires.
pub fn build_candidates(
    ns: &Namespace,
    map: &SubtreeMap,
    local: &impl Fn(InodeId) -> f64,
) -> Vec<Candidate> {
    // Bottom-up pass: our arenas only append, so a parent's index is always
    // smaller than its children's — iterating indices in reverse visits
    // children before parents.
    let n = ns.len();
    // agg_whole[d] = aggregate load of dir d's *non-delegated* portion,
    // i.e. what flows up into d's parent candidate.
    let mut agg_whole = vec![0.0f64; n];
    let mut inodes_whole = vec![0usize; n];
    let mut candidates = Vec::new();

    for idx in (0..n).rev() {
        let id = InodeId::from_index(idx);
        let ino = ns.inode(id);
        if !ino.is_dir() {
            continue;
        }
        let local_load = local(id);
        let n_children = ino.children().len();
        let frags = ns.frags_of(id);

        // Fast path: undivided directory with no frag-level delegation.
        if frags.len() == 1 && frags[0].is_root() {
            let frag = frags[0];
            let mut load = local_load;
            let mut count = n_children;
            for &c in ino.children() {
                if ns.inode(c).is_dir() {
                    // agg_whole[c] is the child's *non-delegated* portion by
                    // construction (delegated fragments were excluded when
                    // the child itself was processed), so it always flows up.
                    load += agg_whole[c.index()];
                    count += inodes_whole[c.index()];
                }
            }
            let rank = map.frag_authority(ns, id, &frag);
            if load > 0.0 {
                candidates.push(Candidate {
                    key: FragKey { dir: id, frag },
                    rank,
                    load,
                    local_load,
                    inodes: count,
                });
            }
            let delegated = map.explicit_entry_rank(id, &frag).is_some();
            if !delegated {
                agg_whole[idx] = load;
                inodes_whole[idx] = count;
            }
            continue;
        }

        // Fragmented directory: one candidate per live fragment, local load
        // apportioned by the share of children hashing into the fragment.
        let mut up_load = 0.0;
        let mut up_inodes = 0usize;
        for frag in frags {
            let in_frag = ns.children_in_frag(id, &frag);
            let frac = if n_children == 0 {
                0.0
            } else {
                usize_to_f64(in_frag.len()) / usize_to_f64(n_children)
            };
            let mut load = local_load * frac;
            let mut count = in_frag.len();
            for c in &in_frag {
                if ns.inode(*c).is_dir() {
                    load += agg_whole[c.index()];
                    count += inodes_whole[c.index()];
                }
            }
            let rank = map.frag_authority(ns, id, &frag);
            if load > 0.0 {
                candidates.push(Candidate {
                    key: FragKey { dir: id, frag },
                    rank,
                    load,
                    local_load: local_load * frac,
                    inodes: count,
                });
            }
            if map.explicit_entry_rank(id, &frag).is_none() {
                up_load += load;
                up_inodes += count;
            }
        }
        agg_whole[idx] = up_load;
        inodes_whole[idx] = up_inodes;
    }
    candidates
}

/// Filters candidates down to one exporter and sorts them by descending
/// load — the shape every selection policy starts from.
pub fn candidates_of_rank(all: &[Candidate], rank: MdsRank) -> Vec<Candidate> {
    let mut v: Vec<Candidate> = all.iter().filter(|c| c.rank == rank).copied().collect();
    v.sort_by(|a, b| b.load.total_cmp(&a.load));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_namespace::Frag;
    use std::collections::HashMap;

    /// Namespace:
    /// /           (ROOT)
    ///   a/        local 10
    ///     a1/     local 5
    ///   b/        local 20
    fn fixture() -> (Namespace, InodeId, InodeId, InodeId, HashMap<InodeId, f64>) {
        let mut ns = Namespace::new();
        let a = ns.mkdir(InodeId::ROOT, "a").unwrap();
        let a1 = ns.mkdir(a, "a1").unwrap();
        let b = ns.mkdir(InodeId::ROOT, "b").unwrap();
        for d in [a, a1, b] {
            for i in 0..4 {
                ns.create_file(d, &format!("f{i}"), 1).unwrap();
            }
        }
        let mut loads = HashMap::new();
        loads.insert(a, 10.0);
        loads.insert(a1, 5.0);
        loads.insert(b, 20.0);
        (ns, a, a1, b, loads)
    }

    #[test]
    fn aggregates_roll_up_to_root() {
        let (ns, a, a1, b, loads) = fixture();
        let map = SubtreeMap::new(MdsRank(0));
        let local = |d: InodeId| loads.get(&d).copied().unwrap_or(0.0);
        let cands = build_candidates(&ns, &map, &local);
        let find = |dir| {
            cands
                .iter()
                .find(|c| c.key.dir == dir)
                .copied()
                .unwrap_or_else(|| panic!("no candidate for {dir:?}"))
        };
        assert_eq!(find(a1).load, 5.0);
        assert_eq!(find(a).load, 15.0); // 10 local + 5 nested
        assert_eq!(find(b).load, 20.0);
        let root = find(InodeId::ROOT);
        assert_eq!(root.load, 35.0);
        assert_eq!(root.local_load, 0.0);
        // Every candidate belongs to rank 0 before any delegation.
        assert!(cands.iter().all(|c| c.rank == MdsRank(0)));
        // Root candidate spans all inodes except the root dir itself.
        assert_eq!(root.inodes, ns.len() - 1);
    }

    #[test]
    fn delegated_child_is_excluded_from_parent() {
        let (ns, a, a1, _b, loads) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a1), MdsRank(1));
        let local = |d: InodeId| loads.get(&d).copied().unwrap_or(0.0);
        let cands = build_candidates(&ns, &map, &local);
        let a_cand = cands.iter().find(|c| c.key.dir == a).unwrap();
        // a1's subtree is delegated to rank 1, so its load no longer flows
        // up into a's candidate; a keeps only its own local load.
        assert_eq!(a_cand.load, 10.0);
        let a1_cand = cands.iter().find(|c| c.key.dir == a1).unwrap();
        assert_eq!(a1_cand.rank, MdsRank(1));
        assert_eq!(a1_cand.load, 5.0);
        let of_rank1 = candidates_of_rank(&cands, MdsRank(1));
        assert_eq!(of_rank1.len(), 1);
    }

    #[test]
    fn fragmented_dir_produces_per_frag_candidates() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "big").unwrap();
        for i in 0..100 {
            ns.create_file(d, &format!("f{i}"), 0).unwrap();
        }
        ns.split_frag(d, &Frag::root(), 1).unwrap();
        let map = SubtreeMap::new(MdsRank(0));
        let local = move |x: InodeId| if x == d { 100.0 } else { 0.0 };
        let cands = build_candidates(&ns, &map, &local);
        let frag_cands: Vec<_> = cands.iter().filter(|c| c.key.dir == d).collect();
        assert_eq!(frag_cands.len(), 2);
        let total: f64 = frag_cands.iter().map(|c| c.load).sum();
        assert!((total - 100.0).abs() < 1e-9);
        let inodes: usize = frag_cands.iter().map(|c| c.inodes).sum();
        assert_eq!(inodes, 100);
        // Shares are proportional to children counts, which are roughly even.
        for c in frag_cands {
            assert!(c.load > 20.0 && c.load < 80.0);
        }
    }

    #[test]
    fn zero_load_dirs_are_skipped() {
        let (ns, _, _, _, _) = fixture();
        let map = SubtreeMap::new(MdsRank(0));
        let cands = build_candidates(&ns, &map, &|_| 0.0);
        assert!(cands.is_empty());
    }

    #[test]
    fn rank_filter_sorts_descending() {
        let (ns, _, _, _, loads) = fixture();
        let map = SubtreeMap::new(MdsRank(0));
        let local = |d: InodeId| loads.get(&d).copied().unwrap_or(0.0);
        let cands = build_candidates(&ns, &map, &local);
        let sorted = candidates_of_rank(&cands, MdsRank(0));
        for w in sorted.windows(2) {
            assert!(w[0].load >= w[1].load);
        }
    }
}
