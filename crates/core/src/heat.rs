//! Exponentially decaying popularity ("heat") counters.
//!
//! This is the load metric the built-in CephFS balancer uses for candidate
//! selection: each served request bumps the containing directory's counter,
//! and counters decay by a fixed factor every epoch so old activity fades.
//! Vanilla, GreedySpill and Lunule-Light all select on this metric; full
//! Lunule replaces it with the migration index (see [`crate::analyzer`]).

use lunule_namespace::{InodeId, Namespace};
use std::collections::BTreeMap;

/// Per-directory decaying heat counters.
#[derive(Clone, Debug)]
pub struct HeatMap {
    decay: f64,
    heat: BTreeMap<InodeId, f64>,
}

impl HeatMap {
    /// Creates a heat map whose counters are multiplied by `decay` at every
    /// epoch boundary. CephFS's default popularity half-life of roughly one
    /// balancing interval corresponds to `decay = 0.5`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= decay < 1.0`.
    pub fn new(decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        HeatMap {
            decay,
            heat: BTreeMap::new(),
        }
    }

    /// Changes the decay factor in place, keeping accumulated counters
    /// (runtime tuning). The factor is clamped into `[0, 1)`.
    pub fn set_decay(&mut self, decay: f64) {
        self.decay = decay.clamp(0.0, 0.999);
    }

    /// Charges one request against the directory containing `ino`.
    pub fn record(&mut self, ns: &Namespace, ino: InodeId) {
        let dir = match ns.inode(ino).parent() {
            Some(p) => p,
            None => ino, // the root charges itself
        };
        *self.heat.entry(dir).or_insert(0.0) += 1.0;
    }

    /// Charges `n` identical requests against the directory containing
    /// `ino`, bit-identically to calling [`HeatMap::record`] `n` times.
    ///
    /// When the counter is integer-valued (and stays within f64's exact
    /// integer range) the `n` unit additions collapse to one — the common
    /// case for undecayed counters. Fractional counters (after a non-dyadic
    /// decay) fall back to the sequential unit additions, because repeated
    /// `+ 1.0` is not associative at the bit level there.
    pub fn record_n(&mut self, ns: &Namespace, ino: InodeId, n: u64) {
        if n == 0 {
            return;
        }
        let dir = match ns.inode(ino).parent() {
            Some(p) => p,
            None => ino,
        };
        let h = self.heat.entry(dir).or_insert(0.0);
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let n_f = lunule_util::convert::u64_to_f64(n);
        // Bit-exact integrality test (heat is never negative, so +0.0 is
        // the only zero fract can produce here).
        if h.fract().to_bits() == 0 && *h + n_f < EXACT {
            *h += n_f;
        } else {
            for _ in 0..n {
                *h += 1.0;
            }
        }
    }

    /// Applies one epoch of decay, dropping counters that have become
    /// negligible so the map does not grow without bound.
    pub fn decay_epoch(&mut self) {
        let decay = self.decay;
        self.heat.retain(|_, h| {
            *h *= decay;
            *h > 1e-3
        });
    }

    /// Current heat of a directory.
    pub fn heat_of(&self, dir: InodeId) -> f64 {
        self.heat.get(&dir).copied().unwrap_or(0.0)
    }

    /// Total heat across all directories.
    pub fn total(&self) -> f64 {
        self.heat.values().sum()
    }

    /// Number of directories with live counters.
    pub fn len(&self) -> usize {
        self.heat.len()
    }

    /// True when no directory carries heat.
    pub fn is_empty(&self) -> bool {
        self.heat.is_empty()
    }

    /// Writes the decay factor and every counter (bit-exact) to a
    /// snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_f64(self.decay);
        let entries: Vec<(&InodeId, &f64)> = self.heat.iter().collect();
        e.put_seq(&entries, |e, (id, h)| {
            e.put_u64(id.raw());
            e.put_f64(**h);
        });
    }

    /// Reads a heat map back; counters restore bit-exactly.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<HeatMap, lunule_util::codec::CodecError> {
        use lunule_util::codec::CodecError;
        let decay = d.get_f64("heat decay")?;
        if !(0.0..1.0).contains(&decay) {
            return Err(CodecError::Invalid { what: "heat decay" });
        }
        let entries = d.get_seq("heat entries", |d| {
            let raw = d.get_u64("heat dir id")?;
            // `from_index` aborts past u32 space; reject corruption first.
            let idx = u32::try_from(raw).map_err(|_| CodecError::Invalid {
                what: "heat dir id",
            })?;
            let h = d.get_f64("heat value")?;
            Ok((
                InodeId::from_index(lunule_util::convert::u32_to_usize(idx)),
                h,
            ))
        })?;
        let mut heat = BTreeMap::new();
        for (id, h) in entries {
            if heat.insert(id, h).is_some() {
                return Err(CodecError::Invalid {
                    what: "heat entries",
                });
            }
        }
        Ok(HeatMap { decay, heat })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns_with_dir() -> (Namespace, InodeId, InodeId) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let f = ns.create_file(d, "f", 1).unwrap();
        (ns, d, f)
    }

    #[test]
    fn record_charges_parent_dir() {
        let (ns, d, f) = ns_with_dir();
        let mut hm = HeatMap::new(0.5);
        hm.record(&ns, f);
        hm.record(&ns, f);
        hm.record(&ns, d); // dir access charges the dir's parent (root)
        assert_eq!(hm.heat_of(d), 2.0);
        assert_eq!(hm.heat_of(InodeId::ROOT), 1.0);
        assert_eq!(hm.total(), 3.0);
    }

    #[test]
    fn decay_halves_and_evicts() {
        let (ns, d, f) = ns_with_dir();
        let mut hm = HeatMap::new(0.5);
        hm.record(&ns, f);
        hm.decay_epoch();
        assert_eq!(hm.heat_of(d), 0.5);
        // Enough decay rounds evict the entry entirely.
        for _ in 0..20 {
            hm.decay_epoch();
        }
        assert!(hm.is_empty());
    }

    #[test]
    fn root_self_charge() {
        let ns = Namespace::new();
        let mut hm = HeatMap::new(0.5);
        hm.record(&ns, InodeId::ROOT);
        assert_eq!(hm.heat_of(InodeId::ROOT), 1.0);
    }

    #[test]
    #[should_panic]
    fn decay_of_one_rejected() {
        HeatMap::new(1.0);
    }

    /// `total()` sums floats, and float addition is not associative, so the
    /// sum is only reproducible if the iteration order is. The counters
    /// live in a `BTreeMap` precisely so that the summation order is the
    /// key order, independent of the order requests arrived in; this pins
    /// that down to the bit.
    #[test]
    fn total_is_bit_identical_across_insertion_orders() {
        let mut ns = Namespace::new();
        let mut files = Vec::new();
        for d in 0..8 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            files.push(ns.create_file(dir, "f", 1).unwrap());
        }
        // Decay between batches so per-dir heats are sums of powers of 0.7
        // — values whose addition order genuinely changes the result.
        let run = |order: &[usize]| {
            let mut hm = HeatMap::new(0.7);
            for round in 0..5 {
                for &i in order {
                    for _ in 0..=(i + round) % 4 {
                        hm.record(&ns, files[i]);
                    }
                }
                hm.decay_epoch();
            }
            hm
        };
        let forward: Vec<usize> = (0..8).collect();
        let reverse: Vec<usize> = (0..8).rev().collect();
        let interleaved: Vec<usize> = vec![4, 0, 6, 2, 7, 1, 5, 3];
        let a = run(&forward);
        let b = run(&reverse);
        let c = run(&interleaved);
        assert_eq!(a.total().to_bits(), b.total().to_bits());
        assert_eq!(a.total().to_bits(), c.total().to_bits());
    }
}
