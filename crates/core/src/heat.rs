//! Exponentially decaying popularity ("heat") counters.
//!
//! This is the load metric the built-in CephFS balancer uses for candidate
//! selection: each served request bumps the containing directory's counter,
//! and counters decay by a fixed factor every epoch so old activity fades.
//! Vanilla, GreedySpill and Lunule-Light all select on this metric; full
//! Lunule replaces it with the migration index (see [`crate::analyzer`]).
//!
//! # Layout
//!
//! Counters live in a struct-of-arrays slab: parallel `ids`/`heat` vectors
//! indexed by a stable dense slot, with a paged direct map from inode
//! index to slot ([`PagedMap`]) — the hot `record` path is two O(1) array
//! probes instead of a `BTreeMap` walk. Slots are stable between epoch
//! boundaries; `decay_epoch` compacts evicted entries and rebuilds the
//! index (once per epoch, O(n)).
//!
//! Float addition is not associative, so everything order-sensitive —
//! [`HeatMap::total`], [`HeatMap::encode`] — iterates via `sorted`, the
//! slot permutation in `InodeId` order, which is maintained incrementally
//! on insert. Totals and snapshot bytes are therefore bit-identical across
//! insertion orders, exactly as with the old ordered-map layout.

use lunule_namespace::{InodeId, Namespace};
use lunule_util::convert::{u32_to_usize, usize_to_u32};
use lunule_util::intern::PagedMap;

/// Per-directory decaying heat counters.
#[derive(Clone, Debug, Default)]
pub struct HeatMap {
    decay: f64,
    /// Slot → directory id.
    ids: Vec<InodeId>,
    /// Slot → counter. Parallel to `ids`.
    heat: Vec<f64>,
    /// Inode index → slot.
    index: PagedMap,
    /// Slots in `InodeId` order — the canonical iteration order for all
    /// float summation and serialization.
    sorted: Vec<u32>,
}

impl HeatMap {
    /// Creates a heat map whose counters are multiplied by `decay` at every
    /// epoch boundary. CephFS's default popularity half-life of roughly one
    /// balancing interval corresponds to `decay = 0.5`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= decay < 1.0`.
    pub fn new(decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        HeatMap {
            decay,
            ..HeatMap::default()
        }
    }

    /// Changes the decay factor in place, keeping accumulated counters
    /// (runtime tuning). The factor is clamped into `[0, 1)`.
    pub fn set_decay(&mut self, decay: f64) {
        self.decay = decay.clamp(0.0, 0.999);
    }

    /// The slot for `dir`, allocating one (counter 0.0) on first sight.
    fn slot_or_insert(&mut self, dir: InodeId) -> usize {
        if let Some(s) = self.index.get(dir.index()) {
            return u32_to_usize(s);
        }
        let slot = self.ids.len();
        self.ids.push(dir);
        self.heat.push(0.0);
        self.index.set(dir.index(), usize_to_u32(slot));
        let ids = &self.ids;
        let pos = self.sorted.partition_point(|&s| ids[u32_to_usize(s)] < dir);
        self.sorted.insert(pos, usize_to_u32(slot));
        slot
    }

    /// Charges one request against the directory containing `ino`.
    pub fn record(&mut self, ns: &Namespace, ino: InodeId) {
        let dir = match ns.inode(ino).parent() {
            Some(p) => p,
            None => ino, // the root charges itself
        };
        let slot = self.slot_or_insert(dir);
        self.heat[slot] += 1.0;
    }

    /// Charges `n` identical requests against the directory containing
    /// `ino`, bit-identically to calling [`HeatMap::record`] `n` times.
    ///
    /// When the counter is integer-valued (and stays within f64's exact
    /// integer range) the `n` unit additions collapse to one — the common
    /// case for undecayed counters. Fractional counters (after a non-dyadic
    /// decay) fall back to the sequential unit additions, because repeated
    /// `+ 1.0` is not associative at the bit level there.
    pub fn record_n(&mut self, ns: &Namespace, ino: InodeId, n: u64) {
        if n == 0 {
            return;
        }
        let dir = match ns.inode(ino).parent() {
            Some(p) => p,
            None => ino,
        };
        let slot = self.slot_or_insert(dir);
        let h = &mut self.heat[slot];
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let n_f = lunule_util::convert::u64_to_f64(n);
        // Bit-exact integrality test (heat is never negative, so +0.0 is
        // the only zero fract can produce here).
        if h.fract().to_bits() == 0 && *h + n_f < EXACT {
            *h += n_f;
        } else {
            for _ in 0..n {
                *h += 1.0;
            }
        }
    }

    /// Applies one epoch of decay, dropping counters that have become
    /// negligible so the map does not grow without bound. Compacts the
    /// slab and rebuilds the index — the one O(n) moment per epoch.
    pub fn decay_epoch(&mut self) {
        let decay = self.decay;
        let mut w = 0usize;
        for r in 0..self.heat.len() {
            let h = self.heat[r] * decay;
            if h > 1e-3 {
                self.heat[w] = h;
                self.ids[w] = self.ids[r];
                w += 1;
            }
        }
        self.heat.truncate(w);
        self.ids.truncate(w);
        self.index.clear();
        self.sorted.clear();
        for (slot, id) in self.ids.iter().enumerate() {
            self.index.set(id.index(), usize_to_u32(slot));
            self.sorted.push(usize_to_u32(slot));
        }
        let ids = &self.ids;
        self.sorted.sort_by_key(|&s| ids[u32_to_usize(s)]);
    }

    /// Current heat of a directory.
    pub fn heat_of(&self, dir: InodeId) -> f64 {
        match self.index.get(dir.index()) {
            Some(s) => self.heat[u32_to_usize(s)],
            None => 0.0,
        }
    }

    /// Total heat across all directories. Sums in `InodeId` order, so the
    /// result is bit-identical regardless of insertion order.
    pub fn total(&self) -> f64 {
        self.sorted
            .iter()
            .map(|&s| self.heat[u32_to_usize(s)])
            .sum()
    }

    /// Number of directories with live counters.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no directory carries heat.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Writes the decay factor and every counter (bit-exact, in `InodeId`
    /// order — the same bytes the ordered-map layout produced) to a
    /// snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_f64(self.decay);
        let entries: Vec<(InodeId, f64)> = self
            .sorted
            .iter()
            .map(|&s| (self.ids[u32_to_usize(s)], self.heat[u32_to_usize(s)]))
            .collect();
        e.put_seq(&entries, |e, (id, h)| {
            e.put_u64(id.raw());
            e.put_f64(*h);
        });
    }

    /// Reads a heat map back; counters restore bit-exactly.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<HeatMap, lunule_util::codec::CodecError> {
        use lunule_util::codec::CodecError;
        let decay = d.get_f64("heat decay")?;
        if !(0.0..1.0).contains(&decay) {
            return Err(CodecError::Invalid { what: "heat decay" });
        }
        let entries = d.get_seq("heat entries", |d| {
            let raw = d.get_u64("heat dir id")?;
            // `from_index` aborts past u32 space; reject corruption first.
            let idx = u32::try_from(raw).map_err(|_| CodecError::Invalid {
                what: "heat dir id",
            })?;
            let h = d.get_f64("heat value")?;
            Ok((
                InodeId::from_index(lunule_util::convert::u32_to_usize(idx)),
                h,
            ))
        })?;
        let mut hm = HeatMap {
            decay,
            ..HeatMap::default()
        };
        for (id, h) in entries {
            if hm.index.get(id.index()).is_some() {
                return Err(CodecError::Invalid {
                    what: "heat entries",
                });
            }
            let slot = hm.slot_or_insert(id);
            hm.heat[slot] = h;
        }
        Ok(hm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns_with_dir() -> (Namespace, InodeId, InodeId) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let f = ns.create_file(d, "f", 1).unwrap();
        (ns, d, f)
    }

    #[test]
    fn record_charges_parent_dir() {
        let (ns, d, f) = ns_with_dir();
        let mut hm = HeatMap::new(0.5);
        hm.record(&ns, f);
        hm.record(&ns, f);
        hm.record(&ns, d); // dir access charges the dir's parent (root)
        assert_eq!(hm.heat_of(d), 2.0);
        assert_eq!(hm.heat_of(InodeId::ROOT), 1.0);
        assert_eq!(hm.total(), 3.0);
    }

    #[test]
    fn decay_halves_and_evicts() {
        let (ns, d, f) = ns_with_dir();
        let mut hm = HeatMap::new(0.5);
        hm.record(&ns, f);
        hm.decay_epoch();
        assert_eq!(hm.heat_of(d), 0.5);
        // Enough decay rounds evict the entry entirely.
        for _ in 0..20 {
            hm.decay_epoch();
        }
        assert!(hm.is_empty());
    }

    #[test]
    fn root_self_charge() {
        let ns = Namespace::new();
        let mut hm = HeatMap::new(0.5);
        hm.record(&ns, InodeId::ROOT);
        assert_eq!(hm.heat_of(InodeId::ROOT), 1.0);
    }

    #[test]
    #[should_panic]
    fn decay_of_one_rejected() {
        HeatMap::new(1.0);
    }

    /// Eviction compacts slots; later records must still resolve to the
    /// right (possibly re-allocated) slots and keep canonical order.
    #[test]
    fn compaction_keeps_lookups_and_order_straight() {
        let mut ns = Namespace::new();
        let mut files = Vec::new();
        for d in 0..6 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            files.push((dir, ns.create_file(dir, "f", 1).unwrap()));
        }
        let mut hm = HeatMap::new(0.5);
        // Heat dirs unevenly: after 10 half-life rounds the cold dirs
        // (1 → ~0.00098) fall under the 1e-3 floor while the hot ones
        // (100 → ~0.098) survive.
        for (i, &(_, f)) in files.iter().enumerate() {
            hm.record_n(&ns, f, if i % 2 == 0 { 100 } else { 1 });
        }
        for _ in 0..10 {
            hm.decay_epoch();
        }
        assert_eq!(hm.len(), 3, "cold dirs evicted");
        for (i, &(dir, _)) in files.iter().enumerate() {
            let want = if i % 2 == 0 {
                100.0 * 0.5f64.powi(10)
            } else {
                0.0
            };
            assert_eq!(hm.heat_of(dir), want);
        }
        // Re-heat an evicted dir: fresh slot, correct value.
        hm.record(&ns, files[1].1);
        assert_eq!(hm.heat_of(files[1].0), 1.0);
        assert_eq!(hm.len(), 4);
    }

    /// `total()` sums floats, and float addition is not associative, so the
    /// sum is only reproducible if the iteration order is. The slab keeps a
    /// sorted slot permutation precisely so that the summation order is the
    /// id order, independent of the order requests arrived in; this pins
    /// that down to the bit.
    #[test]
    fn total_is_bit_identical_across_insertion_orders() {
        let mut ns = Namespace::new();
        let mut files = Vec::new();
        for d in 0..8 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            files.push(ns.create_file(dir, "f", 1).unwrap());
        }
        // Decay between batches so per-dir heats are sums of powers of 0.7
        // — values whose addition order genuinely changes the result.
        let run = |order: &[usize]| {
            let mut hm = HeatMap::new(0.7);
            for round in 0..5 {
                for &i in order {
                    for _ in 0..=(i + round) % 4 {
                        hm.record(&ns, files[i]);
                    }
                }
                hm.decay_epoch();
            }
            hm
        };
        let forward: Vec<usize> = (0..8).collect();
        let reverse: Vec<usize> = (0..8).rev().collect();
        let interleaved: Vec<usize> = vec![4, 0, 6, 2, 7, 1, 5, 3];
        let a = run(&forward);
        let b = run(&reverse);
        let c = run(&interleaved);
        assert_eq!(a.total().to_bits(), b.total().to_bits());
        assert_eq!(a.total().to_bits(), c.total().to_bits());
        // The snapshot bytes are equally order-independent.
        let bytes = |hm: &HeatMap| {
            let mut e = lunule_util::codec::Encoder::new();
            hm.encode(&mut e);
            e.into_bytes()
        };
        assert_eq!(bytes(&a), bytes(&b));
        assert_eq!(bytes(&a), bytes(&c));
    }
}
