//! The Imbalance Factor (IF) model — Equations 1–3 of the paper.
//!
//! The model turns a per-rank load vector into a single number in `[0, 1]`
//! describing how *harmfully* imbalanced the cluster is:
//!
//! 1. the Coefficient of Variation of the loads (corrected sample standard
//!    deviation over the mean) measures dispersion;
//! 2. dividing by `√n` (the CoV of the worst case — all load on one MDS)
//!    normalises it into `[0, 1]` regardless of cluster size;
//! 3. a logistic *urgency* term `U` scales the result down when even the
//!    busiest MDS is far from its capacity, so benign imbalance (everyone
//!    lightly loaded) does not trigger migration.

use lunule_util::convert::usize_to_f64;

/// Configuration of the IF model.
#[derive(Clone, Copy, Debug)]
pub struct IfModelConfig {
    /// `C`: the maximal IOPS a single MDS can theoretically serve.
    pub mds_capacity: f64,
    /// `S`: smoothness knob of the logistic urgency curve, in (0, 1).
    /// The paper sets 0.2.
    pub smoothness: f64,
}

impl Default for IfModelConfig {
    fn default() -> Self {
        IfModelConfig {
            mds_capacity: 5_000.0,
            smoothness: 0.2,
        }
    }
}

/// The analytical model computing the cluster's Imbalance Factor.
#[derive(Clone, Copy, Debug)]
pub struct ImbalanceFactorModel {
    cfg: IfModelConfig,
}

impl ImbalanceFactorModel {
    /// Builds the model.
    ///
    /// # Panics
    /// Panics if capacity is non-positive or smoothness is outside (0, 1).
    pub fn new(cfg: IfModelConfig) -> Self {
        assert!(cfg.mds_capacity > 0.0, "MDS capacity must be positive");
        assert!(
            cfg.smoothness > 0.0 && cfg.smoothness < 1.0,
            "smoothness must lie in (0, 1)"
        );
        ImbalanceFactorModel { cfg }
    }

    /// Model configuration.
    pub fn config(&self) -> IfModelConfig {
        self.cfg
    }

    /// Coefficient of Variation of `loads` (Eq. 1): corrected sample
    /// standard deviation divided by the mean. Zero for degenerate inputs
    /// (fewer than two ranks, or an idle cluster).
    pub fn cov(loads: &[f64]) -> f64 {
        let n = loads.len();
        if n < 2 {
            return 0.0;
        }
        let mean = loads.iter().sum::<f64>() / usize_to_f64(n);
        if mean <= 0.0 {
            return 0.0;
        }
        let var = loads.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / (usize_to_f64(n) - 1.0);
        var.sqrt() / mean
    }

    /// Normalised CoV in `[0, 1]`: Eq. 1 divided by its maximum `√n`.
    pub fn normalized_cov(loads: &[f64]) -> f64 {
        let n = loads.len();
        if n < 2 {
            return 0.0;
        }
        (Self::cov(loads) / usize_to_f64(n).sqrt()).clamp(0.0, 1.0)
    }

    /// The urgency term `U` (Eq. 2): a logistic function of
    /// `u = l_max / C`, the busiest MDS's utilisation.
    ///
    /// `U → 0` when the busiest MDS idles, `U = 0.5` at 50 % utilisation,
    /// `U → 1` as it saturates; `S` controls how sharp the transition is.
    pub fn urgency(&self, l_max: f64) -> f64 {
        let u = (l_max / self.cfg.mds_capacity).max(0.0);
        1.0 / (1.0 + ((1.0 - 2.0 * u) / self.cfg.smoothness).exp())
    }

    /// The Imbalance Factor (Eq. 3): `IF = CoV/√n · U`, in `[0, 1]`.
    pub fn imbalance_factor(&self, loads: &[f64]) -> f64 {
        let l_max = loads.iter().copied().fold(0.0, f64::max);
        Self::normalized_cov(loads) * self.urgency(l_max)
    }

    /// Capacity-aware Imbalance Factor (extension — the paper assumes
    /// homogeneous MDSs, footnote 1). Dispersion and urgency are computed
    /// over *utilisations* `u_i = l_i / C_i`: a cluster whose per-rank
    /// utilisations are equal is balanced no matter how unequal the raw
    /// loads are, and urgency rises as the most-utilised rank saturates.
    pub fn imbalance_factor_hetero(&self, loads: &[f64], capacities: &[f64]) -> f64 {
        let n = loads.len();
        if n < 2 || capacities.len() < n {
            return self.imbalance_factor(loads);
        }
        let utils: Vec<f64> = loads
            .iter()
            .zip(capacities)
            .map(|(l, c)| if *c > 0.0 { l / c } else { 0.0 })
            .collect();
        let u_max = utils.iter().copied().fold(0.0, f64::max);
        // The urgency logistic expects an absolute load vs the model's C;
        // feed it the utilisation scaled back to capacity units.
        Self::normalized_cov(&utils) * self.urgency(u_max * self.cfg.mds_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ImbalanceFactorModel {
        ImbalanceFactorModel::new(IfModelConfig {
            mds_capacity: 1_000.0,
            smoothness: 0.2,
        })
    }

    #[test]
    fn cov_of_uniform_is_zero() {
        assert_eq!(ImbalanceFactorModel::cov(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn cov_of_single_hot_mds_is_sqrt_n() {
        // All load on one of n MDSs gives CoV = sqrt(n) exactly (with the
        // corrected sample std dev).
        for n in [2usize, 5, 16] {
            let mut loads = vec![0.0; n];
            loads[0] = 100.0;
            let cov = ImbalanceFactorModel::cov(&loads);
            assert!(
                (cov - (n as f64).sqrt()).abs() < 1e-9,
                "n={n}: cov={cov}, expected sqrt(n)={}",
                (n as f64).sqrt()
            );
            assert!((ImbalanceFactorModel::normalized_cov(&loads) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(ImbalanceFactorModel::cov(&[]), 0.0);
        assert_eq!(ImbalanceFactorModel::cov(&[42.0]), 0.0);
        assert_eq!(ImbalanceFactorModel::cov(&[0.0, 0.0]), 0.0);
        assert_eq!(model().imbalance_factor(&[]), 0.0);
    }

    #[test]
    fn urgency_is_logistic() {
        let m = model();
        // Idle cluster: far below half capacity -> near zero.
        assert!(m.urgency(0.0) < 0.01);
        // Exactly half capacity: the logistic midpoint.
        assert!((m.urgency(500.0) - 0.5).abs() < 1e-12);
        // Saturated: near one.
        assert!(m.urgency(1_000.0) > 0.99);
        // Monotone increasing.
        let mut last = -1.0;
        for i in 0..=20 {
            let u = m.urgency(i as f64 * 100.0);
            assert!(u > last);
            last = u;
        }
    }

    #[test]
    fn benign_imbalance_is_suppressed() {
        let m = model();
        // Same *relative* skew, low vs high absolute load.
        let light = [20.0, 1.0, 1.0, 1.0, 1.0];
        let heavy = [900.0, 45.0, 45.0, 45.0, 45.0];
        let if_light = m.imbalance_factor(&light);
        let if_heavy = m.imbalance_factor(&heavy);
        assert!(
            if_light < 0.02,
            "benign imbalance should be tolerated, got {if_light}"
        );
        assert!(
            if_heavy > 0.5,
            "harmful imbalance must score high, got {if_heavy}"
        );
    }

    #[test]
    fn if_is_bounded() {
        let m = model();
        for loads in [
            vec![0.0; 5],
            vec![1e6, 0.0, 0.0],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1e9],
        ] {
            let v = m.imbalance_factor(&loads);
            assert!(
                (0.0..=1.0).contains(&v),
                "IF {v} out of range for {loads:?}"
            );
        }
    }

    #[test]
    fn hetero_if_treats_proportional_load_as_balanced() {
        let m = model();
        let caps = [800.0, 400.0, 400.0];
        // Loads proportional to capacities: utilisations equal -> IF ~ 0.
        let proportional = [800.0, 400.0, 400.0];
        assert!(m.imbalance_factor_hetero(&proportional, &caps) < 1e-9);
        // Even loads overload the weak ranks: IF must rise.
        let even = [533.0, 533.0, 534.0];
        assert!(m.imbalance_factor_hetero(&even, &caps) > 0.05);
        // Homogeneous capacities reduce to the plain model.
        let uniform = [1000.0; 3];
        let loads = [900.0, 100.0, 0.0];
        let a = m.imbalance_factor_hetero(&loads, &uniform);
        let b = m.imbalance_factor(&[0.9, 0.1, 0.0].map(|u| u * 1000.0));
        assert!((a - b).abs() < 0.2, "{a} vs {b}");
    }

    #[test]
    fn hetero_if_falls_back_on_short_capacity_vector() {
        let m = model();
        let loads = [900.0, 100.0, 0.0];
        assert_eq!(
            m.imbalance_factor_hetero(&loads, &[1.0]),
            m.imbalance_factor(&loads)
        );
    }

    #[test]
    #[should_panic]
    fn bad_smoothness_rejected() {
        ImbalanceFactorModel::new(IfModelConfig {
            mds_capacity: 100.0,
            smoothness: 1.5,
        });
    }
}
