//! # lunule-core
//!
//! The paper's primary contribution, as a reusable library:
//!
//! * the **Imbalance Factor model** ([`if_model`]) — CoV-based imbalance
//!   sensing with a logistic urgency term (Equations 1–3);
//! * the **role and amount decider** ([`roles`]) — Algorithm 1, with
//!   per-epoch migration capacity and importer future-load correction;
//! * the **Pattern Analyzer** ([`analyzer`]) — cutting windows, α/β
//!   locality factors and the migration index (Equation 4);
//! * the **Subtree Selector** ([`selector`]) — match / split / greedy
//!   candidate search;
//! * the assembled [`LunuleBalancer`] plus the paper's three comparison
//!   systems in [`baselines`] (Vanilla CephFS, GreedySpill, Dir-Hash).
//!
//! Everything is expressed against the `lunule-namespace` substrate and the
//! [`Balancer`] trait, so policies are interchangeable in the simulator and
//! directly unit-testable without one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod balancer;
pub mod baselines;
pub mod dirload;
pub mod heat;
pub mod if_model;
pub mod linreg;
pub mod lunule;
pub mod mantle;
pub mod roles;
pub mod selector;
pub mod stats;

pub use analyzer::{AnalyzerConfig, MigrationIndex, PatternAnalyzer};
pub use balancer::{
    Access, Balancer, BalancerKind, ExportTask, MigrationPlan, NoopBalancer, OpKind, SubtreeChoice,
};
pub use baselines::{
    DirHashBalancer, DirHashConfig, GreedySpillBalancer, GreedySpillConfig, VanillaBalancer,
    VanillaConfig,
};
pub use dirload::{build_candidates, candidates_of_rank, Candidate};
pub use heat::HeatMap;
pub use if_model::{IfModelConfig, ImbalanceFactorModel};
pub use lunule::{LunuleBalancer, LunuleConfig};
pub use mantle::{PolicyCtx, ProgrammableBalancer, Transfer};
pub use roles::{decide_roles, Pairing, RoleConfig, RoleDecision};
pub use selector::{
    observe_selection, select_hottest, select_subtrees, subtrees_overlap, SelectorConfig,
};
pub use stats::{EpochStats, LoadHistory};

use lunule_namespace::MdsRank;

/// Constructs a balancer instance by kind, using each policy's defaults and
/// `capacity` (IOPS) for the policies that model MDS capacity.
pub fn make_balancer(kind: BalancerKind, capacity: f64) -> Box<dyn Balancer> {
    // The per-epoch migration cap scales with the MDS capacity (the paper
    // sets it to "the maximal capacity during one epoch"): one rank can
    // neither shed nor absorb more than half its service rate per decision
    // without the migration itself destabilising the cluster.
    let roles = crate::roles::RoleConfig {
        migration_capacity: capacity * 0.5,
        ..crate::roles::RoleConfig::default()
    };
    match kind {
        BalancerKind::Lunule => Box::new(LunuleBalancer::new(LunuleConfig {
            if_model: IfModelConfig {
                mds_capacity: capacity,
                ..IfModelConfig::default()
            },
            roles,
            ..LunuleConfig::default()
        })),
        BalancerKind::LunuleLight => Box::new(LunuleBalancer::new(LunuleConfig {
            if_model: IfModelConfig {
                mds_capacity: capacity,
                ..IfModelConfig::default()
            },
            roles,
            ..LunuleConfig::light()
        })),
        BalancerKind::Vanilla => Box::new(VanillaBalancer::default()),
        BalancerKind::GreedySpill => Box::new(GreedySpillBalancer::default()),
        BalancerKind::DirHash => Box::new(DirHashBalancer::default()),
        BalancerKind::Off => Box::new(NoopBalancer),
    }
}

/// Computes the imbalance factor of a load vector with a given capacity,
/// using the paper's default smoothness — the one-call convenience the
/// reporting layers use.
pub fn imbalance_factor(loads: &[f64], capacity: f64) -> f64 {
    ImbalanceFactorModel::new(IfModelConfig {
        mds_capacity: capacity,
        smoothness: 0.2,
    })
    .imbalance_factor(loads)
}

/// Re-export: the rank type policies address MDSs by.
pub type Rank = MdsRank;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        for kind in [
            BalancerKind::Lunule,
            BalancerKind::LunuleLight,
            BalancerKind::Vanilla,
            BalancerKind::GreedySpill,
            BalancerKind::DirHash,
            BalancerKind::Off,
        ] {
            let b = make_balancer(kind, 1000.0);
            assert_eq!(b.name(), kind.label());
        }
    }

    #[test]
    fn convenience_if_matches_model() {
        let loads = [100.0, 0.0, 0.0];
        let direct = imbalance_factor(&loads, 100.0);
        let model = ImbalanceFactorModel::new(IfModelConfig {
            mds_capacity: 100.0,
            smoothness: 0.2,
        });
        assert_eq!(direct, model.imbalance_factor(&loads));
    }
}
