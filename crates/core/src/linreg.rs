//! Least-squares trend fitting for future-load prediction.
//!
//! Algorithm 1 needs each candidate importer's *future* load (`fld`) to
//! avoid shipping work onto an MDS whose load is already climbing. The paper
//! suggests a linear regression over the recent load history; this module
//! implements ordinary least squares over equally spaced samples.

use lunule_util::convert::usize_to_f64;

/// Ordinary least-squares fit `y = intercept + slope * x` over samples taken
/// at `x = 0, 1, …, y.len() - 1`.
///
/// Returns `(slope, intercept)`. With fewer than two samples the slope is 0
/// and the intercept is the last sample (or 0 when empty), i.e. "assume the
/// load stays where it is".
pub fn fit_trend(y: &[f64]) -> (f64, f64) {
    let n = y.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    if n == 1 {
        return (0.0, y[0]);
    }
    let nf = usize_to_f64(n);
    let x_mean = (nf - 1.0) / 2.0;
    let y_mean = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, yi) in y.iter().enumerate() {
        let dx = usize_to_f64(i) - x_mean;
        sxy += dx * (yi - y_mean);
        sxx += dx * dx;
    }
    // `sxx` is a sum of squares, so `<= 0.0` is exactly the degenerate case
    // without comparing floats for equality.
    let slope = if sxx <= 0.0 { 0.0 } else { sxy / sxx };
    (slope, y_mean - slope * x_mean)
}

/// Predicts the next sample (`x = y.len()`) of the series, clamped at zero —
/// a negative predicted load is meaningless.
pub fn predict_next(y: &[f64]) -> f64 {
    let (slope, intercept) = fit_trend(y);
    (intercept + slope * usize_to_f64(y.len())).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(fit_trend(&[]), (0.0, 0.0));
        assert_eq!(fit_trend(&[7.0]), (0.0, 7.0));
        assert_close(predict_next(&[7.0]), 7.0);
    }

    #[test]
    fn exact_line() {
        // y = 3 + 2x
        let y = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept) = fit_trend(&y);
        assert_close(slope, 2.0);
        assert_close(intercept, 3.0);
        assert_close(predict_next(&y), 11.0);
    }

    #[test]
    fn flat_series() {
        let y = [4.0; 6];
        let (slope, _) = fit_trend(&y);
        assert_close(slope, 0.0);
        assert_close(predict_next(&y), 4.0);
    }

    #[test]
    fn decline_clamps_at_zero() {
        let y = [10.0, 5.0, 0.0];
        assert_eq!(predict_next(&y), 0.0);
    }

    #[test]
    fn noisy_trend_is_between_extremes() {
        let y = [1.0, 3.0, 2.0, 4.0, 3.5];
        let p = predict_next(&y);
        assert!(p > 3.0 && p < 6.0, "prediction {p} out of plausible band");
    }
}
