//! The Lunule balancer: IF-model-driven triggering, Algorithm 1 role and
//! amount determination, and workload-aware subtree selection.
//!
//! Two variants are provided, matching the paper's evaluation:
//! * **Lunule** — full system: selection by migration index.
//! * **Lunule-Light** — same trigger and amounts, but the selection falls
//!   back to decayed-heat hotspots (isolating the contribution of the
//!   workload-aware planner in the ablation).

use crate::analyzer::{AnalyzerConfig, PatternAnalyzer};
use crate::balancer::{Access, Balancer, ExportTask, MigrationPlan, OpKind};
use crate::dirload::{build_candidates, candidates_of_rank};
use crate::heat::HeatMap;
use crate::if_model::{IfModelConfig, ImbalanceFactorModel};
use crate::roles::{decide_roles_weighted, RoleConfig};
use crate::selector::{select_hottest, select_subtrees, subtrees_overlap, SelectorConfig};
use crate::stats::{EpochStats, LoadHistory};
use lunule_namespace::{Namespace, SubtreeMap};
use lunule_telemetry::{Event, Telemetry};
use lunule_util::convert::usize_to_u64;

/// Full configuration of a Lunule balancer instance.
#[derive(Clone, Debug)]
pub struct LunuleConfig {
    /// IF model parameters (capacity `C`, smoothness `S`).
    pub if_model: IfModelConfig,
    /// Re-balance trigger: migrate only when `IF` exceeds this.
    pub if_threshold: f64,
    /// Algorithm 1 parameters (deviation threshold `L`, per-epoch capacity).
    pub roles: RoleConfig,
    /// Pattern analyzer parameters (cutting windows, sibling probability).
    pub analyzer: AnalyzerConfig,
    /// Epochs of load history retained for future-load prediction.
    pub history_window: usize,
    /// Selection strategy: `true` = migration-index selection (full
    /// Lunule), `false` = decayed-heat hotspots (Lunule-Light).
    pub workload_aware: bool,
    /// Heat decay factor used by the Lunule-Light selection path.
    pub heat_decay: f64,
    /// Ablation: treat the urgency term as 1 (trigger on raw normalised
    /// CoV), removing the benign-imbalance tolerance.
    pub ablate_urgency: bool,
    /// Ablation: skip the importer future-load correction in Algorithm 1.
    pub ablate_future_load: bool,
    /// Per-rank capacities for heterogeneous clusters (extension — the
    /// paper assumes homogeneous MDSs). `None` (the default) keeps the
    /// paper's uniform-capacity model; when set, imbalance is measured
    /// over utilisations and Algorithm 1 targets capacity shares.
    pub capacities: Option<Vec<f64>>,
    /// How many epochs a rank's last-known-good load report stays usable
    /// when fresh reports go missing. Beyond this age the rank is treated
    /// as idle (load 0) rather than trusted with stale data.
    pub max_report_age_epochs: u64,
}

impl Default for LunuleConfig {
    fn default() -> Self {
        LunuleConfig {
            if_model: IfModelConfig::default(),
            if_threshold: 0.10,
            roles: RoleConfig::default(),
            analyzer: AnalyzerConfig::default(),
            history_window: 6,
            workload_aware: true,
            heat_decay: 0.5,
            ablate_urgency: false,
            ablate_future_load: false,
            capacities: None,
            max_report_age_epochs: 3,
        }
    }
}

impl LunuleConfig {
    /// The Lunule-Light ablation: identical trigger/amount machinery,
    /// hotspot-based selection.
    pub fn light() -> Self {
        LunuleConfig {
            workload_aware: false,
            ..Self::default()
        }
    }
}

/// The Lunule metadata load balancer (see module docs).
pub struct LunuleBalancer {
    cfg: LunuleConfig,
    model: ImbalanceFactorModel,
    analyzer: PatternAnalyzer,
    heat: HeatMap,
    history: LoadHistory,
    selector_cfg: SelectorConfig,
    last_if: f64,
    telemetry: Telemetry,
    /// Last trusted `(requests, epoch)` report per rank, for report-loss
    /// fallback.
    last_good: Vec<Option<(u64, u64)>>,
}

impl LunuleBalancer {
    /// Builds a balancer from configuration.
    pub fn new(cfg: LunuleConfig) -> Self {
        LunuleBalancer {
            model: ImbalanceFactorModel::new(cfg.if_model),
            analyzer: PatternAnalyzer::new(cfg.analyzer),
            heat: HeatMap::new(cfg.heat_decay),
            history: LoadHistory::new(cfg.history_window.max(2)),
            selector_cfg: SelectorConfig::default(),
            last_if: 0.0,
            telemetry: Telemetry::disabled(),
            last_good: Vec::new(),
            cfg,
        }
    }

    /// The IF value computed at the most recent epoch boundary.
    pub fn last_imbalance_factor(&self) -> f64 {
        self.last_if
    }

    /// Immutable access to the pattern analyzer (for tests/inspection).
    pub fn analyzer(&self) -> &PatternAnalyzer {
        &self.analyzer
    }

    /// Replaces missing load reports with the rank's last-known-good value
    /// (if young enough, per `max_report_age_epochs`) or zero, and records
    /// fresh reports for future fallback. Returns the patched snapshot the
    /// rest of the epoch runs on.
    fn patch_missing_reports(&mut self, stats: &EpochStats) -> EpochStats {
        if self.last_good.len() < stats.n_mds() {
            self.last_good.resize(stats.n_mds(), None);
        }
        let mut patched = stats.clone();
        let mut fallbacks = 0u64;
        for rank in 0..stats.n_mds() {
            if stats.is_missing(rank) {
                patched.requests[rank] = match self.last_good[rank] {
                    Some((requests, seen))
                        if stats.epoch.saturating_sub(seen) <= self.cfg.max_report_age_epochs =>
                    {
                        fallbacks += 1;
                        requests
                    }
                    _ => 0,
                };
            } else {
                self.last_good[rank] = Some((stats.requests[rank], stats.epoch));
            }
        }
        if fallbacks > 0 {
            self.telemetry
                .counter_add("balancer.report_fallbacks", fallbacks);
        }
        patched
    }
}

impl Balancer for LunuleBalancer {
    fn name(&self) -> &'static str {
        if self.cfg.workload_aware {
            "Lunule"
        } else {
            "Lunule-Light"
        }
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Runtime-tunable knobs: `if_threshold`, `if_smoothness` (rebuilds the
    /// IF model), `max_report_age_epochs`, `deviation_threshold`, and
    /// `heat_decay` (takes effect for subsequently recorded heat).
    fn set_knob(&mut self, name: &str, value: f64) -> bool {
        match name {
            "if_threshold" => {
                self.cfg.if_threshold = value.max(0.0);
            }
            "if_smoothness" => {
                self.cfg.if_model.smoothness = value.clamp(0.01, 0.99);
                self.model = ImbalanceFactorModel::new(self.cfg.if_model);
            }
            "max_report_age_epochs" => {
                // as-ok: clamped non-negative; saturation at u64::MAX is fine
                self.cfg.max_report_age_epochs = value.max(0.0) as u64;
            }
            "deviation_threshold" => {
                self.cfg.roles.deviation_threshold = value.max(0.0);
            }
            "heat_decay" => {
                self.cfg.heat_decay = value.clamp(0.0, 0.999);
                self.heat.set_decay(self.cfg.heat_decay);
            }
            _ => return false,
        }
        true
    }

    fn record_access(&mut self, ns: &Namespace, access: Access) {
        if self.cfg.workload_aware {
            self.analyzer
                .record_access(ns, access.ino, access.kind == OpKind::Create);
            if access.kind == OpKind::Remove {
                self.analyzer.record_remove(ns, access.ino);
            }
        } else {
            self.heat.record(ns, access.ino);
        }
    }

    fn record_access_n(&mut self, ns: &Namespace, access: Access, n: u64) {
        if self.cfg.workload_aware {
            if access.kind == OpKind::Remove {
                // Removes mutate per-inode population ledgers; the engine
                // never batches them, so keep the exact sequential path.
                for _ in 0..n {
                    self.record_access(ns, access);
                }
            } else {
                self.analyzer
                    .record_access_n(ns, access.ino, access.kind == OpKind::Create, n);
            }
        } else {
            self.heat.record_n(ns, access.ino, n);
        }
    }

    fn on_epoch(&mut self, ns: &Namespace, map: &SubtreeMap, stats: &EpochStats) -> MigrationPlan {
        let _epoch_span = self.telemetry.span("balancer.epoch");
        let patched = self.patch_missing_reports(stats);
        let stats = &patched;
        let loads = stats.iops();
        self.last_if = {
            let _s = self.telemetry.span("balancer.if_model");
            if self.cfg.ablate_urgency {
                ImbalanceFactorModel::normalized_cov(&loads)
            } else if let Some(caps) = &self.cfg.capacities {
                self.model.imbalance_factor_hetero(&loads, caps)
            } else {
                self.model.imbalance_factor(&loads)
            }
        };
        self.telemetry
            .gauge_set("balancer.imbalance_factor", 0, self.last_if);
        self.history.push(stats);
        // Epoch boundary == cutting-window boundary.
        if self.cfg.workload_aware {
            self.analyzer.advance_window();
            self.analyzer.observe(&self.telemetry);
        } else {
            self.heat.decay_epoch();
        }

        let decision_event =
            |triggered: bool, pairings: usize, subtrees: usize, candidates: usize| {
                Event::Decision {
                    epoch: stats.epoch,
                    imbalance_factor: self.last_if,
                    triggered,
                    pairings: usize_to_u64(pairings),
                    subtrees: usize_to_u64(subtrees),
                    candidates: usize_to_u64(candidates),
                }
            };

        if self.last_if <= self.cfg.if_threshold {
            self.telemetry.emit(|| decision_event(false, 0, 0, 0));
            return MigrationPlan::default();
        }

        let empty_history = LoadHistory::new(2);
        let history = if self.cfg.ablate_future_load {
            &empty_history
        } else {
            &self.history
        };
        let decision = {
            let _s = self.telemetry.span("balancer.roles");
            decide_roles_weighted(
                &loads,
                self.cfg.capacities.as_deref(),
                history,
                &self.cfg.roles,
            )
        };
        if decision.pairings.is_empty() {
            self.telemetry.emit(|| decision_event(true, 0, 0, 0));
            return MigrationPlan::default();
        }

        // Candidate loads: migration index (Lunule) or heat (Light). Both
        // are "per recent window" quantities; Algorithm 1 amounts are in
        // IOPS — scale demand into the candidate unit via the epoch length.
        let _select_span = self.telemetry.span("balancer.select");
        let candidates = if self.cfg.workload_aware {
            let analyzer = &self.analyzer;
            build_candidates(ns, map, &|d| analyzer.mindex_of(d))
        } else {
            let heat = &self.heat;
            build_candidates(ns, map, &|d| heat.heat_of(d))
        };

        // Fallback metric when every migration index is zero (e.g. a scan
        // that already covered the whole namespace): recent visit counts.
        let mut fallback: Option<Vec<crate::dirload::Candidate>> = None;
        // Subtrees already claimed by an earlier pairing this epoch: each
        // pairing must select from what is left, or every importer would be
        // handed the same hottest subtrees and all but one choice would be
        // rejected at migration time.
        let mut used: Vec<lunule_namespace::FragKey> = Vec::new();
        let mut exports = Vec::new();
        for pairing in &decision.pairings {
            let unused = |c: &&crate::dirload::Candidate| {
                !used.iter().any(|u| subtrees_overlap(ns, u, &c.key))
            };
            let mut mine: Vec<crate::dirload::Candidate> =
                candidates_of_rank(&candidates, pairing.exporter)
                    .iter()
                    .filter(unused)
                    .copied()
                    .collect();
            let demand = pairing.amount * stats.epoch_secs;
            let mut subtrees = if mine.is_empty() {
                Vec::new()
            } else if self.cfg.workload_aware {
                select_subtrees(ns, &mine, demand, &self.selector_cfg)
            } else {
                select_hottest(ns, &mine, demand, pairing.exporter)
            };
            if subtrees.is_empty() && self.cfg.workload_aware {
                let all = fallback.get_or_insert_with(|| {
                    let analyzer = &self.analyzer;
                    build_candidates(ns, map, &|d| analyzer.recent_visits_of(d))
                });
                mine = candidates_of_rank(all, pairing.exporter)
                    .iter()
                    .filter(unused)
                    .copied()
                    .collect();
                if !mine.is_empty() {
                    subtrees = select_subtrees(ns, &mine, demand, &self.selector_cfg);
                }
            }
            if subtrees.is_empty() {
                continue;
            }
            used.extend(subtrees.iter().map(|s| s.subtree));
            crate::selector::observe_selection(&self.telemetry, mine.len(), &subtrees);
            exports.push(ExportTask {
                from: pairing.exporter,
                to: pairing.importer,
                target_amount: demand,
                subtrees,
            });
        }
        let plan = MigrationPlan { exports };
        self.telemetry.emit(|| {
            decision_event(
                true,
                decision.pairings.len(),
                plan.subtree_count(),
                candidates.len(),
            )
        });
        plan
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        // Knob-mutable configuration first: a restored balancer is built
        // from the *run* configuration, which does not reflect `setknob`
        // commands applied mid-run.
        e.put_f64(self.cfg.if_threshold);
        e.put_f64(self.cfg.if_model.smoothness);
        e.put_u64(self.cfg.max_report_age_epochs);
        e.put_f64(self.cfg.roles.deviation_threshold);
        e.put_f64(self.cfg.heat_decay);
        e.put_f64(self.last_if);
        self.history.encode(e);
        self.heat.encode(e);
        self.analyzer.save_state(e);
        e.put_seq(&self.last_good, |e, slot| {
            e.put_option(slot, |e, (req, epoch)| {
                e.put_u64(*req);
                e.put_u64(*epoch);
            });
        });
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        self.cfg.if_threshold = d.get_f64("lunule if_threshold")?;
        self.cfg.if_model.smoothness = d.get_f64("lunule if_smoothness")?;
        self.model = ImbalanceFactorModel::new(self.cfg.if_model);
        self.cfg.max_report_age_epochs = d.get_u64("lunule max_report_age")?;
        self.cfg.roles.deviation_threshold = d.get_f64("lunule deviation_threshold")?;
        self.cfg.heat_decay = d.get_f64("lunule heat_decay")?;
        self.last_if = d.get_f64("lunule last_if")?;
        self.history = LoadHistory::decode(d)?;
        self.heat = HeatMap::decode(d)?;
        self.analyzer.load_state(d)?;
        self.last_good = d.get_seq("lunule last_good", |d| {
            d.get_option("last_good slot", |d| {
                let req = d.get_u64("last_good requests")?;
                let epoch = d.get_u64("last_good epoch")?;
                Ok((req, epoch))
            })
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_namespace::{InodeId, MdsRank};

    fn small_cfg() -> LunuleConfig {
        LunuleConfig {
            if_model: IfModelConfig {
                mds_capacity: 100.0,
                smoothness: 0.2,
            },
            if_threshold: 0.10,
            roles: RoleConfig {
                deviation_threshold: 0.01,
                migration_capacity: 1_000.0,
            },
            ..LunuleConfig::default()
        }
    }

    /// Namespace with two dirs of files, everything initially on mds.0.
    fn fixture() -> (Namespace, SubtreeMap, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let mut files = Vec::new();
        for d in 0..4 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            for i in 0..25 {
                files.push(ns.create_file(dir, &format!("f{i}"), 1).unwrap());
            }
        }
        (ns, SubtreeMap::new(MdsRank(0)), files)
    }

    #[test]
    fn save_and_load_state_round_trips() {
        let (ns, map, files) = fixture();
        let mut b = LunuleBalancer::new(small_cfg());
        feed(&mut b, &ns, &files);
        let stats = EpochStats::new(0, 10.0, vec![900, 10]);
        let _ = b.on_epoch(&ns, &map, &stats);
        assert!(b.set_knob("if_threshold", 0.42));
        assert!(b.set_knob("heat_decay", 0.7));

        let mut e = lunule_util::codec::Encoder::new();
        b.save_state(&mut e);
        let bytes = e.into_bytes();

        // Restore into a *fresh* balancer built from the run config.
        let mut restored = LunuleBalancer::new(small_cfg());
        let mut d = lunule_util::codec::Decoder::new(&bytes);
        restored.load_state(&mut d).unwrap();
        d.finish().unwrap();

        // The restored instance re-saves byte-identically…
        let mut e2 = lunule_util::codec::Encoder::new();
        restored.save_state(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);

        // …and behaves identically from here on.
        let stats2 = EpochStats::new(1, 10.0, vec![800, 120]);
        let plan_a = b.on_epoch(&ns, &map, &stats2);
        let plan_b = restored.on_epoch(&ns, &map, &stats2);
        assert_eq!(plan_a.exports.len(), plan_b.exports.len());
        assert_eq!(
            b.last_imbalance_factor().to_bits(),
            restored.last_imbalance_factor().to_bits()
        );
    }

    fn feed(b: &mut LunuleBalancer, ns: &Namespace, files: &[InodeId]) {
        for f in files {
            b.record_access(
                ns,
                Access {
                    ino: *f,
                    served_by: MdsRank(0),
                    kind: OpKind::Read,
                },
            );
        }
    }

    #[test]
    fn knobs_apply_and_unknown_names_are_rejected() {
        let mut b = LunuleBalancer::new(small_cfg());
        assert!(b.set_knob("if_threshold", 0.42));
        assert!((b.cfg.if_threshold - 0.42).abs() < 1e-12);
        assert!(b.set_knob("if_smoothness", 0.3));
        assert!((b.cfg.if_model.smoothness - 0.3).abs() < 1e-12);
        assert!(b.set_knob("max_report_age_epochs", 7.0));
        assert_eq!(b.cfg.max_report_age_epochs, 7);
        assert!(b.set_knob("deviation_threshold", 0.05));
        assert!(b.set_knob("heat_decay", 0.8));
        assert!(!b.set_knob("warp_factor", 9.0));
        // A raised threshold suppresses migration on a skew that would
        // otherwise trigger.
        let (ns, map, files) = fixture();
        let mut tuned = LunuleBalancer::new(small_cfg());
        feed(&mut tuned, &ns, &files);
        assert!(tuned.set_knob("if_threshold", 1.0));
        let plan = tuned.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![300, 0, 0]));
        assert!(plan.is_empty(), "threshold 1.0 must suppress migration");
    }

    #[test]
    fn balanced_low_load_produces_no_plan() {
        let (ns, map, files) = fixture();
        let mut b = LunuleBalancer::new(small_cfg());
        feed(&mut b, &ns, &files);
        // Even loads: IF ~ 0.
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![100; 3]));
        assert!(plan.is_empty());
        assert!(b.last_imbalance_factor() < 0.05);
    }

    #[test]
    fn benign_imbalance_is_tolerated() {
        let (ns, map, files) = fixture();
        let mut b = LunuleBalancer::new(small_cfg());
        feed(&mut b, &ns, &files);
        // Skewed but tiny absolute load: urgency suppresses the trigger.
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![30, 1, 1]));
        assert!(plan.is_empty(), "urgency must suppress benign imbalance");
    }

    #[test]
    fn harmful_imbalance_triggers_workload_aware_plan() {
        let (ns, map, files) = fixture();
        let mut b = LunuleBalancer::new(small_cfg());
        feed(&mut b, &ns, &files);
        // mds.0 saturated, peers idle.
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![1000, 0, 0]));
        assert!(
            !plan.is_empty(),
            "IF={} should trigger",
            b.last_imbalance_factor()
        );
        for task in &plan.exports {
            assert_eq!(task.from, MdsRank(0));
            assert_ne!(task.to, MdsRank(0));
            assert!(!task.subtrees.is_empty());
            assert!(task.selected_load() > 0.0);
        }
    }

    #[test]
    fn light_variant_uses_heat() {
        let (ns, map, files) = fixture();
        let mut b = LunuleBalancer::new(LunuleConfig {
            workload_aware: false,
            ..small_cfg()
        });
        assert_eq!(b.name(), "Lunule-Light");
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![1000, 0, 0]));
        assert!(!plan.is_empty());
    }

    #[test]
    fn plan_exports_only_owned_subtrees() {
        let (ns, map, files) = fixture();
        let mut b = LunuleBalancer::new(small_cfg());
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![1000, 0, 0]));
        for task in &plan.exports {
            for choice in &task.subtrees {
                let auth = map.frag_authority(&ns, choice.subtree.dir, &choice.subtree.frag);
                assert_eq!(auth, task.from, "exporter must own what it ships");
            }
        }
    }

    #[test]
    fn missing_reports_fall_back_to_last_good() {
        let (ns, map, files) = fixture();
        let mut b = LunuleBalancer::new(small_cfg());
        feed(&mut b, &ns, &files);
        // Epoch 0: rank 0's hot report arrives and is recorded as last-good.
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 10.0, vec![1000, 0, 0]));
        assert!(!plan.is_empty());
        // Epoch 1: rank 0's report is lost; the placeholder claims idle. The
        // balancer must still see the hot rank via its last-known-good load.
        feed(&mut b, &ns, &files);
        let stats = EpochStats::new(1, 10.0, vec![0, 0, 0]).with_missing(vec![true, false, false]);
        let plan = b.on_epoch(&ns, &map, &stats);
        assert!(!plan.is_empty(), "fallback keeps the hot rank visible");
        // Far beyond the age cap the stale report is no longer trusted: the
        // missing rank degrades to idle and nothing triggers.
        let stats = EpochStats::new(99, 10.0, vec![0, 0, 0]).with_missing(vec![true, false, false]);
        let plan = b.on_epoch(&ns, &map, &stats);
        assert!(plan.is_empty(), "stale reports age out to zero load");
        assert!(b.last_imbalance_factor() < 0.05);
    }

    #[test]
    fn name_reflects_variant() {
        assert_eq!(
            LunuleBalancer::new(LunuleConfig::default()).name(),
            "Lunule"
        );
        assert_eq!(
            LunuleBalancer::new(LunuleConfig::light()).name(),
            "Lunule-Light"
        );
    }
}
