//! A Mantle-style programmable balancer framework.
//!
//! Section 3.4 of the paper envisions "a generic framework that is similar
//! to but more powerful than Mantle" in which users specify the three
//! balancing decisions as policies. This module provides exactly that seam:
//! a [`ProgrammableBalancer`] assembled from three user-supplied hooks —
//!
//! * **when** — should the cluster re-balance this epoch?
//! * **howmuch** — which exporter→importer transfers, and how large?
//! * **where** — which subtrees satisfy one transfer?
//!
//! Mantle exposed the first two (the paper's critique is that subtree
//! selection — *where* — was not programmable); here all three are. The
//! shipped balancers can all be expressed in these terms, and the hooks
//! receive the same statistics infrastructure (decaying heat by default)
//! that the built-in policies use.

use crate::balancer::{Access, Balancer, ExportTask, MigrationPlan};
use crate::dirload::{build_candidates, candidates_of_rank, Candidate};
use crate::heat::HeatMap;
use crate::selector::subtrees_overlap;
use crate::stats::{EpochStats, LoadHistory};
use lunule_namespace::{FragKey, MdsRank, Namespace, SubtreeMap};

/// Context handed to every policy hook.
pub struct PolicyCtx<'a> {
    /// Per-rank IOPS this epoch (`cld`).
    pub loads: &'a [f64],
    /// Rolling load history (for trend-based policies).
    pub history: &'a LoadHistory,
    /// Epoch length in seconds (to convert IOPS amounts into per-epoch
    /// request counts for selection).
    pub epoch_secs: f64,
}

/// One transfer requested by the *howmuch* hook. Amounts are in IOPS, like
/// Algorithm 1's.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transfer {
    /// Source rank.
    pub from: MdsRank,
    /// Destination rank.
    pub to: MdsRank,
    /// Load to move, IOPS.
    pub amount: f64,
}

/// The *when* hook: re-balance this epoch?
pub type WhenPolicy = dyn Fn(&PolicyCtx<'_>) -> bool + Send;

/// The *howmuch* hook: the transfers to perform.
pub type HowMuchPolicy = dyn Fn(&PolicyCtx<'_>) -> Vec<Transfer> + Send;

/// The *where* hook: select subtrees for one transfer from the exporter's
/// candidates (sorted by descending load; `demand` is in per-epoch request
/// units). Returning subtrees whose keys overlap already-claimed ones is
/// tolerated — the framework filters them.
pub type WherePolicy =
    dyn Fn(&Namespace, &[Candidate], f64, MdsRank) -> Vec<crate::balancer::SubtreeChoice> + Send;

/// A balancer assembled from the three policy hooks.
pub struct ProgrammableBalancer {
    name: &'static str,
    heat: HeatMap,
    history: LoadHistory,
    when: Box<WhenPolicy>,
    howmuch: Box<HowMuchPolicy>,
    where_: Box<WherePolicy>,
}

impl ProgrammableBalancer {
    /// Assembles a balancer. `name` appears in experiment output.
    pub fn new(
        name: &'static str,
        when: Box<WhenPolicy>,
        howmuch: Box<HowMuchPolicy>,
        where_: Box<WherePolicy>,
    ) -> Self {
        ProgrammableBalancer {
            name,
            heat: HeatMap::new(0.5),
            history: LoadHistory::new(6),
            when,
            howmuch,
            where_,
        }
    }

    /// A GreedySpill-equivalent expressed as policies — demonstrates that
    /// the framework subsumes the Mantle case study from the paper's
    /// evaluation.
    pub fn greedy_spill_policy() -> Self {
        ProgrammableBalancer::new(
            "Mantle:GreedySpill",
            Box::new(|ctx: &PolicyCtx<'_>| ctx.loads.iter().any(|l| *l <= 1.0)),
            Box::new(|ctx: &PolicyCtx<'_>| {
                let n = ctx.loads.len();
                let mut out = Vec::new();
                for (i, &load) in ctx.loads.iter().enumerate() {
                    let j = (i + 1) % n;
                    if load > 1.0 && ctx.loads[j] <= 1.0 {
                        out.push(Transfer {
                            from: MdsRank::from_index(i),
                            to: MdsRank::from_index(j),
                            amount: load / 2.0,
                        });
                    }
                }
                out
            }),
            Box::new(|ns, candidates, demand, exporter| {
                crate::selector::select_hottest(ns, candidates, demand, exporter)
            }),
        )
    }
}

impl Balancer for ProgrammableBalancer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        self.heat.encode(e);
        self.history.encode(e);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        self.heat = HeatMap::decode(d)?;
        self.history = LoadHistory::decode(d)?;
        Ok(())
    }

    fn record_access(&mut self, ns: &Namespace, access: Access) {
        self.heat.record(ns, access.ino);
    }

    fn record_access_n(&mut self, ns: &Namespace, access: Access, n: u64) {
        self.heat.record_n(ns, access.ino, n);
    }

    fn on_epoch(&mut self, ns: &Namespace, map: &SubtreeMap, stats: &EpochStats) -> MigrationPlan {
        self.heat.decay_epoch();
        self.history.push(stats);
        let loads = stats.iops();
        let ctx = PolicyCtx {
            loads: &loads,
            history: &self.history,
            epoch_secs: stats.epoch_secs,
        };
        if !(self.when)(&ctx) {
            return MigrationPlan::default();
        }
        let transfers = (self.howmuch)(&ctx);
        if transfers.is_empty() {
            return MigrationPlan::default();
        }
        let heat = &self.heat;
        let candidates = build_candidates(ns, map, &|d| heat.heat_of(d));
        let mut used: Vec<FragKey> = Vec::new();
        let mut exports = Vec::new();
        for t in transfers {
            if t.from == t.to || t.amount <= 0.0 {
                continue;
            }
            let mine: Vec<Candidate> = candidates_of_rank(&candidates, t.from)
                .into_iter()
                .filter(|c| !used.iter().any(|u| subtrees_overlap(ns, u, &c.key)))
                .collect();
            if mine.is_empty() {
                continue;
            }
            let demand = t.amount * stats.epoch_secs;
            let subtrees = (self.where_)(ns, &mine, demand, t.from);
            let subtrees: Vec<_> = subtrees
                .into_iter()
                .filter(|s| !used.iter().any(|u| subtrees_overlap(ns, u, &s.subtree)))
                .collect();
            if subtrees.is_empty() {
                continue;
            }
            used.extend(subtrees.iter().map(|s| s.subtree));
            exports.push(ExportTask {
                from: t.from,
                to: t.to,
                target_amount: demand,
                subtrees,
            });
        }
        MigrationPlan { exports }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::OpKind;
    use lunule_namespace::InodeId;

    fn fixture() -> (Namespace, SubtreeMap, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let mut files = Vec::new();
        for d in 0..4 {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            for i in 0..10 {
                files.push(ns.create_file(dir, &format!("f{i}"), 1).unwrap());
            }
        }
        (ns, SubtreeMap::new(MdsRank(0)), files)
    }

    fn feed(b: &mut dyn Balancer, ns: &Namespace, files: &[InodeId]) {
        for f in files {
            b.record_access(
                ns,
                Access {
                    ino: *f,
                    served_by: MdsRank(0),
                    kind: OpKind::Read,
                },
            );
        }
    }

    #[test]
    fn when_gate_blocks_everything() {
        let (ns, map, files) = fixture();
        let mut b = ProgrammableBalancer::new(
            "never",
            Box::new(|_| false),
            Box::new(|_| panic!("howmuch must not run when `when` is false")),
            Box::new(|_, _, _, _| panic!("where must not run either")),
        );
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![900, 0, 0]));
        assert!(plan.is_empty());
    }

    #[test]
    fn custom_policy_produces_plan() {
        let (ns, map, files) = fixture();
        let mut b = ProgrammableBalancer::new(
            "half-to-one",
            Box::new(|ctx| ctx.loads[0] > 100.0),
            Box::new(|ctx| {
                vec![Transfer {
                    from: MdsRank(0),
                    to: MdsRank(1),
                    amount: ctx.loads[0] / 2.0,
                }]
            }),
            Box::new(|ns, cands, demand, exp| {
                crate::selector::select_hottest(ns, cands, demand, exp)
            }),
        );
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![800, 0, 0]));
        assert_eq!(plan.exports.len(), 1);
        assert_eq!(plan.exports[0].to, MdsRank(1));
        assert!((plan.exports[0].target_amount - 400.0).abs() < 1.0);
    }

    #[test]
    fn framework_greedy_spill_matches_builtin_shape() {
        let (ns, map, files) = fixture();
        let mut mantle = ProgrammableBalancer::greedy_spill_policy();
        let mut builtin = crate::baselines::GreedySpillBalancer::default();
        feed(&mut mantle, &ns, &files);
        feed(&mut builtin, &ns, &files);
        let stats = EpochStats::new(0, 1.0, vec![800, 0, 0]);
        let a = mantle.on_epoch(&ns, &map, &stats);
        let b = builtin.on_epoch(&ns, &map, &stats);
        assert_eq!(a.exports.len(), b.exports.len());
        assert_eq!(a.exports[0].from, b.exports[0].from);
        assert_eq!(a.exports[0].to, b.exports[0].to);
        assert!((a.exports[0].target_amount - b.exports[0].target_amount).abs() < 1.0);
    }

    #[test]
    fn overlapping_selections_are_filtered() {
        let (ns, map, files) = fixture();
        // A "where" that always returns the same single hottest subtree for
        // every transfer: the second transfer must be dropped.
        let mut b = ProgrammableBalancer::new(
            "dup",
            Box::new(|_| true),
            Box::new(|_| {
                vec![
                    Transfer {
                        from: MdsRank(0),
                        to: MdsRank(1),
                        amount: 10.0,
                    },
                    Transfer {
                        from: MdsRank(0),
                        to: MdsRank(2),
                        amount: 10.0,
                    },
                ]
            }),
            Box::new(|_, cands, _, _| {
                vec![crate::balancer::SubtreeChoice {
                    subtree: cands[0].key,
                    estimated_load: cands[0].load,
                }]
            }),
        );
        feed(&mut b, &ns, &files);
        let plan = b.on_epoch(&ns, &map, &EpochStats::new(0, 1.0, vec![800, 0, 0]));
        assert_eq!(plan.exports.len(), 1, "duplicate subtree must be filtered");
    }
}
