//! Role and migration-amount determination — Algorithm 1 of the paper.
//!
//! Once the IF model decides a re-balance is needed, the Migration Initiator
//! partitions ranks into *exporters* (loaded above the mean by more than a
//! threshold) and *importers* (below the mean, with the gap corrected by
//! their predicted future load), clamps both sides by the per-epoch
//! migration capacity, and pairs demands greedily into an export matrix
//! `E[i][j]` = load to ship from rank `i` to rank `j`.

use crate::linreg::predict_next;
use crate::stats::LoadHistory;
use lunule_namespace::MdsRank;
use lunule_util::convert::usize_to_f64;

/// Tunables for Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct RoleConfig {
    /// `L`: squared relative deviation threshold. A rank participates only
    /// when `((|cld - mean|)/mean)^2 > L`.
    pub deviation_threshold: f64,
    /// `Cap`: the maximal load one MDS can export or import during a single
    /// epoch (in the same unit as the loads — IOPS here). Bounds migration
    /// so a single decision cannot over-migrate (the paper's fix for the
    /// ping-pong effect).
    pub migration_capacity: f64,
}

impl Default for RoleConfig {
    fn default() -> Self {
        RoleConfig {
            deviation_threshold: 0.02,
            migration_capacity: 2_000.0,
        }
    }
}

/// One pairing produced by Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pairing {
    /// Overloaded rank shedding load.
    pub exporter: MdsRank,
    /// Underloaded rank absorbing it.
    pub importer: MdsRank,
    /// Load amount to move, in the unit the loads were given in.
    pub amount: f64,
}

/// The full decision: pairings plus the per-rank roles for reporting.
#[derive(Clone, Debug, Default)]
pub struct RoleDecision {
    /// Exporter→importer transfers. Empty when the cluster is balanced
    /// enough or no pairing is possible.
    pub pairings: Vec<Pairing>,
    /// Ranks classified as exporters with their total export demand (`eld`).
    pub exporters: Vec<(MdsRank, f64)>,
    /// Ranks classified as importers with their import capacity (`ild`).
    pub importers: Vec<(MdsRank, f64)>,
}

impl RoleDecision {
    /// Total load the decision moves.
    pub fn total_amount(&self) -> f64 {
        self.pairings.iter().map(|p| p.amount).sum()
    }

    /// Export demand assigned to `rank` across all its pairings.
    pub fn export_amount_of(&self, rank: MdsRank) -> f64 {
        self.pairings
            .iter()
            .filter(|p| p.exporter == rank)
            .map(|p| p.amount)
            .sum()
    }
}

/// Runs Algorithm 1.
///
/// * `loads` — current per-rank load (`cld`), indexed by rank.
/// * `history` — recent load history for future-load (`fld`) prediction;
///   pass an empty history to disable the importer-side correction.
pub fn decide_roles(loads: &[f64], history: &LoadHistory, cfg: &RoleConfig) -> RoleDecision {
    decide_roles_weighted(loads, None, history, cfg)
}

/// Capacity-aware generalisation of Algorithm 1 (extension — the paper's
/// footnote 1 assumes homogeneous MDSs and scopes heterogeneity out).
///
/// With `capacities = Some(c)`, each rank's *target* load is the cluster
/// total apportioned by its capacity share instead of the plain mean, so a
/// rank twice as powerful is expected to carry twice the load before it
/// counts as an exporter. `None` reduces to the paper's homogeneous form.
pub fn decide_roles_weighted(
    loads: &[f64],
    capacities: Option<&[f64]>,
    history: &LoadHistory,
    cfg: &RoleConfig,
) -> RoleDecision {
    let n = loads.len();
    let mut decision = RoleDecision::default();
    if n < 2 {
        return decision;
    }
    let total: f64 = loads.iter().sum();
    if total <= 0.0 {
        return decision;
    }
    // Per-rank target: capacity share of the total, or the mean.
    let targets: Vec<f64> = match capacities {
        Some(caps) if caps.len() >= n => {
            let cap_total: f64 = caps[..n].iter().sum();
            if cap_total <= 0.0 {
                vec![total / usize_to_f64(n); n]
            } else {
                caps[..n].iter().map(|c| total * c / cap_total).collect()
            }
        }
        _ => vec![total / usize_to_f64(n); n],
    };

    // Phase 1: classify ranks and compute per-rank demands.
    let mut eld = vec![0.0f64; n]; // export demand
    let mut ild = vec![0.0f64; n]; // import capacity
    for (i, &cld) in loads.iter().enumerate() {
        let target = targets[i];
        if target <= 0.0 {
            continue;
        }
        let delta = (cld - target).abs();
        if (delta / target).powi(2) <= cfg.deviation_threshold {
            continue;
        }
        if cld > target {
            eld[i] = delta.min(cfg.migration_capacity);
            decision.exporters.push((MdsRank::from_index(i), eld[i]));
        } else {
            // Importer only if its own predicted growth will not close the
            // gap by itself (lines 10-12 of Algorithm 1).
            let fld = predict_next(history.series(i));
            let growth = (fld - cld).max(0.0);
            if growth < delta {
                ild[i] = (delta - growth).min(cfg.migration_capacity);
                if ild[i] > 0.0 {
                    decision.importers.push((MdsRank::from_index(i), ild[i]));
                }
            }
        }
    }

    // Phase 2: pair exporters with importers, largest demands first so the
    // most stressed rank gets relief even if capacity runs out.
    let mut exporters: Vec<usize> = (0..n).filter(|&i| eld[i] > 0.0).collect();
    let mut importers: Vec<usize> = (0..n).filter(|&i| ild[i] > 0.0).collect();
    exporters.sort_by(|&a, &b| eld[b].total_cmp(&eld[a]));
    importers.sort_by(|&a, &b| ild[b].total_cmp(&ild[a]));
    for &i in &exporters {
        for &j in &importers {
            if eld[i] <= 0.0 {
                break;
            }
            if ild[j] <= 0.0 {
                continue;
            }
            let amount = eld[i].min(ild[j]);
            decision.pairings.push(Pairing {
                exporter: MdsRank::from_index(i),
                importer: MdsRank::from_index(j),
                amount,
            });
            eld[i] -= amount;
            ild[j] -= amount;
        }
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::EpochStats;

    fn cfg() -> RoleConfig {
        RoleConfig {
            deviation_threshold: 0.01,
            migration_capacity: 1_000.0,
        }
    }

    fn no_history() -> LoadHistory {
        LoadHistory::new(4)
    }

    #[test]
    fn balanced_cluster_produces_nothing() {
        let d = decide_roles(&[100.0, 100.0, 100.0], &no_history(), &cfg());
        assert!(d.pairings.is_empty());
        assert!(d.exporters.is_empty());
    }

    #[test]
    fn single_hot_mds_exports_to_idle_peers() {
        let d = decide_roles(&[900.0, 10.0, 10.0], &no_history(), &cfg());
        assert_eq!(d.exporters.len(), 1);
        assert_eq!(d.exporters[0].0, MdsRank(0));
        assert_eq!(d.importers.len(), 2);
        assert!(!d.pairings.is_empty());
        for p in &d.pairings {
            assert_eq!(p.exporter, MdsRank(0));
            assert!(p.amount > 0.0);
        }
        // Exports never exceed the exporter's own demand.
        let mean = 920.0 / 3.0;
        assert!(d.export_amount_of(MdsRank(0)) <= 900.0 - mean + 1e-9);
    }

    #[test]
    fn capacity_clamps_exports() {
        let tight = RoleConfig {
            deviation_threshold: 0.01,
            migration_capacity: 50.0,
        };
        let d = decide_roles(&[900.0, 10.0, 10.0], &no_history(), &tight);
        assert!(d.total_amount() <= 50.0 + 1e-9);
    }

    #[test]
    fn importer_with_rising_trend_is_skipped() {
        // Rank 1 is currently light but its load is climbing steeply enough
        // to close the gap on its own; Algorithm 1 must not import into it.
        let mut hist = LoadHistory::new(4);
        for e in 0..4u64 {
            // Rank 1's load: 0, 200, 400, 600 -> predicted next = 800.
            hist.push(&EpochStats::new(e, 1.0, vec![900, e * 200, 0]));
        }
        let d = decide_roles(&[900.0, 600.0, 0.0], &hist, &cfg());
        assert!(
            d.pairings.iter().all(|p| p.importer != MdsRank(1)),
            "rising rank must not be an importer: {:?}",
            d.pairings
        );
        // The genuinely idle rank 2 still imports.
        assert!(d.pairings.iter().any(|p| p.importer == MdsRank(2)));
    }

    #[test]
    fn below_threshold_deviation_ignored() {
        // 4% relative deviation, squared = 0.0016 < L = 0.01.
        let d = decide_roles(&[104.0, 100.0, 96.0], &no_history(), &cfg());
        assert!(d.pairings.is_empty());
    }

    #[test]
    fn export_import_totals_match() {
        let d = decide_roles(&[500.0, 400.0, 10.0, 5.0], &no_history(), &cfg());
        let exported: f64 = d.pairings.iter().map(|p| p.amount).sum();
        let per_importer: f64 = d
            .importers
            .iter()
            .map(|(r, _)| {
                d.pairings
                    .iter()
                    .filter(|p| p.importer == *r)
                    .map(|p| p.amount)
                    .sum::<f64>()
            })
            .sum();
        assert!((exported - per_importer).abs() < 1e-9);
        // No importer receives more than its capacity.
        for (r, cap) in &d.importers {
            let got: f64 = d
                .pairings
                .iter()
                .filter(|p| p.importer == *r)
                .map(|p| p.amount)
                .sum();
            assert!(got <= cap + 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(decide_roles(&[], &no_history(), &cfg()).pairings.is_empty());
        assert!(decide_roles(&[5.0], &no_history(), &cfg())
            .pairings
            .is_empty());
        assert!(decide_roles(&[0.0, 0.0], &no_history(), &cfg())
            .pairings
            .is_empty());
    }

    #[test]
    fn weighted_targets_respect_capacity_shares() {
        // Rank 0 is twice as powerful; a 2:1 load split is the *balanced*
        // state under capacity weighting and must produce no migration.
        let caps = [200.0, 100.0];
        let d = decide_roles_weighted(&[200.0, 100.0], Some(&caps), &no_history(), &cfg());
        assert!(
            d.pairings.is_empty(),
            "capacity-proportional load is balanced"
        );
        // An even split, by contrast, overloads the weak rank.
        let d = decide_roles_weighted(&[150.0, 150.0], Some(&caps), &no_history(), &cfg());
        assert_eq!(d.exporters.len(), 1);
        assert_eq!(d.exporters[0].0, MdsRank(1), "the weak rank must export");
        assert!(d.pairings.iter().all(|p| p.importer == MdsRank(0)));
    }

    #[test]
    fn weighted_with_none_matches_homogeneous() {
        let loads = [500.0, 400.0, 10.0, 5.0];
        let a = decide_roles(&loads, &no_history(), &cfg());
        let b = decide_roles_weighted(&loads, None, &no_history(), &cfg());
        assert_eq!(a.pairings, b.pairings);
    }

    #[test]
    fn weighted_handles_zero_capacity_vector() {
        let caps = [0.0, 0.0];
        // Degenerate capacities fall back to the mean-based targets.
        let d = decide_roles_weighted(&[900.0, 10.0], Some(&caps), &no_history(), &cfg());
        assert!(!d.pairings.is_empty());
    }
}
