//! The Subtree Selector — turns a migration amount into a concrete set of
//! dirfrag subtrees (Section 3.3 / 4.1 of the paper).
//!
//! Given the exporter's candidate subtrees ranked by migration index, the
//! selector tries, in order:
//!
//! 1. **Match** — a single subtree whose index is within ±10 % of the
//!    requested amount;
//! 2. **Split** — the smallest oversized subtree is divided: if its load
//!    sits in the directory's own children, the directory fragment is split
//!    in half (Ceph dirfrag split); if the load sits in nested directories,
//!    the selector descends and recurses over the children;
//! 3. **Greedy** — a minimal set of subtrees whose indices sum roughly to
//!    the amount, largest-first, never adding one that overshoots the
//!    remaining demand by more than the tolerance.

use crate::balancer::SubtreeChoice;
use crate::dirload::Candidate;
use lunule_namespace::{FragKey, MdsRank, Namespace, HASH_BITS};
use lunule_util::convert::{f64_to_u64, usize_to_f64, usize_to_u64};

/// Selector tunables.
#[derive(Clone, Copy, Debug)]
pub struct SelectorConfig {
    /// Relative tolerance for "approximately equal" matches (paper: 10 %).
    pub tolerance: f64,
    /// Load below which a subtree is never worth migrating on its own.
    pub min_load: f64,
    /// When a directory's *local* load share exceeds this fraction of its
    /// subtree load, splitting happens at the fragment level rather than by
    /// descending into child directories.
    pub self_hot_fraction: f64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            tolerance: 0.10,
            min_load: 1e-6,
            self_hot_fraction: 0.5,
        }
    }
}

/// Selects subtrees from `candidates` (all owned by one exporter, any
/// order) to cover `amount` load units.
///
/// Nested candidates are handled by the greedy phase skipping any candidate
/// whose subtree contains, or is contained in, an already selected one —
/// migrating both would double-move the nested part.
pub fn select_subtrees(
    ns: &Namespace,
    candidates: &[Candidate],
    amount: f64,
    cfg: &SelectorConfig,
) -> Vec<SubtreeChoice> {
    let mut sorted: Vec<Candidate> = candidates
        .iter()
        .filter(|c| c.load > cfg.min_load)
        .copied()
        .collect();
    sorted.sort_by(|a, b| b.load.total_cmp(&a.load));
    if sorted.is_empty() || amount <= 0.0 {
        return Vec::new();
    }

    // Path 1: a single close match.
    if let Some(hit) = sorted
        .iter()
        .filter(|c| (c.load - amount).abs() <= cfg.tolerance * amount)
        .min_by(|a, b| (a.load - amount).abs().total_cmp(&(b.load - amount).abs()))
    {
        return vec![SubtreeChoice {
            subtree: hit.key,
            estimated_load: hit.load,
        }];
    }

    // Path 2: split the smallest oversized candidate.
    if let Some(big) = sorted
        .iter()
        .filter(|c| c.load > amount)
        .min_by(|a, b| a.load.total_cmp(&b.load))
    {
        let mut out = Vec::new();
        split_candidate(ns, big, amount, cfg, 0, &mut out);
        if !out.is_empty() {
            return out;
        }
    }

    // Path 3: greedy minimal set, largest-first.
    let overshoot = 1.0 + cfg.tolerance;
    let mut out: Vec<SubtreeChoice> = Vec::new();
    let mut remaining = amount;
    for c in &sorted {
        if remaining <= cfg.tolerance * amount {
            break;
        }
        if c.load > remaining * overshoot {
            continue;
        }
        if out.iter().any(|s| keys_overlap(ns, &s.subtree, &c.key)) {
            continue;
        }
        out.push(SubtreeChoice {
            subtree: c.key,
            estimated_load: c.load,
        });
        remaining -= c.load;
    }
    out
}

/// Recursively splits an oversized candidate until a piece close to
/// `amount` emerges. Appends the chosen pieces to `out`.
fn split_candidate(
    ns: &Namespace,
    cand: &Candidate,
    amount: f64,
    cfg: &SelectorConfig,
    depth: u32,
    out: &mut Vec<SubtreeChoice>,
) {
    // Recursion bound: fragment bits are capped, tree depth is finite, but
    // degenerate load estimates could ping-pong — cap generously.
    if depth > u32::from(HASH_BITS) + 16 {
        return;
    }
    if cand.load <= amount * (1.0 + cfg.tolerance) {
        if cand.load > cfg.min_load {
            out.push(SubtreeChoice {
                subtree: cand.key,
                estimated_load: cand.load,
            });
        }
        return;
    }

    let self_hot = cand.load > 0.0 && cand.local_load / cand.load >= cfg.self_hot_fraction;
    if self_hot {
        // Case 1 of the paper: the accesses concentrate on the directory
        // itself — divide the fragment in two and keep the half closer to
        // the demand. Loads apportion by the children count in each half.
        if cand.key.frag.bits() >= HASH_BITS {
            // Cannot split further; take it whole (over-shoot is bounded by
            // one leaf fragment).
            out.push(SubtreeChoice {
                subtree: cand.key,
                estimated_load: cand.load,
            });
            return;
        }
        let (l, r) = cand.key.frag.split_in_two();
        let total_children = ns.children_in_frag(cand.key.dir, &cand.key.frag).len();
        if total_children == 0 {
            return;
        }
        let left_children = ns.children_in_frag(cand.key.dir, &l).len();
        let lfrac = usize_to_f64(left_children) / usize_to_f64(total_children);
        let halves = [
            (l, cand.load * lfrac, cand.local_load * lfrac, left_children),
            (
                r,
                cand.load * (1.0 - lfrac),
                cand.local_load * (1.0 - lfrac),
                total_children - left_children,
            ),
        ];
        // Recurse on the half closest to the amount from above; if both are
        // below, take the bigger one and continue greedily on the rest.
        let mut best: Option<Candidate> = None;
        for (frag, load, local, inodes) in halves {
            if load <= cfg.min_load {
                continue;
            }
            let c = Candidate {
                key: FragKey {
                    dir: cand.key.dir,
                    frag,
                },
                rank: cand.rank,
                load,
                local_load: local,
                inodes,
            };
            let better = match &best {
                None => true,
                Some(b) => pick_preference(c.load, amount) < pick_preference(b.load, amount),
            };
            if better {
                best = Some(c);
            }
        }
        if let Some(b) = best {
            split_candidate(ns, &b, amount, cfg, depth + 1, out);
        }
        return;
    }

    // Case 2: hot descendants — descend into child directories and select
    // among them greedily (largest-first, splitting the first oversized).
    let children: Vec<Candidate> = child_candidates(ns, cand);
    let mut sorted = children;
    sorted.sort_by(|a, b| b.load.total_cmp(&a.load));
    let mut remaining = amount;
    for c in &sorted {
        if remaining <= cfg.tolerance * amount {
            break;
        }
        if c.load <= remaining * (1.0 + cfg.tolerance) {
            if c.load > cfg.min_load {
                out.push(SubtreeChoice {
                    subtree: c.key,
                    estimated_load: c.load,
                });
                remaining -= c.load;
            }
        } else {
            split_candidate(ns, c, remaining, cfg, depth + 1, out);
            // Whatever the recursive call selected reduces the remainder.
            remaining = amount
                - out
                    .iter()
                    .map(|s| s.estimated_load)
                    .sum::<f64>()
                    .min(amount);
        }
    }
}

/// Preference metric for choosing which half to recurse on: prefer loads
/// just above `amount` (splittable towards it), then closest below.
fn pick_preference(load: f64, amount: f64) -> f64 {
    if load >= amount {
        load - amount
    } else {
        (amount - load) * 2.0
    }
}

/// Builds candidates for the child directories of `cand` (approximating
/// their subtree loads by even division of the parent's nested load — the
/// precise per-child loads live in the balancer's tracker, but at this depth
/// an even split is the paper's own fallback).
fn child_candidates(ns: &Namespace, cand: &Candidate) -> Vec<Candidate> {
    let kids = ns.children_in_frag(cand.key.dir, &cand.key.frag);
    let dirs: Vec<_> = kids.into_iter().filter(|c| ns.inode(*c).is_dir()).collect();
    if dirs.is_empty() {
        return Vec::new();
    }
    let nested = (cand.load - cand.local_load).max(0.0);
    let share = nested / usize_to_f64(dirs.len());
    dirs.into_iter()
        .map(|d| {
            let inodes = ns.walk_subtree(d).count();
            Candidate {
                key: FragKey::whole(d),
                rank: cand.rank,
                load: share,
                local_load: share, // unknown split; treat as self-held
                inodes,
            }
        })
        .collect()
}

/// True when migrating both keys would move overlapping namespace regions:
/// same directory with non-disjoint fragments, or one directory nested
/// inside the other's subtree. The simulator's migrator uses this to refuse
/// concurrent migrations of overlapping subtrees.
pub fn subtrees_overlap(ns: &Namespace, a: &FragKey, b: &FragKey) -> bool {
    keys_overlap(ns, a, b)
}

fn keys_overlap(ns: &Namespace, a: &FragKey, b: &FragKey) -> bool {
    if a.dir == b.dir {
        return !a.frag.disjoint(&b.frag);
    }
    is_ancestor_of(ns, a, b.dir) || is_ancestor_of(ns, b, a.dir)
}

/// True if `descendant` lies inside the subtree `(anc.dir, anc.frag)`.
fn is_ancestor_of(ns: &Namespace, anc: &FragKey, descendant: lunule_namespace::InodeId) -> bool {
    let chain = ns.path_chain(descendant);
    for pair in chain.windows(2) {
        if pair[0] == anc.dir {
            let hash = ns.dentry_hash_of(pair[1]);
            return anc.frag.contains_hash(hash);
        }
    }
    false
}

/// Reusable helper for heat-based policies (Vanilla, GreedySpill,
/// Lunule-Light): take the hottest candidates until `amount` is covered.
///
/// Mirrors CephFS's `find_exports` walk: a candidate whose load is mostly
/// *nested* in sub-directories is skipped when it overshoots the remaining
/// demand — its children appear in the candidate list and are picked
/// individually — but a candidate whose own children carry the heat is
/// shipped whole even when it overshoots (stock CephFS has no fragment-level
/// matching here, and that over-migration is one of the paper's documented
/// inefficiencies).
pub fn select_hottest(
    ns: &Namespace,
    candidates: &[Candidate],
    amount: f64,
    exporter: MdsRank,
) -> Vec<SubtreeChoice> {
    let mut sorted: Vec<Candidate> = candidates
        .iter()
        .filter(|c| c.rank == exporter && c.load > 0.0)
        .copied()
        .collect();
    sorted.sort_by(|a, b| b.load.total_cmp(&a.load));
    let mut out: Vec<SubtreeChoice> = Vec::new();
    let mut covered = 0.0;
    for c in sorted {
        if covered >= amount {
            break;
        }
        let remaining = amount - covered;
        // Descend instead of shipping a mostly-nested oversized subtree.
        let mostly_nested = c.local_load < 0.5 * c.load;
        if c.load > remaining * 1.5 && mostly_nested {
            continue;
        }
        if out.iter().any(|s| keys_overlap(ns, &s.subtree, &c.key)) {
            continue;
        }
        covered += c.load;
        out.push(SubtreeChoice {
            subtree: c.key,
            estimated_load: c.load,
        });
    }
    out
}

/// Journals one pairing's selection outcome into the telemetry stream:
/// how many candidates were on the table, how many subtrees were chosen,
/// and the load estimated to move (as counters plus a per-selection
/// candidate-count histogram). Free when the handle is disabled.
pub fn observe_selection(
    telemetry: &lunule_telemetry::Telemetry,
    candidates: usize,
    chosen: &[SubtreeChoice],
) {
    telemetry.histogram_record("selector.candidates_per_pairing", usize_to_u64(candidates));
    telemetry.counter_add("selector.subtrees_chosen", usize_to_u64(chosen.len()));
    let load: f64 = chosen.iter().map(|s| s.estimated_load).sum();
    telemetry.counter_add("selector.load_selected", f64_to_u64(load.max(0.0)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_namespace::{Frag, InodeId};

    fn cfg() -> SelectorConfig {
        SelectorConfig::default()
    }

    /// Five sibling dirs with loads 50, 30, 12, 5, 3.
    fn flat_fixture() -> (Namespace, Vec<Candidate>) {
        let mut ns = Namespace::new();
        let loads = [50.0, 30.0, 12.0, 5.0, 3.0];
        let mut cands = Vec::new();
        for (i, load) in loads.iter().enumerate() {
            let d = ns.mkdir(InodeId::ROOT, &format!("d{i}")).unwrap();
            for j in 0..10 {
                ns.create_file(d, &format!("f{j}"), 1).unwrap();
            }
            cands.push(Candidate {
                key: FragKey::whole(d),
                rank: MdsRank(0),
                load: *load,
                local_load: *load,
                inodes: 10,
            });
        }
        (ns, cands)
    }

    #[test]
    fn path1_exact_match_wins() {
        let (ns, cands) = flat_fixture();
        let picks = select_subtrees(&ns, &cands, 29.0, &cfg()); // 30 within 10%
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].estimated_load, 30.0);
    }

    #[test]
    fn path3_greedy_combines() {
        let (ns, cands) = flat_fixture();
        // 17 load: no single match (12 is 29% off), no candidate is worth
        // splitting cheaply... 50 and 30 exceed, smallest oversized is 30 ->
        // split path fires first. Ask for 20: 12+5+3 = 20 exact via greedy
        // only if split path fails. With self-hot dirs, splitting works, so
        // verify total is close either way.
        let picks = select_subtrees(&ns, &cands, 20.0, &cfg());
        let total: f64 = picks.iter().map(|p| p.estimated_load).sum();
        assert!(
            (total - 20.0).abs() <= 0.15 * 20.0,
            "selected {total} for demand 20: {picks:?}"
        );
    }

    #[test]
    fn split_path_divides_hot_directory() {
        // One directory with all the load, demand is half of it: the
        // selector must emit a *fragment* of the directory, not the whole.
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "hot").unwrap();
        for j in 0..200 {
            ns.create_file(d, &format!("f{j}"), 1).unwrap();
        }
        let cand = Candidate {
            key: FragKey::whole(d),
            rank: MdsRank(0),
            load: 100.0,
            local_load: 100.0,
            inodes: 200,
        };
        let picks = select_subtrees(&ns, &[cand], 50.0, &cfg());
        assert!(!picks.is_empty());
        let total: f64 = picks.iter().map(|p| p.estimated_load).sum();
        assert!(
            (total - 50.0).abs() <= 15.0,
            "fragment split should approximate half: got {total}"
        );
        assert!(
            picks.iter().all(|p| p.subtree.frag != Frag::root()),
            "must have split the fragment: {picks:?}"
        );
    }

    #[test]
    fn descend_path_picks_children() {
        // A cold parent whose load is all in nested dirs: demand half.
        let mut ns = Namespace::new();
        let parent = ns.mkdir(InodeId::ROOT, "data").unwrap();
        for i in 0..4 {
            let c = ns.mkdir(parent, &format!("c{i}")).unwrap();
            ns.create_file(c, "f", 1).unwrap();
        }
        let cand = Candidate {
            key: FragKey::whole(parent),
            rank: MdsRank(0),
            load: 80.0,
            local_load: 0.0, // all nested
            inodes: 8,
        };
        let picks = select_subtrees(&ns, &[cand], 40.0, &cfg());
        let total: f64 = picks.iter().map(|p| p.estimated_load).sum();
        assert!((total - 40.0).abs() <= 4.0, "got {total}: {picks:?}");
        assert!(picks.iter().all(|p| p.subtree.dir != parent));
    }

    #[test]
    fn empty_and_zero_amount() {
        let (ns, cands) = flat_fixture();
        assert!(select_subtrees(&ns, &[], 10.0, &cfg()).is_empty());
        assert!(select_subtrees(&ns, &cands, 0.0, &cfg()).is_empty());
    }

    #[test]
    fn greedy_skips_nested_overlaps() {
        // Parent and child both appear as candidates; greedy must not take
        // both.
        let mut ns = Namespace::new();
        let p = ns.mkdir(InodeId::ROOT, "p").unwrap();
        let c = ns.mkdir(p, "c").unwrap();
        ns.create_file(c, "f", 1).unwrap();
        let cands = [
            Candidate {
                key: FragKey::whole(p),
                rank: MdsRank(0),
                load: 12.0,
                local_load: 2.0,
                inodes: 2,
            },
            Candidate {
                key: FragKey::whole(c),
                rank: MdsRank(0),
                load: 10.0,
                local_load: 10.0,
                inodes: 1,
            },
        ];
        let picks = select_subtrees(&ns, &cands, 22.0, &cfg());
        assert_eq!(picks.len(), 1, "nested pair must collapse: {picks:?}");
    }

    #[test]
    fn hottest_selection_overshoots_by_design() {
        let (ns, cands) = flat_fixture();
        let picks = select_hottest(&ns, &cands, 10.0, MdsRank(0));
        assert_eq!(picks.len(), 1);
        assert_eq!(
            picks[0].estimated_load, 50.0,
            "takes the hottest, not the fit"
        );
    }

    #[test]
    fn hottest_respects_rank_filter() {
        let (ns, mut cands) = flat_fixture();
        for c in &mut cands {
            c.rank = MdsRank(3);
        }
        assert!(select_hottest(&ns, &cands, 10.0, MdsRank(0)).is_empty());
    }
}
