//! Cluster load statistics exchanged between the simulator and balancers.
//!
//! In the real system these are the *Imbalance State* messages each MDS's
//! Load Monitor ships to the Migration Initiator once per epoch; here they
//! are a plain snapshot struct.

use lunule_util::convert::{u64_to_f64, usize_to_f64};

/// Per-epoch load snapshot of the whole MDS cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: u64,
    /// Epoch length in (simulated) seconds.
    pub epoch_secs: f64,
    /// Metadata requests served by each MDS rank during this epoch,
    /// indexed by rank.
    pub requests: Vec<u64>,
    /// Ranks whose load report was lost or never produced this epoch
    /// (`true` = missing), indexed by rank. Empty means every report
    /// arrived; `requests[r]` for a missing rank is a stale placeholder the
    /// balancer should not trust.
    pub missing: Vec<bool>,
}

impl EpochStats {
    /// Creates a snapshot; `requests[r]` is rank `r`'s served request count.
    /// All reports are presumed present — see [`EpochStats::with_missing`].
    pub fn new(epoch: u64, epoch_secs: f64, requests: Vec<u64>) -> Self {
        assert!(epoch_secs > 0.0, "epoch length must be positive");
        EpochStats {
            epoch,
            epoch_secs,
            requests,
            missing: Vec::new(),
        }
    }

    /// Marks which ranks' reports went missing this epoch.
    pub fn with_missing(mut self, missing: Vec<bool>) -> Self {
        self.missing = missing;
        self
    }

    /// True when `rank`'s load report was lost this epoch.
    pub fn is_missing(&self, rank: usize) -> bool {
        self.missing.get(rank).copied().unwrap_or(false)
    }

    /// Number of MDS ranks in the snapshot.
    pub fn n_mds(&self) -> usize {
        self.requests.len()
    }

    /// Per-rank load in requests per second (the paper's IOPS metric).
    pub fn iops(&self) -> Vec<f64> {
        self.requests
            .iter()
            .map(|r| u64_to_f64(*r) / self.epoch_secs)
            .collect()
    }

    /// IOPS of a single rank.
    pub fn iops_of(&self, rank: usize) -> f64 {
        u64_to_f64(self.requests[rank]) / self.epoch_secs
    }

    /// Aggregate cluster IOPS.
    pub fn total_iops(&self) -> f64 {
        u64_to_f64(self.requests.iter().sum::<u64>()) / self.epoch_secs
    }

    /// Mean per-rank IOPS.
    pub fn mean_iops(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.total_iops() / usize_to_f64(self.requests.len())
        }
    }

    /// Highest per-rank IOPS (`l_max` in the urgency model).
    pub fn max_iops(&self) -> f64 {
        self.requests
            .iter()
            .map(|r| u64_to_f64(*r) / self.epoch_secs)
            .fold(0.0, f64::max)
    }
}

/// Rolling per-rank load history used for future-load (`fld`) prediction.
///
/// Keeps the most recent `window` epochs of IOPS per rank.
#[derive(Clone, Debug, Default)]
pub struct LoadHistory {
    window: usize,
    per_rank: Vec<Vec<f64>>,
}

impl LoadHistory {
    /// History retaining up to `window` epochs per rank.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "need at least two points to fit a trend");
        LoadHistory {
            window,
            per_rank: Vec::new(),
        }
    }

    /// Appends an epoch snapshot, growing the rank set if the cluster
    /// expanded.
    pub fn push(&mut self, stats: &EpochStats) {
        if self.per_rank.len() < stats.n_mds() {
            self.per_rank.resize_with(stats.n_mds(), Vec::new);
        }
        for (rank, series) in self.per_rank.iter_mut().enumerate() {
            let v = if rank < stats.n_mds() {
                stats.iops_of(rank)
            } else {
                0.0
            };
            series.push(v);
            if series.len() > self.window {
                series.remove(0);
            }
        }
    }

    /// Recorded history of `rank` (oldest first), empty if unseen.
    pub fn series(&self, rank: usize) -> &[f64] {
        self.per_rank.get(rank).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of ranks tracked.
    pub fn n_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Writes the window and every per-rank series (bit-exact) to a
    /// snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_usize(self.window);
        e.put_seq(&self.per_rank, |e, series| {
            e.put_seq(series, |e, v| e.put_f64(*v));
        });
    }

    /// Reads a history back; series restore bit-exactly.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<LoadHistory, lunule_util::codec::CodecError> {
        let window = d.get_usize("history window")?;
        let per_rank = d.get_seq("history ranks", |d| {
            d.get_seq("history series", |d| d.get_f64("history point"))
        })?;
        if per_rank.iter().any(|s| s.len() > window) {
            return Err(lunule_util::codec::CodecError::Invalid {
                what: "load history",
            });
        }
        Ok(LoadHistory { window, per_rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iops_conversion() {
        let s = EpochStats::new(3, 10.0, vec![100, 0, 50]);
        assert_eq!(s.iops(), vec![10.0, 0.0, 5.0]);
        assert_eq!(s.total_iops(), 15.0);
        assert_eq!(s.mean_iops(), 5.0);
        assert_eq!(s.max_iops(), 10.0);
        assert_eq!(s.n_mds(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_epoch_rejected() {
        EpochStats::new(0, 0.0, vec![]);
    }

    #[test]
    fn history_rolls() {
        let mut h = LoadHistory::new(3);
        for e in 0..5u64 {
            h.push(&EpochStats::new(e, 1.0, vec![e * 10, 1]));
        }
        assert_eq!(h.series(0), &[20.0, 30.0, 40.0]);
        assert_eq!(h.series(1), &[1.0, 1.0, 1.0]);
        assert_eq!(h.series(7), &[] as &[f64]);
    }

    #[test]
    fn missing_flags_default_empty() {
        let s = EpochStats::new(0, 1.0, vec![10, 20]);
        assert!(!s.is_missing(0));
        assert!(!s.is_missing(99), "out of range is not missing");
        let s = s.with_missing(vec![false, true]);
        assert!(!s.is_missing(0));
        assert!(s.is_missing(1));
    }

    #[test]
    fn history_handles_cluster_growth() {
        let mut h = LoadHistory::new(4);
        h.push(&EpochStats::new(0, 1.0, vec![5]));
        h.push(&EpochStats::new(1, 1.0, vec![5, 7]));
        assert_eq!(h.n_ranks(), 2);
        assert_eq!(h.series(1), &[7.0]);
    }
}
