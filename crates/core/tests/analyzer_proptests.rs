//! Property-based tests for the Pattern Analyzer and migration index.

use lunule_core::{AnalyzerConfig, PatternAnalyzer};
use lunule_namespace::{InodeId, Namespace};
use lunule_util::propcheck::{self, vec_usize};

/// Two directories of `files` files each.
fn fixture(files: usize) -> (Namespace, Vec<InodeId>, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let mut dirs = Vec::new();
    let mut all = Vec::new();
    for d in 0..2 {
        let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
        for i in 0..files {
            all.push(ns.create_file(dir, &format!("f{i}"), 1).unwrap());
        }
        dirs.push(dir);
    }
    (ns, dirs, all)
}

/// Under any interleaving of accesses and window advances: α stays in
/// [0,1], every factor is non-negative, and the visited count never
/// exceeds the directory population.
#[test]
fn factors_stay_in_range() {
    propcheck::run(96, |rng| {
        let (ns, dirs, files) = fixture(20);
        let mut an = PatternAnalyzer::new(AnalyzerConfig {
            recent_windows: 4,
            recurrence_lookback: 8,
            sibling_probability: rng.gen_f64(),
            seed: 7,
        });
        for _ in 0..rng.gen_range(1..300) {
            let sel = rng.gen_range(0..40);
            an.record_access(&ns, files[sel % files.len()], false);
            if rng.gen_bool() {
                an.advance_window();
            }
        }
        for dir in &dirs {
            if let Some(idx) = an.index_of(*dir) {
                assert!((0.0..=1.0).contains(&idx.alpha), "alpha {}", idx.alpha);
                assert!(idx.beta >= 0.0);
                assert!(idx.l_t >= 0.0);
                assert!(idx.l_s >= 0.0);
                assert!(idx.value() >= 0.0);
            }
        }
    });
}

/// A directory idle for longer than the window span decays to zero recent
/// activity, no matter what happened before.
#[test]
fn idle_directories_decay() {
    propcheck::run(96, |rng| {
        let burst = rng.gen_range(1..100);
        let (ns, dirs, files) = fixture(30);
        let mut an = PatternAnalyzer::new(AnalyzerConfig {
            sibling_probability: 0.0,
            ..AnalyzerConfig::default()
        });
        for i in 0..burst {
            an.record_access(&ns, files[i % files.len()], false);
        }
        for _ in 0..AnalyzerConfig::default().recent_windows + 1 {
            an.advance_window();
        }
        let idx = an.index_of(dirs[0]).expect("dir was observed");
        assert_eq!(idx.l_t, 0.0);
        assert_eq!(idx.l_s, 0.0);
        assert_eq!(idx.alpha, 0.0);
    });
}

/// Creates followed by removals leave the unvisited balance at zero — β
/// must not go negative or explode after a full create/remove cycle.
#[test]
fn create_remove_cycles_balance() {
    propcheck::run(96, |rng| {
        let count = rng.gen_range(1..60);
        let mut ns = Namespace::new();
        let dir = ns.mkdir(InodeId::ROOT, "out").unwrap();
        let mut an = PatternAnalyzer::new(AnalyzerConfig {
            sibling_probability: 0.0,
            ..AnalyzerConfig::default()
        });
        let mut created = Vec::new();
        for i in 0..count {
            let f = ns.create_file(dir, &format!("f{i}"), 0).unwrap();
            an.record_access(&ns, f, true);
            created.push(f);
        }
        for f in &created {
            an.record_access(&ns, *f, false);
            an.record_remove(&ns, *f);
            ns.unlink(*f).unwrap();
        }
        let idx = an.index_of(dir).expect("dir was observed");
        assert_eq!(idx.beta, 0.0, "no survivors -> nothing unvisited");
        assert!(ns.invariants_hold());
    });
}

/// Determinism: the same access sequence always produces the same migration
/// indices, regardless of when indices are queried.
#[test]
fn analyzer_is_deterministic() {
    propcheck::run(96, |rng| {
        let ops = vec_usize(rng, 1..150, 0..40);
        let (ns, dirs, files) = fixture(20);
        let run_once = |query_midway: bool| {
            let mut an = PatternAnalyzer::new(AnalyzerConfig::default());
            for (i, sel) in ops.iter().enumerate() {
                an.record_access(&ns, files[sel % files.len()], false);
                if query_midway && i == ops.len() / 2 {
                    let _ = an.mindex_of(dirs[0]);
                }
            }
            (an.mindex_of(dirs[0]), an.mindex_of(dirs[1]))
        };
        assert_eq!(run_once(false), run_once(true));
    });
}
