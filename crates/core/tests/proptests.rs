//! Property-based tests for the core balancing algorithms.

use lunule_core::{
    decide_roles, select_subtrees, Candidate, EpochStats, ImbalanceFactorModel, IfModelConfig,
    LoadHistory, RoleConfig, SelectorConfig,
};
use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace};
use proptest::prelude::*;

proptest! {
    /// The imbalance factor is always within [0, 1] for any load vector.
    #[test]
    fn if_bounded(loads in proptest::collection::vec(0.0f64..1e7, 0..20),
                  capacity in 1.0f64..1e6) {
        let m = ImbalanceFactorModel::new(IfModelConfig {
            mds_capacity: capacity,
            smoothness: 0.2,
        });
        let v = m.imbalance_factor(&loads);
        prop_assert!((0.0..=1.0).contains(&v), "IF {v} for {loads:?}");
    }

    /// CoV is scale-invariant: multiplying every load by a constant leaves
    /// the coefficient of variation unchanged.
    #[test]
    fn cov_scale_invariant(loads in proptest::collection::vec(1.0f64..1e5, 2..12),
                           k in 0.5f64..100.0) {
        let base = ImbalanceFactorModel::cov(&loads);
        let scaled: Vec<f64> = loads.iter().map(|l| l * k).collect();
        let cov = ImbalanceFactorModel::cov(&scaled);
        prop_assert!((base - cov).abs() < 1e-6, "{base} vs {cov}");
    }

    /// Urgency is monotone in the maximum load.
    #[test]
    fn urgency_monotone(a in 0.0f64..1e5, b in 0.0f64..1e5) {
        let m = ImbalanceFactorModel::new(IfModelConfig {
            mds_capacity: 10_000.0,
            smoothness: 0.2,
        });
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.urgency(lo) <= m.urgency(hi) + 1e-12);
    }

    /// Algorithm 1 never moves more than the per-epoch capacity out of any
    /// exporter, never exceeds any importer's demand, and exporters are
    /// always strictly above the mean while importers are below it.
    #[test]
    fn roles_respect_caps(loads in proptest::collection::vec(0.0f64..10_000.0, 2..10),
                          cap in 1.0f64..5_000.0,
                          threshold in 0.001f64..0.2) {
        let cfg = RoleConfig {
            deviation_threshold: threshold,
            migration_capacity: cap,
        };
        let decision = decide_roles(&loads, &LoadHistory::new(4), &cfg);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        for (rank, eld) in &decision.exporters {
            prop_assert!(loads[rank.index()] > mean);
            prop_assert!(*eld <= cap + 1e-9);
            prop_assert!(decision.export_amount_of(*rank) <= eld + 1e-9);
        }
        for (rank, ild) in &decision.importers {
            prop_assert!(loads[rank.index()] < mean);
            prop_assert!(*ild <= cap + 1e-9);
            let received: f64 = decision
                .pairings
                .iter()
                .filter(|p| p.importer == *rank)
                .map(|p| p.amount)
                .sum();
            prop_assert!(received <= ild + 1e-9);
        }
        for p in &decision.pairings {
            prop_assert!(p.amount > 0.0);
            prop_assert!(p.exporter != p.importer);
        }
    }

    /// The selector never picks two overlapping subtrees, never returns an
    /// empty-load choice, and the selected total does not exceed the demand
    /// by more than one candidate's worth.
    #[test]
    fn selector_is_sane(loads in proptest::collection::vec(0.1f64..500.0, 1..12),
                        frac in 0.05f64..1.0) {
        let mut ns = Namespace::new();
        let mut cands = Vec::new();
        for (i, load) in loads.iter().enumerate() {
            let d = ns.mkdir(InodeId::ROOT, &format!("d{i}")).unwrap();
            for j in 0..8 {
                ns.create_file(d, &format!("f{j}"), 1).unwrap();
            }
            cands.push(Candidate {
                key: FragKey::whole(d),
                rank: MdsRank(0),
                load: *load,
                local_load: *load,
                inodes: 8,
            });
        }
        let total: f64 = loads.iter().sum();
        let amount = total * frac;
        let picks = select_subtrees(&ns, &cands, amount, &SelectorConfig::default());
        // No duplicate subtrees.
        for (i, a) in picks.iter().enumerate() {
            for b in &picks[i + 1..] {
                prop_assert!(
                    a.subtree.dir != b.subtree.dir || a.subtree.frag.disjoint(&b.subtree.frag),
                    "overlapping picks: {a:?} {b:?}"
                );
            }
        }
        for p in &picks {
            prop_assert!(p.estimated_load > 0.0);
        }
        let selected: f64 = picks.iter().map(|p| p.estimated_load).sum();
        let max_single = loads.iter().copied().fold(0.0, f64::max);
        prop_assert!(
            selected <= amount + max_single + 1e-9,
            "selected {selected} for amount {amount} (max single {max_single})"
        );
    }

    /// EpochStats unit conversions are consistent.
    #[test]
    fn epoch_stats_consistent(reqs in proptest::collection::vec(0u64..1_000_000, 1..16),
                              secs in 0.5f64..60.0) {
        let s = EpochStats::new(0, secs, reqs.clone());
        let total: f64 = s.iops().iter().sum();
        prop_assert!((total - s.total_iops()).abs() < 1e-6);
        prop_assert!(s.max_iops() <= s.total_iops() + 1e-9);
        prop_assert!((s.mean_iops() * reqs.len() as f64 - s.total_iops()).abs() < 1e-6);
    }
}
