//! Property-based tests for the core balancing algorithms.

use lunule_core::{
    decide_roles, select_subtrees, Candidate, EpochStats, IfModelConfig, ImbalanceFactorModel,
    LoadHistory, RoleConfig, SelectorConfig,
};
use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace};
use lunule_util::propcheck::{self, vec_f64};

/// The imbalance factor is always within [0, 1] for any load vector.
#[test]
fn if_bounded() {
    propcheck::run(256, |rng| {
        let loads = vec_f64(rng, 0..20, 0.0, 1e7);
        let capacity = rng.gen_f64_in(1.0, 1e6);
        let m = ImbalanceFactorModel::new(IfModelConfig {
            mds_capacity: capacity,
            smoothness: 0.2,
        });
        let v = m.imbalance_factor(&loads);
        assert!((0.0..=1.0).contains(&v), "IF {v} for {loads:?}");
    });
}

/// CoV is scale-invariant: multiplying every load by a constant leaves the
/// coefficient of variation unchanged.
#[test]
fn cov_scale_invariant() {
    propcheck::run(256, |rng| {
        let loads = vec_f64(rng, 2..12, 1.0, 1e5);
        let k = rng.gen_f64_in(0.5, 100.0);
        let base = ImbalanceFactorModel::cov(&loads);
        let scaled: Vec<f64> = loads.iter().map(|l| l * k).collect();
        let cov = ImbalanceFactorModel::cov(&scaled);
        assert!((base - cov).abs() < 1e-6, "{base} vs {cov}");
    });
}

/// Urgency is monotone in the maximum load.
#[test]
fn urgency_monotone() {
    propcheck::run(256, |rng| {
        let a = rng.gen_f64_in(0.0, 1e5);
        let b = rng.gen_f64_in(0.0, 1e5);
        let m = ImbalanceFactorModel::new(IfModelConfig {
            mds_capacity: 10_000.0,
            smoothness: 0.2,
        });
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(m.urgency(lo) <= m.urgency(hi) + 1e-12);
    });
}

/// Algorithm 1 never moves more than the per-epoch capacity out of any
/// exporter, never exceeds any importer's demand, and exporters are always
/// strictly above the mean while importers are below it.
#[test]
fn roles_respect_caps() {
    propcheck::run(192, |rng| {
        let loads = vec_f64(rng, 2..10, 0.0, 10_000.0);
        let cfg = RoleConfig {
            deviation_threshold: rng.gen_f64_in(0.001, 0.2),
            migration_capacity: rng.gen_f64_in(1.0, 5_000.0),
        };
        let cap = cfg.migration_capacity;
        let decision = decide_roles(&loads, &LoadHistory::new(4), &cfg);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        for (rank, eld) in &decision.exporters {
            assert!(loads[rank.index()] > mean);
            assert!(*eld <= cap + 1e-9);
            assert!(decision.export_amount_of(*rank) <= eld + 1e-9);
        }
        for (rank, ild) in &decision.importers {
            assert!(loads[rank.index()] < mean);
            assert!(*ild <= cap + 1e-9);
            let received: f64 = decision
                .pairings
                .iter()
                .filter(|p| p.importer == *rank)
                .map(|p| p.amount)
                .sum();
            assert!(received <= ild + 1e-9);
        }
        for p in &decision.pairings {
            assert!(p.amount > 0.0);
            assert!(p.exporter != p.importer);
        }
    });
}

/// The selector never picks two overlapping subtrees, never returns an
/// empty-load choice, and the selected total does not exceed the demand by
/// more than one candidate's worth.
#[test]
fn selector_is_sane() {
    propcheck::run(128, |rng| {
        let loads = vec_f64(rng, 1..12, 0.1, 500.0);
        let frac = rng.gen_f64_in(0.05, 1.0);
        let mut ns = Namespace::new();
        let mut cands = Vec::new();
        for (i, load) in loads.iter().enumerate() {
            let d = ns.mkdir(InodeId::ROOT, &format!("d{i}")).unwrap();
            for j in 0..8 {
                ns.create_file(d, &format!("f{j}"), 1).unwrap();
            }
            cands.push(Candidate {
                key: FragKey::whole(d),
                rank: MdsRank(0),
                load: *load,
                local_load: *load,
                inodes: 8,
            });
        }
        let total: f64 = loads.iter().sum();
        let amount = total * frac;
        let picks = select_subtrees(&ns, &cands, amount, &SelectorConfig::default());
        // No duplicate subtrees.
        for (i, a) in picks.iter().enumerate() {
            for b in &picks[i + 1..] {
                assert!(
                    a.subtree.dir != b.subtree.dir || a.subtree.frag.disjoint(&b.subtree.frag),
                    "overlapping picks: {a:?} {b:?}"
                );
            }
        }
        for p in &picks {
            assert!(p.estimated_load > 0.0);
        }
        let selected: f64 = picks.iter().map(|p| p.estimated_load).sum();
        let max_single = loads.iter().copied().fold(0.0, f64::max);
        assert!(
            selected <= amount + max_single + 1e-9,
            "selected {selected} for amount {amount} (max single {max_single})"
        );
    });
}

/// EpochStats unit conversions are consistent.
#[test]
fn epoch_stats_consistent() {
    propcheck::run(256, |rng| {
        let n = rng.gen_range(1..16);
        let reqs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000) as u64).collect();
        let secs = rng.gen_f64_in(0.5, 60.0);
        let s = EpochStats::new(0, secs, reqs.clone());
        let total: f64 = s.iops().iter().sum();
        assert!((total - s.total_iops()).abs() < 1e-6);
        assert!(s.max_iops() <= s.total_iops() + 1e-9);
        assert!((s.mean_iops() * reqs.len() as f64 - s.total_iops()).abs() < 1e-6);
    });
}
