//! The event bus: streaming journal events and status snapshots out of
//! the daemon.
//!
//! Subscribers receive two disjoint streams:
//!
//! * **journal events** — the typed `lunule-telemetry` [`EventRecord`]s,
//!   streamed in emission order via [`Subscriber::on_events`]. A journal
//!   sink writes exactly what `lunule_telemetry::events_jsonl` would
//!   export — one compact JSON object per line — which is what makes the
//!   streamed journal byte-identical to the one-shot export;
//! * **status snapshots** — periodic [`StatusSnapshot`]s via
//!   [`Subscriber::on_status`]. Status is operator feedback, *never* part
//!   of the journal: it goes to separate sinks so pausing, stepping and
//!   `status` commands cannot perturb the byte-identity invariant.

use lunule_sim::Simulation;
use lunule_telemetry::EventRecord;
use lunule_util::json::{Json, ToJson};
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A point-in-time operator view of the cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusSnapshot {
    /// Current simulated tick.
    pub tick: u64,
    /// Whether the loop is paused.
    pub paused: bool,
    /// MDS ranks in the cluster (including down/drained ones).
    pub n_mds: usize,
    /// Per-rank crash status (`true` = currently down).
    pub down_ranks: Vec<bool>,
    /// Clients attached (including finished ones).
    pub clients: usize,
    /// Flows actually stepped per tick: cohorts under the cohort client
    /// model (a million clients can be a handful of flows), one per client
    /// under the legacy model.
    pub flows: usize,
    /// Metadata ops completed so far.
    pub total_ops: u64,
    /// Migration jobs in flight (transferring, committing, or parked).
    pub inflight_migrations: u64,
    /// Resident (authoritative) inodes per rank.
    pub resident_inodes: Vec<u64>,
    /// Tick of the most recent on-disk snapshot this session wrote
    /// (`None` until the first one; always `None` when snapshots are off).
    pub last_snapshot_tick: Option<u64>,
    /// Snapshots written so far this session.
    pub snapshots: u64,
}

impl StatusSnapshot {
    /// Captures the current cluster state.
    pub fn capture(sim: &Simulation, paused: bool) -> Self {
        StatusSnapshot {
            tick: sim.now(),
            paused,
            n_mds: sim.n_mds(),
            down_ranks: sim.down_ranks(),
            clients: sim.n_clients(),
            flows: sim.n_flows(),
            total_ops: sim.total_ops(),
            inflight_migrations: sim.inflight_migrations(),
            resident_inodes: sim.resident_inodes().to_vec(),
            last_snapshot_tick: None,
            snapshots: 0,
        }
    }

    /// One compact JSON line, tagged `"type":"status"` so consumers can
    /// tell it apart from journal events on a shared stream.
    pub fn to_json_line(&self) -> String {
        let down: Vec<Json> = self.down_ranks.iter().map(|d| Json::Bool(*d)).collect();
        let resident: Vec<Json> = self.resident_inodes.iter().map(|r| r.to_json()).collect();
        Json::Obj(vec![
            ("type".to_string(), "status".to_json()),
            ("tick".to_string(), self.tick.to_json()),
            ("paused".to_string(), self.paused.to_json()),
            ("n_mds".to_string(), self.n_mds.to_json()),
            ("down_ranks".to_string(), Json::Arr(down)),
            ("clients".to_string(), self.clients.to_json()),
            ("flows".to_string(), self.flows.to_json()),
            ("total_ops".to_string(), self.total_ops.to_json()),
            (
                "inflight_migrations".to_string(),
                self.inflight_migrations.to_json(),
            ),
            ("resident_inodes".to_string(), Json::Arr(resident)),
            (
                "last_snapshot_tick".to_string(),
                match self.last_snapshot_tick {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
            ("snapshots".to_string(), self.snapshots.to_json()),
        ])
        .to_string_compact()
    }
}

/// A consumer on the event bus.
pub trait Subscriber {
    /// Delivers a batch of journal events, in emission order.
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()>;

    /// Delivers a status snapshot. Default: ignore (journal-only sinks).
    fn on_status(&mut self, _status: &StatusSnapshot) -> io::Result<()> {
        Ok(())
    }

    /// Flushes buffered output (called at session end).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Makes everything delivered so far *durable* — for file sinks,
    /// flush **and** fsync. The daemon calls this right before writing a
    /// snapshot, so a crash immediately after the snapshot still finds
    /// every journal record the snapshot covers on disk. Default: plain
    /// flush (non-file sinks have nothing more durable to offer).
    fn sync(&mut self) -> io::Result<()> {
        self.flush()
    }
}

/// Writes journal events as compact JSONL — byte-for-byte what
/// `lunule_telemetry::events_jsonl` exports — and, when `with_status` is
/// set, interleaves `"type":"status"` lines (for stdout streaming; never
/// for a journal file that will be diffed).
pub struct JsonlWriter<W: Write> {
    out: W,
    with_status: bool,
}

impl<W: Write> JsonlWriter<W> {
    /// A journal-only writer (no status lines).
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out,
            with_status: false,
        }
    }

    /// A combined stream: journal events plus status lines.
    pub fn with_status(out: W) -> Self {
        JsonlWriter {
            out,
            with_status: true,
        }
    }

    /// The underlying stream — for owners that need more than `Write`
    /// (e.g. a file sink fsyncing after a flush).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }
}

impl<W: Write> Subscriber for JsonlWriter<W> {
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()> {
        for record in batch {
            self.out
                .write_all(record.to_json().to_string_compact().as_bytes())?;
            self.out.write_all(b"\n")?;
        }
        Ok(())
    }

    fn on_status(&mut self, status: &StatusSnapshot) -> io::Result<()> {
        if self.with_status {
            self.out.write_all(status.to_json_line().as_bytes())?;
            self.out.write_all(b"\n")?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Keeps export stems portable: lowercase alphanumerics, `-`, `_` (same
/// policy as the bench harness's telemetry sink).
fn sanitize_label(label: &str) -> String {
    let mut out: String = label
        .chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '-' | '_' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect();
    if out.is_empty() {
        out.push_str("session");
    }
    out
}

/// A journal file sink: `<dir>/<label>.events.jsonl`, the same naming the
/// telemetry exporter uses, so `telemetry_check` validates daemon journals
/// unchanged.
pub struct JournalFileSink {
    path: PathBuf,
    writer: JsonlWriter<BufWriter<fs::File>>,
}

impl JournalFileSink {
    /// Creates `dir` (and parents) and opens the journal file fresh.
    pub fn create(dir: &Path, label: &str) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = journal_path(dir, label);
        let file = fs::File::create(&path)?;
        Ok(JournalFileSink {
            path,
            writer: JsonlWriter::new(BufWriter::new(file)),
        })
    }

    /// Reopens an existing journal for a **restored** session and stitches
    /// it: keeps exactly the records the snapshot covers — those stamped
    /// strictly before the snapshot's telemetry clock position
    /// `(clock, seq)` — truncates anything the interrupted run wrote past
    /// that point (including a torn final line from a mid-write kill), and
    /// appends from there. The restored run re-emits the truncated records
    /// byte-identically, so the finished file matches an uninterrupted
    /// run's journal exactly.
    ///
    /// Returns the sink plus the highest event tick the old journal had
    /// reached — the catch-up target for [`crate::pacing::Catchup`]. A
    /// missing journal file degrades to [`JournalFileSink::create`] with a
    /// target of zero.
    pub fn resume(dir: &Path, label: &str, clock: u64, seq: u64) -> io::Result<(Self, u64)> {
        let path = journal_path(dir, label);
        let old = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((JournalFileSink::create(dir, label)?, 0));
            }
            Err(e) => return Err(e),
        };
        let mut kept = String::new();
        let mut keeping = true;
        let mut reached = 0u64;
        for line in old.lines() {
            // A torn line (the write the kill interrupted) can only be
            // the last one; it and anything after it is discarded.
            let Some((t, s)) = record_position(line) else {
                break;
            };
            reached = reached.max(t);
            if keeping && (t, s) < (clock, seq) {
                kept.push_str(line);
                kept.push('\n');
            } else {
                keeping = false;
            }
        }
        // Truncate atomically: a kill during the stitch must not lose the
        // journal prefix the snapshot depends on.
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(kept.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        let sink = JournalFileSink {
            path,
            writer: JsonlWriter::new(BufWriter::new(file)),
        };
        Ok((sink, reached))
    }

    /// Where the journal is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn sync_file(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_mut().get_ref().sync_all()
    }
}

impl Subscriber for JournalFileSink {
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()> {
        self.writer.on_events(batch)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_file()
    }
}

impl Drop for JournalFileSink {
    /// Best-effort durability on any exit path — a daemon stopping via
    /// `stop` (or unwinding) leaves the journal flushed and fsynced.
    fn drop(&mut self) {
        let _ = self.sync_file();
    }
}

/// `<dir>/<label>.events.jsonl` — the telemetry exporter's naming, so
/// `telemetry_check` validates daemon journals unchanged.
fn journal_path(dir: &Path, label: &str) -> PathBuf {
    dir.join(format!("{}.events.jsonl", sanitize_label(label)))
}

/// Extracts the `(t, seq)` stamp from one journal line; `None` for a line
/// that is not a complete event record (torn tail write).
fn record_position(line: &str) -> Option<(u64, u64)> {
    use lunule_util::FromJson;
    let v = Json::parse(line).ok()?;
    let t = u64::from_json(v.get("t")?).ok()?;
    let seq = u64::from_json(v.get("seq")?).ok()?;
    Some((t, seq))
}

/// An in-memory collector for tests.
#[derive(Default)]
pub struct MemorySink {
    /// Every event received, in order.
    pub events: Vec<EventRecord>,
    /// Every status snapshot received, in order.
    pub statuses: Vec<StatusSnapshot>,
}

impl Subscriber for MemorySink {
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()> {
        self.events.extend_from_slice(batch);
        Ok(())
    }

    fn on_status(&mut self, status: &StatusSnapshot) -> io::Result<()> {
        self.statuses.push(status.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_telemetry::{Event, Snapshot};

    fn records() -> Vec<EventRecord> {
        vec![
            EventRecord {
                t: 0,
                seq: 0,
                event: Event::RunStart { n_mds: 2 },
            },
            EventRecord {
                t: 3,
                seq: 1,
                event: Event::MdsAdd { rank: 2 },
            },
        ]
    }

    #[test]
    fn jsonl_writer_matches_the_exporter_byte_for_byte() {
        let recs = records();
        let mut sink = JsonlWriter::new(Vec::new());
        sink.on_events(&recs).unwrap();
        let exported = lunule_telemetry::events_jsonl(&Snapshot {
            events: recs,
            ..Snapshot::default()
        });
        assert_eq!(String::from_utf8(sink.out).unwrap(), exported);
    }

    #[test]
    fn status_lines_only_appear_when_asked() {
        let status = StatusSnapshot {
            tick: 9,
            paused: true,
            n_mds: 2,
            down_ranks: vec![false, true],
            clients: 4,
            flows: 4,
            total_ops: 123,
            inflight_migrations: 1,
            resident_inodes: vec![10, 0],
            last_snapshot_tick: Some(8),
            snapshots: 2,
        };
        let mut plain = JsonlWriter::new(Vec::new());
        plain.on_status(&status).unwrap();
        assert!(plain.out.is_empty());
        let mut chatty = JsonlWriter::with_status(Vec::new());
        chatty.on_status(&status).unwrap();
        let line = String::from_utf8(chatty.out).unwrap();
        assert!(line.starts_with(r#"{"type":"status","tick":9"#), "{line}");
        assert!(line.contains(r#""paused":true"#));
        assert!(line.contains(r#""last_snapshot_tick":8"#));
        assert!(line.contains(r#""snapshots":2"#));
    }

    #[test]
    fn resume_truncates_to_the_snapshot_position_and_appends() {
        let dir =
            std::env::temp_dir().join(format!("lunule-daemon-bus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        // An interrupted run's journal: records through (t=3, seq=1),
        // then a torn final line from the kill.
        let mut sink = JournalFileSink::create(&dir, "run").unwrap();
        let pre: Vec<EventRecord> = (0..4u64)
            .flat_map(|t| {
                (0..2u64).map(move |seq| EventRecord {
                    t,
                    seq,
                    event: Event::MdsAdd { rank: 2 },
                })
            })
            .collect();
        sink.on_events(&pre).unwrap();
        sink.flush().unwrap();
        let path = sink.path().to_path_buf();
        drop(sink);
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"t\":4,\"se")
            .unwrap();

        // Snapshot position (2, 1): keep (0,0)..(2,0), drop the rest.
        let (mut sink, reached) = JournalFileSink::resume(&dir, "run", 2, 1).unwrap();
        assert_eq!(reached, 3, "catch-up target is the last full record's tick");
        sink.on_events(&[EventRecord {
            t: 2,
            seq: 1,
            event: Event::MdsAdd { rank: 2 },
        }])
        .unwrap();
        sink.sync().unwrap();
        drop(sink);
        let text = fs::read_to_string(&path).unwrap();
        let stamps: Vec<(u64, u64)> = text.lines().map(|l| record_position(l).unwrap()).collect();
        assert_eq!(stamps, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);

        // No prior journal: behaves like `create` with target 0.
        let (fresh, reached) = JournalFileSink::resume(&dir, "other", 5, 0).unwrap();
        assert_eq!(reached, 0);
        assert!(fresh.path().exists());
        drop(fresh);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn labels_are_sanitized() {
        assert_eq!(sanitize_label("My Run/7"), "my_run_7");
        assert_eq!(sanitize_label(""), "session");
        assert_eq!(sanitize_label("ok-label_2"), "ok-label_2");
    }
}
