//! The event bus: streaming journal events and status snapshots out of
//! the daemon.
//!
//! Subscribers receive two disjoint streams:
//!
//! * **journal events** — the typed `lunule-telemetry` [`EventRecord`]s,
//!   streamed in emission order via [`Subscriber::on_events`]. A journal
//!   sink writes exactly what `lunule_telemetry::events_jsonl` would
//!   export — one compact JSON object per line — which is what makes the
//!   streamed journal byte-identical to the one-shot export;
//! * **status snapshots** — periodic [`StatusSnapshot`]s via
//!   [`Subscriber::on_status`]. Status is operator feedback, *never* part
//!   of the journal: it goes to separate sinks so pausing, stepping and
//!   `status` commands cannot perturb the byte-identity invariant.

use lunule_sim::Simulation;
use lunule_telemetry::EventRecord;
use lunule_util::json::{Json, ToJson};
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A point-in-time operator view of the cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusSnapshot {
    /// Current simulated tick.
    pub tick: u64,
    /// Whether the loop is paused.
    pub paused: bool,
    /// MDS ranks in the cluster (including down/drained ones).
    pub n_mds: usize,
    /// Per-rank crash status (`true` = currently down).
    pub down_ranks: Vec<bool>,
    /// Clients attached (including finished ones).
    pub clients: usize,
    /// Metadata ops completed so far.
    pub total_ops: u64,
    /// Migration jobs in flight (transferring, committing, or parked).
    pub inflight_migrations: u64,
    /// Resident (authoritative) inodes per rank.
    pub resident_inodes: Vec<u64>,
}

impl StatusSnapshot {
    /// Captures the current cluster state.
    pub fn capture(sim: &Simulation, paused: bool) -> Self {
        StatusSnapshot {
            tick: sim.now(),
            paused,
            n_mds: sim.n_mds(),
            down_ranks: sim.down_ranks(),
            clients: sim.n_clients(),
            total_ops: sim.total_ops(),
            inflight_migrations: sim.inflight_migrations(),
            resident_inodes: sim.resident_inodes().to_vec(),
        }
    }

    /// One compact JSON line, tagged `"type":"status"` so consumers can
    /// tell it apart from journal events on a shared stream.
    pub fn to_json_line(&self) -> String {
        let down: Vec<Json> = self.down_ranks.iter().map(|d| Json::Bool(*d)).collect();
        let resident: Vec<Json> = self.resident_inodes.iter().map(|r| r.to_json()).collect();
        Json::Obj(vec![
            ("type".to_string(), "status".to_json()),
            ("tick".to_string(), self.tick.to_json()),
            ("paused".to_string(), self.paused.to_json()),
            ("n_mds".to_string(), self.n_mds.to_json()),
            ("down_ranks".to_string(), Json::Arr(down)),
            ("clients".to_string(), self.clients.to_json()),
            ("total_ops".to_string(), self.total_ops.to_json()),
            (
                "inflight_migrations".to_string(),
                self.inflight_migrations.to_json(),
            ),
            ("resident_inodes".to_string(), Json::Arr(resident)),
        ])
        .to_string_compact()
    }
}

/// A consumer on the event bus.
pub trait Subscriber {
    /// Delivers a batch of journal events, in emission order.
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()>;

    /// Delivers a status snapshot. Default: ignore (journal-only sinks).
    fn on_status(&mut self, _status: &StatusSnapshot) -> io::Result<()> {
        Ok(())
    }

    /// Flushes buffered output (called at session end).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes journal events as compact JSONL — byte-for-byte what
/// `lunule_telemetry::events_jsonl` exports — and, when `with_status` is
/// set, interleaves `"type":"status"` lines (for stdout streaming; never
/// for a journal file that will be diffed).
pub struct JsonlWriter<W: Write> {
    out: W,
    with_status: bool,
}

impl<W: Write> JsonlWriter<W> {
    /// A journal-only writer (no status lines).
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out,
            with_status: false,
        }
    }

    /// A combined stream: journal events plus status lines.
    pub fn with_status(out: W) -> Self {
        JsonlWriter {
            out,
            with_status: true,
        }
    }
}

impl<W: Write> Subscriber for JsonlWriter<W> {
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()> {
        for record in batch {
            self.out
                .write_all(record.to_json().to_string_compact().as_bytes())?;
            self.out.write_all(b"\n")?;
        }
        Ok(())
    }

    fn on_status(&mut self, status: &StatusSnapshot) -> io::Result<()> {
        if self.with_status {
            self.out.write_all(status.to_json_line().as_bytes())?;
            self.out.write_all(b"\n")?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Keeps export stems portable: lowercase alphanumerics, `-`, `_` (same
/// policy as the bench harness's telemetry sink).
fn sanitize_label(label: &str) -> String {
    let mut out: String = label
        .chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '-' | '_' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect();
    if out.is_empty() {
        out.push_str("session");
    }
    out
}

/// A journal file sink: `<dir>/<label>.events.jsonl`, the same naming the
/// telemetry exporter uses, so `telemetry_check` validates daemon journals
/// unchanged.
pub struct JournalFileSink {
    path: PathBuf,
    writer: JsonlWriter<BufWriter<fs::File>>,
}

impl JournalFileSink {
    /// Creates `dir` (and parents) and opens the journal file fresh.
    pub fn create(dir: &Path, label: &str) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.events.jsonl", sanitize_label(label)));
        let file = fs::File::create(&path)?;
        Ok(JournalFileSink {
            path,
            writer: JsonlWriter::new(BufWriter::new(file)),
        })
    }

    /// Where the journal is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Subscriber for JournalFileSink {
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()> {
        self.writer.on_events(batch)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// An in-memory collector for tests.
#[derive(Default)]
pub struct MemorySink {
    /// Every event received, in order.
    pub events: Vec<EventRecord>,
    /// Every status snapshot received, in order.
    pub statuses: Vec<StatusSnapshot>,
}

impl Subscriber for MemorySink {
    fn on_events(&mut self, batch: &[EventRecord]) -> io::Result<()> {
        self.events.extend_from_slice(batch);
        Ok(())
    }

    fn on_status(&mut self, status: &StatusSnapshot) -> io::Result<()> {
        self.statuses.push(status.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_telemetry::{Event, Snapshot};

    fn records() -> Vec<EventRecord> {
        vec![
            EventRecord {
                t: 0,
                seq: 0,
                event: Event::RunStart { n_mds: 2 },
            },
            EventRecord {
                t: 3,
                seq: 1,
                event: Event::MdsAdd { rank: 2 },
            },
        ]
    }

    #[test]
    fn jsonl_writer_matches_the_exporter_byte_for_byte() {
        let recs = records();
        let mut sink = JsonlWriter::new(Vec::new());
        sink.on_events(&recs).unwrap();
        let exported = lunule_telemetry::events_jsonl(&Snapshot {
            events: recs,
            ..Snapshot::default()
        });
        assert_eq!(String::from_utf8(sink.out).unwrap(), exported);
    }

    #[test]
    fn status_lines_only_appear_when_asked() {
        let status = StatusSnapshot {
            tick: 9,
            paused: true,
            n_mds: 2,
            down_ranks: vec![false, true],
            clients: 4,
            total_ops: 123,
            inflight_migrations: 1,
            resident_inodes: vec![10, 0],
        };
        let mut plain = JsonlWriter::new(Vec::new());
        plain.on_status(&status).unwrap();
        assert!(plain.out.is_empty());
        let mut chatty = JsonlWriter::with_status(Vec::new());
        chatty.on_status(&status).unwrap();
        let line = String::from_utf8(chatty.out).unwrap();
        assert!(line.starts_with(r#"{"type":"status","tick":9"#), "{line}");
        assert!(line.contains(r#""paused":true"#));
    }

    #[test]
    fn labels_are_sanitized() {
        assert_eq!(sanitize_label("My Run/7"), "my_run_7");
        assert_eq!(sanitize_label(""), "session");
        assert_eq!(sanitize_label("ok-label_2"), "ok-label_2");
    }
}
