//! Operator commands and their tick-boundary application semantics.
//!
//! One `Command` is one operator intent; [`apply_command`] maps it onto
//! the simulation's control API. The crucial property is that application
//! happens **between ticks** and is identical whether the command came
//! from a scripted session replayed by the daemon loop, from the one-shot
//! runner, or from the interactive stdin source — that is what makes the
//! daemon journal byte-identical to the one-shot journal.

use lunule_faults::{parse_fault_kind, EventLine, FaultKind, SpecError};
use lunule_namespace::MdsRank;
use lunule_sim::{OpStream, Simulation};

/// One operator command, tick-agnostic.
#[derive(Clone, Debug)]
pub enum Command {
    /// Inject a fault (crash/limp/loss/stall) at the next tick start.
    Fault(FaultKind),
    /// Force a crashed rank back online at the next tick start.
    Recover(MdsRank),
    /// Grow the cluster by `n` fresh ranks.
    AddMds(u32),
    /// Drain a rank: fail its subtrees over and take it out of service.
    DrainMds(MdsRank),
    /// Attach `n` more clients from the session's deferred stream pool.
    AddClients(usize),
    /// Set a balancer tuning knob.
    SetKnob {
        /// Knob name (see `Balancer::set_knob`).
        name: String,
        /// New value.
        value: f64,
    },
    /// Emit a status snapshot to the status subscribers (journal-neutral).
    Status,
    /// Write an on-disk state snapshot now (journal-neutral; a no-op when
    /// the daemon has no snapshot directory configured).
    Snapshot,
    /// Stop advancing ticks until `Resume`/`Step` (journal-neutral).
    Pause,
    /// Resume free running after a pause (journal-neutral).
    Resume,
    /// While paused, advance exactly `n` ticks then pause again
    /// (journal-neutral beyond the ticks themselves).
    Step(u64),
    /// End the session: flush, export, exit the loop.
    Stop,
}

impl Command {
    /// True for pacing/control commands that never touch the simulation
    /// state or its journal (`Status`, `Pause`, `Resume`, `Step`) — the
    /// one-shot runner may ignore these and still produce the identical
    /// journal.
    pub fn is_journal_neutral(&self) -> bool {
        matches!(
            self,
            Command::Status
                | Command::Snapshot
                | Command::Pause
                | Command::Resume
                | Command::Step(_)
        )
    }
}

/// A command scheduled for a session tick.
#[derive(Clone, Debug)]
pub struct TimedCommand {
    /// Tick boundary the command fires at (applied before the tick runs).
    pub at_tick: u64,
    /// The command.
    pub command: Command,
}

/// Builds a command from a tokenized `kind@tick:field:...` event line.
/// Fault kinds go through [`parse_fault_kind`] — the exact code path CLI
/// `--faults` specs use — and the daemon's own commands are parsed here.
/// `max_ranks` bounds rank fields (pass the largest rank count the session
/// can reach, or the live cluster size for interactive use).
pub fn parse_command(line: &EventLine<'_>, max_ranks: usize) -> Result<Command, SpecError> {
    if let Some(kind) = parse_fault_kind(line, max_ranks)? {
        return Ok(Command::Fault(kind));
    }
    let cmd = match line.kind {
        "recover" => {
            line.expect_fields(1)?;
            Command::Recover(line.rank(0, max_ranks)?)
        }
        "addmds" => match line.fields.len() {
            0 => Command::AddMds(1),
            _ => {
                line.expect_fields(1)?;
                let n = line.num(0)?;
                if n == 0 || n > 1024 {
                    return Err(SpecError::new(format!(
                        "event '{}': addmds count must be in 1..=1024",
                        line.raw
                    )));
                }
                // as-ok: bounded to 1024 above
                Command::AddMds(n as u32)
            }
        },
        "drain" => {
            line.expect_fields(1)?;
            Command::DrainMds(line.rank(0, max_ranks)?)
        }
        "clients" => {
            line.expect_fields(1)?;
            let n = line.num(0)?;
            if n == 0 {
                return Err(SpecError::new(format!(
                    "event '{}': clients count must be positive",
                    line.raw
                )));
            }
            // as-ok: client counts are small; usize is at least u32 here
            Command::AddClients(n as usize)
        }
        "knob" => {
            line.expect_fields(2)?;
            let name = line.fields[0].to_string();
            if name.is_empty() {
                return Err(SpecError::new(format!(
                    "event '{}': empty knob name",
                    line.raw
                )));
            }
            Command::SetKnob {
                name,
                value: line.float(1)?,
            }
        }
        "status" => {
            line.expect_fields(0)?;
            Command::Status
        }
        "snapshot" => {
            line.expect_fields(0)?;
            Command::Snapshot
        }
        "pause" => {
            line.expect_fields(0)?;
            Command::Pause
        }
        "resume" => {
            line.expect_fields(0)?;
            Command::Resume
        }
        "step" => match line.fields.len() {
            0 => Command::Step(1),
            _ => {
                line.expect_fields(1)?;
                Command::Step(line.num(0)?.max(1))
            }
        },
        "stop" | "quit" => {
            line.expect_fields(0)?;
            Command::Stop
        }
        other => {
            return Err(SpecError::new(format!(
                "unknown command '{other}' (want a fault kind or recover/addmds/\
                 drain/clients/knob/status/snapshot/pause/resume/step/stop)"
            )))
        }
    };
    Ok(cmd)
}

/// What applying a command did, for operator feedback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Applied {
    /// The command changed simulation state (or queued a change).
    Done,
    /// The command was valid but had no effect (unknown knob, rank not
    /// down, empty client pool...). Carries a short reason.
    Noop(&'static str),
}

/// Applies one state-changing command to the simulation at a tick
/// boundary. `pool` is the session's deferred client-stream pool that
/// `clients@T:N` commands draw from. Journal-neutral commands
/// (`Status`/`Pause`/`Resume`/`Step`/`Stop`) are the daemon loop's job and
/// return `Noop` here.
pub fn apply_command(
    sim: &mut Simulation,
    pool: &mut Vec<Box<dyn OpStream>>,
    command: &Command,
) -> Applied {
    match command {
        Command::Fault(kind) => {
            sim.queue_fault(*kind);
            Applied::Done
        }
        Command::Recover(rank) => {
            if sim.force_recover(*rank) {
                Applied::Done
            } else {
                Applied::Noop("rank is not down")
            }
        }
        Command::AddMds(n) => {
            for _ in 0..*n {
                sim.add_mds();
            }
            Applied::Done
        }
        Command::DrainMds(rank) => {
            if rank.index() >= sim.n_mds() {
                return Applied::Noop("no such rank");
            }
            if sim.is_rank_down(*rank) {
                return Applied::Noop("rank is down");
            }
            sim.drain_mds(*rank);
            Applied::Done
        }
        Command::AddClients(n) => {
            if pool.is_empty() {
                return Applied::Noop("client pool exhausted");
            }
            let take = (*n).min(pool.len());
            let batch: Vec<Box<dyn OpStream>> = pool.drain(..take).collect();
            sim.add_clients(batch);
            Applied::Done
        }
        Command::SetKnob { name, value } => {
            if sim.set_balancer_knob(name, *value) {
                Applied::Done
            } else {
                Applied::Noop("unknown knob")
            }
        }
        Command::Status
        | Command::Snapshot
        | Command::Pause
        | Command::Resume
        | Command::Step(_)
        | Command::Stop => Applied::Noop("control command"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_faults::tokenize_event;

    fn cmd(text: &str) -> Command {
        parse_command(&tokenize_event(text).unwrap(), 8).unwrap()
    }

    #[test]
    fn commands_parse_from_event_lines() {
        assert!(matches!(
            cmd("crash@120:1:60"),
            Command::Fault(FaultKind::Crash { .. })
        ));
        assert!(matches!(cmd("recover@180:1"), Command::Recover(MdsRank(1))));
        assert!(matches!(cmd("addmds@300"), Command::AddMds(1)));
        assert!(matches!(cmd("addmds@300:3"), Command::AddMds(3)));
        assert!(matches!(cmd("drain@400:2"), Command::DrainMds(MdsRank(2))));
        assert!(matches!(cmd("clients@200:32"), Command::AddClients(32)));
        match cmd("knob@350:if_threshold:0.2") {
            Command::SetKnob { name, value } => {
                assert_eq!(name, "if_threshold");
                assert!((value - 0.2).abs() < 1e-12);
            }
            other => unreachable!("expected knob, got {other:?}"),
        }
        assert!(matches!(cmd("snapshot@50"), Command::Snapshot));
        assert!(matches!(cmd("pause@50"), Command::Pause));
        assert!(matches!(cmd("step@50:10"), Command::Step(10)));
        assert!(matches!(cmd("resume@60"), Command::Resume));
        assert!(matches!(cmd("status@70"), Command::Status));
        assert!(matches!(cmd("stop@99"), Command::Stop));
    }

    #[test]
    fn bad_commands_are_rejected() {
        let bad = [
            "warp@10",          // unknown kind
            "recover@10",       // missing rank
            "recover@10:99",    // rank out of range
            "clients@10:0",     // zero count
            "addmds@10:0",      // zero count
            "knob@10:only_one", // missing value
            "knob@10::1.0",     // empty name
            "pause@10:5",       // unexpected field
        ];
        for text in bad {
            let line = tokenize_event(text).unwrap();
            assert!(parse_command(&line, 8).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn journal_neutral_classification() {
        assert!(cmd("pause@1").is_journal_neutral());
        assert!(cmd("snapshot@1").is_journal_neutral());
        assert!(cmd("status@1").is_journal_neutral());
        assert!(cmd("step@1:5").is_journal_neutral());
        assert!(!cmd("stop@1").is_journal_neutral());
        assert!(!cmd("addmds@1").is_journal_neutral());
        assert!(!cmd("crash@1:0:5").is_journal_neutral());
    }
}
