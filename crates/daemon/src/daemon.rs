//! The daemon loop: poll commands, advance one tick, publish events.
//!
//! Every loop iteration is the same tick-boundary sequence:
//!
//! 1. poll the [`CommandSource`] for commands due at the current tick and
//!    apply them (state-changing ones through
//!    [`crate::command::apply_command`], pacing ones to the loop state);
//! 2. advance the simulation one tick — unless paused with no step budget;
//! 3. drain newly journaled telemetry events to every subscriber, plus a
//!    status snapshot every `status_every` ticks.
//!
//! Because commands apply at the *same* boundaries the one-shot runner
//! uses, and pause/step/resume only decide whether step 2 happens (never
//! what it computes), a scripted session through this loop journals
//! byte-identically to [`crate::oneshot::run_oneshot`]. The loop itself
//! never reads the wall clock; pacing lives behind the [`Pacer`] passed to
//! [`Daemon::run`].

use crate::bus::{StatusSnapshot, Subscriber};
use crate::command::{apply_command, Command};
use crate::pacing::Pacer;
use crate::source::CommandSource;
use lunule_sim::{OpStream, RunResult, Simulation};
use std::io;

/// Loop state: whether ticks advance freely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Advancing one tick per iteration.
    Running,
    /// Holding; only `step` commands advance ticks.
    Paused,
    /// Finished (duration reached, all clients done, or `stop` command).
    Stopped,
}

/// The long-lived service: simulation + command source + subscribers.
pub struct Daemon<S: CommandSource> {
    sim: Simulation,
    /// Deferred client streams `clients@T:N` commands draw from.
    pool: Vec<Box<dyn OpStream>>,
    source: S,
    subscribers: Vec<Box<dyn Subscriber>>,
    /// How much of the telemetry journal has been streamed out.
    cursor: usize,
    state: RunState,
    /// Ticks still owed to `step` commands while paused.
    step_budget: u64,
    /// Status snapshot cadence in ticks (0 = only on `status` commands).
    status_every: u64,
}

impl<S: CommandSource> Daemon<S> {
    /// Wraps a built session (see [`crate::Session::build`]).
    pub fn new(sim: Simulation, pool: Vec<Box<dyn OpStream>>, source: S) -> Self {
        Daemon {
            sim,
            pool,
            source,
            subscribers: Vec::new(),
            cursor: 0,
            state: RunState::Running,
            step_budget: 0,
            status_every: 0,
        }
    }

    /// Attaches a subscriber to the event bus.
    pub fn subscribe(&mut self, subscriber: Box<dyn Subscriber>) {
        self.subscribers.push(subscriber);
    }

    /// Emits a status snapshot every `ticks` ticks (0 disables periodic
    /// status; `status` commands always work).
    pub fn set_status_every(&mut self, ticks: u64) {
        self.status_every = ticks;
    }

    /// Current loop state.
    pub fn state(&self) -> RunState {
        self.state
    }

    /// The simulation under management.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    fn publish_events(&mut self) -> io::Result<()> {
        let (batch, cursor) = self.sim.telemetry().events_since(self.cursor);
        self.cursor = cursor;
        if batch.is_empty() {
            return Ok(());
        }
        for sub in &mut self.subscribers {
            sub.on_events(&batch)?;
        }
        Ok(())
    }

    fn publish_status(&mut self) -> io::Result<()> {
        let status = StatusSnapshot::capture(&self.sim, self.state == RunState::Paused);
        for sub in &mut self.subscribers {
            sub.on_status(&status)?;
        }
        Ok(())
    }

    /// One loop iteration: poll + apply commands, maybe advance a tick,
    /// publish. Returns `false` once the session is over.
    pub fn tick_once(&mut self) -> io::Result<bool> {
        let tick = self.sim.now();
        let paused = self.state == RunState::Paused;
        let commands = self.source.poll(tick, self.sim.n_mds(), paused);
        for command in commands {
            match command {
                Command::Pause => {
                    self.state = RunState::Paused;
                    self.step_budget = 0;
                }
                Command::Resume => {
                    if self.state == RunState::Paused {
                        self.state = RunState::Running;
                        self.step_budget = 0;
                    }
                }
                Command::Step(n) => {
                    if self.state == RunState::Paused {
                        self.step_budget = self.step_budget.saturating_add(n);
                    }
                }
                Command::Status => self.publish_status()?,
                Command::Stop => {
                    self.state = RunState::Stopped;
                }
                other => {
                    apply_command(&mut self.sim, &mut self.pool, &other);
                }
            }
            if self.state == RunState::Stopped {
                break;
            }
        }
        if self.state == RunState::Stopped {
            return Ok(false);
        }

        let advance = match self.state {
            RunState::Running => true,
            RunState::Paused => self.step_budget > 0,
            RunState::Stopped => false,
        };
        if advance {
            if self.state == RunState::Paused {
                self.step_budget -= 1;
            }
            let advanced = self.sim.step();
            self.publish_events()?;
            if !advanced {
                self.state = RunState::Stopped;
                return Ok(false);
            }
            if self.status_every > 0 && self.sim.now().is_multiple_of(self.status_every) {
                self.publish_status()?;
            }
        }
        Ok(true)
    }

    /// Runs the session to completion under `pacer`. The pacer is told
    /// whether the loop is idle (paused with nothing to do) so it can
    /// sleep instead of spin; at max speed it does nothing while running.
    pub fn run(&mut self, pacer: &mut dyn Pacer) -> io::Result<()> {
        loop {
            if !self.tick_once()? {
                return Ok(());
            }
            let idle = self.state == RunState::Paused && self.step_budget == 0;
            pacer.pace(idle);
        }
    }

    /// Ends the session: finalises the simulation (flushing a partial
    /// epoch into the journal), streams the tail of the journal to every
    /// subscriber, flushes them, and returns the run results.
    pub fn finish(self) -> io::Result<RunResult> {
        let Daemon {
            sim,
            mut subscribers,
            cursor,
            ..
        } = self;
        let telemetry = sim.telemetry().clone();
        let result = sim.finish();
        let (tail, _) = telemetry.events_since(cursor);
        for sub in &mut subscribers {
            if !tail.is_empty() {
                sub.on_events(&tail)?;
            }
            sub.flush()?;
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::MemorySink;
    use crate::pacing::MaxSpeed;
    use crate::session::Session;
    use crate::source::{QueueSource, ScriptSource};
    use lunule_telemetry::Telemetry;

    fn tiny_session() -> Session {
        Session::parse(
            "seed=3\nmds=2\nduration=40\nepoch=10\nclients=2\nscale=0.01\n\
             workload=zipf\nbalancer=off\ncapacity=100\n",
        )
        .unwrap()
    }

    #[test]
    fn daemon_runs_a_session_to_completion() {
        let session = tiny_session();
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut daemon = Daemon::new(sim, pool, ScriptSource::new(Vec::new()));
        daemon.subscribe(Box::new(MemorySink::default()));
        daemon.run(&mut MaxSpeed).unwrap();
        assert_eq!(daemon.state(), RunState::Stopped);
        assert_eq!(daemon.sim().now(), 40);
        let result = daemon.finish().unwrap();
        assert_eq!(result.duration_secs, 40);
    }

    #[test]
    fn pause_holds_the_clock_and_step_advances_it() {
        let session = tiny_session();
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut source = QueueSource::new();
        source.push(Command::Pause);
        let mut daemon = Daemon::new(sim, pool, source);
        assert!(daemon.tick_once().unwrap());
        assert_eq!(daemon.state(), RunState::Paused);
        let held = daemon.sim().now();
        for _ in 0..5 {
            assert!(daemon.tick_once().unwrap());
        }
        assert_eq!(daemon.sim().now(), held, "paused clock must hold");
        // Stepping is only legal while paused and advances exactly n.
        // (QueueSource drained, so push through a fresh command.)
        let mut daemon = {
            let session = tiny_session();
            let (sim, pool) = session.build(Telemetry::enabled());
            let mut source = QueueSource::new();
            source.push(Command::Pause);
            source.push(Command::Step(3));
            Daemon::new(sim, pool, source)
        };
        assert!(daemon.tick_once().unwrap()); // pause + step(3), advances 1
        assert!(daemon.tick_once().unwrap()); // budget 2 -> 1
        assert!(daemon.tick_once().unwrap()); // budget 1 -> 0
        assert_eq!(daemon.sim().now(), 3);
        assert!(daemon.tick_once().unwrap()); // budget exhausted: holds
        assert_eq!(daemon.sim().now(), 3);
        assert_eq!(daemon.state(), RunState::Paused);
    }

    #[test]
    fn stop_command_ends_the_loop() {
        let session = tiny_session();
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut source = QueueSource::new();
        source.push(Command::Stop);
        let mut daemon = Daemon::new(sim, pool, source);
        assert!(!daemon.tick_once().unwrap());
        assert_eq!(daemon.sim().now(), 0, "stop fires before the tick runs");
    }

    #[test]
    fn status_commands_do_not_touch_the_journal() {
        let run = |with_status: bool| {
            let session = tiny_session();
            let (sim, pool) = session.build(Telemetry::enabled());
            let mut source = QueueSource::new();
            if with_status {
                source.push(Command::Status);
            }
            let mut daemon = Daemon::new(sim, pool, source);
            daemon.subscribe(Box::new(MemorySink::default()));
            daemon.run(&mut MaxSpeed).unwrap();
            let telemetry = daemon.sim().telemetry().clone();
            let _ = daemon.finish().unwrap();
            let (events, _) = telemetry.events_since(0);
            events
        };
        assert_eq!(run(false), run(true));
    }
}
