//! The daemon loop: poll commands, advance one tick, publish events.
//!
//! Every loop iteration is the same tick-boundary sequence:
//!
//! 1. poll the [`CommandSource`] for commands due at the current tick and
//!    apply them (state-changing ones through
//!    [`crate::command::apply_command`], pacing ones to the loop state);
//! 2. advance the simulation one tick — unless paused with no step budget;
//! 3. drain newly journaled telemetry events to every subscriber, plus a
//!    status snapshot every `status_every` ticks.
//!
//! Because commands apply at the *same* boundaries the one-shot runner
//! uses, and pause/step/resume only decide whether step 2 happens (never
//! what it computes), a scripted session through this loop journals
//! byte-identically to [`crate::oneshot::run_oneshot`]. The loop itself
//! never reads the wall clock; pacing lives behind the [`Pacer`] passed to
//! [`Daemon::run`].

use crate::bus::{StatusSnapshot, Subscriber};
use crate::command::{apply_command, Command};
use crate::pacing::Pacer;
use crate::source::CommandSource;
use lunule_sim::{OpStream, RunResult, Simulation};
use std::io;
use std::path::PathBuf;

/// Loop state: whether ticks advance freely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Advancing one tick per iteration.
    Running,
    /// Holding; only `step` commands advance ticks.
    Paused,
    /// Finished (duration reached, all clients done, or `stop` command).
    Stopped,
}

/// The long-lived service: simulation + command source + subscribers.
pub struct Daemon<S: CommandSource> {
    sim: Simulation,
    /// Deferred client streams `clients@T:N` commands draw from.
    pool: Vec<Box<dyn OpStream>>,
    source: S,
    subscribers: Vec<Box<dyn Subscriber>>,
    /// How much of the telemetry journal has been streamed out.
    cursor: usize,
    state: RunState,
    /// Ticks still owed to `step` commands while paused.
    step_budget: u64,
    /// Status snapshot cadence in ticks (0 = only on `status` commands).
    status_every: u64,
    /// Where on-disk state snapshots go (`None` = snapshotting off).
    snapshot_dir: Option<PathBuf>,
    /// State snapshot cadence in ticks (0 = only on `snapshot` commands).
    snapshot_every: u64,
    /// Tick of the most recent snapshot written this session.
    last_snapshot_tick: Option<u64>,
    /// Snapshots written this session.
    snapshot_count: u64,
}

impl<S: CommandSource> Daemon<S> {
    /// Wraps a built session (see [`crate::Session::build`]).
    pub fn new(sim: Simulation, pool: Vec<Box<dyn OpStream>>, source: S) -> Self {
        Daemon {
            sim,
            pool,
            source,
            subscribers: Vec::new(),
            cursor: 0,
            state: RunState::Running,
            step_budget: 0,
            status_every: 0,
            snapshot_dir: None,
            snapshot_every: 0,
            last_snapshot_tick: None,
            snapshot_count: 0,
        }
    }

    /// Attaches a subscriber to the event bus.
    pub fn subscribe(&mut self, subscriber: Box<dyn Subscriber>) {
        self.subscribers.push(subscriber);
    }

    /// Emits a status snapshot every `ticks` ticks (0 disables periodic
    /// status; `status` commands always work).
    pub fn set_status_every(&mut self, ticks: u64) {
        self.status_every = ticks;
    }

    /// Enables on-disk state snapshots into `dir`: one every `every` ticks
    /// (0 = only when a `snapshot` command asks), written crash-safely via
    /// `lunule_snapshot::write_atomic` after the journal sinks have been
    /// fsynced — so a kill at *any* instant leaves a snapshot whose covered
    /// journal prefix is already durable.
    pub fn set_snapshots(&mut self, dir: PathBuf, every: u64) {
        self.snapshot_dir = Some(dir);
        self.snapshot_every = every;
    }

    /// Number of state snapshots written this session.
    pub fn snapshot_count(&self) -> u64 {
        self.snapshot_count
    }

    /// Tick of the most recent state snapshot, if any were written.
    pub fn last_snapshot_tick(&self) -> Option<u64> {
        self.last_snapshot_tick
    }

    /// Current loop state.
    pub fn state(&self) -> RunState {
        self.state
    }

    /// The simulation under management.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    fn publish_events(&mut self) -> io::Result<()> {
        let (batch, cursor) = self.sim.telemetry().events_since(self.cursor);
        self.cursor = cursor;
        if batch.is_empty() {
            return Ok(());
        }
        for sub in &mut self.subscribers {
            sub.on_events(&batch)?;
        }
        Ok(())
    }

    fn publish_status(&mut self) -> io::Result<()> {
        let mut status = StatusSnapshot::capture(&self.sim, self.state == RunState::Paused);
        status.last_snapshot_tick = self.last_snapshot_tick;
        status.snapshots = self.snapshot_count;
        for sub in &mut self.subscribers {
            sub.on_status(&status)?;
        }
        Ok(())
    }

    /// Writes a state snapshot now (between ticks). Journal durability
    /// first: every record the snapshot covers is flushed and fsynced
    /// before the snapshot file appears, so a crash straddling the two
    /// writes can never leave a snapshot pointing past the journal.
    /// Silently a no-op without a configured snapshot directory.
    fn take_snapshot(&mut self) -> io::Result<()> {
        let Some(dir) = self.snapshot_dir.clone() else {
            return Ok(());
        };
        for sub in &mut self.subscribers {
            sub.sync()?;
        }
        let snap = self.sim.snapshot();
        let path = dir.join(lunule_snapshot::snapshot_filename(snap.tick));
        lunule_snapshot::write_atomic(&path, &snap).map_err(|e| io::Error::other(e.to_string()))?;
        self.last_snapshot_tick = Some(snap.tick);
        self.snapshot_count += 1;
        Ok(())
    }

    /// One loop iteration: poll + apply commands, maybe advance a tick,
    /// publish. Returns `false` once the session is over.
    pub fn tick_once(&mut self) -> io::Result<bool> {
        let tick = self.sim.now();
        let paused = self.state == RunState::Paused;
        let commands = self.source.poll(tick, self.sim.n_mds(), paused);
        for command in commands {
            match command {
                Command::Pause => {
                    self.state = RunState::Paused;
                    self.step_budget = 0;
                }
                Command::Resume => {
                    if self.state == RunState::Paused {
                        self.state = RunState::Running;
                        self.step_budget = 0;
                    }
                }
                Command::Step(n) => {
                    if self.state == RunState::Paused {
                        self.step_budget = self.step_budget.saturating_add(n);
                    }
                }
                Command::Status => self.publish_status()?,
                Command::Snapshot => self.take_snapshot()?,
                Command::Stop => {
                    self.state = RunState::Stopped;
                }
                other => {
                    apply_command(&mut self.sim, &mut self.pool, &other);
                }
            }
            if self.state == RunState::Stopped {
                break;
            }
        }
        if self.state == RunState::Stopped {
            return Ok(false);
        }

        let advance = match self.state {
            RunState::Running => true,
            RunState::Paused => self.step_budget > 0,
            RunState::Stopped => false,
        };
        if advance {
            if self.state == RunState::Paused {
                self.step_budget -= 1;
            }
            let advanced = self.sim.step();
            self.publish_events()?;
            if !advanced {
                self.state = RunState::Stopped;
                return Ok(false);
            }
            if self.status_every > 0 && self.sim.now().is_multiple_of(self.status_every) {
                self.publish_status()?;
            }
            if self.snapshot_every > 0 && self.sim.now().is_multiple_of(self.snapshot_every) {
                self.take_snapshot()?;
            }
        }
        Ok(true)
    }

    /// Runs the session to completion under `pacer`. The pacer is told
    /// whether the loop is idle (paused with nothing to do) so it can
    /// sleep instead of spin; at max speed it does nothing while running.
    pub fn run(&mut self, pacer: &mut dyn Pacer) -> io::Result<()> {
        loop {
            if !self.tick_once()? {
                return Ok(());
            }
            let idle = self.state == RunState::Paused && self.step_budget == 0;
            pacer.observe_tick(self.sim.now());
            pacer.pace(idle);
        }
    }

    /// Ends the session: finalises the simulation (flushing a partial
    /// epoch into the journal), streams the tail of the journal to every
    /// subscriber, flushes them, and returns the run results.
    pub fn finish(self) -> io::Result<RunResult> {
        let Daemon {
            sim,
            mut subscribers,
            cursor,
            ..
        } = self;
        let telemetry = sim.telemetry().clone();
        let result = sim.finish();
        let (tail, _) = telemetry.events_since(cursor);
        for sub in &mut subscribers {
            if !tail.is_empty() {
                sub.on_events(&tail)?;
            }
            // Durable flush: a daemon ending via `stop` leaves its journal
            // fsynced, not just pushed into the OS page cache.
            sub.sync()?;
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::MemorySink;
    use crate::pacing::MaxSpeed;
    use crate::session::Session;
    use crate::source::{QueueSource, ScriptSource};
    use lunule_telemetry::Telemetry;

    fn tiny_session() -> Session {
        Session::parse(
            "seed=3\nmds=2\nduration=40\nepoch=10\nclients=2\nscale=0.01\n\
             workload=zipf\nbalancer=off\ncapacity=100\n",
        )
        .unwrap()
    }

    #[test]
    fn daemon_runs_a_session_to_completion() {
        let session = tiny_session();
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut daemon = Daemon::new(sim, pool, ScriptSource::new(Vec::new()));
        daemon.subscribe(Box::new(MemorySink::default()));
        daemon.run(&mut MaxSpeed).unwrap();
        assert_eq!(daemon.state(), RunState::Stopped);
        assert_eq!(daemon.sim().now(), 40);
        let result = daemon.finish().unwrap();
        assert_eq!(result.duration_secs, 40);
    }

    #[test]
    fn pause_holds_the_clock_and_step_advances_it() {
        let session = tiny_session();
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut source = QueueSource::new();
        source.push(Command::Pause);
        let mut daemon = Daemon::new(sim, pool, source);
        assert!(daemon.tick_once().unwrap());
        assert_eq!(daemon.state(), RunState::Paused);
        let held = daemon.sim().now();
        for _ in 0..5 {
            assert!(daemon.tick_once().unwrap());
        }
        assert_eq!(daemon.sim().now(), held, "paused clock must hold");
        // Stepping is only legal while paused and advances exactly n.
        // (QueueSource drained, so push through a fresh command.)
        let mut daemon = {
            let session = tiny_session();
            let (sim, pool) = session.build(Telemetry::enabled());
            let mut source = QueueSource::new();
            source.push(Command::Pause);
            source.push(Command::Step(3));
            Daemon::new(sim, pool, source)
        };
        assert!(daemon.tick_once().unwrap()); // pause + step(3), advances 1
        assert!(daemon.tick_once().unwrap()); // budget 2 -> 1
        assert!(daemon.tick_once().unwrap()); // budget 1 -> 0
        assert_eq!(daemon.sim().now(), 3);
        assert!(daemon.tick_once().unwrap()); // budget exhausted: holds
        assert_eq!(daemon.sim().now(), 3);
        assert_eq!(daemon.state(), RunState::Paused);
    }

    #[test]
    fn stop_command_ends_the_loop() {
        let session = tiny_session();
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut source = QueueSource::new();
        source.push(Command::Stop);
        let mut daemon = Daemon::new(sim, pool, source);
        assert!(!daemon.tick_once().unwrap());
        assert_eq!(daemon.sim().now(), 0, "stop fires before the tick runs");
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lunule-daemon-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_command_writes_a_file_and_status_reports_it() {
        let session = tiny_session();
        let dir = tmpdir("cmd");
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut source = QueueSource::new();
        source.push(Command::Snapshot);
        source.push(Command::Status);
        let mut daemon = Daemon::new(sim, pool, source);
        daemon.set_snapshots(dir.clone(), 0);
        daemon.subscribe(Box::new(MemorySink::default()));
        assert!(daemon.tick_once().unwrap());
        assert_eq!(daemon.snapshot_count(), 1);
        assert_eq!(daemon.last_snapshot_tick(), Some(0));
        let path = dir.join(lunule_snapshot::snapshot_filename(0));
        let snap = lunule_snapshot::read(&path).unwrap();
        assert_eq!(snap.tick, 0);
        assert_eq!(snap.seed, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_snapshots_follow_the_cadence() {
        let session = tiny_session();
        let dir = tmpdir("cadence");
        let (sim, pool) = session.build(Telemetry::enabled());
        let mut daemon = Daemon::new(sim, pool, ScriptSource::new(Vec::new()));
        daemon.set_snapshots(dir.clone(), 15);
        daemon.run(&mut MaxSpeed).unwrap();
        // duration=40 with a snapshot every 15 ticks: ticks 15 and 30.
        assert_eq!(daemon.snapshot_count(), 2);
        assert_eq!(daemon.last_snapshot_tick(), Some(30));
        let mut status = crate::bus::StatusSnapshot::capture(daemon.sim(), false);
        status.last_snapshot_tick = daemon.last_snapshot_tick();
        status.snapshots = daemon.snapshot_count();
        assert!(status.to_json_line().contains(r#""last_snapshot_tick":30"#));
        let _ = daemon.finish().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_and_restore_resumes_byte_identically() {
        // State changes on both sides of the snapshot: a crash fault and a
        // client attach before it, an MDS add after it.
        let script = "seed=11\nmds=3\nduration=60\nepoch=10\nclients=2\nscale=0.01\n\
                      workload=zipf\nbalancer=lunule\ncapacity=200\n\
                      crash@8:1:10\nclients@5:2\naddmds@30\n";
        let session = Session::parse(script).unwrap();

        // Reference: the uninterrupted daemon journal.
        let reference = {
            let (sim, pool) = session.build(Telemetry::enabled());
            let mut daemon = Daemon::new(sim, pool, ScriptSource::new(session.commands.clone()));
            daemon.run(&mut MaxSpeed).unwrap();
            let telemetry = daemon.sim().telemetry().clone();
            let _ = daemon.finish().unwrap();
            lunule_telemetry::events_jsonl(&telemetry.snapshot().unwrap_or_default())
        };

        // Interrupted run: snapshot at tick 17, "killed" (dropped without
        // finish) at tick 20.
        let dir = tmpdir("restore");
        let pre_all = {
            let (sim, pool) = session.build(Telemetry::enabled());
            let mut daemon = Daemon::new(sim, pool, ScriptSource::new(session.commands.clone()));
            daemon.set_snapshots(dir.clone(), 17);
            for _ in 0..20 {
                assert!(daemon.tick_once().unwrap());
            }
            assert_eq!(daemon.snapshot_count(), 1);
            daemon
                .sim()
                .telemetry()
                .snapshot()
                .unwrap_or_default()
                .events
        };

        // Recover: newest valid snapshot for this session's digest.
        let (_, snap) = lunule_snapshot::find_latest_valid(&dir, Some(session.digest()))
            .unwrap()
            .unwrap();
        assert_eq!(snap.tick, 17);
        let telemetry = Telemetry::enabled();
        let (sim, pool) = session.build_restored(telemetry.clone(), &snap).unwrap();
        assert_eq!(sim.now(), 17);
        assert_eq!(sim.n_clients(), 4, "clients@5 is inside the snapshot");
        assert!(pool.is_empty());
        let (clock, seq) = sim.telemetry().clock_position();
        let mut source = ScriptSource::new(session.commands.clone());
        source.skip_until(snap.tick);
        let mut daemon = Daemon::new(sim, pool, source);
        daemon.run(&mut MaxSpeed).unwrap();
        assert_eq!(daemon.sim().now(), 60);
        assert_eq!(daemon.sim().n_mds(), 4, "addmds@30 fires after restore");
        let _ = daemon.finish().unwrap();
        let post = telemetry.snapshot().unwrap_or_default().events;

        // Stitch: journal records the snapshot covers, then the restored
        // run's journal — byte-identical to the uninterrupted reference.
        let stitched: Vec<_> = pre_all
            .into_iter()
            .filter(|r| (r.t, r.seq) < (clock, seq))
            .chain(post)
            .collect();
        let stitched_jsonl = lunule_telemetry::events_jsonl(&lunule_telemetry::Snapshot {
            events: stitched,
            ..lunule_telemetry::Snapshot::default()
        });
        assert_eq!(stitched_jsonl, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_commands_do_not_touch_the_journal() {
        let run = |with_status: bool| {
            let session = tiny_session();
            let (sim, pool) = session.build(Telemetry::enabled());
            let mut source = QueueSource::new();
            if with_status {
                source.push(Command::Status);
            }
            let mut daemon = Daemon::new(sim, pool, source);
            daemon.subscribe(Box::new(MemorySink::default()));
            daemon.run(&mut MaxSpeed).unwrap();
            let telemetry = daemon.sim().telemetry().clone();
            let _ = daemon.finish().unwrap();
            let (events, _) = telemetry.events_since(0);
            events
        };
        assert_eq!(run(false), run(true));
    }
}
