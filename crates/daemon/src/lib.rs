//! # lunule-daemon
//!
//! Runs the simulated Lunule MDS cluster as a **long-lived, operable
//! service** instead of a one-shot batch run: a tick loop advances the
//! [`lunule_sim::Simulation`] in real time (`--ticks-per-sec`) or at max
//! speed, a [`CommandSource`] feeds operator commands into each tick
//! boundary, and an event bus streams the typed `lunule-telemetry` journal
//! plus periodic status snapshots to [`Subscriber`]s (stdout JSONL, file
//! sinks).
//!
//! ## Command grammar
//!
//! Session scripts (`.lds` files, see [`session`]) extend the
//! `lunule-faults` spec grammar: fault events (`crash@120:1:60`, …) parse
//! through exactly [`lunule_faults::parse_fault_kind`], and the daemon
//! adds control commands in the same `kind@tick:field:...` shape —
//! `recover@T:R`, `addmds@T[:N]`, `drain@T:R`, `clients@T:N`,
//! `knob@T:name:value`, `pause@T`, `step@T:N`, `resume@T`, `status@T`,
//! `stop@T`. The interactive stdin protocol is the same commands without
//! the `@tick` (they take effect at the next tick boundary).
//!
//! ## Determinism boundary
//!
//! The headline invariant: **a scripted session at max speed produces a
//! byte-identical telemetry journal to the equivalent one-shot run**
//! ([`oneshot::run_oneshot`]). Everything on the simulation side of the
//! bus is driven purely by the deterministic tick clock; wall-clock time
//! and threads exist only in [`pacing`], which decides *when* the next
//! tick runs, never *what* it computes. Pause/step/resume are pacing-layer
//! states and leave the journal untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod command;
pub mod daemon;
pub mod oneshot;
pub mod pacing;
pub mod session;
pub mod source;

pub use bus::{JournalFileSink, JsonlWriter, StatusSnapshot, Subscriber};
pub use command::{apply_command, Command, TimedCommand};
pub use daemon::{Daemon, RunState};
pub use oneshot::run_oneshot;
pub use pacing::{spawn_stdin_reader, Catchup, MaxSpeed, Pacer, RealTime};
pub use session::Session;
pub use source::{
    parse_interactive, CommandSource, CompositeSource, QueueSource, ScriptSource, StdinSource,
};
