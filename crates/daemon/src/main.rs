//! `lunule-daemon`: run a Lunule cluster as a long-lived, operable
//! service.
//!
//! ```text
//! lunule-daemon --script examples/session.lds [flags]
//!
//!   --script FILE        session script (.lds) to run (required)
//!   --oneshot            run the batch reference path instead of the loop
//!   --max-speed          no pacing: ticks run as fast as they compute (default)
//!   --ticks-per-sec F    real-time pacing at F ticks per wall second
//!   --journal-dir DIR    write <label>.events.jsonl here (default: results)
//!   --label NAME         journal file stem (default: script file stem)
//!   --status-every N     periodic status line cadence in ticks (default 0 = off)
//!   --interactive        also accept commands on stdin (crash:1:60, pause, ...)
//!   --stdout             stream journal events (and status) to stdout too
//!   --snapshot-dir DIR   write crash-safe state snapshots here
//!   --snapshot-every N   snapshot cadence in ticks (0 = only on `snapshot` commands)
//!   --restore PATH       resume from a snapshot file, or from the newest
//!                        valid snapshot when PATH is a directory
//! ```
//!
//! The same script through `--oneshot` and through the daemon loop at
//! `--max-speed` produces byte-identical journal files — that equivalence
//! is the headline invariant this binary exists to demonstrate. With
//! snapshots enabled the invariant survives a kill at **any** instant:
//! `--restore` stitches the old journal at the snapshot's clock position,
//! re-simulates from there (catching up at max speed under real-time
//! pacing), and the finished journal is byte-identical to an
//! uninterrupted run's.

use lunule_daemon::{
    run_oneshot, Catchup, CommandSource, CompositeSource, Daemon, JournalFileSink, JsonlWriter,
    MaxSpeed, Pacer, RealTime, ScriptSource, Session, StdinSource,
};
use lunule_snapshot::Snapshot;
use std::io::Write;
use std::path::{Path, PathBuf};

struct Cli {
    script: PathBuf,
    oneshot: bool,
    ticks_per_sec: Option<f64>,
    journal_dir: PathBuf,
    label: Option<String>,
    status_every: u64,
    interactive: bool,
    stdout: bool,
    snapshot_dir: Option<PathBuf>,
    snapshot_every: u64,
    restore: Option<PathBuf>,
}

#[allow(clippy::exit)]
fn usage(err: &str) -> ! {
    let mut stderr = std::io::stderr();
    let _ = writeln!(stderr, "lunule-daemon: {err}");
    let _ = writeln!(
        stderr,
        "usage: lunule-daemon --script FILE [--oneshot] [--max-speed | --ticks-per-sec F]\n\
         \x20                    [--journal-dir DIR] [--label NAME] [--status-every N]\n\
         \x20                    [--interactive] [--stdout] [--snapshot-dir DIR]\n\
         \x20                    [--snapshot-every N] [--restore PATH]"
    );
    std::process::exit(2)
}

#[allow(clippy::exit)]
fn fail(err: &str) -> ! {
    let _ = writeln!(std::io::stderr(), "lunule-daemon: {err}");
    std::process::exit(1)
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        script: PathBuf::new(),
        oneshot: false,
        ticks_per_sec: None,
        journal_dir: PathBuf::from("results"),
        label: None,
        status_every: 0,
        interactive: false,
        stdout: false,
        snapshot_dir: None,
        snapshot_every: 0,
        restore: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--script" => match args.next() {
                Some(v) => cli.script = PathBuf::from(v),
                None => usage("--script needs a file"),
            },
            "--oneshot" => cli.oneshot = true,
            "--max-speed" => cli.ticks_per_sec = None,
            "--ticks-per-sec" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => cli.ticks_per_sec = Some(v),
                _ => usage("--ticks-per-sec needs a positive number"),
            },
            "--journal-dir" => match args.next() {
                Some(v) => cli.journal_dir = PathBuf::from(v),
                None => usage("--journal-dir needs a directory"),
            },
            "--label" => match args.next() {
                Some(v) => cli.label = Some(v),
                None => usage("--label needs a name"),
            },
            "--status-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => cli.status_every = v,
                None => usage("--status-every needs a tick count"),
            },
            "--interactive" => cli.interactive = true,
            "--stdout" => cli.stdout = true,
            "--snapshot-dir" => match args.next() {
                Some(v) => cli.snapshot_dir = Some(PathBuf::from(v)),
                None => usage("--snapshot-dir needs a directory"),
            },
            "--snapshot-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => cli.snapshot_every = v,
                None => usage("--snapshot-every needs a tick count"),
            },
            "--restore" => match args.next() {
                Some(v) => cli.restore = Some(PathBuf::from(v)),
                None => usage("--restore needs a snapshot file or directory"),
            },
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    if cli.script.as_os_str().is_empty() {
        usage("--script is required");
    }
    if cli.oneshot && cli.restore.is_some() {
        usage("--restore does not combine with --oneshot");
    }
    cli
}

/// Loads the snapshot `--restore` names: a snapshot file directly, or the
/// newest valid snapshot in a directory. A corrupt, truncated, or foreign
/// file falls back to the newest valid sibling in its directory — the
/// recovery behaviour the self-validating format exists for.
fn load_snapshot(restore: &Path, digest: u64) -> Snapshot {
    let scan = |dir: &Path| match lunule_snapshot::find_latest_valid(dir, Some(digest)) {
        Ok(found) => found,
        Err(e) => fail(&format!("cannot scan {}: {e}", dir.display())),
    };
    if restore.is_dir() {
        match scan(restore) {
            Some((path, snap)) => {
                let _ = writeln!(
                    std::io::stderr(),
                    "restoring from {} (tick {})",
                    path.display(),
                    snap.tick
                );
                return snap;
            }
            None => fail(&format!(
                "no valid snapshot for this session in {}",
                restore.display()
            )),
        }
    }
    let direct = lunule_snapshot::read(restore).and_then(|s| {
        s.check_digest(digest)?;
        Ok(s)
    });
    match direct {
        Ok(snap) => snap,
        Err(e) => {
            let dir = restore.parent().filter(|d| !d.as_os_str().is_empty());
            let fallback = dir.and_then(scan);
            match fallback {
                Some((path, snap)) => {
                    let _ = writeln!(
                        std::io::stderr(),
                        "lunule-daemon: {}: {e}; falling back to {} (tick {})",
                        restore.display(),
                        path.display(),
                        snap.tick
                    );
                    snap
                }
                None => fail(&format!(
                    "{}: {e} (and no valid fallback snapshot found)",
                    restore.display()
                )),
            }
        }
    }
}

fn script_label(cli: &Cli) -> String {
    if let Some(label) = &cli.label {
        return label.clone();
    }
    cli.script
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "session".to_string())
}

fn main() {
    let cli = parse_cli();
    let text = match std::fs::read_to_string(&cli.script) {
        Ok(text) => text,
        Err(e) => fail(&format!("cannot read {}: {e}", cli.script.display())),
    };
    let session = match Session::parse(&text) {
        Ok(session) => session,
        Err(e) => fail(&format!("{}: {e}", cli.script.display())),
    };
    let label = script_label(&cli);

    if cli.oneshot {
        let (result, snapshot) = run_oneshot(&session);
        if let Err(e) = std::fs::create_dir_all(&cli.journal_dir) {
            fail(&format!("cannot create {}: {e}", cli.journal_dir.display()));
        }
        let path = cli.journal_dir.join(format!("{label}.events.jsonl"));
        if let Err(e) = std::fs::write(&path, lunule_telemetry::events_jsonl(&snapshot)) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
        let _ = writeln!(
            std::io::stderr(),
            "oneshot: {} ticks, {} ops, {} events -> {}",
            result.duration_secs,
            result.total_ops,
            snapshot.events.len(),
            path.display()
        );
        return;
    }

    let telemetry = lunule_telemetry::Telemetry::enabled();
    let restored = cli
        .restore
        .as_deref()
        .map(|path| load_snapshot(path, session.digest()));
    let (sim, pool) = match &restored {
        Some(snap) => match session.build_restored(telemetry, snap) {
            Ok(built) => built,
            Err(e) => fail(&format!("cannot restore: {e}")),
        },
        None => session.build(telemetry),
    };
    let mut script = ScriptSource::new(session.commands.clone());
    if let Some(snap) = &restored {
        // Commands before the snapshot tick already applied; their effects
        // are part of the restored state.
        script.skip_until(snap.tick);
    }
    let source: Box<dyn CommandSource> = if cli.interactive {
        let lines = lunule_daemon::spawn_stdin_reader();
        Box::new(CompositeSource(script, StdinSource::new(lines)))
    } else {
        Box::new(script)
    };
    let mut daemon = Daemon::new(sim, pool, source);
    daemon.set_status_every(cli.status_every);
    if let Some(dir) = &cli.snapshot_dir {
        daemon.set_snapshots(dir.clone(), cli.snapshot_every);
    }
    // Journal sink: fresh for a new run; for a restore, the interrupted
    // run's journal stitched at the snapshot's clock position so the
    // finished file matches an uninterrupted run byte-for-byte.
    let (sink, catchup_target) = if restored.is_some() {
        let (clock, seq) = daemon.sim().telemetry().clock_position();
        match JournalFileSink::resume(&cli.journal_dir, &label, clock, seq) {
            // The dead run had completed every tick whose events it
            // journaled, so catching up means passing the last stamped one.
            Ok((sink, reached)) => (sink, Some(reached + 1)),
            Err(e) => fail(&format!(
                "cannot resume journal in {}: {e}",
                cli.journal_dir.display()
            )),
        }
    } else {
        match JournalFileSink::create(&cli.journal_dir, &label) {
            Ok(sink) => (sink, None),
            Err(e) => fail(&format!(
                "cannot open journal in {}: {e}",
                cli.journal_dir.display()
            )),
        }
    };
    let journal_path = sink.path().to_path_buf();
    daemon.subscribe(Box::new(sink));
    if cli.stdout {
        daemon.subscribe(Box::new(JsonlWriter::with_status(std::io::stdout())));
    }

    let mut pacer: Box<dyn Pacer> = match (cli.ticks_per_sec, catchup_target) {
        (Some(tps), Some(target)) => Box::new(Catchup::new(target, RealTime::new(tps))),
        (Some(tps), None) => Box::new(RealTime::new(tps)),
        (None, _) => Box::new(MaxSpeed),
    };
    if let Err(e) = daemon.run(pacer.as_mut()) {
        fail(&format!("event bus error: {e}"));
    }
    let ticks = daemon.sim().now();
    match daemon.finish() {
        Ok(result) => {
            let _ = writeln!(
                std::io::stderr(),
                "daemon: {} ticks, {} ops -> {}",
                ticks,
                result.total_ops,
                journal_path.display()
            );
        }
        Err(e) => fail(&format!("finish failed: {e}")),
    }
}
