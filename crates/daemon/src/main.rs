//! `lunule-daemon`: run a Lunule cluster as a long-lived, operable
//! service.
//!
//! ```text
//! lunule-daemon --script examples/session.lds [flags]
//!
//!   --script FILE        session script (.lds) to run (required)
//!   --oneshot            run the batch reference path instead of the loop
//!   --max-speed          no pacing: ticks run as fast as they compute (default)
//!   --ticks-per-sec F    real-time pacing at F ticks per wall second
//!   --journal-dir DIR    write <label>.events.jsonl here (default: results)
//!   --label NAME         journal file stem (default: script file stem)
//!   --status-every N     periodic status line cadence in ticks (default 0 = off)
//!   --interactive        also accept commands on stdin (crash:1:60, pause, ...)
//!   --stdout             stream journal events (and status) to stdout too
//! ```
//!
//! The same script through `--oneshot` and through the daemon loop at
//! `--max-speed` produces byte-identical journal files — that equivalence
//! is the headline invariant this binary exists to demonstrate.

use lunule_daemon::{
    run_oneshot, CommandSource, CompositeSource, Daemon, JournalFileSink, JsonlWriter, MaxSpeed,
    Pacer, RealTime, ScriptSource, Session, StdinSource,
};
use std::io::Write;
use std::path::PathBuf;

struct Cli {
    script: PathBuf,
    oneshot: bool,
    ticks_per_sec: Option<f64>,
    journal_dir: PathBuf,
    label: Option<String>,
    status_every: u64,
    interactive: bool,
    stdout: bool,
}

#[allow(clippy::exit)]
fn usage(err: &str) -> ! {
    let mut stderr = std::io::stderr();
    let _ = writeln!(stderr, "lunule-daemon: {err}");
    let _ = writeln!(
        stderr,
        "usage: lunule-daemon --script FILE [--oneshot] [--max-speed | --ticks-per-sec F]\n\
         \x20                    [--journal-dir DIR] [--label NAME] [--status-every N]\n\
         \x20                    [--interactive] [--stdout]"
    );
    std::process::exit(2)
}

#[allow(clippy::exit)]
fn fail(err: &str) -> ! {
    let _ = writeln!(std::io::stderr(), "lunule-daemon: {err}");
    std::process::exit(1)
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        script: PathBuf::new(),
        oneshot: false,
        ticks_per_sec: None,
        journal_dir: PathBuf::from("results"),
        label: None,
        status_every: 0,
        interactive: false,
        stdout: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--script" => match args.next() {
                Some(v) => cli.script = PathBuf::from(v),
                None => usage("--script needs a file"),
            },
            "--oneshot" => cli.oneshot = true,
            "--max-speed" => cli.ticks_per_sec = None,
            "--ticks-per-sec" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => cli.ticks_per_sec = Some(v),
                _ => usage("--ticks-per-sec needs a positive number"),
            },
            "--journal-dir" => match args.next() {
                Some(v) => cli.journal_dir = PathBuf::from(v),
                None => usage("--journal-dir needs a directory"),
            },
            "--label" => match args.next() {
                Some(v) => cli.label = Some(v),
                None => usage("--label needs a name"),
            },
            "--status-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => cli.status_every = v,
                None => usage("--status-every needs a tick count"),
            },
            "--interactive" => cli.interactive = true,
            "--stdout" => cli.stdout = true,
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    if cli.script.as_os_str().is_empty() {
        usage("--script is required");
    }
    cli
}

fn script_label(cli: &Cli) -> String {
    if let Some(label) = &cli.label {
        return label.clone();
    }
    cli.script
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "session".to_string())
}

fn main() {
    let cli = parse_cli();
    let text = match std::fs::read_to_string(&cli.script) {
        Ok(text) => text,
        Err(e) => fail(&format!("cannot read {}: {e}", cli.script.display())),
    };
    let session = match Session::parse(&text) {
        Ok(session) => session,
        Err(e) => fail(&format!("{}: {e}", cli.script.display())),
    };
    let label = script_label(&cli);

    if cli.oneshot {
        let (result, snapshot) = run_oneshot(&session);
        if let Err(e) = std::fs::create_dir_all(&cli.journal_dir) {
            fail(&format!("cannot create {}: {e}", cli.journal_dir.display()));
        }
        let path = cli.journal_dir.join(format!("{label}.events.jsonl"));
        if let Err(e) = std::fs::write(&path, lunule_telemetry::events_jsonl(&snapshot)) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
        let _ = writeln!(
            std::io::stderr(),
            "oneshot: {} ticks, {} ops, {} events -> {}",
            result.duration_secs,
            result.total_ops,
            snapshot.events.len(),
            path.display()
        );
        return;
    }

    let telemetry = lunule_telemetry::Telemetry::enabled();
    let (sim, pool) = session.build(telemetry);
    let script = ScriptSource::new(session.commands.clone());
    let source: Box<dyn CommandSource> = if cli.interactive {
        let lines = lunule_daemon::spawn_stdin_reader();
        Box::new(CompositeSource(script, StdinSource::new(lines)))
    } else {
        Box::new(script)
    };
    let mut daemon = Daemon::new(sim, pool, source);
    daemon.set_status_every(cli.status_every);
    let sink = match JournalFileSink::create(&cli.journal_dir, &label) {
        Ok(sink) => sink,
        Err(e) => fail(&format!(
            "cannot open journal in {}: {e}",
            cli.journal_dir.display()
        )),
    };
    let journal_path = sink.path().to_path_buf();
    daemon.subscribe(Box::new(sink));
    if cli.stdout {
        daemon.subscribe(Box::new(JsonlWriter::with_status(std::io::stdout())));
    }

    let mut max_speed = MaxSpeed;
    let mut real_time;
    let pacer: &mut dyn Pacer = match cli.ticks_per_sec {
        Some(tps) => {
            real_time = RealTime::new(tps);
            &mut real_time
        }
        None => &mut max_speed,
    };
    if let Err(e) = daemon.run(pacer) {
        fail(&format!("event bus error: {e}"));
    }
    let ticks = daemon.sim().now();
    match daemon.finish() {
        Ok(result) => {
            let _ = writeln!(
                std::io::stderr(),
                "daemon: {} ticks, {} ops -> {}",
                ticks,
                result.total_ops,
                journal_path.display()
            );
        }
        Err(e) => fail(&format!("finish failed: {e}")),
    }
}
