//! The one-shot reference path: run a session as a batch job.
//!
//! This is what every bench binary already does — `run_until` to each
//! boundary of interest, mutate, continue — expressed over a parsed
//! [`Session`]. It is the *reference semantics* the daemon loop is held
//! to: for any scripted session, the telemetry journal produced here must
//! be byte-identical to the journal the daemon streams at max speed
//! (`tests/determinism.rs` pins this).

use crate::command::{apply_command, Command};
use crate::session::Session;
use lunule_sim::RunResult;
use lunule_telemetry::{Snapshot, Telemetry};

/// Runs `session` start-to-finish without a daemon loop: commands are
/// applied at their tick boundaries via `run_until`, journal-neutral
/// pacing commands (`pause`/`step`/`resume`/`status`) are skipped, and a
/// `stop` command truncates the run exactly as it stops the daemon loop.
/// Returns the run results and the full telemetry snapshot (taken after
/// `finish`, so the flushed partial epoch is included — same as the
/// daemon's journal tail).
pub fn run_oneshot(session: &Session) -> (RunResult, Snapshot) {
    let telemetry = Telemetry::enabled();
    let (mut sim, mut pool) = session.build(telemetry.clone());
    let mut stopped = false;
    for tc in &session.commands {
        if tc.command.is_journal_neutral() {
            continue;
        }
        sim.run_until(tc.at_tick);
        if sim.now() < tc.at_tick {
            // The run ended before this command's tick; the daemon loop
            // would have stopped polling here too.
            break;
        }
        if matches!(tc.command, Command::Stop) {
            stopped = true;
            break;
        }
        apply_command(&mut sim, &mut pool, &tc.command);
    }
    if !stopped {
        sim.run_until(u64::MAX);
    }
    let result = sim.finish();
    let snapshot = telemetry.snapshot().unwrap_or_default();
    (result, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_applies_commands_and_truncates_on_stop() {
        let session = Session::parse(
            "seed=5\nmds=2\nduration=100\nepoch=10\nclients=2\nscale=0.01\n\
             workload=zipf\nbalancer=off\ncapacity=100\n\
             addmds@20\nstop@50\n",
        )
        .unwrap();
        let (result, snapshot) = run_oneshot(&session);
        assert_eq!(result.duration_secs, 50, "stop@50 truncates");
        // A command at tick T applies on the boundary after tick T-1 ran,
        // so it journals with the T-1 clock — the same convention the
        // end-of-tick epoch flush uses.
        assert!(snapshot
            .events
            .iter()
            .any(|r| r.event.kind() == "mds_add" && r.t == 19));
    }
}
