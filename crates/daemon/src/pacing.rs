//! Pacing: the only module in the workspace allowed to touch the wall
//! clock or spawn threads.
//!
//! The daemon loop ([`crate::Daemon::run`]) computes every tick the same
//! way regardless of pacing; a [`Pacer`] only decides *when* the next
//! iteration starts. Confining `Instant`/`thread` here keeps the
//! determinism auditor's job easy: everything else in the crate is
//! wall-clock-free, which is what lets a max-speed daemon run journal
//! byte-identically to a one-shot batch run.

use std::io::BufRead;
use std::sync::mpsc::{self, Receiver};
use std::thread;
use std::time::{Duration, Instant};

/// Decides when the next loop iteration may start. `idle` is true when
/// the loop is paused with no step budget — a pacer should sleep then
/// instead of spinning, whatever its normal cadence.
pub trait Pacer {
    /// Called after every loop iteration.
    fn pace(&mut self, idle: bool);

    /// Tells the pacer how far the simulation has advanced (called once
    /// per iteration, before [`Pacer::pace`]). Default: ignore — only
    /// pacers whose cadence depends on progress (e.g. [`Catchup`]) care.
    fn observe_tick(&mut self, _tick: u64) {}
}

/// No pacing: ticks run back-to-back as fast as the simulation computes
/// them. While idle (paused), naps briefly so a paused interactive
/// session does not burn a core polling stdin.
pub struct MaxSpeed;

impl Pacer for MaxSpeed {
    fn pace(&mut self, idle: bool) {
        if idle {
            thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Real-time pacing: holds the loop to a fixed number of ticks per
/// wall-clock second using absolute deadlines, so sleep jitter does not
/// accumulate drift. A stall longer than one period (e.g. a laptop
/// suspend) re-anchors rather than fast-forwarding a burst of ticks.
pub struct RealTime {
    period: Duration,
    deadline: Instant,
}

impl RealTime {
    /// Paces at `ticks_per_sec` (clamped to a sane positive range).
    pub fn new(ticks_per_sec: f64) -> Self {
        let tps = ticks_per_sec.clamp(0.01, 1_000_000.0);
        let period = Duration::from_secs_f64(1.0 / tps);
        RealTime {
            period,
            deadline: Instant::now() + period,
        }
    }
}

impl Pacer for RealTime {
    fn pace(&mut self, idle: bool) {
        if idle {
            // Paused: hold cadence anchored to "now" so resuming does not
            // replay the paused interval as a burst.
            thread::sleep(self.period.min(Duration::from_millis(50)));
            self.deadline = Instant::now() + self.period;
            return;
        }
        let now = Instant::now();
        if let Some(wait) = self.deadline.checked_duration_since(now) {
            thread::sleep(wait);
            self.deadline += self.period;
        } else if now.duration_since(self.deadline) > self.period {
            // Fell badly behind; re-anchor instead of sprinting to catch up.
            self.deadline = now + self.period;
        } else {
            self.deadline += self.period;
        }
    }
}

/// Catch-up pacing for restored sessions: runs at max speed until the
/// simulation reaches `target` — the tick the interrupted run had gotten
/// to before it died — then hands pacing over to the wrapped pacer. An
/// operator restoring a real-time session re-simulates the lost interval
/// as fast as it computes instead of watching the replay in real time.
pub struct Catchup<P: Pacer> {
    target: u64,
    caught_up: bool,
    inner: P,
}

impl<P: Pacer> Catchup<P> {
    /// Replays at max speed until the simulated tick reaches `target`,
    /// then paces with `inner`.
    pub fn new(target: u64, inner: P) -> Self {
        Catchup {
            target,
            caught_up: false,
            inner,
        }
    }

    /// True once the replay has reached the target and `inner` paces.
    pub fn is_caught_up(&self) -> bool {
        self.caught_up
    }
}

impl<P: Pacer> Pacer for Catchup<P> {
    fn observe_tick(&mut self, tick: u64) {
        if !self.caught_up && tick >= self.target {
            self.caught_up = true;
        }
        self.inner.observe_tick(tick);
    }

    fn pace(&mut self, idle: bool) {
        if self.caught_up {
            self.inner.pace(idle);
        } else if idle {
            // Still catching up but paused: nap like MaxSpeed does.
            thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Spawns the interactive input thread: reads stdin line-by-line and
/// forwards each line over a channel the non-blocking
/// [`crate::StdinSource`] drains at tick boundaries. The thread exits
/// when stdin closes; send errors (daemon gone) end it too.
pub fn spawn_stdin_reader() -> Receiver<String> {
    let (tx, rx) = mpsc::channel();
    let spawned = thread::Builder::new()
        .name("lunule-daemon-stdin".to_string())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(text) => {
                        if tx.send(text).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
    // If the thread could not start, the receiver just reports "no input
    // ever" — the daemon still runs its script.
    drop(spawned);
    rx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_speed_running_does_not_sleep() {
        let start = Instant::now();
        let mut pacer = MaxSpeed;
        for _ in 0..1000 {
            pacer.pace(false);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn catchup_is_free_until_the_target_then_delegates() {
        struct CountingPacer(u32);
        impl Pacer for CountingPacer {
            fn pace(&mut self, _idle: bool) {
                self.0 += 1;
            }
        }
        let mut pacer = Catchup::new(10, CountingPacer(0));
        for tick in 1..=9 {
            pacer.observe_tick(tick);
            pacer.pace(false);
        }
        assert!(!pacer.is_caught_up());
        assert_eq!(pacer.inner.0, 0, "inner pacer must not run during replay");
        pacer.observe_tick(10);
        pacer.pace(false);
        assert!(pacer.is_caught_up());
        assert_eq!(pacer.inner.0, 1);
    }

    #[test]
    fn real_time_holds_the_requested_cadence() {
        let mut pacer = RealTime::new(1000.0);
        let start = Instant::now();
        for _ in 0..20 {
            pacer.pace(false);
        }
        // 20 ticks at 1000/s is 20ms of pacing; allow generous slack for
        // scheduler jitter but catch a pacer that does not sleep at all.
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(10), "{elapsed:?}");
    }
}
