//! `.lds` session scripts: a whole daemon run in one file.
//!
//! A session script is line-oriented. `#` starts a comment, blank lines
//! are skipped, and the remaining lines are either **headers** or
//! **events**:
//!
//! ```text
//! # headers: key=value, any order, all optional
//! seed=42
//! mds=4
//! duration=400        # ticks
//! epoch=20            # balance epoch length, ticks
//! clients=32          # initial clients
//! scale=0.05          # workload scale (0, 1]
//! workload=zipf       # cnn | nlp | web | zipf | md | md-full | mixed
//! balancer=lunule     # lunule | light | vanilla | greedy | dirhash | off
//! capacity=1000       # per-MDS capacity (IOPS)
//!
//! # events: kind@tick:field:...  — the lunule-faults spec grammar plus
//! # the daemon's control commands
//! crash@120:1:60
//! recover@150:1
//! clients@200:16
//! addmds@260
//! knob@300:if_threshold:0.2
//! ```
//!
//! Fault events are parsed by [`lunule_faults::parse_fault_kind`] — the
//! same code path as CLI `--faults` specs — and become the simulation's
//! [`FaultSchedule`]; everything else becomes a [`TimedCommand`] that the
//! daemon loop (or the one-shot runner) applies at the named tick
//! boundary. [`Session::format`] renders the canonical form, and
//! parse → format → parse is the identity.

use crate::command::{parse_command, Command, TimedCommand};
use lunule_core::{make_balancer, BalancerKind};
use lunule_faults::{format_fault_event, tokenize_event, FaultPlan, FaultSchedule, SpecError};
use lunule_sim::{OpStream, SimConfig, Simulation};
use lunule_snapshot::{Snapshot, SnapshotError};
use lunule_telemetry::Telemetry;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

/// A parsed session: cluster shape, workload, fault schedule, and the
/// timed operator commands.
#[derive(Debug)]
pub struct Session {
    /// Master seed for workload generation and the simulation.
    pub seed: u64,
    /// Initial MDS rank count.
    pub n_mds: usize,
    /// Run length in ticks.
    pub duration: u64,
    /// Balance epoch length in ticks.
    pub epoch: u64,
    /// Initial client count.
    pub clients: usize,
    /// Workload scale in (0, 1].
    pub scale: f64,
    /// Which workload the clients run.
    pub workload: WorkloadKind,
    /// Which balancer policy drives migration.
    pub balancer: BalancerKind,
    /// Per-MDS capacity (IOPS).
    pub capacity: f64,
    /// Scripted fault events (parsed through the `lunule-faults` grammar).
    pub faults: FaultSchedule,
    /// Timed control commands, stably sorted by tick (file order within a
    /// tick).
    pub commands: Vec<TimedCommand>,
    /// Total clients later `clients@T:N` commands will attach; their
    /// streams are built up front (deterministically, from the same seed)
    /// and held in a deferred pool.
    pub extra_clients: usize,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            seed: 42,
            n_mds: 4,
            duration: 400,
            epoch: 20,
            clients: 32,
            scale: 0.05,
            workload: WorkloadKind::ZipfRead,
            balancer: BalancerKind::Lunule,
            capacity: 1_000.0,
            faults: FaultSchedule::empty(),
            commands: Vec::new(),
            extra_clients: 0,
        }
    }
}

fn parse_workload(label: &str) -> Result<WorkloadKind, SpecError> {
    match label.to_ascii_lowercase().as_str() {
        "cnn" => Ok(WorkloadKind::Cnn),
        "nlp" => Ok(WorkloadKind::Nlp),
        "web" => Ok(WorkloadKind::Web),
        "zipf" => Ok(WorkloadKind::ZipfRead),
        "md" => Ok(WorkloadKind::MdCreate),
        "md-full" | "mdfull" => Ok(WorkloadKind::MdFull),
        "mixed" => Ok(WorkloadKind::Mixed),
        other => Err(SpecError::new(format!(
            "unknown workload '{other}' (want cnn/nlp/web/zipf/md/md-full/mixed)"
        ))),
    }
}

fn workload_label(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Cnn => "cnn",
        WorkloadKind::Nlp => "nlp",
        WorkloadKind::Web => "web",
        WorkloadKind::ZipfRead => "zipf",
        WorkloadKind::MdCreate => "md",
        WorkloadKind::MdFull => "md-full",
        WorkloadKind::Mixed => "mixed",
    }
}

fn parse_balancer(label: &str) -> Result<BalancerKind, SpecError> {
    match label.to_ascii_lowercase().as_str() {
        "lunule" => Ok(BalancerKind::Lunule),
        "light" | "lunule-light" => Ok(BalancerKind::LunuleLight),
        "vanilla" => Ok(BalancerKind::Vanilla),
        "greedy" | "greedyspill" => Ok(BalancerKind::GreedySpill),
        "dirhash" | "dir-hash" => Ok(BalancerKind::DirHash),
        "off" => Ok(BalancerKind::Off),
        other => Err(SpecError::new(format!(
            "unknown balancer '{other}' (want lunule/light/vanilla/greedy/dirhash/off)"
        ))),
    }
}

fn balancer_label(kind: BalancerKind) -> &'static str {
    match kind {
        BalancerKind::Lunule => "lunule",
        BalancerKind::LunuleLight => "light",
        BalancerKind::Vanilla => "vanilla",
        BalancerKind::GreedySpill => "greedy",
        BalancerKind::DirHash => "dirhash",
        BalancerKind::Off => "off",
    }
}

impl Session {
    /// Parses a session script (see module docs).
    pub fn parse(text: &str) -> Result<Session, SpecError> {
        let mut session = Session::default();
        let mut event_lines: Vec<&str> = Vec::new();

        // Pass 1: headers; event lines are deferred so headers like
        // `duration` and `mds` apply regardless of where they appear.
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.contains('@') {
                event_lines.push(line);
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                SpecError::new(format!(
                    "line {}: expected `key=value` or `kind@tick:...`, got `{raw}`",
                    i + 1
                ))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| SpecError::new(format!("line {}: bad {what} `{value}`", i + 1));
            match key {
                "seed" => session.seed = value.parse().map_err(|_| bad("seed"))?,
                "mds" => session.n_mds = value.parse().map_err(|_| bad("mds"))?,
                "duration" => session.duration = value.parse().map_err(|_| bad("duration"))?,
                "epoch" => session.epoch = value.parse().map_err(|_| bad("epoch"))?,
                "clients" => session.clients = value.parse().map_err(|_| bad("clients"))?,
                "scale" => session.scale = value.parse().map_err(|_| bad("scale"))?,
                "workload" => session.workload = parse_workload(value)?,
                "balancer" => session.balancer = parse_balancer(value)?,
                "capacity" => session.capacity = value.parse().map_err(|_| bad("capacity"))?,
                other => {
                    return Err(SpecError::new(format!(
                        "line {}: unknown header `{other}`",
                        i + 1
                    )))
                }
            }
        }
        if session.n_mds == 0 || session.duration == 0 || session.epoch == 0 {
            return Err(SpecError::new("mds, duration and epoch must be positive"));
        }
        if session.clients == 0 {
            return Err(SpecError::new("clients must be positive"));
        }

        // Pass 2a: tokenize everything and find how large the cluster can
        // grow, so later fault/drain events may target added ranks.
        let tokenized = event_lines
            .iter()
            .map(|l| tokenize_event(l))
            .collect::<Result<Vec<_>, _>>()?;
        let mut max_ranks = session.n_mds;
        for line in &tokenized {
            if line.kind == "addmds" {
                max_ranks += match line.fields.first() {
                    // as-ok: parse_command re-validates the bound below
                    Some(_) => line.num(0)?.min(1024) as usize,
                    None => 1,
                };
            }
        }

        // Pass 2b: fault events into the schedule, everything else into
        // the timed command list.
        let mut plan = FaultPlan::new();
        for line in &tokenized {
            if line.at_tick >= session.duration {
                return Err(SpecError::new(format!(
                    "event '{}': tick {} beyond session of {} ticks",
                    line.raw, line.at_tick, session.duration
                )));
            }
            match parse_command(line, max_ranks)? {
                Command::Fault(kind) => plan = plan.event(line.at_tick, kind),
                command => session.commands.push(TimedCommand {
                    at_tick: line.at_tick,
                    command,
                }),
            }
        }
        session.faults = plan.build();
        session.commands.sort_by_key(|tc: &TimedCommand| tc.at_tick);
        session.extra_clients = session
            .commands
            .iter()
            .map(|tc| match tc.command {
                Command::AddClients(n) => n,
                _ => 0,
            })
            .sum();
        Ok(session)
    }

    /// Renders the canonical script form: headers in fixed order, then
    /// fault events, then commands, each sorted by tick. Parsing the
    /// result reproduces this session.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("seed={}\n", self.seed));
        out.push_str(&format!("mds={}\n", self.n_mds));
        out.push_str(&format!("duration={}\n", self.duration));
        out.push_str(&format!("epoch={}\n", self.epoch));
        out.push_str(&format!("clients={}\n", self.clients));
        out.push_str(&format!("scale={}\n", self.scale));
        out.push_str(&format!("workload={}\n", workload_label(self.workload)));
        out.push_str(&format!("balancer={}\n", balancer_label(self.balancer)));
        out.push_str(&format!("capacity={}\n", self.capacity));
        for event in self.faults.events() {
            out.push_str(&format_fault_event(event));
            out.push('\n');
        }
        for tc in &self.commands {
            out.push_str(&format_timed_command(tc));
            out.push('\n');
        }
        out
    }

    /// Materialises the session: workload, simulation, and the deferred
    /// client-stream pool for later `clients@T:N` commands. The pool is
    /// built up front from the same seed — fig12b-style — so mid-run
    /// client growth is deterministic in both the daemon and one-shot
    /// paths.
    pub fn build(&self, telemetry: Telemetry) -> (Simulation, Vec<Box<dyn OpStream>>) {
        let spec = WorkloadSpec {
            kind: self.workload,
            clients: self.clients + self.extra_clients,
            scale: self.scale,
            seed: self.seed,
        };
        let (ns, mut streams) = spec.build();
        let deferred = if streams.len() > self.clients {
            streams.split_off(self.clients)
        } else {
            Vec::new()
        };
        let cfg = self.sim_config(telemetry);
        let balancer = make_balancer(self.balancer, self.capacity);
        (Simulation::new(cfg, ns, balancer, streams), deferred)
    }

    /// Materialises the session **from a snapshot** instead of from tick
    /// zero: the same workload inputs, configuration, and balancer policy
    /// are rebuilt — exactly as [`Session::build`] would — but all dynamic
    /// state comes from `snap` via [`Simulation::restore`]. The stream
    /// split honours the snapshot's own stream count (a session that grew
    /// clients mid-run snapshots more than it started with), so the
    /// returned deferred pool holds exactly the streams that were still
    /// unattached at capture time. Sizing is by *streams*, not members:
    /// under the cohort model a group of identical clients shares one
    /// stream, and restore wants exactly one stream per group.
    pub fn build_restored(
        &self,
        telemetry: Telemetry,
        snap: &Snapshot,
    ) -> Result<(Simulation, Vec<Box<dyn OpStream>>), SnapshotError> {
        let attached = lunule_sim::snapshot_stream_count(snap)?;
        let spec = WorkloadSpec {
            kind: self.workload,
            clients: self.clients + self.extra_clients,
            scale: self.scale,
            seed: self.seed,
        };
        // The namespace tree is rebuilt by the spec but superseded by the
        // snapshot's own copy (heat decays, ops mutate it); only the
        // streams are structural inputs to the restore.
        let (_ns, mut streams) = spec.build();
        let deferred = if streams.len() > attached {
            streams.split_off(attached)
        } else {
            Vec::new()
        };
        let cfg = self.sim_config(telemetry);
        let balancer = make_balancer(self.balancer, self.capacity);
        let sim = Simulation::restore(cfg, balancer, streams, snap)?;
        Ok((sim, deferred))
    }

    /// The session's run identity digest (see
    /// [`lunule_sim::config::config_digest`]) — what its snapshots are
    /// stamped with, and the filter restore paths scan directories by.
    pub fn digest(&self) -> u64 {
        lunule_sim::config::config_digest(&self.sim_config(Telemetry::disabled()))
    }

    fn sim_config(&self, telemetry: Telemetry) -> SimConfig {
        SimConfig {
            n_mds: self.n_mds,
            mds_capacity: self.capacity,
            epoch_secs: self.epoch,
            duration_secs: self.duration,
            stop_when_done: false,
            seed: self.seed,
            telemetry,
            faults: self.faults.clone(),
            ..SimConfig::default()
        }
    }
}

/// Renders one timed command in the script grammar (inverse of
/// [`parse_command`] for non-fault commands).
pub fn format_timed_command(tc: &TimedCommand) -> String {
    let t = tc.at_tick;
    match &tc.command {
        Command::Fault(kind) => format_fault_event(&lunule_faults::FaultEvent {
            at_tick: t,
            kind: *kind,
        }),
        Command::Recover(rank) => format!("recover@{t}:{}", rank.0),
        Command::AddMds(1) => format!("addmds@{t}"),
        Command::AddMds(n) => format!("addmds@{t}:{n}"),
        Command::DrainMds(rank) => format!("drain@{t}:{}", rank.0),
        Command::AddClients(n) => format!("clients@{t}:{n}"),
        Command::SetKnob { name, value } => format!("knob@{t}:{name}:{value}"),
        Command::Status => format!("status@{t}"),
        Command::Snapshot => format!("snapshot@{t}"),
        Command::Pause => format!("pause@{t}"),
        Command::Resume => format!("resume@{t}"),
        Command::Step(n) => format!("step@{t}:{n}"),
        Command::Stop => format!("stop@{t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
# demo session
seed=7
mds=3
duration=300
epoch=20
clients=8
scale=0.02
workload=zipf
balancer=lunule
capacity=500

crash@60:1:30        # rank 1 down for 30 ticks
recover@80:1
clients@100:4
addmds@140
knob@160:if_threshold:0.2
drain@200:2
pause@220
step@220:5
resume@221
status@240
";

    #[test]
    fn parses_headers_events_and_commands() {
        let s = Session::parse(SCRIPT).unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.n_mds, 3);
        assert_eq!(s.duration, 300);
        assert_eq!(s.clients, 8);
        assert_eq!(s.workload, WorkloadKind::ZipfRead);
        assert_eq!(s.balancer, BalancerKind::Lunule);
        assert_eq!(s.faults.len(), 1, "the crash is a fault-schedule event");
        assert_eq!(s.commands.len(), 9);
        assert_eq!(s.extra_clients, 4);
    }

    #[test]
    fn rank_bounds_account_for_addmds() {
        // Rank 3 does not exist initially (mds=3) but addmds@140 grows the
        // cluster, so targeting it later is legal.
        let grown = format!("{SCRIPT}\ndrain@250:3\n");
        assert!(Session::parse(&grown).is_ok());
        // Rank 4 is never reachable.
        let bad = format!("{SCRIPT}\ndrain@250:4\n");
        assert!(Session::parse(&bad).is_err());
    }

    #[test]
    fn out_of_range_ticks_and_bad_headers_fail() {
        assert!(Session::parse("duration=10\ncrash@10:0:5\n").is_err());
        assert!(Session::parse("mds=0\n").is_err());
        assert!(Session::parse("volume=11\n").is_err());
        assert!(Session::parse("not a line\n").is_err());
        assert!(Session::parse("workload=fortran\n").is_err());
        assert!(Session::parse("balancer=entropy\n").is_err());
    }

    #[test]
    fn format_round_trips() {
        let s = Session::parse(SCRIPT).unwrap();
        let canonical = s.format();
        let back = Session::parse(&canonical).unwrap();
        assert_eq!(back.format(), canonical, "canonical form is a fixpoint");
        assert_eq!(back.faults, s.faults);
        assert_eq!(back.commands.len(), s.commands.len());
        assert_eq!(back.extra_clients, s.extra_clients);
    }

    #[test]
    fn build_splits_the_deferred_pool() {
        let s = Session::parse(SCRIPT).unwrap();
        let (sim, pool) = s.build(Telemetry::disabled());
        assert_eq!(sim.n_mds(), 3);
        assert_eq!(sim.n_clients(), 8);
        assert_eq!(pool.len(), 4);
    }
}
