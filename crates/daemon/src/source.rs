//! Command sources: where operator commands come from each tick.
//!
//! The daemon polls its [`CommandSource`] once per loop iteration, at the
//! boundary *before* a tick runs. Sources are non-blocking: a poll returns
//! whatever is due and nothing else. Scripted sources replay a session's
//! [`TimedCommand`]s at their scheduled ticks; the interactive source
//! drains lines an input thread has buffered (see
//! [`crate::pacing::spawn_stdin_reader`]) and parses them with
//! [`parse_interactive`].

use crate::command::{parse_command, Command, TimedCommand};
use lunule_faults::{EventLine, SpecError};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::mpsc::Receiver;

/// A non-blocking feed of operator commands.
pub trait CommandSource {
    /// Returns every command due at or before `tick`, in order. `n_mds`
    /// is the live rank count (for bounds-checking interactive input);
    /// `paused` tells interactive sources the loop is holding.
    fn poll(&mut self, tick: u64, n_mds: usize, paused: bool) -> Vec<Command>;
}

impl CommandSource for Box<dyn CommandSource> {
    fn poll(&mut self, tick: u64, n_mds: usize, paused: bool) -> Vec<Command> {
        self.as_mut().poll(tick, n_mds, paused)
    }
}

/// Replays a session script's timed commands: each poll returns the
/// commands whose tick has been reached, exactly once.
pub struct ScriptSource {
    commands: Vec<TimedCommand>,
    cursor: usize,
}

impl ScriptSource {
    /// Builds a source over tick-sorted commands (session order).
    pub fn new(commands: Vec<TimedCommand>) -> Self {
        ScriptSource {
            commands,
            cursor: 0,
        }
    }

    /// True once every command has been handed out.
    pub fn is_drained(&self) -> bool {
        self.cursor >= self.commands.len()
    }

    /// Skips every command an interrupted run already applied: a restored
    /// simulation at tick `T` has executed the boundary commands of ticks
    /// `0..T-1` (their effects are inside the snapshot), while commands at
    /// `T` itself have not fired yet. Re-delivering the earlier ones would
    /// double-apply state changes and corrupt the restore.
    pub fn skip_until(&mut self, tick: u64) {
        while self.cursor < self.commands.len() && self.commands[self.cursor].at_tick < tick {
            self.cursor += 1;
        }
    }
}

impl CommandSource for ScriptSource {
    fn poll(&mut self, tick: u64, _n_mds: usize, paused: bool) -> Vec<Command> {
        let mut out = Vec::new();
        while self.cursor < self.commands.len() && self.commands[self.cursor].at_tick <= tick {
            out.push(self.commands[self.cursor].command.clone());
            self.cursor += 1;
        }
        // A paused loop freezes the clock, so a later-tick `resume` (or
        // `step`/`status`/`stop`) would never come due — deliver the next
        // pending control command early, one per poll. This is safe for
        // the journal: control commands are journal-neutral (or end the
        // run), and state-changing commands still wait for their tick.
        if paused && out.is_empty() {
            if let Some(tc) = self.commands.get(self.cursor) {
                if tc.command.is_journal_neutral() || matches!(tc.command, Command::Stop) {
                    out.push(tc.command.clone());
                    self.cursor += 1;
                }
            }
        }
        out
    }
}

/// An in-memory queue source for tests and embedding: every poll drains
/// whatever was pushed since the last one.
#[derive(Default)]
pub struct QueueSource {
    queue: VecDeque<Command>,
}

impl QueueSource {
    /// An empty queue.
    pub fn new() -> Self {
        QueueSource::default()
    }

    /// Enqueues a command for the next poll.
    pub fn push(&mut self, command: Command) {
        self.queue.push_back(command);
    }
}

impl CommandSource for QueueSource {
    fn poll(&mut self, _tick: u64, _n_mds: usize, _paused: bool) -> Vec<Command> {
        self.queue.drain(..).collect()
    }
}

/// Chains two sources: script first, then interactive — so an operator can
/// watch a scripted session and intervene.
pub struct CompositeSource<A: CommandSource, B: CommandSource>(pub A, pub B);

impl<A: CommandSource, B: CommandSource> CommandSource for CompositeSource<A, B> {
    fn poll(&mut self, tick: u64, n_mds: usize, paused: bool) -> Vec<Command> {
        let mut out = self.0.poll(tick, n_mds, paused);
        out.extend(self.1.poll(tick, n_mds, paused));
        out
    }
}

/// Parses one interactive line: the session-script command grammar without
/// the `@tick` — `crash:1:60`, `recover:1`, `addmds`, `addmds:2`,
/// `drain:2`, `clients:16`, `knob:if_threshold:0.2`, `status`, `pause`,
/// `resume`, `step`, `step:10`, `stop`/`quit`. The command takes effect at
/// the next tick boundary.
pub fn parse_interactive(line: &str, n_mds: usize) -> Result<Command, SpecError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(SpecError::new("empty command"));
    }
    let mut parts = line.split(':');
    let kind = parts.next().unwrap_or("").trim();
    let fields: Vec<&str> = parts.map(str::trim).collect();
    let event = EventLine {
        kind,
        at_tick: 0,
        fields,
        raw: line,
    };
    parse_command(&event, n_mds)
}

/// The interactive stdin source: drains lines buffered by the reader
/// thread (wall-clock side, see [`crate::pacing`]) and parses each with
/// [`parse_interactive`]. Malformed lines are reported on stderr and
/// skipped — an operator typo must not take the daemon down.
pub struct StdinSource {
    lines: Receiver<String>,
}

impl StdinSource {
    /// Wraps a channel of input lines (one per line read).
    pub fn new(lines: Receiver<String>) -> Self {
        StdinSource { lines }
    }
}

impl CommandSource for StdinSource {
    fn poll(&mut self, _tick: u64, n_mds: usize, _paused: bool) -> Vec<Command> {
        let mut out = Vec::new();
        while let Ok(line) = self.lines.try_recv() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_interactive(&line, n_mds) {
                Ok(cmd) => out.push(cmd),
                Err(e) => {
                    let _ = writeln!(std::io::stderr(), "lunule-daemon: {e}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_faults::FaultKind;
    use lunule_namespace::MdsRank;

    #[test]
    fn script_source_fires_each_command_once_in_order() {
        let mut src = ScriptSource::new(vec![
            TimedCommand {
                at_tick: 5,
                command: Command::AddMds(1),
            },
            TimedCommand {
                at_tick: 5,
                command: Command::Status,
            },
            TimedCommand {
                at_tick: 9,
                command: Command::Stop,
            },
        ]);
        assert!(src.poll(4, 2, false).is_empty());
        let due = src.poll(5, 2, false);
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0], Command::AddMds(1)));
        assert!(matches!(due[1], Command::Status));
        assert!(src.poll(5, 2, false).is_empty(), "no double fire");
        assert!(!src.is_drained());
        // A skipped-ahead clock still delivers everything due.
        let late = src.poll(50, 2, false);
        assert_eq!(late.len(), 1);
        assert!(src.is_drained());
    }

    #[test]
    fn skip_until_drops_already_applied_commands() {
        let mut src = ScriptSource::new(vec![
            TimedCommand {
                at_tick: 3,
                command: Command::AddMds(1),
            },
            TimedCommand {
                at_tick: 7,
                command: Command::AddClients(2),
            },
            TimedCommand {
                at_tick: 9,
                command: Command::Stop,
            },
        ]);
        // Restored at tick 7: the tick-3 command is inside the snapshot,
        // the tick-7 command has not fired yet.
        src.skip_until(7);
        let due = src.poll(7, 2, false);
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0], Command::AddClients(2)));
        assert!(!src.is_drained());
    }

    #[test]
    fn queue_source_drains_on_poll() {
        let mut q = QueueSource::new();
        q.push(Command::Pause);
        q.push(Command::Step(3));
        assert_eq!(q.poll(0, 1, false).len(), 2);
        assert!(q.poll(0, 1, false).is_empty());
    }

    #[test]
    fn interactive_lines_parse_without_ticks() {
        assert!(matches!(
            parse_interactive("crash:1:60", 4).unwrap(),
            Command::Fault(FaultKind::Crash { .. })
        ));
        assert!(matches!(
            parse_interactive("recover:1", 4).unwrap(),
            Command::Recover(MdsRank(1))
        ));
        assert!(matches!(
            parse_interactive("addmds", 4).unwrap(),
            Command::AddMds(1)
        ));
        assert!(matches!(
            parse_interactive(" step:10 ", 4).unwrap(),
            Command::Step(10)
        ));
        assert!(matches!(
            parse_interactive("quit", 4).unwrap(),
            Command::Stop
        ));
        assert!(parse_interactive("", 4).is_err());
        assert!(parse_interactive("crash:9:60", 4).is_err(), "rank bound");
        assert!(parse_interactive("fly:me", 4).is_err());
    }

    #[test]
    fn composite_chains_in_order() {
        let script = ScriptSource::new(vec![TimedCommand {
            at_tick: 0,
            command: Command::Pause,
        }]);
        let mut queue = QueueSource::new();
        queue.push(Command::Resume);
        let mut both = CompositeSource(script, queue);
        let cmds = both.poll(0, 1, false);
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], Command::Pause));
        assert!(matches!(cmds[1], Command::Resume));
    }
}
