//! Kill-anywhere crash safety, end to end against the real binary: a
//! daemon run is SIGKILLed at an arbitrary wall-clock instant, restarted
//! with `--restore`, and the finished journal file must be byte-identical
//! to the `--oneshot` reference — including when `--restore` is pointed at
//! a corrupted snapshot file and the daemon has to fall back to the newest
//! valid one.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// Long enough (at `--ticks-per-sec 200`, 3 s of wall clock) that the kill
/// lands mid-run; the restored run finishes the rest at max speed.
const SESSION: &str = "\
seed=19
mds=3
duration=600
epoch=20
clients=4
scale=0.02
workload=mixed
balancer=lunule
capacity=400
crash@40:1:60
clients@80:4
addmds@150
knob@300:if_threshold:0.15
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lunule-daemon"))
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lunule-crash-restore-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_for_snapshot(dir: &Path, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let found = fs::read_dir(dir).ok().map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().ends_with(".lsnap"))
        });
        if found == Some(true) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

#[test]
fn sigkill_then_restore_matches_the_oneshot_journal_byte_for_byte() {
    let dir = scratch_dir();
    let script = dir.join("session.lds");
    fs::write(&script, SESSION).unwrap();
    let (ref_dir, run_dir, snap_dir) = (dir.join("ref"), dir.join("run"), dir.join("snaps"));

    // Reference: the one-shot batch export of the same session.
    let status = bin()
        .args(["--script"])
        .arg(&script)
        .args(["--oneshot", "--label", "s", "--journal-dir"])
        .arg(&ref_dir)
        .status()
        .expect("run oneshot reference");
    assert!(status.success(), "oneshot reference failed");

    // Paced daemon run with periodic snapshots, killed mid-flight. The
    // kill is SIGKILL — no flush, no atexit — at an arbitrary instant
    // relative to tick, journal, and snapshot writes.
    let mut child = bin()
        .args(["--script"])
        .arg(&script)
        .args(["--label", "s", "--ticks-per-sec", "200", "--journal-dir"])
        .arg(&run_dir)
        .args(["--snapshot-every", "10", "--snapshot-dir"])
        .arg(&snap_dir)
        .spawn()
        .expect("spawn daemon");
    assert!(
        wait_for_snapshot(&snap_dir, Duration::from_secs(20)),
        "daemon never wrote a snapshot"
    );
    std::thread::sleep(Duration::from_millis(400));
    let _ = child.kill();
    let _ = child.wait();

    // Point --restore at a *corrupted* snapshot file: the daemon must
    // reject it (bad checksum) and fall back to the newest valid sibling.
    let mut snaps: Vec<PathBuf> = fs::read_dir(&snap_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_string_lossy().ends_with(".lsnap"))
        .collect();
    snaps.sort();
    let newest = snaps.last().expect("at least one snapshot").clone();
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    let corrupt = snap_dir.join("snap-00000000000000999999.lsnap");
    fs::write(&corrupt, &bytes).unwrap();

    let status = bin()
        .args(["--script"])
        .arg(&script)
        .args(["--label", "s", "--max-speed", "--journal-dir"])
        .arg(&run_dir)
        .args(["--restore"])
        .arg(&corrupt)
        .status()
        .expect("run restored daemon");
    assert!(status.success(), "restored daemon failed");

    let reference = fs::read_to_string(ref_dir.join("s.events.jsonl")).unwrap();
    let stitched = fs::read_to_string(run_dir.join("s.events.jsonl")).unwrap();
    assert!(!reference.is_empty());
    assert_eq!(
        stitched, reference,
        "stitched post-restore journal must equal the uninterrupted reference"
    );
    let _ = fs::remove_dir_all(&dir);
}
