//! The daemon's headline invariant: a scripted session run through the
//! daemon loop at max speed journals **byte-identically** to the same
//! session run through the one-shot reference path — and pacing commands
//! (pause/step/resume/status) never perturb the journal.

use lunule_daemon::{run_oneshot, Daemon, JournalFileSink, MaxSpeed, ScriptSource, Session};
use lunule_telemetry::{events_jsonl, Telemetry};
use std::fs;
use std::path::{Path, PathBuf};

/// A session that exercises every operator surface the issue names: a
/// workload shift (client growth), a rank crash with forced early
/// recovery, cluster expansion, and a balancer knob change.
const SESSION: &str = "\
# determinism fixture: keep in sync with the oneshot expectations below
seed=11
mds=3
duration=240
epoch=20
clients=6
scale=0.02
workload=mixed
balancer=lunule
capacity=400
crash@60:1:120
recover@90:1
clients@100:4
addmds@120
knob@140:if_threshold:0.15
";

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lunule-daemon-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs `session` through the daemon loop at max speed and returns the
/// journal file's bytes.
fn daemon_journal(session: &Session, dir: &Path, label: &str) -> String {
    let (sim, pool) = session.build(Telemetry::enabled());
    let source = ScriptSource::new(session.commands.clone());
    let mut daemon = Daemon::new(sim, pool, source);
    let sink = JournalFileSink::create(dir, label).expect("create journal sink");
    let path = sink.path().to_path_buf();
    daemon.subscribe(Box::new(sink));
    daemon.run(&mut MaxSpeed).expect("daemon run");
    daemon.finish().expect("daemon finish");
    fs::read_to_string(path).expect("read journal")
}

fn oneshot_journal(session: &Session) -> String {
    let (_result, snapshot) = run_oneshot(session);
    events_jsonl(&snapshot)
}

#[test]
fn scripted_daemon_at_max_speed_matches_oneshot_byte_for_byte() {
    let session = Session::parse(SESSION).expect("parse session");
    let dir = scratch_dir("identity");
    let streamed = daemon_journal(&session, &dir, "daemon");
    let exported = oneshot_journal(&session);
    assert!(
        !exported.is_empty(),
        "fixture session must journal something"
    );
    assert_eq!(
        streamed, exported,
        "daemon journal must be byte-identical to the one-shot export"
    );
    // The session actually exercised its operator surface.
    for kind in [
        "\"type\":\"rank_crashed\"",
        "\"type\":\"rank_recovered\"",
        "\"type\":\"mds_add\"",
        "\"type\":\"knob_set\"",
    ] {
        assert!(exported.contains(kind), "missing {kind} in journal");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn pause_step_resume_leave_the_journal_unchanged() {
    let plain = Session::parse(SESSION).expect("parse plain session");
    // Same session with pacing commands sprinkled mid-run: an immediate
    // step-through pause, and a pause whose resume tick can only arrive
    // via the paused-lookahead path (the clock freezes at 150).
    let paced_text =
        format!("{SESSION}pause@80\nstep@80:5\nresume@85\npause@150\nresume@170\nstatus@200\n");
    let paced = Session::parse(&paced_text).expect("parse paced session");
    let dir = scratch_dir("pacing");
    let plain_journal = daemon_journal(&plain, &dir, "plain");
    let paced_journal = daemon_journal(&paced, &dir, "paced");
    assert_eq!(
        plain_journal, paced_journal,
        "pause/step/resume/status must not perturb the journal"
    );
    // And the one-shot runner ignores pacing commands entirely, closing
    // the triangle: paced-daemon == plain-daemon == oneshot.
    assert_eq!(paced_journal, oneshot_journal(&paced));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stop_truncates_identically_in_both_paths() {
    let text = format!("{SESSION}stop@180\n");
    let session = Session::parse(&text).expect("parse session");
    let dir = scratch_dir("stop");
    let streamed = daemon_journal(&session, &dir, "stopped");
    let exported = oneshot_journal(&session);
    assert_eq!(
        streamed, exported,
        "stop@180 must truncate both paths alike"
    );
    // Truncation really happened: nothing journaled at or past tick 180.
    let last_t = streamed
        .lines()
        .rev()
        .find_map(|l| {
            l.split("\"t\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|n| n.parse::<u64>().ok())
        })
        .expect("journal has timestamps");
    assert!(last_t < 180, "journal must end before the stop tick");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn session_scripts_round_trip_through_format() {
    let session = Session::parse(SESSION).expect("parse session");
    let canonical = session.format();
    let reparsed = Session::parse(&canonical).expect("reparse canonical form");
    assert_eq!(canonical, reparsed.format(), "format must be a fixpoint");
    // Canonical form runs identically to the original.
    assert_eq!(oneshot_journal(&session), oneshot_journal(&reparsed));
}
