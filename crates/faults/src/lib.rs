//! # lunule-faults
//!
//! Deterministic fault injection for the Lunule stack. A
//! [`FaultSchedule`] is an immutable, tick-sorted stream of fault events —
//! MDS crashes with timed recovery, degraded-capacity "limping" ranks,
//! dropped load reports, and migration stalls — that the simulator replays
//! as its clock advances. Schedules are built either by scripting exact
//! events through a [`FaultPlan`], by seeding a [`ChaosProfile`] (many
//! random-but-reproducible schedules for soak testing), or by parsing a
//! compact CLI spec string ([`parse_spec`]).
//!
//! Everything here is tick-based and free of wall time or ambient
//! randomness: the same seed always yields the same schedule, so a failing
//! chaos run reproduces exactly from its seed.
//!
//! The `kind@tick:field:...` event tokenizer behind [`parse_spec`] is
//! exported ([`tokenize_event`], [`EventLine`], [`parse_fault_kind`],
//! [`format_spec`]) so extension grammars — the `lunule-daemon` session
//! scripts — parse fault events through exactly this code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod schedule;
mod spec;

pub use plan::{seeded, ChaosProfile, FaultPlan};
pub use schedule::{FaultEvent, FaultKind, FaultSchedule};
pub use spec::{
    format_fault_event, format_spec, parse_fault_kind, parse_spec, tokenize_event, EventLine,
    SpecError,
};
