//! Builders for fault schedules: scripted plans and seeded chaos.

use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};
use lunule_namespace::MdsRank;
use lunule_util::DetRng;

/// A builder for scripted [`FaultSchedule`]s.
///
/// Methods take ticks and ranks verbatim; `build` sorts events by tick
/// (stably, so same-tick events keep scripting order). The builder clamps
/// obviously degenerate parameters (a zero-length crash, a limp factor
/// outside `(0, 1]`) instead of failing, so hand-written plans stay terse.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crash `rank` at `at_tick`; it recovers `down_ticks` later (clamped
    /// to at least 1).
    pub fn crash(mut self, at_tick: u64, rank: MdsRank, down_ticks: u64) -> Self {
        self.events.push(FaultEvent {
            at_tick,
            kind: FaultKind::Crash {
                rank,
                down_ticks: down_ticks.max(1),
            },
        });
        self
    }

    /// Degrade `rank` to `factor` of its capacity for `duration_ticks`
    /// starting at `at_tick`. `factor` is clamped into `(0, 1]`.
    pub fn limp(mut self, at_tick: u64, rank: MdsRank, factor: f64, duration_ticks: u64) -> Self {
        self.events.push(FaultEvent {
            at_tick,
            kind: FaultKind::Limp {
                rank,
                factor: factor.clamp(0.01, 1.0),
                duration_ticks: duration_ticks.max(1),
            },
        });
        self
    }

    /// Drop `rank`'s load report for the next `epochs` balance epochs
    /// starting at `at_tick`.
    pub fn report_loss(mut self, at_tick: u64, rank: MdsRank, epochs: u64) -> Self {
        self.events.push(FaultEvent {
            at_tick,
            kind: FaultKind::ReportLoss {
                rank,
                epochs: epochs.max(1),
            },
        });
        self
    }

    /// Stall `rank`'s outbound migrations for `duration_ticks` starting at
    /// `at_tick`.
    pub fn migration_stall(mut self, at_tick: u64, rank: MdsRank, duration_ticks: u64) -> Self {
        self.events.push(FaultEvent {
            at_tick,
            kind: FaultKind::MigrationStall {
                rank,
                duration_ticks: duration_ticks.max(1),
            },
        });
        self
    }

    /// Adds an already-typed event, applying the same parameter clamps as
    /// the kind-specific builders. This is the entry point for parsed
    /// specs ([`crate::parse_spec`] and the daemon session grammar).
    pub fn event(self, at_tick: u64, kind: FaultKind) -> Self {
        match kind {
            FaultKind::Crash { rank, down_ticks } => self.crash(at_tick, rank, down_ticks),
            FaultKind::Limp {
                rank,
                factor,
                duration_ticks,
            } => self.limp(at_tick, rank, factor, duration_ticks),
            FaultKind::ReportLoss { rank, epochs } => self.report_loss(at_tick, rank, epochs),
            FaultKind::MigrationStall {
                rank,
                duration_ticks,
            } => self.migration_stall(at_tick, rank, duration_ticks),
        }
    }

    /// Finalises the plan into a sorted schedule.
    pub fn build(self) -> FaultSchedule {
        FaultSchedule::from_events(self.events)
    }
}

/// How many faults of each kind a seeded chaos schedule draws, plus the
/// crash-outage bounds. The defaults give a lively but survivable run for
/// clusters of 2+ ranks.
#[derive(Clone, Copy, Debug)]
pub struct ChaosProfile {
    /// Crash/recovery cycles to inject.
    pub crashes: usize,
    /// Limping-rank episodes to inject.
    pub limps: usize,
    /// Load-report losses to inject.
    pub report_losses: usize,
    /// Migration stalls to inject.
    pub migration_stalls: usize,
    /// Minimum crash outage, ticks.
    pub min_down_ticks: u64,
    /// Maximum crash outage, ticks.
    pub max_down_ticks: u64,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            crashes: 2,
            limps: 1,
            report_losses: 1,
            migration_stalls: 1,
            min_down_ticks: 10,
            max_down_ticks: 120,
        }
    }
}

/// Draws a seeded-random schedule: same `(seed, n_mds, duration_ticks,
/// profile)` always yields the same schedule.
///
/// Event ticks land in the middle 80% of the run so every fault has time
/// to matter and time to heal. Crashes are skipped entirely on
/// single-rank clusters (there would be no survivor to fail over to); the
/// simulator additionally refuses, at injection time, to crash the last
/// live rank, so overlapping seeded crashes stay safe.
pub fn seeded(
    seed: u64,
    n_mds: usize,
    duration_ticks: u64,
    profile: &ChaosProfile,
) -> FaultSchedule {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut events = Vec::new();
    if n_mds == 0 || duration_ticks < 10 {
        return FaultSchedule::empty();
    }
    let lo = (duration_ticks / 10).max(1);
    let hi = (duration_ticks * 9 / 10).max(lo + 1);
    let tick = |rng: &mut DetRng| rng.gen_range(lo as usize..hi as usize) as u64;
    let rank = |rng: &mut DetRng| MdsRank(rng.gen_range(0..n_mds) as u16);

    let crashes = if n_mds >= 2 { profile.crashes } else { 0 };
    let min_down = profile.min_down_ticks.max(1);
    let max_down = profile.max_down_ticks.max(min_down + 1);
    for _ in 0..crashes {
        events.push(FaultEvent {
            at_tick: tick(&mut rng),
            kind: FaultKind::Crash {
                rank: rank(&mut rng),
                down_ticks: rng.gen_range(min_down as usize..max_down as usize) as u64,
            },
        });
    }
    for _ in 0..profile.limps {
        events.push(FaultEvent {
            at_tick: tick(&mut rng),
            kind: FaultKind::Limp {
                rank: rank(&mut rng),
                factor: rng.gen_f64_in(0.2, 0.8),
                duration_ticks: (duration_ticks / 8).max(2),
            },
        });
    }
    for _ in 0..profile.report_losses {
        events.push(FaultEvent {
            at_tick: tick(&mut rng),
            kind: FaultKind::ReportLoss {
                rank: rank(&mut rng),
                epochs: rng.gen_range(1..4) as u64,
            },
        });
    }
    for _ in 0..profile.migration_stalls {
        events.push(FaultEvent {
            at_tick: tick(&mut rng),
            kind: FaultKind::MigrationStall {
                rank: rank(&mut rng),
                duration_ticks: (duration_ticks / 6).max(2),
            },
        });
    }
    FaultSchedule::from_events(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_builds_sorted() {
        let s = FaultPlan::new()
            .crash(50, MdsRank(1), 20)
            .report_loss(10, MdsRank(0), 2)
            .limp(30, MdsRank(2), 0.5, 40)
            .migration_stall(30, MdsRank(0), 15)
            .build();
        assert_eq!(s.len(), 4);
        let ticks: Vec<u64> = s.events().iter().map(|e| e.at_tick).collect();
        assert_eq!(ticks, vec![10, 30, 30, 50]);
        assert_eq!(s.events()[1].kind.label(), "limp", "stable at same tick");
    }

    #[test]
    fn plan_clamps_degenerate_params() {
        let s = FaultPlan::new()
            .crash(0, MdsRank(0), 0)
            .limp(0, MdsRank(0), 7.5, 0)
            .build();
        match s.events()[0].kind {
            FaultKind::Crash { down_ticks, .. } => assert_eq!(down_ticks, 1),
            _ => unreachable!("first event is the crash"),
        }
        match s.events()[1].kind {
            FaultKind::Limp {
                factor,
                duration_ticks,
                ..
            } => {
                assert!(factor <= 1.0 && factor > 0.0);
                assert_eq!(duration_ticks, 1);
            }
            _ => unreachable!("second event is the limp"),
        }
    }

    #[test]
    fn seeded_is_deterministic_and_bounded() {
        let p = ChaosProfile::default();
        let a = seeded(42, 4, 300, &p);
        let b = seeded(42, 4, 300, &p);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(
            a.len(),
            p.crashes + p.limps + p.report_losses + p.migration_stalls
        );
        for e in a.events() {
            assert!(e.at_tick >= 30 && e.at_tick < 270, "middle 80%: {e:?}");
            assert!(e.kind.rank().index() < 4);
        }
        let c = seeded(43, 4, 300, &p);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn seeded_skips_crashes_on_single_rank() {
        let s = seeded(7, 1, 300, &ChaosProfile::default());
        assert!(s
            .events()
            .iter()
            .all(|e| !matches!(e.kind, FaultKind::Crash { .. })));
    }

    #[test]
    fn seeded_degenerate_inputs_yield_empty() {
        let p = ChaosProfile::default();
        assert!(seeded(1, 0, 300, &p).is_empty());
        assert!(seeded(1, 4, 5, &p).is_empty());
    }
}
