//! The fault taxonomy and the tick-sorted schedule type.

use lunule_namespace::MdsRank;

/// One kind of injected fault.
///
/// Every variant names the rank it targets and its tick-based parameters;
/// nothing here references wall time. The simulator decides what each
/// fault *means* (see `lunule-sim`); this crate only describes schedules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The rank crashes: it serves nothing, abandons in-flight migrations
    /// touching it, and its subtrees fail over to the survivors. It
    /// recovers (empty, to be re-filled by the balancer) after
    /// `down_ticks` ticks.
    Crash {
        /// Rank that goes down.
        rank: MdsRank,
        /// Ticks until the rank rejoins the cluster.
        down_ticks: u64,
    },
    /// The rank "limps": its per-tick budget is multiplied by `factor`
    /// (in `(0, 1]`) for `duration_ticks` ticks — a slow disk or a noisy
    /// neighbour, not an outage.
    Limp {
        /// Rank that degrades.
        rank: MdsRank,
        /// Effective-capacity multiplier while limping.
        factor: f64,
        /// How long the degradation lasts, in ticks.
        duration_ticks: u64,
    },
    /// The rank's per-epoch load report is dropped for the next `epochs`
    /// balance epochs: the balancer sees no fresh number and must fall
    /// back to its last-known-good load (with an age cap).
    ReportLoss {
        /// Rank whose reports go missing.
        rank: MdsRank,
        /// Number of consecutive epochs the report is lost for.
        epochs: u64,
    },
    /// The rank's outbound migration stream stalls (zero export bandwidth)
    /// for `duration_ticks` ticks — long enough stalls trip the migration
    /// timeout and exercise the retry/backoff path.
    MigrationStall {
        /// Exporting rank whose transfers stall.
        rank: MdsRank,
        /// How long exports make no progress, in ticks.
        duration_ticks: u64,
    },
}

impl FaultKind {
    /// The rank this fault targets.
    pub fn rank(&self) -> MdsRank {
        match self {
            FaultKind::Crash { rank, .. }
            | FaultKind::Limp { rank, .. }
            | FaultKind::ReportLoss { rank, .. }
            | FaultKind::MigrationStall { rank, .. } => *rank,
        }
    }

    /// Snake-case label used in telemetry events and spec strings.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Limp { .. } => "limp",
            FaultKind::ReportLoss { .. } => "report_loss",
            FaultKind::MigrationStall { .. } => "migration_stall",
        }
    }

    /// The fault's principal magnitude (ticks or epochs), for telemetry.
    pub fn param(&self) -> u64 {
        match self {
            FaultKind::Crash { down_ticks, .. } => *down_ticks,
            FaultKind::Limp { duration_ticks, .. } => *duration_ticks,
            FaultKind::ReportLoss { epochs, .. } => *epochs,
            FaultKind::MigrationStall { duration_ticks, .. } => *duration_ticks,
        }
    }

    /// Serialises the fault for a snapshot section (operator-queued faults
    /// are part of a run's restorable state).
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        match self {
            FaultKind::Crash { rank, down_ticks } => {
                e.put_u8(0);
                e.put_u16(rank.0);
                e.put_u64(*down_ticks);
            }
            FaultKind::Limp {
                rank,
                factor,
                duration_ticks,
            } => {
                e.put_u8(1);
                e.put_u16(rank.0);
                e.put_f64(*factor);
                e.put_u64(*duration_ticks);
            }
            FaultKind::ReportLoss { rank, epochs } => {
                e.put_u8(2);
                e.put_u16(rank.0);
                e.put_u64(*epochs);
            }
            FaultKind::MigrationStall {
                rank,
                duration_ticks,
            } => {
                e.put_u8(3);
                e.put_u16(rank.0);
                e.put_u64(*duration_ticks);
            }
        }
    }

    /// Inverse of [`FaultKind::encode`]; rejects unknown variant tags and
    /// out-of-range limp factors.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<Self, lunule_util::codec::CodecError> {
        use lunule_util::codec::CodecError;
        let tag = d.get_u8("fault.tag")?;
        let rank = MdsRank(d.get_u16("fault.rank")?);
        match tag {
            0 => Ok(FaultKind::Crash {
                rank,
                down_ticks: d.get_u64("fault.down_ticks")?,
            }),
            1 => {
                let factor = d.get_f64("fault.factor")?;
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(CodecError::Invalid {
                        what: "fault.factor",
                    });
                }
                Ok(FaultKind::Limp {
                    rank,
                    factor,
                    duration_ticks: d.get_u64("fault.duration_ticks")?,
                })
            }
            2 => Ok(FaultKind::ReportLoss {
                rank,
                epochs: d.get_u64("fault.epochs")?,
            }),
            3 => Ok(FaultKind::MigrationStall {
                rank,
                duration_ticks: d.get_u64("fault.duration_ticks")?,
            }),
            _ => Err(CodecError::Invalid { what: "fault.tag" }),
        }
    }
}

/// A fault scheduled at a specific simulated tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Tick at which the fault is injected.
    pub at_tick: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// An immutable schedule of fault events, sorted by injection tick.
///
/// The simulator keeps its own cursor into [`FaultSchedule::events`] and
/// injects every event whose `at_tick` the clock has reached. The default
/// schedule is empty — a fault-free run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty (fault-free) schedule.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from events, sorting them by tick. The sort is
    /// stable: events scripted at the same tick keep their given order.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_tick);
        FaultSchedule { events }
    }

    /// The events, ascending by `at_tick`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The highest rank index any event targets, if any — used to validate
    /// a schedule against a cluster size.
    pub fn max_rank(&self) -> Option<MdsRank> {
        self.events.iter().map(|e| e.kind.rank()).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts_stably() {
        let a = FaultEvent {
            at_tick: 30,
            kind: FaultKind::Crash {
                rank: MdsRank(1),
                down_ticks: 10,
            },
        };
        let b = FaultEvent {
            at_tick: 10,
            kind: FaultKind::ReportLoss {
                rank: MdsRank(0),
                epochs: 2,
            },
        };
        let c = FaultEvent {
            at_tick: 30,
            kind: FaultKind::MigrationStall {
                rank: MdsRank(2),
                duration_ticks: 5,
            },
        };
        let s = FaultSchedule::from_events(vec![a, b, c]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.events()[0], b);
        assert_eq!(s.events()[1], a, "stable: a scripted before c at t=30");
        assert_eq!(s.events()[2], c);
        assert_eq!(s.max_rank(), Some(MdsRank(2)));
    }

    #[test]
    fn fault_kind_codec_round_trips_and_rejects_garbage() {
        use lunule_util::codec::{CodecError, Decoder, Encoder};
        let kinds = [
            FaultKind::Crash {
                rank: MdsRank(1),
                down_ticks: 10,
            },
            FaultKind::Limp {
                rank: MdsRank(2),
                factor: 0.25,
                duration_ticks: 40,
            },
            FaultKind::ReportLoss {
                rank: MdsRank(0),
                epochs: 3,
            },
            FaultKind::MigrationStall {
                rank: MdsRank(3),
                duration_ticks: 7,
            },
        ];
        let mut e = Encoder::new();
        for k in &kinds {
            k.encode(&mut e);
        }
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        for k in &kinds {
            assert_eq!(FaultKind::decode(&mut d).unwrap(), *k);
        }
        d.finish().unwrap();
        // Unknown tags and out-of-range limp factors are typed errors.
        let mut bad = Encoder::new();
        bad.put_u8(9);
        bad.put_u16(0);
        let bad = bad.into_bytes();
        assert!(matches!(
            FaultKind::decode(&mut Decoder::new(&bad)),
            Err(CodecError::Invalid { what: "fault.tag" })
        ));
        let mut bad = Encoder::new();
        bad.put_u8(1);
        bad.put_u16(0);
        bad.put_f64(1.5);
        bad.put_u64(1);
        let bad = bad.into_bytes();
        assert!(matches!(
            FaultKind::decode(&mut Decoder::new(&bad)),
            Err(CodecError::Invalid {
                what: "fault.factor"
            })
        ));
    }

    #[test]
    fn empty_schedule() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.max_rank(), None);
    }

    #[test]
    fn kind_accessors() {
        let k = FaultKind::Limp {
            rank: MdsRank(3),
            factor: 0.5,
            duration_ticks: 40,
        };
        assert_eq!(k.rank(), MdsRank(3));
        assert_eq!(k.label(), "limp");
        assert_eq!(k.param(), 40);
        let labels: Vec<&str> = [
            FaultKind::Crash {
                rank: MdsRank(0),
                down_ticks: 1,
            },
            k,
            FaultKind::ReportLoss {
                rank: MdsRank(0),
                epochs: 1,
            },
            FaultKind::MigrationStall {
                rank: MdsRank(0),
                duration_ticks: 1,
            },
        ]
        .iter()
        .map(FaultKind::label)
        .collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels must be unique");
    }
}
