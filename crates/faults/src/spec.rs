//! Compact CLI spec strings for fault schedules (`--faults <spec>`).
//!
//! Two forms are accepted:
//!
//! * **Scripted** — semicolon-separated events, each `kind@tick:rank:...`:
//!   - `crash@120:1:60` — crash rank 1 at tick 120, down for 60 ticks
//!   - `limp@200:2:0.5:100` — rank 2 at half capacity for 100 ticks
//!   - `loss@300:0:2` — drop rank 0's load report for 2 epochs
//!   - `stall@400:1:50` — stall rank 1's exports for 50 ticks
//! * **Seeded** — comma-separated `key=value` pairs drawing a random
//!   schedule: `seed=7,crashes=2,limps=1,losses=1,stalls=1`. Omitted keys
//!   use [`ChaosProfile::default`]; `seed` defaults to 0.
//!
//! The scripted form is recognised by the presence of `@`.

use crate::plan::{seeded, ChaosProfile, FaultPlan};
use crate::schedule::FaultSchedule;
use lunule_namespace::MdsRank;

/// A malformed `--faults` spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        SpecError { msg: msg.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// Parses a `--faults` spec (see module docs) into a schedule.
///
/// `n_mds` bounds the ranks a scripted event may target and sizes the
/// seeded draw; `duration_ticks` bounds scripted ticks and scales seeded
/// event times.
pub fn parse_spec(
    spec: &str,
    n_mds: usize,
    duration_ticks: u64,
) -> Result<FaultSchedule, SpecError> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Ok(FaultSchedule::empty());
    }
    if spec.contains('@') {
        parse_scripted(spec, n_mds, duration_ticks)
    } else {
        parse_seeded(spec, n_mds, duration_ticks)
    }
}

fn parse_scripted(
    spec: &str,
    n_mds: usize,
    duration_ticks: u64,
) -> Result<FaultSchedule, SpecError> {
    let mut plan = FaultPlan::new();
    for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let part = part.trim();
        let (kind, rest) = part
            .split_once('@')
            .ok_or_else(|| SpecError::new(format!("event '{part}' missing '@'")))?;
        let fields: Vec<&str> = rest.split(':').collect();
        let num = |i: usize| -> Result<u64, SpecError> {
            fields
                .get(i)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| SpecError::new(format!("event '{part}': bad field {i}")))
        };
        let tick = num(0)?;
        if tick >= duration_ticks {
            return Err(SpecError::new(format!(
                "event '{part}': tick {tick} beyond run of {duration_ticks} ticks"
            )));
        }
        let rank_raw = num(1)?;
        if rank_raw as usize >= n_mds {
            return Err(SpecError::new(format!(
                "event '{part}': rank {rank_raw} outside cluster of {n_mds}"
            )));
        }
        let rank = MdsRank(rank_raw as u16);
        let arity = |want: usize| -> Result<(), SpecError> {
            if fields.len() == want {
                Ok(())
            } else {
                Err(SpecError::new(format!(
                    "event '{part}': expected {want} ':'-fields, got {}",
                    fields.len()
                )))
            }
        };
        plan = match kind {
            "crash" => {
                arity(3)?;
                plan.crash(tick, rank, num(2)?)
            }
            "limp" => {
                arity(4)?;
                let factor = fields[2]
                    .parse::<f64>()
                    .map_err(|_| SpecError::new(format!("event '{part}': bad limp factor")))?;
                plan.limp(tick, rank, factor, num(3)?)
            }
            "loss" => {
                arity(3)?;
                plan.report_loss(tick, rank, num(2)?)
            }
            "stall" => {
                arity(3)?;
                plan.migration_stall(tick, rank, num(2)?)
            }
            other => {
                return Err(SpecError::new(format!(
                    "unknown fault kind '{other}' (want crash/limp/loss/stall)"
                )))
            }
        };
    }
    Ok(plan.build())
}

fn parse_seeded(spec: &str, n_mds: usize, duration_ticks: u64) -> Result<FaultSchedule, SpecError> {
    let mut seed = 0u64;
    let mut profile = ChaosProfile::default();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let part = part.trim();
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| SpecError::new(format!("'{part}' is not key=value")))?;
        let parsed: u64 = value
            .parse()
            .map_err(|_| SpecError::new(format!("'{part}': bad value")))?;
        match key.trim() {
            "seed" => seed = parsed,
            "crashes" => profile.crashes = parsed as usize,
            "limps" => profile.limps = parsed as usize,
            "losses" => profile.report_losses = parsed as usize,
            "stalls" => profile.migration_stalls = parsed as usize,
            other => {
                return Err(SpecError::new(format!(
                    "unknown key '{other}' (want seed/crashes/limps/losses/stalls)"
                )))
            }
        }
    }
    Ok(seeded(seed, n_mds, duration_ticks, &profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultKind;

    #[test]
    fn scripted_spec_round_trips() {
        let s = parse_spec(
            "crash@120:1:60;limp@200:2:0.5:100;loss@30:0:2;stall@40:1:50",
            3,
            400,
        )
        .unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.events()[0].at_tick, 30);
        match s.events()[3].kind {
            FaultKind::Limp {
                rank,
                factor,
                duration_ticks,
            } => {
                assert_eq!(rank, MdsRank(2));
                assert!((factor - 0.5).abs() < 1e-12);
                assert_eq!(duration_ticks, 100);
            }
            other => unreachable!("tick 200 is the limp, got {other:?}"),
        }
    }

    #[test]
    fn seeded_spec_is_deterministic() {
        let a = parse_spec("seed=7,crashes=3", 4, 500).unwrap();
        let b = parse_spec("seed=7,crashes=3", 4, 500).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn empty_spec_is_fault_free() {
        assert!(parse_spec("", 3, 100).unwrap().is_empty());
        assert!(parse_spec("  ", 3, 100).unwrap().is_empty());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_spec("crash@10:9:5", 3, 100).is_err(), "rank range");
        assert!(parse_spec("crash@999:0:5", 3, 100).is_err(), "tick range");
        assert!(parse_spec("crash@10:0", 3, 100).is_err(), "arity");
        assert!(parse_spec("warp@10:0:5", 3, 100).is_err(), "kind");
        assert!(parse_spec("limp@10:0:high:5", 3, 100).is_err(), "factor");
        assert!(parse_spec("frequency=11", 3, 100).is_err(), "seeded key");
        assert!(parse_spec("seed=banana", 3, 100).is_err(), "seeded value");
    }
}
