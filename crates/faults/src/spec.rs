//! Compact CLI spec strings for fault schedules (`--faults <spec>`).
//!
//! Two forms are accepted:
//!
//! * **Scripted** — semicolon-separated events, each `kind@tick:rank:...`:
//!   - `crash@120:1:60` — crash rank 1 at tick 120, down for 60 ticks
//!   - `limp@200:2:0.5:100` — rank 2 at half capacity for 100 ticks
//!   - `loss@300:0:2` — drop rank 0's load report for 2 epochs
//!   - `stall@400:1:50` — stall rank 1's exports for 50 ticks
//! * **Seeded** — comma-separated `key=value` pairs drawing a random
//!   schedule: `seed=7,crashes=2,limps=1,losses=1,stalls=1`. Omitted keys
//!   use [`ChaosProfile::default`]; `seed` defaults to 0.
//!
//! The scripted form is recognised by the presence of `@`.
//!
//! The `kind@tick:field:...` event shape is shared with the
//! `lunule-daemon` session-script grammar (`.lds` files): both go through
//! [`tokenize_event`], and the four fault kinds parse through
//! [`parse_fault_kind`], so there is exactly one code path for fault
//! events whether they arrive on the CLI or in a session script.
//! [`format_spec`] renders a schedule back into the scripted form, and
//! `parse → format → parse` is the identity (see the round-trip tests).

use crate::plan::{seeded, ChaosProfile, FaultPlan};
use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};
use lunule_namespace::MdsRank;

/// A malformed `--faults` spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    /// Builds an error carrying a human-readable message. Public so the
    /// daemon's session parser (which extends this grammar) can report its
    /// own line-level errors through the same type.
    pub fn new(msg: impl Into<String>) -> Self {
        SpecError { msg: msg.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// One tokenized `kind@tick:field:...` event, borrowed from its spec
/// string. The shared shape of fault-spec events and daemon session-script
/// commands: `kind` names the event, `at_tick` schedules it, and `fields`
/// carries the remaining `:`-separated arguments (everything after the
/// tick).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventLine<'a> {
    /// The event kind (`crash`, `limp`, … or a daemon command name).
    pub kind: &'a str,
    /// Simulated tick the event fires at.
    pub at_tick: u64,
    /// The `:`-separated fields after the tick.
    pub fields: Vec<&'a str>,
    /// The raw event text, for error messages.
    pub raw: &'a str,
}

impl<'a> EventLine<'a> {
    /// Fails unless exactly `want` fields follow the tick.
    pub fn expect_fields(&self, want: usize) -> Result<(), SpecError> {
        if self.fields.len() == want {
            Ok(())
        } else {
            Err(SpecError::new(format!(
                "event '{}': expected {want} field(s) after the tick, got {}",
                self.raw,
                self.fields.len()
            )))
        }
    }

    /// Field `i` parsed as `u64`.
    pub fn num(&self, i: usize) -> Result<u64, SpecError> {
        self.fields
            .get(i)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| SpecError::new(format!("event '{}': bad field {i}", self.raw)))
    }

    /// Field `i` parsed as `f64`.
    pub fn float(&self, i: usize) -> Result<f64, SpecError> {
        self.fields
            .get(i)
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| SpecError::new(format!("event '{}': bad float field {i}", self.raw)))
    }

    /// Field `i` parsed as an MDS rank, bounds-checked against `n_mds`.
    pub fn rank(&self, i: usize, n_mds: usize) -> Result<MdsRank, SpecError> {
        let raw = self.num(i)?;
        if raw as usize >= n_mds {
            return Err(SpecError::new(format!(
                "event '{}': rank {raw} outside cluster of {n_mds}",
                self.raw
            )));
        }
        // as-ok: bounded by n_mds, which fits u16 by construction
        Ok(MdsRank(raw as u16))
    }
}

/// Tokenizes one `kind@tick:field:...` event string. This is the single
/// tokenizer behind fault specs and daemon session scripts.
pub fn tokenize_event(part: &str) -> Result<EventLine<'_>, SpecError> {
    let part = part.trim();
    let (kind, rest) = part
        .split_once('@')
        .ok_or_else(|| SpecError::new(format!("event '{part}' missing '@'")))?;
    let mut fields: Vec<&str> = rest.split(':').collect();
    let tick_text = fields.remove(0);
    let at_tick = tick_text
        .trim()
        .parse::<u64>()
        .map_err(|_| SpecError::new(format!("event '{part}': bad tick '{tick_text}'")))?;
    Ok(EventLine {
        kind: kind.trim(),
        at_tick,
        fields,
        raw: part,
    })
}

/// Parses the four fault kinds out of a tokenized event. Returns
/// `Ok(None)` when `line.kind` is not a fault kind, so grammars that
/// extend this one (the daemon session scripts) can fall through to their
/// own commands; arity and field errors on a *known* kind still fail.
pub fn parse_fault_kind(
    line: &EventLine<'_>,
    n_mds: usize,
) -> Result<Option<FaultKind>, SpecError> {
    let kind = match line.kind {
        "crash" => {
            line.expect_fields(2)?;
            FaultKind::Crash {
                rank: line.rank(0, n_mds)?,
                down_ticks: line.num(1)?,
            }
        }
        "limp" => {
            line.expect_fields(3)?;
            let factor = line.float(1)?;
            FaultKind::Limp {
                rank: line.rank(0, n_mds)?,
                factor,
                duration_ticks: line.num(2)?,
            }
        }
        "loss" => {
            line.expect_fields(2)?;
            FaultKind::ReportLoss {
                rank: line.rank(0, n_mds)?,
                epochs: line.num(1)?,
            }
        }
        "stall" => {
            line.expect_fields(2)?;
            FaultKind::MigrationStall {
                rank: line.rank(0, n_mds)?,
                duration_ticks: line.num(1)?,
            }
        }
        _ => return Ok(None),
    };
    Ok(Some(kind))
}

/// Renders one fault event in the scripted spec form, the exact inverse of
/// [`tokenize_event`] + [`parse_fault_kind`].
pub fn format_fault_event(event: &FaultEvent) -> String {
    let t = event.at_tick;
    match event.kind {
        FaultKind::Crash { rank, down_ticks } => format!("crash@{t}:{}:{down_ticks}", rank.0),
        FaultKind::Limp {
            rank,
            factor,
            duration_ticks,
        } => format!("limp@{t}:{}:{factor}:{duration_ticks}", rank.0),
        FaultKind::ReportLoss { rank, epochs } => format!("loss@{t}:{}:{epochs}", rank.0),
        FaultKind::MigrationStall {
            rank,
            duration_ticks,
        } => format!("stall@{t}:{}:{duration_ticks}", rank.0),
    }
}

/// Renders a whole schedule as a scripted spec string
/// (`crash@120:1:60;limp@200:2:0.5:100;...`). `parse_spec` of the result
/// reproduces the schedule exactly.
pub fn format_spec(schedule: &FaultSchedule) -> String {
    schedule
        .events()
        .iter()
        .map(format_fault_event)
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses a `--faults` spec (see module docs) into a schedule.
///
/// `n_mds` bounds the ranks a scripted event may target and sizes the
/// seeded draw; `duration_ticks` bounds scripted ticks and scales seeded
/// event times.
pub fn parse_spec(
    spec: &str,
    n_mds: usize,
    duration_ticks: u64,
) -> Result<FaultSchedule, SpecError> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Ok(FaultSchedule::empty());
    }
    if spec.contains('@') {
        parse_scripted(spec, n_mds, duration_ticks)
    } else {
        parse_seeded(spec, n_mds, duration_ticks)
    }
}

fn parse_scripted(
    spec: &str,
    n_mds: usize,
    duration_ticks: u64,
) -> Result<FaultSchedule, SpecError> {
    let mut plan = FaultPlan::new();
    for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let line = tokenize_event(part)?;
        if line.at_tick >= duration_ticks {
            return Err(SpecError::new(format!(
                "event '{}': tick {} beyond run of {duration_ticks} ticks",
                line.raw, line.at_tick
            )));
        }
        let Some(kind) = parse_fault_kind(&line, n_mds)? else {
            return Err(SpecError::new(format!(
                "unknown fault kind '{}' (want crash/limp/loss/stall)",
                line.kind
            )));
        };
        plan = plan.event(line.at_tick, kind);
    }
    Ok(plan.build())
}

fn parse_seeded(spec: &str, n_mds: usize, duration_ticks: u64) -> Result<FaultSchedule, SpecError> {
    let mut seed = 0u64;
    let mut profile = ChaosProfile::default();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let part = part.trim();
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| SpecError::new(format!("'{part}' is not key=value")))?;
        let parsed: u64 = value
            .parse()
            .map_err(|_| SpecError::new(format!("'{part}': bad value")))?;
        match key.trim() {
            "seed" => seed = parsed,
            "crashes" => profile.crashes = parsed as usize,
            "limps" => profile.limps = parsed as usize,
            "losses" => profile.report_losses = parsed as usize,
            "stalls" => profile.migration_stalls = parsed as usize,
            other => {
                return Err(SpecError::new(format!(
                    "unknown key '{other}' (want seed/crashes/limps/losses/stalls)"
                )))
            }
        }
    }
    Ok(seeded(seed, n_mds, duration_ticks, &profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultKind;

    #[test]
    fn scripted_spec_round_trips() {
        let s = parse_spec(
            "crash@120:1:60;limp@200:2:0.5:100;loss@30:0:2;stall@40:1:50",
            3,
            400,
        )
        .unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.events()[0].at_tick, 30);
        match s.events()[3].kind {
            FaultKind::Limp {
                rank,
                factor,
                duration_ticks,
            } => {
                assert_eq!(rank, MdsRank(2));
                assert!((factor - 0.5).abs() < 1e-12);
                assert_eq!(duration_ticks, 100);
            }
            other => unreachable!("tick 200 is the limp, got {other:?}"),
        }
    }

    #[test]
    fn seeded_spec_is_deterministic() {
        let a = parse_spec("seed=7,crashes=3", 4, 500).unwrap();
        let b = parse_spec("seed=7,crashes=3", 4, 500).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn empty_spec_is_fault_free() {
        assert!(parse_spec("", 3, 100).unwrap().is_empty());
        assert!(parse_spec("  ", 3, 100).unwrap().is_empty());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_spec("crash@10:9:5", 3, 100).is_err(), "rank range");
        assert!(parse_spec("crash@999:0:5", 3, 100).is_err(), "tick range");
        assert!(parse_spec("crash@10:0", 3, 100).is_err(), "arity");
        assert!(parse_spec("warp@10:0:5", 3, 100).is_err(), "kind");
        assert!(parse_spec("limp@10:0:high:5", 3, 100).is_err(), "factor");
        assert!(parse_spec("frequency=11", 3, 100).is_err(), "seeded key");
        assert!(parse_spec("seed=banana", 3, 100).is_err(), "seeded value");
    }

    #[test]
    fn tokenizer_splits_kind_tick_fields() {
        let line = tokenize_event(" limp@200:2:0.5:100 ").unwrap();
        assert_eq!(line.kind, "limp");
        assert_eq!(line.at_tick, 200);
        assert_eq!(line.fields, vec!["2", "0.5", "100"]);
        assert!(tokenize_event("noat").is_err());
        assert!(tokenize_event("crash@x:1:2").is_err(), "bad tick");
        // Unknown kinds tokenize fine — extension grammars own them.
        let other = tokenize_event("addmds@300").unwrap();
        assert_eq!(other.kind, "addmds");
        assert!(other.fields.is_empty());
        assert!(parse_fault_kind(&other, 3).unwrap().is_none());
    }

    #[test]
    fn format_spec_round_trips_byte_exact() {
        let spec = "loss@30:0:2;stall@40:1:50;crash@120:1:60;limp@200:2:0.5:100";
        let schedule = parse_spec(spec, 3, 400).unwrap();
        let formatted = format_spec(&schedule);
        // The schedule is tick-sorted, so the canonical form is too.
        assert_eq!(formatted, spec);
        let back = parse_spec(&formatted, 3, 400).unwrap();
        assert_eq!(back, schedule);
    }

    #[test]
    fn format_of_seeded_schedule_reparses_identically() {
        let schedule = parse_spec("seed=11,crashes=2,limps=1,stalls=1", 5, 800).unwrap();
        let formatted = format_spec(&schedule);
        let back = parse_spec(&formatted, 5, 800).unwrap();
        assert_eq!(back, schedule, "seeded -> scripted -> schedule identity");
    }
}
