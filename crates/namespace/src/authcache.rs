//! Tick-scoped memoization of subtree-map authority walks.
//!
//! [`SubtreeMap::authority`] recurses from the inode to the root on every
//! call; the simulator calls it (directly or through the chain variant)
//! once per metadata op, and with deep paths and millions of ops per tick
//! the repeated ancestor walks dominate the resolve phase. Between two
//! subtree-map mutations the answers cannot change, so [`AuthorityCache`]
//! memoizes them in a dense [`PagedMap`] keyed by inode index and
//! invalidates the whole memo in O(1) whenever
//! [`SubtreeMap::generation`] moves — the map bumps it on every mutation.
//!
//! Namespace mutations never invalidate the memo: inode ids are
//! never reused (unlink tombstones the arena slot), parent links are
//! immutable once created, and a freshly created inode occupies a fresh
//! index whose memo entry cannot exist yet. Only the subtree map decides
//! authority, and every mutation of it bumps the generation.
//!
//! The fill is path-compressing: resolving an inode memoizes every
//! ancestor along the way, so sibling lookups (the common case — ops
//! cluster in directories) are O(1) after the first.

use crate::frag::dentry_hash;
use crate::inode::InodeId;
use crate::subtree::{MdsRank, SubtreeMap};
use crate::tree::Namespace;
use lunule_util::intern::PagedMap;

#[inline]
fn encode_rank(r: MdsRank) -> u32 {
    u32::from(r.0)
}

#[inline]
fn decode_rank(v: u32) -> MdsRank {
    MdsRank(u16::try_from(v).unwrap_or(u16::MAX))
}

/// A memoized view of [`SubtreeMap::authority`], valid for one subtree-map
/// generation and refreshed automatically when the generation moves.
///
/// The mutating entry points ([`AuthorityCache::authority`],
/// [`AuthorityCache::chain`]) prime the memo; the shared read-only
/// entry points ([`AuthorityCache::cached_authority`],
/// [`AuthorityCache::cached_chain_into`]) are `&self` and thread-safe, so
/// a parallel resolve phase can fan out over a cache primed serially
/// beforehand.
#[derive(Clone, Default)]
pub struct AuthorityCache {
    /// Subtree-map generation the memo was built against.
    map_generation: u64,
    /// False until the first sync; distinguishes "never primed" from
    /// "primed at generation 0".
    synced: bool,
    /// inode index → memoized authority rank.
    memo: PagedMap,
    /// Walk-up scratch, reused across calls.
    stack: Vec<InodeId>,
    /// Chain scratch backing [`AuthorityCache::chain`].
    chain_buf: Vec<MdsRank>,
}

impl AuthorityCache {
    /// An empty cache; the first lookup primes it.
    #[must_use]
    pub fn new() -> AuthorityCache {
        AuthorityCache::default()
    }

    /// Drops the memo if `map` has mutated since it was built.
    fn sync(&mut self, map: &SubtreeMap) {
        if !self.synced || self.map_generation != map.generation() {
            self.memo.clear();
            self.map_generation = map.generation();
            self.synced = true;
        }
    }

    /// Memoized [`SubtreeMap::authority`]: same answer, amortized O(1).
    pub fn authority(&mut self, map: &SubtreeMap, ns: &Namespace, ino: InodeId) -> MdsRank {
        self.sync(map);
        if let Some(v) = self.memo.get(ino.index()) {
            return decode_rank(v);
        }
        // Walk up to the nearest memoized ancestor (or the root),
        // collecting the unresolved suffix of the path.
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        let mut cur = ino;
        let mut auth;
        loop {
            if let Some(v) = self.memo.get(cur.index()) {
                auth = decode_rank(v);
                break;
            }
            match ns.inode(cur).parent() {
                Some(p) => {
                    stack.push(cur);
                    cur = p;
                }
                None => {
                    auth = map.root_rank();
                    self.memo.set(cur.index(), encode_rank(auth));
                    break;
                }
            }
        }
        // Fill back down, memoizing every level (path compression).
        let mut dir = cur;
        while let Some(child) = stack.pop() {
            auth = map.child_authority(dir, dentry_hash(child.raw()), auth);
            self.memo.set(child.index(), encode_rank(auth));
            dir = child;
        }
        self.stack = stack;
        auth
    }

    /// Memoized [`SubtreeMap::authority_chain`]: the authority of every
    /// inode on the path `/ → ino`, inclusive, as a borrowed slice (the
    /// buffer is internal scratch, valid until the next call).
    pub fn chain(&mut self, map: &SubtreeMap, ns: &Namespace, ino: InodeId) -> &[MdsRank] {
        self.authority(map, ns, ino); // primes the whole path
        let mut buf = std::mem::take(&mut self.chain_buf);
        buf.clear();
        let mut cur = ino;
        loop {
            match self.memo.get(cur.index()) {
                Some(v) => buf.push(decode_rank(v)),
                // Unreachable: `authority` memoized the full path above.
                None => buf.push(map.root_rank()),
            }
            match ns.inode(cur).parent() {
                Some(p) => cur = p,
                None => break,
            }
        }
        buf.reverse();
        self.chain_buf = buf;
        &self.chain_buf
    }

    /// Read-only memo probe for a primed cache (parallel resolve phases).
    /// `None` when the entry is missing or the memo is stale for `map`.
    #[must_use]
    pub fn cached_authority(&self, map: &SubtreeMap, ino: InodeId) -> Option<MdsRank> {
        if !self.synced || self.map_generation != map.generation() {
            return None;
        }
        self.memo.get(ino.index()).map(decode_rank)
    }

    /// Read-only chain assembly from the memo: fills `out` with the
    /// root-to-`ino` authority chain and returns true iff every node on
    /// the path was memoized (callers fall back to the live walk
    /// otherwise). Does not check the generation — callers hold `&self`
    /// across a phase during which the map is frozen.
    pub fn cached_chain_into(&self, ns: &Namespace, ino: InodeId, out: &mut Vec<MdsRank>) -> bool {
        out.clear();
        let mut cur = ino;
        loop {
            match self.memo.get(cur.index()) {
                Some(v) => out.push(decode_rank(v)),
                None => return false,
            }
            match ns.inode(cur).parent() {
                Some(p) => cur = p,
                None => break,
            }
        }
        out.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_util::propcheck;

    /// A 3-level namespace with a few subtree-map entries.
    fn setup() -> (Namespace, SubtreeMap, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let mut all = Vec::new();
        let mut map = SubtreeMap::new(MdsRank(0));
        for d in 0..4 {
            let dir = ns.mkdir_total(InodeId::ROOT, &format!("d{d}"));
            all.push(dir);
            let sub = ns.mkdir_total(dir, "sub");
            all.push(sub);
            for f in 0..6 {
                all.push(ns.create_file_total(sub, &format!("f{f}"), 1));
            }
            if d % 2 == 0 {
                map.set_authority(FragKey::whole(dir), MdsRank(1));
            }
            if d == 1 {
                map.set_authority(FragKey::whole(sub), MdsRank(2));
            }
        }
        (ns, map, all)
    }

    use crate::subtree::FragKey;

    #[test]
    fn matches_live_authority_for_every_inode() {
        let (ns, map, all) = setup();
        let mut cache = AuthorityCache::new();
        for &ino in &all {
            assert_eq!(cache.authority(&map, &ns, ino), map.authority(&ns, ino));
        }
        // Second pass: pure memo hits, same answers.
        for &ino in &all {
            assert_eq!(cache.authority(&map, &ns, ino), map.authority(&ns, ino));
        }
        assert_eq!(
            cache.authority(&map, &ns, InodeId::ROOT),
            map.root_rank(),
            "root resolves to the root rank"
        );
    }

    #[test]
    fn chain_matches_live_chain() {
        let (ns, map, all) = setup();
        let mut cache = AuthorityCache::new();
        for &ino in &all {
            let live = map.authority_chain(&ns, ino);
            assert_eq!(cache.chain(&map, &ns, ino), live.as_slice());
        }
    }

    #[test]
    fn invalidates_on_generation_bump() {
        let (ns, mut map, all) = setup();
        let mut cache = AuthorityCache::new();
        let target = all[0];
        let before = cache.authority(&map, &ns, target);
        assert_eq!(cache.cached_authority(&map, target), Some(before));
        map.set_authority(FragKey::whole(target), MdsRank(3));
        assert_eq!(
            cache.cached_authority(&map, target),
            None,
            "stale memo must not serve the new generation"
        );
        assert_eq!(
            cache.authority(&map, &ns, target),
            map.authority(&ns, target)
        );
    }

    #[test]
    fn cached_views_match_after_priming() {
        let (ns, map, all) = setup();
        let mut cache = AuthorityCache::new();
        for &ino in &all {
            cache.authority(&map, &ns, ino);
        }
        let shared = &cache;
        let mut chain = Vec::new();
        for &ino in &all {
            assert_eq!(
                shared.cached_authority(&map, ino),
                Some(map.authority(&ns, ino))
            );
            assert!(shared.cached_chain_into(&ns, ino, &mut chain));
            assert_eq!(chain, map.authority_chain(&ns, ino));
        }
    }

    #[test]
    fn prop_matches_live_under_random_maps() {
        propcheck::run(64, |rng| {
            let mut ns = Namespace::new();
            let mut dirs = vec![InodeId::ROOT];
            let mut files = Vec::new();
            let n_dirs = 2 + (rng.next_u64() % 12);
            for d in 0..n_dirs {
                let parent = dirs[rng.gen_range(0..dirs.len())];
                let dir = ns.mkdir_total(parent, &format!("d{d}"));
                dirs.push(dir);
                for f in 0..(rng.next_u64() % 4) {
                    files.push(ns.create_file_total(dir, &format!("f{f}"), 1));
                }
            }
            let mut map = SubtreeMap::new(MdsRank(0));
            for &dir in &dirs {
                if rng.next_u64() % 3 == 0 {
                    let rank = MdsRank(u16::try_from(rng.next_u64() % 5).unwrap_or(0));
                    map.set_authority(FragKey::whole(dir), rank);
                }
            }
            let mut cache = AuthorityCache::new();
            let mut all = dirs.clone();
            all.extend_from_slice(&files);
            for &ino in &all {
                assert_eq!(cache.authority(&map, &ns, ino), map.authority(&ns, ino));
                assert_eq!(
                    cache.chain(&map, &ns, ino),
                    map.authority_chain(&ns, ino).as_slice()
                );
            }
            // Mutate, then re-check: the memo must resync.
            let victim = dirs[rng.gen_range(0..dirs.len())];
            map.set_authority(FragKey::whole(victim), MdsRank(7));
            for &ino in &all {
                assert_eq!(cache.authority(&map, &ns, ino), map.authority(&ns, ino));
            }
        });
    }
}
