//! Bulk namespace construction helpers shared by workload generators.

use crate::inode::InodeId;
use crate::tree::Namespace;

/// Describes a flat "N directories × M files each" dataset layout, the shape
/// shared by the paper's CNN (ImageNet: 1000 class dirs) and NLP (14 corpus
/// folders) datasets.
#[derive(Clone, Copy, Debug)]
pub struct FlatDataset {
    /// Number of top-level directories.
    pub dirs: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// Uniform file size in bytes.
    pub file_size: u64,
}

/// Result of materialising a [`FlatDataset`]: the dataset root plus, per
/// directory, the directory id and its file ids in creation order.
#[derive(Clone, Debug)]
pub struct BuiltDataset {
    /// Directory under which all class dirs were created.
    pub root: InodeId,
    /// One entry per class dir: (dir id, file ids).
    pub dirs: Vec<(InodeId, Vec<InodeId>)>,
}

impl BuiltDataset {
    /// All file ids in directory-major, creation order — the order a
    /// sequential scan visits them.
    pub fn files_in_scan_order(&self) -> Vec<InodeId> {
        self.dirs
            .iter()
            .flat_map(|(_, files)| files.iter().copied())
            .collect()
    }

    /// Total number of files.
    pub fn file_count(&self) -> usize {
        self.dirs.iter().map(|(_, f)| f.len()).sum()
    }
}

/// Creates `spec.dirs` directories named `d0000..` under a fresh dataset root
/// `name` and fills each with `spec.files_per_dir` files.
pub fn build_flat_dataset(ns: &mut Namespace, name: &str, spec: FlatDataset) -> BuiltDataset {
    let root = ns.mkdir_total(InodeId::ROOT, name);
    let mut dirs = Vec::with_capacity(spec.dirs);
    for d in 0..spec.dirs {
        let dir = ns.mkdir_total(root, &format!("d{d:04}"));
        let mut files = Vec::with_capacity(spec.files_per_dir);
        for f in 0..spec.files_per_dir {
            files.push(ns.create_file_total(dir, &format!("f{f:06}"), spec.file_size));
        }
        dirs.push((dir, files));
    }
    BuiltDataset { root, dirs }
}

/// Creates one private directory per client under `name` (the shape of the
/// Filebench-Zipfian and MDtest workloads, where clients operate on
/// non-shared directories) and pre-populates each with `files_per_client`
/// files of `file_size` bytes.
pub fn build_private_dirs(
    ns: &mut Namespace,
    name: &str,
    clients: usize,
    files_per_client: usize,
    file_size: u64,
) -> BuiltDataset {
    let root = ns.mkdir_total(InodeId::ROOT, name);
    let mut dirs = Vec::with_capacity(clients);
    for c in 0..clients {
        let dir = ns.mkdir_total(root, &format!("client{c:04}"));
        let mut files = Vec::with_capacity(files_per_client);
        for f in 0..files_per_client {
            files.push(ns.create_file_total(dir, &format!("f{f:06}"), file_size));
        }
        dirs.push((dir, files));
    }
    BuiltDataset { root, dirs }
}

/// Builds a depth-`levels` tree where each internal node has `fanout`
/// subdirectories and each leaf directory holds `files_per_leaf` files. Used
/// for the Web-trace namespace, which spreads ~302k files over a deep
/// document tree.
pub fn build_deep_tree(
    ns: &mut Namespace,
    name: &str,
    levels: usize,
    fanout: usize,
    files_per_leaf: usize,
    file_size: u64,
) -> BuiltDataset {
    let root = ns.mkdir_total(InodeId::ROOT, name);
    let mut frontier = vec![root];
    for level in 0..levels {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for (i, dir) in frontier.iter().enumerate() {
            for j in 0..fanout {
                next.push(ns.mkdir_total(*dir, &format!("l{level}_{i}_{j}")));
            }
        }
        frontier = next;
    }
    let mut dirs = Vec::with_capacity(frontier.len());
    for leaf in frontier {
        let mut files = Vec::with_capacity(files_per_leaf);
        for f in 0..files_per_leaf {
            files.push(ns.create_file_total(leaf, &format!("f{f:06}"), file_size));
        }
        dirs.push((leaf, files));
    }
    BuiltDataset { root, dirs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_dataset_shape() {
        let mut ns = Namespace::new();
        let built = build_flat_dataset(
            &mut ns,
            "imagenet",
            FlatDataset {
                dirs: 10,
                files_per_dir: 20,
                file_size: 114_300,
            },
        );
        assert_eq!(built.dirs.len(), 10);
        assert_eq!(built.file_count(), 200);
        assert_eq!(ns.file_count(), 200);
        assert_eq!(ns.dir_count(), 1 + 1 + 10); // root + dataset root + classes
        assert_eq!(built.files_in_scan_order().len(), 200);
        assert!(ns.invariants_hold());
    }

    #[test]
    fn private_dirs_shape() {
        let mut ns = Namespace::new();
        let built = build_private_dirs(&mut ns, "zipf", 4, 100, 2_800);
        assert_eq!(built.dirs.len(), 4);
        assert_eq!(ns.file_count(), 400);
        for (dir, files) in &built.dirs {
            assert_eq!(ns.inode(*dir).children().len(), files.len());
        }
        assert!(ns.invariants_hold());
    }

    #[test]
    fn deep_tree_shape() {
        let mut ns = Namespace::new();
        let built = build_deep_tree(&mut ns, "web", 3, 4, 5, 10_000);
        assert_eq!(built.dirs.len(), 64); // 4^3 leaves
        assert_eq!(built.file_count(), 320);
        // Leaf depth: root(0) -> web(1) -> 3 levels -> 4.
        let (leaf, files) = &built.dirs[0];
        assert_eq!(ns.inode(*leaf).depth(), 4);
        assert_eq!(ns.inode(files[0]).depth(), 5);
        assert!(ns.invariants_hold());
    }
}
