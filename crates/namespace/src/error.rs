//! Typed errors for namespace operations.

use crate::frag::Frag;
use crate::inode::InodeId;

/// Errors raised by [`crate::Namespace`] mutations and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsError {
    /// The referenced inode does not exist in this namespace.
    NoSuchInode(InodeId),
    /// A file was used where a directory is required.
    NotADirectory(InodeId),
    /// A directory was used where a file is required.
    IsADirectory(InodeId),
    /// Attempted to re-parent or delete the root.
    RootIsImmovable,
    /// `rmdir` on a directory that still has children.
    DirectoryNotEmpty(InodeId),
    /// A fragment operation referenced a fragment that is not live in the
    /// directory's current fragment set (stale split/merge request).
    NoSuchFrag {
        /// The directory whose fragment set was addressed.
        dir: InodeId,
        /// The fragment that is no longer (or never was) live.
        frag: Frag,
    },
    /// `rename` would move a directory into its own subtree.
    WouldCreateCycle {
        /// The inode being moved.
        moved: InodeId,
        /// The destination directory (inside `moved`'s subtree).
        into: InodeId,
    },
}

impl std::fmt::Display for NsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NsError::NoSuchInode(id) => write!(f, "no such inode: {id:?}"),
            NsError::NotADirectory(id) => write!(f, "not a directory: {id:?}"),
            NsError::IsADirectory(id) => write!(f, "is a directory: {id:?}"),
            NsError::RootIsImmovable => write!(f, "the root inode cannot be moved or removed"),
            NsError::DirectoryNotEmpty(id) => write!(f, "directory not empty: {id:?}"),
            NsError::NoSuchFrag { dir, frag } => {
                write!(f, "fragment {frag:?} is not live in directory {dir:?}")
            }
            NsError::WouldCreateCycle { moved, into } => {
                write!(f, "moving {moved:?} into {into:?} would create a cycle")
            }
        }
    }
}

impl std::error::Error for NsError {}

/// Convenience alias used throughout the crate.
pub type NsResult<T> = Result<T, NsError>;
