//! Ceph-style directory fragments (`frag_t`).
//!
//! A directory's dentries are hashed into a 24-bit hash space. A [`Frag`]
//! denotes the subset of that space whose top `bits` bits equal `value`.
//! `Frag::root()` covers the whole directory; splitting a frag produces
//! children that partition it exactly. CephFS uses the same representation to
//! let a single huge directory be carved up and spread across MDSs; we need
//! it for the MDtest workload, where every client creates 100k files in one
//! directory and balance is only achievable by fragment splitting.

/// Number of significant bits in the dentry hash space.
pub const HASH_BITS: u8 = 24;

/// Mask covering the whole dentry hash space.
pub const HASH_MASK: u32 = (1 << HASH_BITS) - 1;

/// A fragment of a directory's dentry hash space.
///
/// Invariant: `bits <= HASH_BITS` and `value` has zeros outside its top
/// `bits`-bit prefix (i.e. `value < 2^bits`, stored left-aligned at bit 0 of
/// a `bits`-wide prefix, matching Ceph's `frag_t`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Frag {
    /// Prefix value occupying the low `bits` bits.
    value: u32,
    /// Number of prefix bits that are significant.
    bits: u8,
}

impl Frag {
    /// The root fragment covering the entire hash space of a directory.
    pub const fn root() -> Self {
        Frag { value: 0, bits: 0 }
    }

    /// Builds a fragment from a prefix `value` of `bits` significant bits.
    ///
    /// # Panics
    /// Panics if `bits > HASH_BITS` or `value` does not fit in `bits` bits.
    pub fn new(value: u32, bits: u8) -> Self {
        assert!(bits <= HASH_BITS, "frag bits {bits} exceed hash width");
        assert!(
            bits == HASH_BITS || value < (1u32 << bits),
            "frag value {value:#x} does not fit in {bits} bits"
        );
        Frag { value, bits }
    }

    /// Prefix value (low `self.bits()` bits significant).
    pub const fn value(&self) -> u32 {
        self.value
    }

    /// Number of significant prefix bits. 0 means the whole directory.
    pub const fn bits(&self) -> u8 {
        self.bits
    }

    /// True if this is the root fragment (the undivided directory).
    pub const fn is_root(&self) -> bool {
        self.bits == 0
    }

    /// Fraction of the directory's hash space this fragment covers.
    pub fn coverage(&self) -> f64 {
        // as-ok: bits <= 24, so the shifted value is far below 2^53
        1.0 / (1u64 << self.bits) as f64
    }

    /// True if `hash` (a dentry hash, only the low [`HASH_BITS`] bits are
    /// used) falls inside this fragment.
    pub fn contains_hash(&self, hash: u32) -> bool {
        if self.bits == 0 {
            return true;
        }
        let h = hash & HASH_MASK;
        (h >> (HASH_BITS - self.bits)) == self.value
    }

    /// True if `other` is this fragment or lies strictly inside it.
    pub fn contains_frag(&self, other: &Frag) -> bool {
        if other.bits < self.bits {
            return false;
        }
        (other.value >> (other.bits - self.bits)) == self.value
    }

    /// Splits this fragment into `2^by` equal children, in hash order.
    ///
    /// # Panics
    /// Panics if the split would exceed [`HASH_BITS`] total bits or `by == 0`.
    pub fn split(&self, by: u8) -> Vec<Frag> {
        assert!(by > 0, "split(0) is a no-op; refuse it to catch bugs");
        let nbits = self.bits + by;
        assert!(nbits <= HASH_BITS, "cannot split past hash width");
        (0..(1u32 << by))
            .map(|i| Frag {
                value: (self.value << by) | i,
                bits: nbits,
            })
            .collect()
    }

    /// Splits into exactly two halves. Convenience for the subtree selector's
    /// "divide it into two subtrees" path.
    pub fn split_in_two(&self) -> (Frag, Frag) {
        let kids = self.split(1);
        (kids[0], kids[1])
    }

    /// The parent fragment one level up, or `None` for the root.
    pub fn parent(&self) -> Option<Frag> {
        if self.bits == 0 {
            None
        } else {
            Some(Frag {
                value: self.value >> 1,
                bits: self.bits - 1,
            })
        }
    }

    /// The sibling sharing this fragment's parent, or `None` for the root.
    pub fn sibling(&self) -> Option<Frag> {
        if self.bits == 0 {
            None
        } else {
            Some(Frag {
                value: self.value ^ 1,
                bits: self.bits,
            })
        }
    }

    /// True if the two fragments cover disjoint hash ranges.
    pub fn disjoint(&self, other: &Frag) -> bool {
        !self.contains_frag(other) && !other.contains_frag(self)
    }

    /// First hash value covered by this fragment.
    pub fn range_start(&self) -> u32 {
        if self.bits == 0 {
            0
        } else {
            self.value << (HASH_BITS - self.bits)
        }
    }

    /// One past the last hash value covered by this fragment.
    pub fn range_end(&self) -> u32 {
        if self.bits == 0 {
            HASH_MASK + 1
        } else {
            (self.value + 1) << (HASH_BITS - self.bits)
        }
    }
}

impl Frag {
    /// Writes the fragment to a snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_u32(self.value);
        e.put_u8(self.bits);
    }

    /// Reads a fragment back, rejecting values that violate the `Frag`
    /// invariant (so a corrupted snapshot cannot smuggle in a frag that
    /// [`Frag::new`] would panic on).
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<Frag, lunule_util::codec::CodecError> {
        let value = d.get_u32("frag value")?;
        let bits = d.get_u8("frag bits")?;
        if bits > HASH_BITS || (bits < HASH_BITS && value >= (1u32 << bits)) {
            return Err(lunule_util::codec::CodecError::Invalid { what: "frag" });
        }
        Ok(Frag { value, bits })
    }
}

impl Default for Frag {
    fn default() -> Self {
        Frag::root()
    }
}

impl std::fmt::Debug for Frag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:x}*{}", self.value, self.bits)
    }
}

impl std::fmt::Display for Frag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Hashes a dentry (identified by the child inode's raw id) into the
/// [`HASH_BITS`]-wide dentry hash space.
///
/// A Fibonacci-style multiplicative hash: cheap, deterministic, and spreads
/// consecutive ids uniformly, which is what we need to make frag splitting
/// behave like Ceph's dentry-name hashing on our integer-keyed namespace.
pub fn dentry_hash(raw_id: u64) -> u32 {
    let h = raw_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // as-ok: h >> 40 leaves 24 bits, which fit u32 exactly
    ((h >> 40) as u32) & HASH_MASK
}

/// A set of fragments that must always partition a directory's hash space.
///
/// Directories start with `[Frag::root()]`; splits replace one member by its
/// children; merges do the reverse. The partition invariant is checked in
/// debug builds after every mutation.
#[derive(Clone, Debug, Default)]
pub struct FragSet {
    frags: Vec<Frag>,
}

impl FragSet {
    /// A fresh, undivided directory: the single root fragment.
    pub fn new_root() -> Self {
        FragSet {
            frags: vec![Frag::root()],
        }
    }

    /// The current fragments, in ascending hash order.
    pub fn frags(&self) -> &[Frag] {
        &self.frags
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.frags.len()
    }

    /// True when the directory is undivided.
    pub fn is_empty(&self) -> bool {
        self.frags.is_empty()
    }

    /// The fragment containing `hash`.
    pub fn frag_for_hash(&self, hash: u32) -> Frag {
        self.frags
            .iter()
            .copied()
            .find(|f| f.contains_hash(hash))
            .unwrap_or_else(|| {
                // The partition invariant guarantees a hit; a miss means the
                // set was corrupted. Flag it in debug builds but stay total.
                debug_assert!(false, "FragSet invariant: frags partition the hash space");
                Frag::root()
            })
    }

    /// True if `frag` is currently one of the live fragments.
    pub fn contains(&self, frag: &Frag) -> bool {
        self.frags.contains(frag)
    }

    /// Splits `frag` into `2^by` children and returns them, or `None` when
    /// `frag` is not a live fragment of this set (e.g. it was already split
    /// by a concurrent actor — callers treat that as a stale request).
    pub fn split(&mut self, frag: &Frag, by: u8) -> Option<Vec<Frag>> {
        let idx = self.frags.iter().position(|f| f == frag)?;
        let children = frag.split(by);
        self.frags.splice(idx..=idx, children.iter().copied());
        self.debug_check();
        Some(children)
    }

    /// Merges the children of `parent` back into `parent`.
    ///
    /// Returns `true` if the merge happened (i.e. all children were live).
    pub fn merge(&mut self, parent: &Frag) -> bool {
        let children = parent.split(1);
        if !children.iter().all(|c| self.expandable_into(c)) {
            return false;
        }
        // Remove every live frag under `parent`, then reinsert `parent`.
        self.frags.retain(|f| !parent.contains_frag(f));
        let pos = self
            .frags
            .iter()
            .position(|f| f.range_start() > parent.range_start())
            .unwrap_or(self.frags.len());
        self.frags.insert(pos, *parent);
        self.debug_check();
        true
    }

    /// True if the live frags fully tile `target` (so a merge into `target`
    /// is possible).
    fn expandable_into(&self, target: &Frag) -> bool {
        let covered: u64 = self
            .frags
            .iter()
            .filter(|f| target.contains_frag(f))
            .map(|f| u64::from(f.range_end() - f.range_start()))
            .sum();
        covered == u64::from(target.range_end() - target.range_start())
    }

    fn debug_check(&self) {
        debug_assert!(self.partition_holds(), "FragSet no longer partitions");
    }

    /// Writes the fragment set to a snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_seq(&self.frags, |e, f| f.encode(e));
    }

    /// Reads a fragment set back, rejecting one that no longer partitions
    /// the hash space (corruption surfaced as a typed error, not a
    /// debug-assert later).
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<FragSet, lunule_util::codec::CodecError> {
        let frags = d.get_seq("fragset", Frag::decode)?;
        let set = FragSet { frags };
        if !set.partition_holds() {
            return Err(lunule_util::codec::CodecError::Invalid { what: "fragset" });
        }
        Ok(set)
    }

    /// Checks the partition invariant: fragments are disjoint and cover the
    /// whole hash space. Exposed for tests.
    pub fn partition_holds(&self) -> bool {
        let mut sorted = self.frags.clone();
        sorted.sort_by_key(|f| f.range_start());
        let mut cursor = 0u64;
        for f in &sorted {
            if u64::from(f.range_start()) != cursor {
                return false;
            }
            cursor = u64::from(f.range_end());
        }
        cursor == (u64::from(HASH_MASK) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_covers_everything() {
        let r = Frag::root();
        assert!(r.contains_hash(0));
        assert!(r.contains_hash(HASH_MASK));
        assert_eq!(r.coverage(), 1.0);
        assert!(r.is_root());
    }

    #[test]
    fn split_partitions_parent() {
        let r = Frag::root();
        let kids = r.split(2);
        assert_eq!(kids.len(), 4);
        for h in [0u32, 1, 12345, HASH_MASK, HASH_MASK / 2] {
            let owners: Vec<_> = kids.iter().filter(|k| k.contains_hash(h)).collect();
            assert_eq!(owners.len(), 1, "hash {h} must land in exactly one child");
        }
        for k in &kids {
            assert!(r.contains_frag(k));
            assert!(!k.contains_frag(&r));
        }
    }

    #[test]
    fn parent_sibling_roundtrip() {
        let r = Frag::root();
        let (a, b) = r.split_in_two();
        assert_eq!(a.parent(), Some(r));
        assert_eq!(b.parent(), Some(r));
        assert_eq!(a.sibling(), Some(b));
        assert_eq!(b.sibling(), Some(a));
        assert_eq!(r.parent(), None);
        assert_eq!(r.sibling(), None);
        assert!(a.disjoint(&b));
    }

    #[test]
    fn contains_frag_is_reflexive_and_ordered() {
        let f = Frag::new(0b101, 3);
        assert!(f.contains_frag(&f));
        let deep = Frag::new(0b1011, 4);
        assert!(f.contains_frag(&deep));
        assert!(!deep.contains_frag(&f));
        let other = Frag::new(0b100, 3);
        assert!(f.disjoint(&other));
    }

    #[test]
    fn ranges_are_contiguous() {
        let kids = Frag::root().split(3);
        let mut cursor = 0;
        for k in kids {
            assert_eq!(k.range_start(), cursor);
            cursor = k.range_end();
        }
        assert_eq!(cursor, HASH_MASK + 1);
    }

    #[test]
    #[should_panic]
    fn split_past_width_panics() {
        Frag::new(0, HASH_BITS).split(1);
    }

    #[test]
    #[should_panic]
    fn oversized_value_panics() {
        Frag::new(0b100, 2);
    }

    #[test]
    fn fragset_split_and_lookup() {
        let mut set = FragSet::new_root();
        assert_eq!(set.len(), 1);
        let kids = set.split(&Frag::root(), 1).unwrap();
        assert_eq!(set.len(), 2);
        let h = 5u32;
        let owner = set.frag_for_hash(h);
        assert!(kids.contains(&owner));
        assert!(set.partition_holds());
    }

    #[test]
    fn fragset_merge_restores_root() {
        let mut set = FragSet::new_root();
        set.split(&Frag::root(), 2).unwrap();
        assert_eq!(set.len(), 4);
        // Merge the left half first (needs its two children).
        let (left, _right) = Frag::root().split_in_two();
        assert!(set.merge(&left));
        assert_eq!(set.len(), 3);
        assert!(set.merge(&Frag::root()));
        assert_eq!(set.len(), 1);
        assert!(set.partition_holds());
    }

    #[test]
    fn fragset_merge_refuses_partial() {
        let mut set = FragSet::new_root();
        let kids = set.split(&Frag::root(), 1).unwrap();
        set.split(&kids[0], 1).unwrap();
        // kids[0] now absent; merging root still works because its subtree is
        // fully tiled by grandchildren + kids[1].
        assert!(set.merge(&Frag::root()));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn dentry_hash_spreads() {
        // Consecutive ids should not all land in the same half-space.
        let (a, _b) = Frag::root().split_in_two();
        let in_a = (0..1000u64)
            .filter(|i| a.contains_hash(dentry_hash(*i)))
            .count();
        assert!(in_a > 300 && in_a < 700, "half-space share was {in_a}/1000");
    }
}
