//! Inode identifiers and arena entries.

/// Identifier of an inode inside a [`crate::Namespace`] arena.
///
/// Stored as a `u32` index — large enough for the multi-million-inode
/// namespaces the paper's workloads build, and half the size of a `usize`
/// key, which matters because the balancer keeps per-inode visit state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub(crate) u32);

impl InodeId {
    /// The root directory of every namespace.
    pub const ROOT: InodeId = InodeId(0);

    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw id as `u64`, used for dentry hashing.
    pub fn raw(self) -> u64 {
        self.0 as u64
    }

    /// Rebuilds an id from a raw index. Only meaningful for indices handed
    /// out by the same namespace.
    pub fn from_index(idx: usize) -> Self {
        InodeId(u32::try_from(idx).expect("namespace exceeds u32 inode space"))
    }
}

impl std::fmt::Debug for InodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

impl std::fmt::Display for InodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether an inode is a regular file or a directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file; carries a size used by the data-path model.
    File,
    /// Directory; owns children and a fragment set.
    Dir,
}

/// One arena entry.
///
/// Children are stored as a plain `Vec<InodeId>` in creation order: workload
/// generators address inodes by id (they built the tree), so no per-directory
/// name index is needed on the hot path; names exist for display and
/// debugging only.
#[derive(Clone, Debug)]
pub struct Inode {
    pub(crate) parent: Option<InodeId>,
    pub(crate) name: Box<str>,
    pub(crate) ftype: FileType,
    /// File size in bytes (0 for directories); drives the data-path model.
    pub(crate) size: u64,
    /// Children in creation order; empty for files.
    pub(crate) children: Vec<InodeId>,
    /// Depth from the root (root = 0); cached for cheap path length queries.
    pub(crate) depth: u16,
    /// False once unlinked/removed. Ids are never reused; dead slots stay
    /// in the arena as tombstones so outstanding references fail loudly
    /// instead of aliasing a new inode.
    pub(crate) alive: bool,
}

impl Inode {
    /// Parent directory, `None` only for the root.
    pub fn parent(&self) -> Option<InodeId> {
        self.parent
    }

    /// Final path component.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// File or directory.
    pub fn ftype(&self) -> FileType {
        self.ftype
    }

    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.ftype == FileType::Dir
    }

    /// File size in bytes (0 for directories).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Children in creation order (empty for files).
    pub fn children(&self) -> &[InodeId] {
        &self.children
    }

    /// Depth from the root (root = 0).
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// False once the inode was unlinked/removed.
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_id_roundtrip() {
        let id = InodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(format!("{id:?}"), "ino:42");
    }

    #[test]
    fn root_is_index_zero() {
        assert_eq!(InodeId::ROOT.index(), 0);
    }
}
