//! # lunule-namespace
//!
//! Filesystem namespace substrate for the Lunule reproduction: an in-memory
//! hierarchical namespace (inode arena), Ceph-style directory fragments
//! (`frag_t`), and the cluster-wide subtree partition map that records which
//! MDS rank is authoritative for which dirfrag subtree.
//!
//! The paper's balancers operate entirely in terms of these concepts:
//! subtrees and dirfrags are the units of delegation and migration, and the
//! partition map is what migration mutates. This crate has no knowledge of
//! time, load, or balancing policy — those live in `lunule-core` and
//! `lunule-sim`.
//!
//! ```
//! use lunule_namespace::{Namespace, InodeId, SubtreeMap, MdsRank, FragKey};
//!
//! let mut ns = Namespace::new();
//! let photos = ns.mkdir(InodeId::ROOT, "photos").unwrap();
//! let cat = ns.create_file(photos, "cat.jpg", 4096).unwrap();
//!
//! let mut map = SubtreeMap::new(MdsRank(0));
//! map.set_authority(FragKey::whole(photos), MdsRank(1));
//! assert_eq!(map.authority(&ns, cat), MdsRank(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authcache;
pub mod builder;
pub mod error;
pub mod frag;
pub mod inode;
pub mod shard;
pub mod stats;
pub mod subtree;
pub mod tree;

pub use authcache::AuthorityCache;
pub use builder::{
    build_deep_tree, build_flat_dataset, build_private_dirs, BuiltDataset, FlatDataset,
};
pub use error::{NsError, NsResult};
pub use frag::{dentry_hash, Frag, FragSet, HASH_BITS, HASH_MASK};
pub use inode::{FileType, Inode, InodeId};
pub use shard::ShardPlan;
pub use stats::NamespaceStats;
pub use subtree::{FragKey, MdsRank, SubtreeMap};
pub use tree::{Namespace, SubtreeIter};
