//! Sharding plan over the inode arena.
//!
//! The cohort client engine fans per-tick route resolution out over a
//! worker pool. To keep that fan-out deterministic, work is grouped by the
//! *shard* of the directory anchoring each lookup, where shards are
//! contiguous ranges of stable arena indices. Contiguity matters twice:
//! the shard of an inode is pure index arithmetic (no map lookups on the
//! hot path), and the merge order — shard 0's results, then shard 1's, … —
//! equals arena order, so `--jobs 1` and `--jobs N` produce byte-identical
//! journals.
//!
//! A plan is built for a snapshot of the arena length. Inodes created after
//! the plan was cut land in the last shard; plans are rebuilt at tick
//! granularity so the skew never exceeds one tick's creates.

use crate::inode::InodeId;
use crate::tree::Namespace;

/// A partition of arena indices `0..len` into contiguous shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Arena length the plan was cut for.
    len: usize,
    /// Exclusive upper index bound per shard; `bounds.last() == len`.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Cuts `0..len` into `n_shards` near-equal contiguous ranges. The
    /// first `len % n_shards` shards hold one extra index. A zero shard
    /// count is treated as one; an empty arena yields empty shards.
    pub fn new(len: usize, n_shards: usize) -> ShardPlan {
        let n = n_shards.max(1);
        let base = len / n;
        let rem = len % n;
        let mut bounds = Vec::with_capacity(n);
        let mut at = 0usize;
        for s in 0..n {
            at += base + usize::from(s < rem);
            bounds.push(at);
        }
        debug_assert_eq!(at, len);
        ShardPlan { len, bounds }
    }

    /// Number of shards (always at least one).
    pub fn n_shards(&self) -> usize {
        self.bounds.len()
    }

    /// Arena length the plan was cut for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the plan was cut for an empty arena.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shard holding `ino`. Indices at or past the plan's length —
    /// inodes created after the cut — map to the last shard.
    pub fn shard_of(&self, ino: InodeId) -> usize {
        let idx = ino.index();
        let n = self.bounds.len();
        if self.len == 0 || idx >= self.len {
            return n - 1;
        }
        // Shards differ in size by at most one, so the arithmetic guess is
        // off by at most one position in either direction.
        let base = self.len / n;
        let rem = self.len % n;
        let wide = (base + 1) * rem; // indices covered by the wider shards
        let guess = if idx < wide {
            idx / (base + 1)
        } else {
            // idx >= wide implies base > 0: when base == 0 every index
            // lands in a wide shard (wide == len) and never reaches here.
            rem + (idx - wide) / base
        };
        debug_assert!(idx < self.bounds[guess]);
        debug_assert!(guess == 0 || idx >= self.bounds[guess - 1]);
        guess
    }

    /// The half-open index range `[start, end)` of one shard.
    ///
    /// # Panics
    /// Panics when `shard` is out of range.
    pub fn range(&self, shard: usize) -> (usize, usize) {
        let end = self.bounds[shard];
        let start = if shard == 0 {
            0
        } else {
            self.bounds[shard - 1]
        };
        (start, end)
    }

    /// All shard ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.bounds.len()).map(|s| self.range(s))
    }

    /// Verifies the plan is an exact partition of the arena: ranges are
    /// non-overlapping, in order, and jointly cover `0..ns.len()` (allowing
    /// the arena to have grown past the cut — the tail belongs to the last
    /// shard by [`ShardPlan::shard_of`]'s clamp).
    pub fn covers(&self, ns: &Namespace) -> bool {
        let mut at = 0usize;
        for (start, end) in self.ranges() {
            if start != at || end < start {
                return false;
            }
            at = end;
        }
        at == self.len && self.len <= ns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_is_exact() {
        let p = ShardPlan::new(12, 4);
        assert_eq!(p.n_shards(), 4);
        let ranges: Vec<_> = p.ranges().collect();
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 9), (9, 12)]);
    }

    #[test]
    fn remainder_goes_to_leading_shards() {
        let p = ShardPlan::new(10, 4);
        let ranges: Vec<_> = p.ranges().collect();
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
    }

    #[test]
    fn shard_of_matches_ranges_exhaustively() {
        for len in [0usize, 1, 2, 7, 10, 63, 64, 65, 1000] {
            for n in [1usize, 2, 3, 4, 7, 8, 16, 100] {
                let p = ShardPlan::new(len, n);
                for idx in 0..len {
                    let s = p.shard_of(InodeId::from_index(idx));
                    let (start, end) = p.range(s);
                    assert!(
                        start <= idx && idx < end,
                        "len={len} n={n} idx={idx} shard={s} range=({start},{end})"
                    );
                }
                // Past-the-cut indices clamp to the last shard.
                let s = p.shard_of(InodeId::from_index(len + 5));
                assert_eq!(s, p.n_shards() - 1);
            }
        }
    }

    #[test]
    fn more_shards_than_indices() {
        let p = ShardPlan::new(3, 8);
        assert_eq!(p.n_shards(), 8);
        let total: usize = p.ranges().map(|(s, e)| e - s).sum();
        assert_eq!(total, 3);
        assert_eq!(p.shard_of(InodeId::from_index(0)), 0);
        assert_eq!(p.shard_of(InodeId::from_index(2)), 2);
    }

    #[test]
    fn covers_tracks_arena_growth() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let p = ShardPlan::new(ns.len(), 2);
        assert!(p.covers(&ns));
        // Arena grows past the cut: still covered (tail → last shard).
        ns.create_file(d, "f", 0).unwrap();
        assert!(p.covers(&ns));
        // A plan cut for a longer arena than exists is not a cover.
        let q = ShardPlan::new(ns.len() + 3, 2);
        assert!(!q.covers(&ns));
    }

    #[test]
    fn zero_shards_is_one_shard() {
        let p = ShardPlan::new(5, 0);
        assert_eq!(p.n_shards(), 1);
        assert_eq!(p.range(0), (0, 5));
    }
}
