//! Namespace shape statistics: the structural facts (depths, fan-outs,
//! directory populations) that determine how well a namespace can be
//! partitioned, reported by the experiment harness next to each workload.

use crate::inode::InodeId;
use crate::tree::Namespace;
use lunule_util::convert::{u64_to_f64, usize_to_f64, usize_to_u64};

/// Structural summary of a namespace.
#[derive(Clone, Debug, PartialEq)]
pub struct NamespaceStats {
    /// Live files.
    pub files: usize,
    /// Live directories (including the root).
    pub dirs: usize,
    /// Deepest live inode's depth (root = 0).
    pub max_depth: u16,
    /// Mean depth over live files.
    pub mean_file_depth: f64,
    /// Largest directory's direct-children count.
    pub max_fanout: usize,
    /// Mean direct-children count over live directories.
    pub mean_fanout: f64,
    /// Number of directories holding at least one live file.
    pub leaf_dirs: usize,
    /// Total bytes across live files.
    pub total_bytes: u64,
}

impl NamespaceStats {
    /// Computes the summary in one pass over the arena.
    pub fn of(ns: &Namespace) -> Self {
        let mut files = 0usize;
        let mut dirs = 0usize;
        let mut max_depth = 0u16;
        let mut file_depth_sum = 0u64;
        let mut max_fanout = 0usize;
        let mut fanout_sum = 0u64;
        let mut leaf_dirs = 0usize;
        let mut total_bytes = 0u64;
        for idx in 0..ns.len() {
            let ino = ns.inode(InodeId::from_index(idx));
            if !ino.is_alive() {
                continue;
            }
            max_depth = max_depth.max(ino.depth());
            if ino.is_dir() {
                dirs += 1;
                let fanout = ino.children().len();
                max_fanout = max_fanout.max(fanout);
                fanout_sum += usize_to_u64(fanout);
                if ino.children().iter().any(|c| !ns.inode(*c).is_dir()) {
                    leaf_dirs += 1;
                }
            } else {
                files += 1;
                file_depth_sum += u64::from(ino.depth());
                total_bytes += ino.size();
            }
        }
        NamespaceStats {
            files,
            dirs,
            max_depth,
            mean_file_depth: if files == 0 {
                0.0
            } else {
                u64_to_f64(file_depth_sum) / usize_to_f64(files)
            },
            max_fanout,
            mean_fanout: if dirs == 0 {
                0.0
            } else {
                u64_to_f64(fanout_sum) / usize_to_f64(dirs)
            },
            leaf_dirs,
            total_bytes,
        }
    }
}

impl std::fmt::Display for NamespaceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} files / {} dirs, depth ≤ {}, fan-out ≤ {} (mean {:.1}), {:.1} MB",
            self.files,
            self.dirs,
            self.max_depth,
            self.max_fanout,
            self.mean_fanout,
            u64_to_f64(self.total_bytes) / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_a_small_tree() {
        let mut ns = Namespace::new();
        let a = ns.mkdir(InodeId::ROOT, "a").unwrap();
        let b = ns.mkdir(a, "b").unwrap();
        ns.create_file(b, "f1", 100).unwrap();
        ns.create_file(b, "f2", 200).unwrap();
        ns.create_file(InodeId::ROOT, "top", 50).unwrap();
        let s = NamespaceStats::of(&ns);
        assert_eq!(s.files, 3);
        assert_eq!(s.dirs, 3);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.leaf_dirs, 2); // b and the root hold files
        assert_eq!(s.total_bytes, 350);
        assert!((s.mean_file_depth - (3.0 + 3.0 + 1.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn skips_tombstones() {
        let mut ns = Namespace::new();
        let a = ns.mkdir(InodeId::ROOT, "a").unwrap();
        let f = ns.create_file(a, "f", 10).unwrap();
        ns.unlink(f).unwrap();
        let s = NamespaceStats::of(&ns);
        assert_eq!(s.files, 0);
        assert_eq!(s.total_bytes, 0);
        assert_eq!(s.leaf_dirs, 0);
    }

    #[test]
    fn empty_namespace() {
        let s = NamespaceStats::of(&Namespace::new());
        assert_eq!(s.files, 0);
        assert_eq!(s.dirs, 1);
        assert_eq!(s.mean_file_depth, 0.0);
        let rendered = s.to_string();
        assert!(rendered.contains("0 files"));
    }
}
