//! The subtree partition map: which MDS is authoritative for which dirfrag.
//!
//! CephFS's dynamic subtree partitioning delegates *dirfrag subtrees* to MDS
//! ranks: an authority entry on `(dir, frag)` means "the children of `dir`
//! whose dentry hash lies in `frag`, and everything below them, are served by
//! rank `r` — except where a deeper entry overrides". The directory inode
//! itself stays with the parent subtree. [`SubtreeMap`] implements exactly
//! that resolution, plus the bookkeeping the simulator and balancers need:
//! per-rank subtree-root enumeration, per-rank inode counts, and
//! authority-boundary (forward) counting along metadata paths.

use crate::frag::{dentry_hash, Frag};
use crate::inode::InodeId;
use crate::tree::Namespace;
use std::collections::BTreeMap;

/// Rank (index) of a metadata server in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MdsRank(pub u16);

impl MdsRank {
    /// Raw index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Rank from a cluster-slot index. Saturates at `u16::MAX` — real
    /// clusters are at most hundreds of ranks, so the cap is unreachable
    /// and keeps the constructor total.
    pub fn from_index(i: usize) -> MdsRank {
        MdsRank(u16::try_from(i).unwrap_or(u16::MAX))
    }
}

impl std::fmt::Debug for MdsRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mds.{}", self.0)
    }
}

impl std::fmt::Display for MdsRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a dirfrag subtree root: directory inode + fragment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FragKey {
    /// The directory whose children (in `frag`) this subtree covers.
    pub dir: InodeId,
    /// The covered fragment of the directory's dentry hash space.
    pub frag: Frag,
}

impl FragKey {
    /// Subtree covering the whole (undivided) directory `dir`.
    pub fn whole(dir: InodeId) -> Self {
        FragKey {
            dir,
            frag: Frag::root(),
        }
    }
}

/// The cluster-wide authority table.
///
/// Changes are tracked by a monotonically increasing `generation`, which the
/// simulator's client caches use for invalidation.
#[derive(Clone, Debug)]
pub struct SubtreeMap {
    /// Authority entries grouped by directory. Each directory may carry
    /// entries for several (possibly nested) fragments; resolution picks the
    /// deepest (most-bits) fragment containing the child's dentry hash.
    entries: BTreeMap<InodeId, Vec<(Frag, MdsRank)>>,
    /// Authority for the root directory inode `/` and the fallback for any
    /// path with no matching entry.
    root_rank: MdsRank,
    generation: u64,
}

impl SubtreeMap {
    /// A map where every inode is served by `root_rank` (the initial CephFS
    /// state: the whole namespace is one subtree on mds.0).
    pub fn new(root_rank: MdsRank) -> Self {
        SubtreeMap {
            entries: BTreeMap::new(),
            root_rank,
            generation: 0,
        }
    }

    /// Monotonic change counter; bumps on every authority mutation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The rank serving `/` and everything not covered by an entry.
    pub fn root_rank(&self) -> MdsRank {
        self.root_rank
    }

    /// Re-points the root default at `rank`. Unlike explicit entries the
    /// default cannot be shadowed for the root inode itself, so crash
    /// failover must rewrite it when the dead rank held `/` — otherwise
    /// the crashed rank would keep authority over the root forever.
    /// Callers should [`SubtreeMap::simplify`] afterwards: entries that
    /// matched the old default become load-bearing, ones matching the new
    /// default become redundant.
    pub fn set_root_rank(&mut self, rank: MdsRank) {
        if self.root_rank != rank {
            self.root_rank = rank;
            self.generation += 1;
        }
    }

    /// Number of explicit authority entries (subtree roots besides `/`).
    pub fn entry_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Assigns subtree `(dir, frag)` to `rank`.
    ///
    /// If an entry for exactly this fragment exists it is replaced; nested
    /// entries (deeper fragments or deeper directories) are left alone, so
    /// previously delegated sub-subtrees keep their authority — matching
    /// CephFS, where migrating a subtree does not recall its nested bounds.
    pub fn set_authority(&mut self, key: FragKey, rank: MdsRank) {
        let dir_entries = self.entries.entry(key.dir).or_default();
        match dir_entries.iter_mut().find(|(f, _)| *f == key.frag) {
            Some(slot) => slot.1 = rank,
            None => dir_entries.push((key.frag, rank)),
        }
        self.generation += 1;
    }

    /// Removes the entry for exactly `(dir, frag)` if present, letting the
    /// region fall back to the enclosing subtree's authority.
    pub fn clear_authority(&mut self, key: FragKey) -> bool {
        let Some(dir_entries) = self.entries.get_mut(&key.dir) else {
            return false;
        };
        let before = dir_entries.len();
        dir_entries.retain(|(f, _)| *f != key.frag);
        let removed = dir_entries.len() != before;
        if dir_entries.is_empty() {
            self.entries.remove(&key.dir);
        }
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// Authority of the child of `dir` whose dentry hash is `hash`, assuming
    /// `dir` itself is served by `dir_auth`. Shared with
    /// [`crate::AuthorityCache`], whose memo replays exactly this recurrence.
    pub(crate) fn child_authority(&self, dir: InodeId, hash: u32, dir_auth: MdsRank) -> MdsRank {
        match self.entries.get(&dir) {
            None => dir_auth,
            Some(dir_entries) => dir_entries
                .iter()
                .filter(|(f, _)| f.contains_hash(hash))
                .max_by_key(|(f, _)| f.bits())
                .map(|(_, r)| *r)
                .unwrap_or(dir_auth),
        }
    }

    /// The MDS rank authoritative for inode `ino`.
    ///
    /// Walks parent links recursively instead of materialising the
    /// root-to-`ino` path: this runs once per metadata op on the client
    /// cache-hit path, and the `path_chain` Vec it used to allocate per
    /// call dominated the resolve cost. Recursion depth equals namespace
    /// depth (tens of frames at most).
    pub fn authority(&self, ns: &Namespace, ino: InodeId) -> MdsRank {
        match ns.inode(ino).parent() {
            None => self.root_rank,
            Some(dir) => {
                let dir_auth = self.authority(ns, dir);
                self.child_authority(dir, dentry_hash(ino.raw()), dir_auth)
            }
        }
    }

    /// Authority of every inode along the path from `/` to `ino`, inclusive.
    pub fn authority_chain(&self, ns: &Namespace, ino: InodeId) -> Vec<MdsRank> {
        let chain = ns.path_chain(ino);
        let mut out = Vec::with_capacity(chain.len());
        let mut auth = self.root_rank;
        out.push(auth);
        for pair in chain.windows(2) {
            let (dir, child) = (pair[0], pair[1]);
            auth = self.child_authority(dir, dentry_hash(child.raw()), auth);
            out.push(auth);
        }
        out
    }

    /// Number of authority-boundary crossings a full path traversal from `/`
    /// to `ino` encounters. Each crossing corresponds to a request forward
    /// between MDSs (the metric in Fig. 14's Dir-Hash comparison).
    pub fn forwards_on_path(&self, ns: &Namespace, ino: InodeId) -> u32 {
        let auths = self.authority_chain(ns, ino);
        let crossings = auths.windows(2).filter(|w| w[0] != w[1]).count();
        u32::try_from(crossings).unwrap_or(u32::MAX)
    }

    /// Rank of the entry keyed on exactly `(dir, frag)`, if any.
    pub fn explicit_entry_rank(&self, dir: InodeId, frag: &Frag) -> Option<MdsRank> {
        self.entries
            .get(&dir)?
            .iter()
            .find(|(f, _)| f == frag)
            .map(|(_, r)| *r)
    }

    /// Rank of the deepest entry on `dir` whose fragment covers `frag`
    /// entirely, if any.
    pub fn covering_entry_rank(&self, dir: InodeId, frag: &Frag) -> Option<MdsRank> {
        self.entries
            .get(&dir)?
            .iter()
            .filter(|(f, _)| f.contains_frag(frag))
            .max_by_key(|(f, _)| f.bits())
            .map(|(_, r)| *r)
    }

    /// The rank serving the children of `dir` that fall inside `frag`:
    /// the covering entry if one exists, otherwise the authority the
    /// directory inode itself resolves to. This is the authority of the
    /// dirfrag subtree `(dir, frag)` as a migration unit.
    pub fn frag_authority(&self, ns: &Namespace, dir: InodeId, frag: &Frag) -> MdsRank {
        self.covering_entry_rank(dir, frag)
            .unwrap_or_else(|| self.authority(ns, dir))
    }

    /// All explicit subtree roots currently assigned to `rank`.
    pub fn subtree_roots_of(&self, rank: MdsRank) -> Vec<FragKey> {
        let mut out: Vec<FragKey> = self
            .entries
            .iter()
            .flat_map(|(dir, v)| {
                v.iter()
                    .filter(move |(_, r)| *r == rank)
                    .map(move |(f, _)| FragKey {
                        dir: *dir,
                        frag: *f,
                    })
            })
            .collect();
        out.sort_by_key(|k| (k.dir, k.frag));
        out
    }

    /// All explicit subtree roots with their ranks.
    pub fn all_entries(&self) -> Vec<(FragKey, MdsRank)> {
        let mut out: Vec<(FragKey, MdsRank)> = self
            .entries
            .iter()
            .flat_map(|(dir, v)| {
                v.iter().map(move |(f, r)| {
                    (
                        FragKey {
                            dir: *dir,
                            frag: *f,
                        },
                        *r,
                    )
                })
            })
            .collect();
        out.sort_by_key(|(k, _)| (k.dir, k.frag));
        out
    }

    /// Counts how many inodes each of the first `n_mds` ranks is
    /// authoritative for. O(total inodes × depth); used for reporting
    /// (Fig 14a), not on the simulation hot path.
    pub fn inode_counts(&self, ns: &Namespace, n_mds: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_mds];
        for idx in 0..ns.len() {
            let ino = InodeId::from_index(idx);
            if !ns.inode(ino).is_alive() {
                continue;
            }
            let rank = self.authority(ns, ino);
            if rank.index() < n_mds {
                counts[rank.index()] += 1;
            }
        }
        counts
    }

    /// Removes redundant authority entries: an entry whose rank equals the
    /// rank its region would inherit anyway contributes nothing but path
    /// fragmentation (extra boundary crossings on traversals). CephFS's
    /// subtree map performs the same coalescing when bounds collapse.
    /// Returns the number of entries removed.
    pub fn simplify(&mut self, ns: &Namespace) -> usize {
        let mut removed_total = 0;
        loop {
            let mut removed = 0;
            for (key, rank) in self.all_entries() {
                let inherited = self
                    .entries
                    .get(&key.dir)
                    .and_then(|v| {
                        v.iter()
                            .filter(|(f, _)| *f != key.frag && f.contains_frag(&key.frag))
                            .max_by_key(|(f, _)| f.bits())
                            .map(|(_, r)| *r)
                    })
                    .unwrap_or_else(|| self.authority(ns, key.dir));
                if inherited == rank {
                    self.clear_authority(key);
                    removed += 1;
                }
            }
            removed_total += removed;
            if removed == 0 {
                return removed_total;
            }
        }
    }

    /// Inserts a raw `(frag, rank)` entry for `key.dir` bypassing the
    /// dedup/replace logic of [`SubtreeMap::set_authority`] and without
    /// bumping the generation. Exists only so `lunule-verify` tests can
    /// fabricate corrupted maps; never called by the simulator.
    #[doc(hidden)]
    pub fn fault_inject_entry(&mut self, key: FragKey, rank: MdsRank) {
        self.entries
            .entry(key.dir)
            .or_default()
            .push((key.frag, rank));
    }

    /// Overwrites the generation counter — including backwards, which the
    /// public API can never do. Fault injection for `lunule-verify` tests.
    #[doc(hidden)]
    pub fn fault_set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Writes the authority table — including the exact generation
    /// counter, which client caches key their invalidation on — to a
    /// snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        let dirs: Vec<(&InodeId, &Vec<(Frag, MdsRank)>)> = self.entries.iter().collect();
        e.put_seq(&dirs, |e, (dir, v)| {
            e.put_u64(dir.raw());
            e.put_seq(v, |e, (f, r)| {
                f.encode(e);
                e.put_u16(r.0);
            });
        });
        e.put_u16(self.root_rank.0);
        e.put_u64(self.generation);
    }

    /// Reads an authority table back, rejecting duplicate per-directory
    /// fragments as corruption.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<SubtreeMap, lunule_util::codec::CodecError> {
        use lunule_util::codec::CodecError;
        let dirs = d.get_seq("subtree entries", |d| {
            let raw = d.get_u64("subtree dir id")?;
            let dir = u32::try_from(raw)
                .map(InodeId)
                .map_err(|_| CodecError::Invalid {
                    what: "subtree dir id",
                })?;
            let v = d.get_seq("dir entries", |d| {
                let f = Frag::decode(d)?;
                let r = MdsRank(d.get_u16("entry rank")?);
                Ok((f, r))
            })?;
            Ok((dir, v))
        })?;
        let root_rank = MdsRank(d.get_u16("root rank")?);
        let generation = d.get_u64("subtree generation")?;
        let mut entries = BTreeMap::new();
        for (dir, v) in dirs {
            if v.is_empty() || entries.insert(dir, v).is_some() {
                return Err(CodecError::Invalid {
                    what: "subtree map",
                });
            }
        }
        let map = SubtreeMap {
            entries,
            root_rank,
            generation,
        };
        if !map.invariants_hold() {
            return Err(CodecError::Invalid {
                what: "subtree map",
            });
        }
        Ok(map)
    }

    /// Checks that every explicit entry's fragment value is well-formed and
    /// that per-directory entries never duplicate a fragment. Exposed for
    /// property tests.
    pub fn invariants_hold(&self) -> bool {
        for dir_entries in self.entries.values() {
            for (i, (f, _)) in dir_entries.iter().enumerate() {
                for (g, _) in &dir_entries[i + 1..] {
                    if f == g {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Namespace, InodeId, InodeId, InodeId, InodeId) {
        // /           (mds.0)
        //   a/        -> delegated to mds.1
        //     a1/     -> nested delegation to mds.2
        //       f
        //   b/        (stays mds.0)
        let mut ns = Namespace::new();
        let a = ns.mkdir(InodeId::ROOT, "a").unwrap();
        let a1 = ns.mkdir(a, "a1").unwrap();
        let f = ns.create_file(a1, "f", 10).unwrap();
        let b = ns.mkdir(InodeId::ROOT, "b").unwrap();
        (ns, a, a1, f, b)
    }

    #[test]
    fn default_everything_on_root_rank() {
        let (ns, a, _, f, _) = fixture();
        let map = SubtreeMap::new(MdsRank(0));
        assert_eq!(map.authority(&ns, InodeId::ROOT), MdsRank(0));
        assert_eq!(map.authority(&ns, a), MdsRank(0));
        assert_eq!(map.authority(&ns, f), MdsRank(0));
        assert_eq!(map.forwards_on_path(&ns, f), 0);
    }

    #[test]
    fn set_root_rank_rewrites_default() {
        let (ns, a, _, f, b) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a), MdsRank(1));
        let gen = map.generation();
        map.set_root_rank(MdsRank(2));
        assert!(map.generation() > gen, "rewrite must bump the generation");
        // Everything outside the explicit entry follows the new default —
        // including the root inode itself, which no entry can shadow.
        assert_eq!(map.authority(&ns, InodeId::ROOT), MdsRank(2));
        assert_eq!(map.authority(&ns, b), MdsRank(2));
        assert_eq!(map.authority(&ns, f), MdsRank(1), "entry survives");
        // Re-pointing at the same rank is a no-op.
        let gen = map.generation();
        map.set_root_rank(MdsRank(2));
        assert_eq!(map.generation(), gen);
    }

    #[test]
    fn delegation_and_nesting() {
        let (ns, a, a1, f, b) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        // Delegate subtree rooted at dir `a` (i.e. the dirfrag (a, root)).
        map.set_authority(FragKey::whole(a), MdsRank(1));
        // `a` dir inode itself stays on the parent subtree's authority path:
        // the entry is keyed on `a`, so it affects a's children, not `a`.
        assert_eq!(map.authority(&ns, a), MdsRank(0));
        assert_eq!(map.authority(&ns, a1), MdsRank(1));
        assert_eq!(map.authority(&ns, f), MdsRank(1));
        assert_eq!(map.authority(&ns, b), MdsRank(0));
        // Nested delegation overrides below its bound.
        map.set_authority(FragKey::whole(a1), MdsRank(2));
        assert_eq!(map.authority(&ns, a1), MdsRank(1));
        assert_eq!(map.authority(&ns, f), MdsRank(2));
        // Path /a/a1/f crosses 0->1 (at a1) and 1->2 (at f): two forwards.
        assert_eq!(map.forwards_on_path(&ns, f), 2);
    }

    #[test]
    fn clear_falls_back_to_enclosing() {
        let (ns, a, _, f, _) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a), MdsRank(1));
        assert_eq!(map.authority(&ns, f), MdsRank(1));
        assert!(map.clear_authority(FragKey::whole(a)));
        assert_eq!(map.authority(&ns, f), MdsRank(0));
        assert!(!map.clear_authority(FragKey::whole(a)));
    }

    #[test]
    fn frag_level_delegation_splits_children() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "big").unwrap();
        let kids: Vec<_> = (0..200)
            .map(|i| ns.create_file(d, &format!("f{i}"), 0).unwrap())
            .collect();
        ns.split_frag(d, &Frag::root(), 1).unwrap();
        let (left, right) = Frag::root().split_in_two();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey { dir: d, frag: left }, MdsRank(1));
        let mut on1 = 0;
        for k in &kids {
            let auth = map.authority(&ns, *k);
            let frag = ns.frag_of_child(d, *k);
            if frag == left {
                assert_eq!(auth, MdsRank(1));
                on1 += 1;
            } else {
                assert_eq!(frag, right);
                assert_eq!(auth, MdsRank(0));
            }
        }
        assert!(on1 > 0 && on1 < 200);
    }

    #[test]
    fn deeper_frag_wins() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "big").unwrap();
        let kids: Vec<_> = (0..64)
            .map(|i| ns.create_file(d, &format!("f{i}"), 0).unwrap())
            .collect();
        let (left, _) = Frag::root().split_in_two();
        let (ll, _) = left.split_in_two();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey { dir: d, frag: left }, MdsRank(1));
        map.set_authority(FragKey { dir: d, frag: ll }, MdsRank(2));
        for k in kids {
            let h = ns.dentry_hash_of(k);
            let expect = if ll.contains_hash(h) {
                MdsRank(2)
            } else if left.contains_hash(h) {
                MdsRank(1)
            } else {
                MdsRank(0)
            };
            assert_eq!(map.authority(&ns, k), expect);
        }
    }

    #[test]
    fn generation_bumps_on_change() {
        let (_, a, _, _, _) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        let g0 = map.generation();
        map.set_authority(FragKey::whole(a), MdsRank(1));
        assert!(map.generation() > g0);
        let g1 = map.generation();
        map.clear_authority(FragKey::whole(a));
        assert!(map.generation() > g1);
    }

    #[test]
    fn subtree_roots_of_reports_assignments() {
        let (_, a, a1, _, b) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a), MdsRank(1));
        map.set_authority(FragKey::whole(a1), MdsRank(1));
        map.set_authority(FragKey::whole(b), MdsRank(2));
        assert_eq!(map.subtree_roots_of(MdsRank(1)).len(), 2);
        assert_eq!(map.subtree_roots_of(MdsRank(2)), vec![FragKey::whole(b)]);
        assert_eq!(map.entry_count(), 3);
        assert!(map.invariants_hold());
    }

    #[test]
    fn simplify_removes_redundant_entries() {
        let (ns, a, a1, f, b) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        // Redundant: same rank as the fallback.
        map.set_authority(FragKey::whole(b), MdsRank(0));
        // Meaningful chain: a -> rank 1, nested a1 -> rank 1 (redundant),
        // because a1 inherits rank 1 through a's entry.
        map.set_authority(FragKey::whole(a), MdsRank(1));
        map.set_authority(FragKey::whole(a1), MdsRank(1));
        let before_f = map.authority(&ns, f);
        let removed = map.simplify(&ns);
        assert_eq!(removed, 2, "both redundant entries go");
        assert_eq!(map.entry_count(), 1);
        assert_eq!(map.authority(&ns, f), before_f);
        assert_eq!(map.authority(&ns, a1), MdsRank(1));
    }

    #[test]
    fn simplify_keeps_meaningful_nesting() {
        let (ns, a, a1, f, _) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a), MdsRank(1));
        map.set_authority(FragKey::whole(a1), MdsRank(2));
        assert_eq!(map.simplify(&ns), 0);
        assert_eq!(map.authority(&ns, f), MdsRank(2));
    }

    #[test]
    fn codec_round_trip_preserves_generation() {
        let (ns, a, a1, f, _) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a), MdsRank(1));
        map.set_authority(FragKey::whole(a1), MdsRank(2));
        map.set_root_rank(MdsRank(3));
        let mut e = lunule_util::codec::Encoder::new();
        map.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = lunule_util::codec::Decoder::new(&bytes);
        let back = SubtreeMap::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.generation(), map.generation());
        assert_eq!(back.root_rank(), MdsRank(3));
        assert_eq!(back.all_entries(), map.all_entries());
        assert_eq!(back.authority(&ns, f), map.authority(&ns, f));
        let mut e2 = lunule_util::codec::Encoder::new();
        back.encode(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn inode_counts_sum_to_namespace() {
        let (ns, a, _, _, _) = fixture();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a), MdsRank(1));
        let counts = map.inode_counts(&ns, 3);
        assert_eq!(counts.iter().sum::<usize>(), ns.len());
        assert_eq!(counts[1], 2); // a1 and f
    }
}
