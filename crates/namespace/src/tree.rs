//! The namespace arena: a hierarchical tree of directories and files.

use crate::error::{NsError, NsResult};
use crate::frag::{dentry_hash, Frag, FragSet};
use crate::inode::{FileType, Inode, InodeId};
use std::collections::BTreeMap;

/// An in-memory hierarchical filesystem namespace.
///
/// This is the substrate the CephFS MDS cluster manages: every balancer
/// decision (subtree selection, frag splitting, migration accounting) is a
/// query or mutation against this structure. Inodes live in an arena indexed
/// by [`InodeId`]; directories additionally own a [`FragSet`] once they have
/// been fragmented.
#[derive(Clone, Debug)]
pub struct Namespace {
    arena: Vec<Inode>,
    /// Fragment sets for fragmented directories only; an absent entry means
    /// the directory is undivided (implicit `[Frag::root()]`).
    frags: BTreeMap<InodeId, FragSet>,
    n_files: usize,
    n_dirs: usize,
}

impl Namespace {
    /// Creates a namespace containing only the root directory `/`.
    pub fn new() -> Self {
        Namespace {
            arena: vec![Inode {
                parent: None,
                name: "/".into(),
                ftype: FileType::Dir,
                size: 0,
                children: Vec::new(),
                depth: 0,
                alive: true,
            }],
            frags: BTreeMap::new(),
            n_files: 0,
            n_dirs: 1,
        }
    }

    /// Total number of inodes (files + directories, including the root).
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True only for a namespace that somehow lost its root (never happens);
    /// present to satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Number of regular files.
    pub fn file_count(&self) -> usize {
        self.n_files
    }

    /// Number of directories (including the root).
    pub fn dir_count(&self) -> usize {
        self.n_dirs
    }

    /// Borrow an inode entry.
    pub fn inode(&self, id: InodeId) -> &Inode {
        &self.arena[id.index()]
    }

    /// Checked inode lookup.
    pub fn get(&self, id: InodeId) -> NsResult<&Inode> {
        self.arena.get(id.index()).ok_or(NsError::NoSuchInode(id))
    }

    /// Creates a subdirectory of `parent` and returns its id.
    pub fn mkdir(&mut self, parent: InodeId, name: &str) -> NsResult<InodeId> {
        self.insert(parent, name, FileType::Dir, 0)
    }

    /// Creates a regular file under `parent` and returns its id.
    pub fn create_file(&mut self, parent: InodeId, name: &str, size: u64) -> NsResult<InodeId> {
        self.insert(parent, name, FileType::File, size)
    }

    /// Total [`Namespace::mkdir`] for generated datasets, whose parents are
    /// directories by construction. A non-directory parent is a builder
    /// bug: debug builds abort on it, release builds return `parent`
    /// unchanged so dataset construction stays total (the same caller-bug
    /// idiom as the simulator's `consume_op`).
    pub fn mkdir_total(&mut self, parent: InodeId, name: &str) -> InodeId {
        match self.mkdir(parent, name) {
            Ok(id) => id,
            Err(e) => {
                debug_assert!(false, "mkdir under a generated parent failed: {e}");
                parent
            }
        }
    }

    /// Total [`Namespace::create_file`]; see [`Namespace::mkdir_total`].
    pub fn create_file_total(&mut self, parent: InodeId, name: &str, size: u64) -> InodeId {
        match self.create_file(parent, name, size) {
            Ok(id) => id,
            Err(e) => {
                debug_assert!(false, "create_file under a generated parent failed: {e}");
                parent
            }
        }
    }

    fn insert(
        &mut self,
        parent: InodeId,
        name: &str,
        ftype: FileType,
        size: u64,
    ) -> NsResult<InodeId> {
        let pdepth = {
            let p = self.get(parent)?;
            if !p.is_dir() {
                return Err(NsError::NotADirectory(parent));
            }
            p.depth
        };
        let id = InodeId::from_index(self.arena.len());
        self.arena.push(Inode {
            parent: Some(parent),
            name: name.into(),
            ftype,
            size,
            children: Vec::new(),
            depth: pdepth + 1,
            alive: true,
        });
        self.arena[parent.index()].children.push(id);
        match ftype {
            FileType::File => self.n_files += 1,
            FileType::Dir => self.n_dirs += 1,
        }
        Ok(id)
    }

    /// Unlinks a regular file: detaches it from its parent and tombstones
    /// the arena slot (ids are never reused).
    pub fn unlink(&mut self, id: InodeId) -> NsResult<()> {
        let ino = self.get(id)?;
        if !ino.alive {
            return Err(NsError::NoSuchInode(id));
        }
        if ino.is_dir() {
            return Err(NsError::IsADirectory(id));
        }
        // A parentless inode can only be the root, which is a directory and
        // was rejected above; route the impossible case as a typed error.
        let parent = ino.parent.ok_or(NsError::RootIsImmovable)?;
        self.arena[parent.index()].children.retain(|c| *c != id);
        self.arena[id.index()].alive = false;
        self.n_files -= 1;
        Ok(())
    }

    /// Removes an *empty* directory. The root cannot be removed.
    pub fn rmdir(&mut self, id: InodeId) -> NsResult<()> {
        if id == InodeId::ROOT {
            return Err(NsError::RootIsImmovable);
        }
        let ino = self.get(id)?;
        if !ino.alive {
            return Err(NsError::NoSuchInode(id));
        }
        if !ino.is_dir() {
            return Err(NsError::NotADirectory(id));
        }
        if !ino.children.is_empty() {
            return Err(NsError::DirectoryNotEmpty(id));
        }
        let parent = ino.parent.ok_or(NsError::RootIsImmovable)?;
        self.arena[parent.index()].children.retain(|c| *c != id);
        self.arena[id.index()].alive = false;
        self.frags.remove(&id);
        self.n_dirs -= 1;
        Ok(())
    }

    /// Moves `id` (file or directory subtree) under `new_parent` with a new
    /// name. Rejects moving the root and moving a directory into its own
    /// subtree. Depths of the moved subtree are recomputed.
    pub fn rename(&mut self, id: InodeId, new_parent: InodeId, new_name: &str) -> NsResult<()> {
        if id == InodeId::ROOT {
            return Err(NsError::RootIsImmovable);
        }
        let np = self.get(new_parent)?;
        if !np.is_dir() || !np.alive {
            return Err(NsError::NotADirectory(new_parent));
        }
        let ino = self.get(id)?;
        if !ino.alive {
            return Err(NsError::NoSuchInode(id));
        }
        // Cycle check: new_parent must not be inside id's subtree.
        if self.path_chain(new_parent).contains(&id) {
            return Err(NsError::WouldCreateCycle {
                moved: id,
                into: new_parent,
            });
        }
        let old_parent = ino.parent.ok_or(NsError::RootIsImmovable)?;
        self.arena[old_parent.index()].children.retain(|c| *c != id);
        self.arena[new_parent.index()].children.push(id);
        let entry = &mut self.arena[id.index()];
        entry.parent = Some(new_parent);
        entry.name = new_name.into();
        // Recompute cached depths across the moved subtree.
        let base = self.arena[new_parent.index()].depth + 1;
        let delta = i32::from(base) - i32::from(self.arena[id.index()].depth);
        if delta != 0 {
            let subtree: Vec<InodeId> = self.walk_subtree(id).collect();
            for node in subtree {
                let d = &mut self.arena[node.index()].depth;
                let shifted = i32::from(*d) + delta;
                *d = u16::try_from(shifted).unwrap_or(0);
            }
        }
        Ok(())
    }

    /// Number of live inodes (files + directories), excluding tombstones.
    pub fn live_count(&self) -> usize {
        self.n_files + self.n_dirs
    }

    /// The chain of inode ids from the root down to `id`, inclusive.
    ///
    /// This is the traversal the metadata path performs; the simulator uses
    /// it to count authority-boundary crossings (request forwards).
    pub fn path_chain(&self, id: InodeId) -> Vec<InodeId> {
        let mut chain = Vec::with_capacity(usize::from(self.inode(id).depth) + 1);
        let mut cur = Some(id);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.inode(c).parent;
        }
        chain.reverse();
        chain
    }

    /// Human-readable absolute path, for display/debugging.
    pub fn path_string(&self, id: InodeId) -> String {
        let chain = self.path_chain(id);
        if chain.len() == 1 {
            return "/".to_string();
        }
        let mut s = String::new();
        for c in &chain[1..] {
            s.push('/');
            s.push_str(self.inode(*c).name());
        }
        s
    }

    /// Looks up a direct child of `dir` by name (linear scan; not a hot
    /// path — see [`Inode::children`] docs).
    pub fn child_by_name(&self, dir: InodeId, name: &str) -> Option<InodeId> {
        self.inode(dir)
            .children
            .iter()
            .copied()
            .find(|c| self.inode(*c).name() == name)
    }

    /// The nearest ancestor of `id` that is a directory — `id` itself when it
    /// is a directory, its parent otherwise.
    pub fn containing_dir(&self, id: InodeId) -> InodeId {
        let ino = self.inode(id);
        if ino.is_dir() {
            id
        } else {
            // Only the root lacks a parent, and the root is a directory, so
            // falling back to the root keeps this total without a panic path.
            ino.parent.unwrap_or(InodeId::ROOT)
        }
    }

    /// The dentry-hash of `child` inside its parent directory.
    pub fn dentry_hash_of(&self, child: InodeId) -> u32 {
        dentry_hash(child.raw())
    }

    /// The live fragment of directory `dir` that `child` belongs to.
    pub fn frag_of_child(&self, dir: InodeId, child: InodeId) -> Frag {
        match self.frags.get(&dir) {
            None => Frag::root(),
            Some(set) => set.frag_for_hash(dentry_hash(child.raw())),
        }
    }

    /// The live fragment of directory `dir` covering dentry hash `hash`.
    pub fn frag_for_hash(&self, dir: InodeId, hash: u32) -> Frag {
        match self.frags.get(&dir) {
            None => Frag::root(),
            Some(set) => set.frag_for_hash(hash),
        }
    }

    /// The fragment set of `dir`; `None` means the directory is undivided.
    pub fn frag_set(&self, dir: InodeId) -> Option<&FragSet> {
        self.frags.get(&dir)
    }

    /// Live fragments of `dir` (a single root fragment when undivided).
    pub fn frags_of(&self, dir: InodeId) -> Vec<Frag> {
        match self.frags.get(&dir) {
            None => vec![Frag::root()],
            Some(set) => set.frags().to_vec(),
        }
    }

    /// Splits fragment `frag` of directory `dir` into `2^by` children and
    /// returns them. Creates the fragment set on first split.
    pub fn split_frag(&mut self, dir: InodeId, frag: &Frag, by: u8) -> NsResult<Vec<Frag>> {
        if !self.get(dir)?.is_dir() {
            return Err(NsError::NotADirectory(dir));
        }
        let set = self.frags.entry(dir).or_insert_with(FragSet::new_root);
        set.split(frag, by)
            .ok_or(NsError::NoSuchFrag { dir, frag: *frag })
    }

    /// Children of `dir` that fall inside `frag`.
    pub fn children_in_frag(&self, dir: InodeId, frag: &Frag) -> Vec<InodeId> {
        self.inode(dir)
            .children
            .iter()
            .copied()
            .filter(|c| frag.contains_hash(dentry_hash(c.raw())))
            .collect()
    }

    /// Iterative pre-order walk of the subtree rooted at `root` (inclusive).
    pub fn walk_subtree(&self, root: InodeId) -> SubtreeIter<'_> {
        SubtreeIter {
            ns: self,
            stack: vec![root],
        }
    }

    /// Number of inodes covered by the dirfrag subtree `(root, frag)`:
    /// children of `root` whose dentry hash falls in `frag`, plus all their
    /// descendants. The `root` directory inode itself is *not* counted — in
    /// CephFS a subtree root dirfrag covers its contents, while the directory
    /// inode stays with the parent subtree.
    pub fn subtree_inode_count(&self, root: InodeId, frag: &Frag) -> usize {
        self.children_in_frag(root, frag)
            .into_iter()
            .map(|child| self.walk_subtree(child).count())
            .sum()
    }

    /// All live directory ids, in arena order. Used by static pinning
    /// (Dir-Hash).
    pub fn all_dirs(&self) -> impl Iterator<Item = InodeId> + '_ {
        self.arena
            .iter()
            .enumerate()
            .filter(|(_, ino)| ino.is_dir() && ino.alive)
            .map(|(i, _)| InodeId::from_index(i))
    }

    /// Internal consistency check used by tests: every child's parent link
    /// points back at the directory listing it, depths are consistent, and
    /// counters match.
    pub fn invariants_hold(&self) -> bool {
        let mut files = 0;
        let mut dirs = 0;
        for (i, ino) in self.arena.iter().enumerate() {
            let id = InodeId::from_index(i);
            if !ino.alive {
                // Tombstones must be fully detached.
                if let Some(p) = ino.parent {
                    if self.arena[p.index()].children.contains(&id) {
                        return false;
                    }
                }
                continue;
            }
            match ino.ftype {
                FileType::File => files += 1,
                FileType::Dir => dirs += 1,
            }
            if let Some(p) = ino.parent {
                let parent = &self.arena[p.index()];
                if !parent.is_dir() || !parent.children.contains(&id) {
                    return false;
                }
                if ino.depth != parent.depth + 1 {
                    return false;
                }
            } else if id != InodeId::ROOT {
                return false;
            }
            if !ino.is_dir() && !ino.children.is_empty() {
                return false;
            }
        }
        files == self.n_files && dirs == self.n_dirs
    }
}

impl Namespace {
    /// Writes the complete arena (including tombstones — ids are never
    /// reused, so slots must survive a round-trip) and every fragment set
    /// to a snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_seq(&self.arena, |e, ino| {
            e.put_option(&ino.parent, |e, p| e.put_u64(p.raw()));
            e.put_str(&ino.name);
            e.put_bool(ino.ftype == FileType::Dir);
            e.put_u64(ino.size);
            e.put_seq(&ino.children, |e, c| e.put_u64(c.raw()));
            e.put_u16(ino.depth);
            e.put_bool(ino.alive);
        });
        let frag_dirs: Vec<(&InodeId, &FragSet)> = self.frags.iter().collect();
        e.put_seq(&frag_dirs, |e, (dir, set)| {
            e.put_u64(dir.raw());
            set.encode(e);
        });
        e.put_usize(self.n_files);
        e.put_usize(self.n_dirs);
    }

    /// Reads a namespace back. Structural corruption (dangling ids,
    /// counter drift, broken parent/child links) is reported as a typed
    /// error rather than trusted.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<Namespace, lunule_util::codec::CodecError> {
        use lunule_util::codec::CodecError;
        let invalid = || CodecError::Invalid { what: "namespace" };
        let arena = d.get_seq("namespace arena", |d| {
            let parent = d
                .get_option("inode parent", |d| d.get_u64("parent id"))?
                .map(id_from_raw)
                .transpose()?;
            let name: Box<str> = d.get_str("inode name")?.into();
            let ftype = if d.get_bool("inode is_dir")? {
                FileType::Dir
            } else {
                FileType::File
            };
            let size = d.get_u64("inode size")?;
            let children = d.get_seq("inode children", |d| id_from_raw(d.get_u64("child id")?))?;
            let depth = d.get_u16("inode depth")?;
            let alive = d.get_bool("inode alive")?;
            Ok(Inode {
                parent,
                name,
                ftype,
                size,
                children,
                depth,
                alive,
            })
        })?;
        let frag_pairs = d.get_seq("namespace frags", |d| {
            let dir = id_from_raw(d.get_u64("frag dir id")?)?;
            let set = FragSet::decode(d)?;
            Ok((dir, set))
        })?;
        let n_files = d.get_usize("namespace n_files")?;
        let n_dirs = d.get_usize("namespace n_dirs")?;
        let mut frags = BTreeMap::new();
        for (dir, set) in frag_pairs {
            if dir.index() >= arena.len() || frags.insert(dir, set).is_some() {
                return Err(invalid());
            }
        }
        let ns = Namespace {
            arena,
            frags,
            n_files,
            n_dirs,
        };
        if ns.arena.is_empty()
            || ns
                .arena
                .iter()
                .flat_map(|ino| ino.children.iter().chain(ino.parent.iter()))
                .any(|id| id.index() >= ns.arena.len())
            || !ns.invariants_hold()
        {
            return Err(invalid());
        }
        Ok(ns)
    }
}

/// Rebuilds an [`InodeId`] from its serialized raw form, bounds-checked
/// into `u32` space.
fn id_from_raw(raw: u64) -> Result<InodeId, lunule_util::codec::CodecError> {
    u32::try_from(raw)
        .map(InodeId)
        .map_err(|_| lunule_util::codec::CodecError::Invalid { what: "inode id" })
}

impl Default for Namespace {
    fn default() -> Self {
        Namespace::new()
    }
}

/// Iterator over a subtree in pre-order. See [`Namespace::walk_subtree`].
pub struct SubtreeIter<'a> {
    ns: &'a Namespace,
    stack: Vec<InodeId>,
}

impl Iterator for SubtreeIter<'_> {
    type Item = InodeId;

    fn next(&mut self) -> Option<InodeId> {
        let id = self.stack.pop()?;
        let ino = self.ns.inode(id);
        // Push in reverse so iteration visits children in creation order.
        self.stack.extend(ino.children.iter().rev());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Namespace, InodeId, InodeId, InodeId) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "data").unwrap();
        let f = ns.create_file(d, "a.bin", 1024).unwrap();
        let sub = ns.mkdir(d, "sub").unwrap();
        (ns, d, f, sub)
    }

    #[test]
    fn mkdir_and_create() {
        let (ns, d, f, sub) = tiny();
        assert_eq!(ns.len(), 4);
        assert_eq!(ns.file_count(), 1);
        assert_eq!(ns.dir_count(), 3);
        assert_eq!(ns.inode(f).parent(), Some(d));
        assert_eq!(ns.inode(sub).depth(), 2);
        assert!(ns.invariants_hold());
    }

    #[test]
    fn path_chain_and_string() {
        let (ns, d, f, _) = tiny();
        assert_eq!(ns.path_chain(f), vec![InodeId::ROOT, d, f]);
        assert_eq!(ns.path_string(f), "/data/a.bin");
        assert_eq!(ns.path_string(InodeId::ROOT), "/");
    }

    #[test]
    fn create_under_file_fails() {
        let (mut ns, _, f, _) = tiny();
        assert_eq!(
            ns.create_file(f, "x", 0).unwrap_err(),
            NsError::NotADirectory(f)
        );
    }

    #[test]
    fn child_by_name_finds() {
        let (ns, d, f, _) = tiny();
        assert_eq!(ns.child_by_name(d, "a.bin"), Some(f));
        assert_eq!(ns.child_by_name(d, "missing"), None);
    }

    #[test]
    fn walk_subtree_preorder() {
        let (ns, d, f, sub) = tiny();
        let order: Vec<_> = ns.walk_subtree(InodeId::ROOT).collect();
        assert_eq!(order, vec![InodeId::ROOT, d, f, sub]);
        assert_eq!(ns.walk_subtree(d).count(), 3);
    }

    #[test]
    fn frag_split_routes_children() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "big").unwrap();
        let kids: Vec<_> = (0..100)
            .map(|i| ns.create_file(d, &format!("f{i}"), 0).unwrap())
            .collect();
        let frags = ns.split_frag(d, &Frag::root(), 1).unwrap();
        let mut seen = 0;
        for fr in &frags {
            seen += ns.children_in_frag(d, fr).len();
        }
        assert_eq!(seen, 100);
        for k in kids {
            let fr = ns.frag_of_child(d, k);
            assert!(frags.contains(&fr));
        }
    }

    #[test]
    fn subtree_inode_count_respects_frags() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "big").unwrap();
        for i in 0..64 {
            ns.create_file(d, &format!("f{i}"), 0).unwrap();
        }
        assert_eq!(ns.subtree_inode_count(d, &Frag::root()), 64);
        let frags = ns.split_frag(d, &Frag::root(), 1).unwrap();
        let total: usize = frags.iter().map(|fr| ns.subtree_inode_count(d, fr)).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn containing_dir_of_file_and_dir() {
        let (ns, d, f, sub) = tiny();
        assert_eq!(ns.containing_dir(f), d);
        assert_eq!(ns.containing_dir(sub), sub);
    }

    #[test]
    fn unlink_detaches_and_tombstones() {
        let (mut ns, d, f, _) = tiny();
        assert!(ns.unlink(f).is_ok());
        assert!(!ns.inode(f).is_alive());
        assert!(!ns.inode(d).children().contains(&f));
        assert_eq!(ns.file_count(), 0);
        assert_eq!(ns.live_count(), 3);
        assert!(ns.invariants_hold());
        // Double unlink fails.
        assert_eq!(ns.unlink(f).unwrap_err(), NsError::NoSuchInode(f));
        // Ids are never reused: a new file gets a fresh slot.
        let f2 = ns.create_file(d, "b.bin", 1).unwrap();
        assert_ne!(f2, f);
    }

    #[test]
    fn unlink_rejects_directories() {
        let (mut ns, d, _, _) = tiny();
        assert_eq!(ns.unlink(d).unwrap_err(), NsError::IsADirectory(d));
    }

    #[test]
    fn rmdir_requires_empty() {
        let (mut ns, d, f, sub) = tiny();
        assert_eq!(ns.rmdir(d).unwrap_err(), NsError::DirectoryNotEmpty(d));
        ns.unlink(f).unwrap();
        ns.rmdir(sub).unwrap();
        assert!(ns.rmdir(d).is_ok());
        assert_eq!(ns.dir_count(), 1); // only the root remains
        assert!(ns.invariants_hold());
        assert_eq!(
            ns.rmdir(InodeId::ROOT).unwrap_err(),
            NsError::RootIsImmovable
        );
    }

    #[test]
    fn rename_moves_subtree_and_fixes_depths() {
        let mut ns = Namespace::new();
        let a = ns.mkdir(InodeId::ROOT, "a").unwrap();
        let b = ns.mkdir(InodeId::ROOT, "b").unwrap();
        let deep = ns.mkdir(a, "deep").unwrap();
        let f = ns.create_file(deep, "f", 1).unwrap();
        assert_eq!(ns.inode(f).depth(), 3);
        ns.rename(deep, b, "moved").unwrap();
        assert_eq!(ns.path_string(f), "/b/moved/f");
        assert_eq!(ns.inode(deep).depth(), 2);
        assert_eq!(ns.inode(f).depth(), 3);
        assert!(ns.invariants_hold());
        // Deepen: move b under a; everything below shifts by one.
        ns.rename(b, a, "b2").unwrap();
        assert_eq!(ns.inode(f).depth(), 4);
        assert_eq!(ns.path_string(f), "/a/b2/moved/f");
        assert!(ns.invariants_hold());
    }

    #[test]
    fn rename_rejects_cycles_and_root() {
        let mut ns = Namespace::new();
        let a = ns.mkdir(InodeId::ROOT, "a").unwrap();
        let inner = ns.mkdir(a, "inner").unwrap();
        assert!(matches!(
            ns.rename(a, inner, "x").unwrap_err(),
            NsError::WouldCreateCycle { .. }
        ));
        assert!(matches!(
            ns.rename(a, a, "self").unwrap_err(),
            NsError::WouldCreateCycle { .. }
        ));
        assert_eq!(
            ns.rename(InodeId::ROOT, a, "r").unwrap_err(),
            NsError::RootIsImmovable
        );
        assert!(ns.invariants_hold());
    }

    #[test]
    fn codec_round_trip_preserves_everything() {
        let (mut ns, d, f, _) = tiny();
        ns.split_frag(d, &Frag::root(), 1).unwrap();
        ns.unlink(f).unwrap(); // keep a tombstone in the arena
        let mut e = lunule_util::codec::Encoder::new();
        ns.encode(&mut e);
        let bytes = e.into_bytes();
        let mut dec = lunule_util::codec::Decoder::new(&bytes);
        let back = Namespace::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.len(), ns.len());
        assert_eq!(back.file_count(), ns.file_count());
        assert_eq!(back.dir_count(), ns.dir_count());
        assert_eq!(back.frags_of(d), ns.frags_of(d));
        assert!(!back.inode(f).is_alive());
        assert!(back.invariants_hold());
        // Re-encoding is byte-stable.
        let mut e2 = lunule_util::codec::Encoder::new();
        back.encode(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_corrupt_counters() {
        let (ns, _, _, _) = tiny();
        let mut e = lunule_util::codec::Encoder::new();
        ns.encode(&mut e);
        let mut bytes = e.into_bytes();
        // The trailing 16 bytes are n_files/n_dirs; corrupt n_dirs.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut dec = lunule_util::codec::Decoder::new(&bytes);
        assert!(Namespace::decode(&mut dec).is_err());
    }

    #[test]
    fn tombstones_are_excluded_from_walks_and_dirs() {
        let (mut ns, d, f, sub) = tiny();
        ns.unlink(f).unwrap();
        ns.rmdir(sub).unwrap();
        let walked: Vec<_> = ns.walk_subtree(InodeId::ROOT).collect();
        assert_eq!(walked, vec![InodeId::ROOT, d]);
        assert!(ns.all_dirs().all(|x| x != sub));
    }
}
