//! Property-based tests for the namespace substrate.

use lunule_namespace::{
    dentry_hash, Frag, FragKey, FragSet, InodeId, MdsRank, Namespace, SubtreeMap, HASH_BITS,
    HASH_MASK,
};
use lunule_util::{propcheck, DetRng};

/// Samples an arbitrary well-formed fragment.
fn arb_frag(rng: &mut DetRng) -> Frag {
    let bits = rng.gen_range(0..HASH_BITS as usize + 1) as u8;
    let max = if bits == 0 { 1usize } else { 1usize << bits };
    Frag::new(rng.gen_range(0..max) as u32, bits)
}

/// Samples a hash in `[0, HASH_MASK]`.
fn arb_hash(rng: &mut DetRng) -> u32 {
    rng.gen_range(0..HASH_MASK as usize + 1) as u32
}

/// Every hash lands in exactly one child of any split.
#[test]
fn split_partitions() {
    propcheck::run(256, |rng| {
        let frag = arb_frag(rng);
        let hash = arb_hash(rng);
        let by = rng.gen_range(1..4) as u8;
        if frag.bits() + by > HASH_BITS {
            return;
        }
        let kids = frag.split(by);
        let owners = kids.iter().filter(|k| k.contains_hash(hash)).count();
        if frag.contains_hash(hash) {
            assert_eq!(owners, 1);
        } else {
            assert_eq!(owners, 0);
        }
    });
}

/// Containment agrees with range containment.
#[test]
fn contains_matches_ranges() {
    propcheck::run(256, |rng| {
        let a = arb_frag(rng);
        let b = arb_frag(rng);
        let range_contains = a.range_start() <= b.range_start() && b.range_end() <= a.range_end();
        assert_eq!(a.contains_frag(&b), range_contains);
    });
}

/// parent() inverts split().
#[test]
fn parent_inverts_split() {
    propcheck::run(256, |rng| {
        let frag = arb_frag(rng);
        if frag.bits() >= HASH_BITS {
            return;
        }
        let (l, r) = frag.split_in_two();
        assert_eq!(l.parent(), Some(frag));
        assert_eq!(r.parent(), Some(frag));
        assert_eq!(l.sibling(), Some(r));
    });
}

/// A FragSet subjected to a random split sequence always partitions the
/// hash space and routes every hash to exactly one live frag.
#[test]
fn fragset_partition_under_splits() {
    propcheck::run(128, |rng| {
        let mut set = FragSet::new_root();
        for _ in 0..rng.gen_range(0..12) {
            let target = set.frag_for_hash(arb_hash(rng));
            if target.bits() < HASH_BITS {
                set.split(&target, 1).unwrap();
            }
        }
        assert!(set.partition_holds());
        let probe = arb_hash(rng);
        let owner = set.frag_for_hash(probe);
        assert!(owner.contains_hash(probe));
        let owners = set
            .frags()
            .iter()
            .filter(|f| f.contains_hash(probe))
            .count();
        assert_eq!(owners, 1);
    });
}

/// Arena invariants hold under random construction sequences, and the path
/// chain of every inode starts at the root and descends by one depth level
/// per hop.
#[test]
fn namespace_invariants_under_random_builds() {
    propcheck::run(64, |rng| {
        let mut ns = Namespace::new();
        let mut dirs = vec![InodeId::ROOT];
        for _ in 0..rng.gen_range(1..120) {
            let parent = dirs[rng.gen_range(0..dirs.len())];
            if rng.gen_bool() {
                let d = ns.mkdir(parent, "d").unwrap();
                dirs.push(d);
            } else {
                ns.create_file(parent, "f", 1).unwrap();
            }
        }
        assert!(ns.invariants_hold());
        for idx in 0..ns.len() {
            let id = InodeId::from_index(idx);
            let chain = ns.path_chain(id);
            assert_eq!(chain[0], InodeId::ROOT);
            assert_eq!(*chain.last().unwrap(), id);
            for (i, link) in chain.iter().enumerate() {
                assert_eq!(ns.inode(*link).depth() as usize, i);
            }
        }
    });
}

/// Authorities assigned through a SubtreeMap always resolve to a rank that
/// was actually assigned (or the root rank), and inode counts over ranks
/// always sum to the namespace size.
#[test]
fn subtree_map_total_coverage() {
    propcheck::run(96, |rng| {
        let mut ns = Namespace::new();
        let mut dirs = Vec::new();
        for i in 0..8 {
            let d = ns.mkdir(InodeId::ROOT, &format!("d{i}")).unwrap();
            dirs.push(d);
            for j in 0..4 {
                let s = ns.mkdir(d, &format!("s{j}")).unwrap();
                dirs.push(s);
                ns.create_file(s, "f", 1).unwrap();
            }
        }
        let mut map = SubtreeMap::new(MdsRank(0));
        for _ in 0..rng.gen_range(0..10) {
            let dir = dirs[rng.gen_range(0..dirs.len())];
            let rank = MdsRank(rng.gen_range(0..4) as u16);
            map.set_authority(FragKey::whole(dir), rank);
        }
        assert!(map.invariants_hold());
        let counts = map.inode_counts(&ns, 4);
        assert_eq!(counts.iter().sum::<usize>(), ns.len());
    });
}

/// dentry_hash stays within the hash space.
#[test]
fn dentry_hash_in_range() {
    propcheck::run(256, |rng| {
        assert!(dentry_hash(rng.next_u64()) <= HASH_MASK);
    });
}
