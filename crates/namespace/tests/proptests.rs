//! Property-based tests for the namespace substrate.

use lunule_namespace::{
    dentry_hash, Frag, FragKey, FragSet, InodeId, MdsRank, Namespace, SubtreeMap, HASH_BITS,
    HASH_MASK,
};
use proptest::prelude::*;

/// Strategy producing an arbitrary well-formed fragment.
fn arb_frag() -> impl Strategy<Value = Frag> {
    (0u8..=HASH_BITS).prop_flat_map(|bits| {
        let max = if bits == 0 { 1u32 } else { 1u32 << bits };
        (0..max).prop_map(move |value| Frag::new(value, bits))
    })
}

proptest! {
    /// Every hash lands in exactly one child of any split.
    #[test]
    fn split_partitions(frag in arb_frag(), hash in 0u32..=HASH_MASK, by in 1u8..=3) {
        prop_assume!(frag.bits() + by <= HASH_BITS);
        let kids = frag.split(by);
        let owners = kids.iter().filter(|k| k.contains_hash(hash)).count();
        if frag.contains_hash(hash) {
            prop_assert_eq!(owners, 1);
        } else {
            prop_assert_eq!(owners, 0);
        }
    }

    /// Containment agrees with range containment.
    #[test]
    fn contains_matches_ranges(a in arb_frag(), b in arb_frag()) {
        let range_contains = a.range_start() <= b.range_start() && b.range_end() <= a.range_end();
        prop_assert_eq!(a.contains_frag(&b), range_contains);
    }

    /// parent() inverts split().
    #[test]
    fn parent_inverts_split(frag in arb_frag()) {
        prop_assume!(frag.bits() < HASH_BITS);
        let (l, r) = frag.split_in_two();
        prop_assert_eq!(l.parent(), Some(frag));
        prop_assert_eq!(r.parent(), Some(frag));
        prop_assert_eq!(l.sibling(), Some(r));
    }

    /// A FragSet subjected to a random split sequence always partitions the
    /// hash space and routes every hash to exactly one live frag.
    #[test]
    fn fragset_partition_under_splits(splits in proptest::collection::vec(0u32..=HASH_MASK, 0..12),
                                      probe in 0u32..=HASH_MASK) {
        let mut set = FragSet::new_root();
        for h in splits {
            let target = set.frag_for_hash(h);
            if target.bits() < HASH_BITS {
                set.split(&target, 1);
            }
        }
        prop_assert!(set.partition_holds());
        let owner = set.frag_for_hash(probe);
        prop_assert!(owner.contains_hash(probe));
        let owners = set.frags().iter().filter(|f| f.contains_hash(probe)).count();
        prop_assert_eq!(owners, 1);
    }

    /// Arena invariants hold under random construction sequences, and the
    /// path chain of every inode starts at the root and descends by one
    /// depth level per hop.
    #[test]
    fn namespace_invariants_under_random_builds(ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..120)) {
        let mut ns = Namespace::new();
        let mut dirs = vec![InodeId::ROOT];
        for (sel, make_dir) in ops {
            let parent = dirs[sel as usize % dirs.len()];
            if make_dir {
                let d = ns.mkdir(parent, "d").unwrap();
                dirs.push(d);
            } else {
                ns.create_file(parent, "f", 1).unwrap();
            }
        }
        prop_assert!(ns.invariants_hold());
        for idx in 0..ns.len() {
            let id = InodeId::from_index(idx);
            let chain = ns.path_chain(id);
            prop_assert_eq!(chain[0], InodeId::ROOT);
            prop_assert_eq!(*chain.last().unwrap(), id);
            for (i, link) in chain.iter().enumerate() {
                prop_assert_eq!(ns.inode(*link).depth() as usize, i);
            }
        }
    }

    /// Authorities assigned through a SubtreeMap always resolve to a rank
    /// that was actually assigned (or the root rank), and inode counts over
    /// ranks always sum to the namespace size.
    #[test]
    fn subtree_map_total_coverage(assignments in proptest::collection::vec((0u16..64, 0u16..4), 0..10)) {
        let mut ns = Namespace::new();
        let mut dirs = Vec::new();
        for i in 0..8 {
            let d = ns.mkdir(InodeId::ROOT, &format!("d{i}")).unwrap();
            dirs.push(d);
            for j in 0..4 {
                let s = ns.mkdir(d, &format!("s{j}")).unwrap();
                dirs.push(s);
                ns.create_file(s, "f", 1).unwrap();
            }
        }
        let mut map = SubtreeMap::new(MdsRank(0));
        for (dsel, rank) in assignments {
            let dir = dirs[dsel as usize % dirs.len()];
            map.set_authority(FragKey::whole(dir), MdsRank(rank));
        }
        prop_assert!(map.invariants_hold());
        let counts = map.inode_counts(&ns, 4);
        prop_assert_eq!(counts.iter().sum::<usize>(), ns.len());
    }

    /// dentry_hash stays within the hash space.
    #[test]
    fn dentry_hash_in_range(id in any::<u64>()) {
        prop_assert!(dentry_hash(id) <= HASH_MASK);
    }
}
