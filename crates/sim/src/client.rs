//! Closed-loop client sessions with authority caching.
//!
//! Each client issues metadata ops back-to-back (closed loop, zero think
//! time) up to a per-second rate cap, stalling when its target MDS has no
//! capacity left this tick. Clients cache dirfrag→rank mappings (CephFS
//! clients cache the subtree map the same way); the cache is flushed
//! whenever the cluster's partition map changes, so traversals — and the
//! inter-MDS forwards they cause — resume right after every migration.

use crate::request::{MetaOp, OpStream};
use lunule_namespace::{
    dentry_hash, AuthorityCache, Frag, FragKey, InodeId, MdsRank, Namespace, SubtreeMap,
};
use lunule_util::convert::usize_to_u64;
use std::collections::BTreeMap;

/// Outcome of resolving an op's route.
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// Rank that serves the op.
    pub target: MdsRank,
    /// Ranks that forward the request on a traversal (may repeat the
    /// target's predecessors; empty on a cache hit).
    pub forwards: Vec<MdsRank>,
}

/// Default maximum dirfrag→rank entries a client caches. CephFS clients
/// hold a bounded view of the subtree map; an unbounded cache would make
/// static pinning (Dir-Hash) artificially forward-free after warm-up,
/// hiding the traversal cost the paper measures in Fig. 14.
pub const CLIENT_CACHE_CAP: usize = 256;

/// One simulated client.
pub struct Client {
    /// Client index (stable across the run). Under the cohort engine this
    /// is the cohort's canonical id: the lowest member id.
    pub id: usize,
    pub(crate) stream: Box<dyn OpStream>,
    /// Op returned by the stream but not yet served (stall retry buffer),
    /// with the tick it was first attempted (for stall-latency tracking).
    pub(crate) pending: Option<(MetaOp, u64)>,
    /// Cached dirfrag→rank authority mappings.
    pub(crate) cache: BTreeMap<InodeId, Vec<(Frag, MdsRank)>>,
    /// FIFO of cached directories for eviction when the cap is reached.
    pub(crate) cache_order: std::collections::VecDeque<InodeId>,
    /// Total cached entries (across all directories).
    pub(crate) cache_count: usize,
    /// Ops issued in the current tick (rate limiting).
    pub issued_this_tick: u32,
    /// True once `next_op` returned `None`.
    pub finished: bool,
    /// Tick at which the stream finished (metadata side).
    pub finished_at: Option<u64>,
    /// Bytes of data transfer still owed before the client may proceed
    /// (data-path model).
    pub data_pending: u64,
    /// Total metadata ops served for this client.
    pub ops_done: u64,
    /// Tick the client becomes active (for staged client arrival).
    pub starts_at: u64,
    /// Maximum cached dirfrag entries before FIFO eviction.
    pub cache_cap: usize,
    /// In-flight data window, bytes: the client stalls once `data_pending`
    /// exceeds this. Zero means every byte blocks immediately.
    pub data_window: u64,
    /// Cached dirfrag entries evicted by the FIFO cap over the client's
    /// lifetime — telemetry samples this to show when a run's working set
    /// outgrows the client cache.
    pub cache_evictions: u64,
}

impl Client {
    /// Wraps an op stream into a client session starting at tick
    /// `starts_at`.
    pub fn new(id: usize, stream: Box<dyn OpStream>, starts_at: u64) -> Self {
        Client {
            id,
            stream,
            pending: None,
            cache: BTreeMap::new(),
            cache_order: std::collections::VecDeque::new(),
            cache_count: 0,
            issued_this_tick: 0,
            finished: false,
            finished_at: None,
            data_pending: 0,
            ops_done: 0,
            starts_at,
            cache_cap: CLIENT_CACHE_CAP,
            data_window: 0,
            cache_evictions: 0,
        }
    }

    /// True when the client can issue an op right now.
    pub fn can_issue(&self, tick: u64, rate: f64) -> bool {
        !self.finished
            && tick >= self.starts_at
            && self.data_pending <= self.data_window
            && f64::from(self.issued_this_tick) < rate
    }

    /// The op the client wants served next (peeks without consuming).
    /// `tick` stamps the first attempt for stall-latency accounting.
    pub fn peek_op(&mut self, ns: &Namespace, tick: u64) -> Option<MetaOp> {
        if self.pending.is_none() {
            self.pending = self.stream.next_op(ns).map(|op| (op, tick));
            if self.pending.is_none() {
                self.finished = true;
            }
        }
        self.pending.map(|(op, _)| op)
    }

    /// Marks the pending op as served at `tick`; returns how many ticks it
    /// spent stalled (0 = served on its first attempt).
    pub fn consume_op(&mut self, tick: u64) -> u64 {
        // Consuming without a pending op is a caller bug; treat it as a
        // zero-stall no-op in release builds instead of aborting.
        let Some((_, first_attempt)) = self.pending.take() else {
            debug_assert!(false, "consume without pending op");
            return 0;
        };
        self.issued_this_tick += 1;
        self.ops_done += 1;
        tick.saturating_sub(first_attempt)
    }

    /// Forwards a created-inode notification to the stream.
    pub fn notify_created(&mut self, id: InodeId) {
        self.stream.on_created(id);
    }

    /// Plans the route for an op targeting the child of `dir` with dentry
    /// hash `hash` — read-only: the cache learns nothing until the op is
    /// actually served and [`Client::learn_route`] is called. (Learning on a
    /// stalled attempt would let the retry masquerade as a cache hit and
    /// hide the traversal's forwarding work from the accounting.)
    ///
    /// Cache semantics mirror CephFS clients: a cached dirfrag→rank mapping
    /// is used optimistically; if it has gone stale (the subtree migrated),
    /// the stale MDS *redirects* the request — one forward charged at the
    /// stale rank. Only genuinely unknown dirfrags pay a full path
    /// traversal from the root.
    ///
    /// Returns the route and whether it was a (fresh) cache hit.
    pub fn resolve(
        &self,
        ns: &Namespace,
        map: &SubtreeMap,
        dir: InodeId,
        hash: u32,
    ) -> (Route, bool) {
        resolve_route(&self.cache, ns, map, dir, hash)
    }

    /// [`Client::resolve`] through a tick-scoped [`AuthorityCache`]: same
    /// route, amortized-O(1) authority lookups. The serial issue paths
    /// thread the simulation's shared cache through here.
    pub(crate) fn resolve_with(
        &self,
        ns: &Namespace,
        map: &SubtreeMap,
        auth: &mut AuthorityCache,
        dir: InodeId,
        hash: u32,
    ) -> (Route, bool) {
        resolve_route_cached(&self.cache, ns, map, auth, dir, hash)
    }
}

/// [`Client::resolve`] as a free function over the bare authority cache.
///
/// The cohort engine resolves routes for many cohorts in parallel on the
/// worker pool; `&Client` is not `Sync` (the boxed op stream is only
/// `Send`), but the cache map is plain data, so the parallel phase borrows
/// caches directly and calls this.
pub(crate) fn resolve_route(
    cache: &BTreeMap<InodeId, Vec<(Frag, MdsRank)>>,
    ns: &Namespace,
    map: &SubtreeMap,
    dir: InodeId,
    hash: u32,
) -> (Route, bool) {
    let cached = cache.get(&dir).and_then(|entries| {
        entries
            .iter()
            .filter(|(f, _)| f.contains_hash(hash))
            .max_by_key(|(f, _)| f.bits())
            .map(|(_, r)| *r)
    });
    if let Some(cached_rank) = cached {
        // Verify against the live map (the "send and get redirected"
        // round-trip, collapsed to one forward).
        let dir_auth = map.authority(ns, dir);
        let true_auth = resolve_child(map, ns, dir, hash, dir_auth);
        if true_auth == cached_rank {
            return (
                Route {
                    target: cached_rank,
                    forwards: Vec::new(),
                },
                true,
            );
        }
        return (
            Route {
                target: true_auth,
                forwards: vec![cached_rank],
            },
            false,
        );
    }
    // Cache miss: full traversal from the root. The authority chain of
    // the *directory* plus the final hop for the dentry hash.
    let mut auths = map.authority_chain(ns, dir);
    // The chain always holds at least the root's authority; fall back to
    // the map's root rank rather than panic if that ever changes.
    let dir_auth = auths.last().copied().unwrap_or_else(|| map.root_rank());
    let final_auth = resolve_child(map, ns, dir, hash, dir_auth);
    auths.push(final_auth);
    // Forwards: each change of authority along the way is one forward,
    // performed by the rank that held the request before the hop.
    let mut forwards = Vec::new();
    for w in auths.windows(2) {
        if w[0] != w[1] {
            forwards.push(w[0]);
        }
    }
    (
        Route {
            target: final_auth,
            forwards,
        },
        false,
    )
}

/// [`resolve_route`] with authority lookups memoized in `auth`. Produces
/// the identical `(Route, hit)` — the memo replays the exact
/// [`SubtreeMap::authority`] recurrence and invalidates on every map
/// generation bump — without the per-op root-to-dir walk.
pub(crate) fn resolve_route_cached(
    cache: &BTreeMap<InodeId, Vec<(Frag, MdsRank)>>,
    ns: &Namespace,
    map: &SubtreeMap,
    auth: &mut AuthorityCache,
    dir: InodeId,
    hash: u32,
) -> (Route, bool) {
    let cached = cache.get(&dir).and_then(|entries| {
        entries
            .iter()
            .filter(|(f, _)| f.contains_hash(hash))
            .max_by_key(|(f, _)| f.bits())
            .map(|(_, r)| *r)
    });
    if let Some(cached_rank) = cached {
        let dir_auth = auth.authority(map, ns, dir);
        let true_auth = resolve_child(map, ns, dir, hash, dir_auth);
        if true_auth == cached_rank {
            return (
                Route {
                    target: cached_rank,
                    forwards: Vec::new(),
                },
                true,
            );
        }
        return (
            Route {
                target: true_auth,
                forwards: vec![cached_rank],
            },
            false,
        );
    }
    let auths = auth.chain(map, ns, dir);
    let dir_auth = auths.last().copied().unwrap_or_else(|| map.root_rank());
    let final_auth = resolve_child(map, ns, dir, hash, dir_auth);
    let mut forwards = Vec::new();
    for w in auths.windows(2) {
        if w[0] != w[1] {
            forwards.push(w[0]);
        }
    }
    if dir_auth != final_auth {
        forwards.push(dir_auth);
    }
    (
        Route {
            target: final_auth,
            forwards,
        },
        false,
    )
}

/// [`resolve_route`] against a *pre-primed* authority cache, `&self` only
/// — the form the parallel resolve phase uses. The serial prime pass
/// memoizes every anchor directory's path first, so the probes below are
/// pure reads; the live-map fallbacks keep the answer correct (and
/// identical) even if an anchor was somehow skipped.
pub(crate) fn resolve_route_primed(
    cache: &BTreeMap<InodeId, Vec<(Frag, MdsRank)>>,
    ns: &Namespace,
    map: &SubtreeMap,
    auth: &AuthorityCache,
    dir: InodeId,
    hash: u32,
) -> (Route, bool) {
    let cached = cache.get(&dir).and_then(|entries| {
        entries
            .iter()
            .filter(|(f, _)| f.contains_hash(hash))
            .max_by_key(|(f, _)| f.bits())
            .map(|(_, r)| *r)
    });
    if let Some(cached_rank) = cached {
        let dir_auth = auth
            .cached_authority(map, dir)
            .unwrap_or_else(|| map.authority(ns, dir));
        let true_auth = resolve_child(map, ns, dir, hash, dir_auth);
        if true_auth == cached_rank {
            return (
                Route {
                    target: cached_rank,
                    forwards: Vec::new(),
                },
                true,
            );
        }
        return (
            Route {
                target: true_auth,
                forwards: vec![cached_rank],
            },
            false,
        );
    }
    let mut auths = Vec::new();
    if !auth.cached_chain_into(ns, dir, &mut auths) {
        auths = map.authority_chain(ns, dir);
    }
    let dir_auth = auths.last().copied().unwrap_or_else(|| map.root_rank());
    let final_auth = resolve_child(map, ns, dir, hash, dir_auth);
    auths.push(final_auth);
    let mut forwards = Vec::new();
    for w in auths.windows(2) {
        if w[0] != w[1] {
            forwards.push(w[0]);
        }
    }
    (
        Route {
            target: final_auth,
            forwards,
        },
        false,
    )
}

impl Client {
    /// Records the resolved authority for `(dir, hash)` once the op was
    /// served (the reply carries the authoritative rank).
    pub fn learn_route(&mut self, ns: &Namespace, dir: InodeId, hash: u32, rank: MdsRank) {
        let frag = ns.frag_for_hash(dir, hash);
        self.update_cache(dir, frag, rank);
    }

    /// Replaces the cached rank for `(dir, frag)`, discarding entries the
    /// new fragment supersedes (stale coarser or finer fragments) and
    /// evicting the oldest directories once the cap is reached.
    fn update_cache(&mut self, dir: InodeId, frag: Frag, rank: MdsRank) {
        while self.cache_count >= self.cache_cap {
            match self.cache_order.pop_front() {
                Some(old) => {
                    if let Some(removed) = self.cache.remove(&old) {
                        self.cache_count -= removed.len();
                        self.cache_evictions += usize_to_u64(removed.len());
                    }
                }
                None => break,
            }
        }
        let entries = self.cache.entry(dir).or_default();
        if entries.is_empty() {
            self.cache_order.push_back(dir);
        }
        let before = entries.len();
        entries.retain(|(f, _)| f.disjoint(&frag));
        self.cache_count -= before - entries.len();
        entries.push((frag, rank));
        self.cache_count += 1;
    }

    /// Applies a completed subtree migration to the cache: entries covered
    /// by the migrated dirfrag switch to the importer in place. This models
    /// CephFS's cap/session transfer — clients actively working in a
    /// subtree are handed to the importer at commit rather than discovering
    /// the move via a redirect.
    pub fn apply_migration(&mut self, ns: &Namespace, subtree: &FragKey, new_rank: MdsRank) {
        for (dir, entries) in self.cache.iter_mut() {
            if *dir == subtree.dir {
                for (f, r) in entries.iter_mut() {
                    if subtree.frag.contains_frag(f) {
                        *r = new_rank;
                    }
                }
            } else if dir_inside_subtree(ns, *dir, subtree) {
                for (_, r) in entries.iter_mut() {
                    *r = new_rank;
                }
            }
        }
    }

    /// Drops every cached entry pointing at `rank` — used when a rank is
    /// drained or fails and can no longer answer (or redirect) anything.
    /// The next access to those dirfrags pays a fresh traversal.
    pub fn forget_rank(&mut self, rank: MdsRank) {
        let mut removed = 0;
        self.cache.retain(|_, entries| {
            let before = entries.len();
            entries.retain(|(_, r)| *r != rank);
            removed += before - entries.len();
            !entries.is_empty()
        });
        self.cache_count -= removed;
        self.cache_order.retain(|d| self.cache.contains_key(d));
    }

    /// Number of cached dirfrag entries (test/inspection hook).
    pub fn cache_len(&self) -> usize {
        self.cache.values().map(Vec::len).sum()
    }

    /// A deep copy of the whole client session, including the op stream's
    /// dynamic state — `None` when the stream is not cloneable. The cohort
    /// engine uses this to split a diverging cohort.
    pub(crate) fn try_clone(&self) -> Option<Client> {
        let stream = self.stream.try_clone_box()?;
        Some(Client {
            id: self.id,
            stream,
            pending: self.pending,
            cache: self.cache.clone(),
            cache_order: self.cache_order.clone(),
            cache_count: self.cache_count,
            issued_this_tick: self.issued_this_tick,
            finished: self.finished,
            finished_at: self.finished_at,
            data_pending: self.data_pending,
            ops_done: self.ops_done,
            starts_at: self.starts_at,
            cache_cap: self.cache_cap,
            data_window: self.data_window,
            cache_evictions: self.cache_evictions,
        })
    }

    /// The client's complete dynamic state as snapshot bytes, *excluding*
    /// the id prefix. Two cohorts whose members have re-converged compare
    /// equal here even though their canonical ids differ.
    pub(crate) fn state_bytes_sans_id(&self) -> Vec<u8> {
        let mut e = lunule_util::codec::Encoder::new();
        self.encode(&mut e);
        let bytes = e.into_bytes();
        // `encode` writes the id first as a fixed-width u64.
        bytes[8..].to_vec()
    }

    /// Serialises the client's complete dynamic state — buffered retry op,
    /// authority cache (with its FIFO eviction order), lifecycle flags and
    /// counters — plus the wrapped op stream's own state, for a snapshot
    /// section.
    pub(crate) fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_usize(self.id);
        let mut se = lunule_util::codec::Encoder::new();
        self.stream.save_state(&mut se);
        e.put_bytes(&se.into_bytes());
        e.put_option(&self.pending, |e, (op, first_attempt)| {
            op.encode(e);
            e.put_u64(*first_attempt);
        });
        e.put_usize(self.cache.len());
        for (dir, entries) in &self.cache {
            e.put_u64(dir.raw());
            e.put_seq(entries, |e, (f, r)| {
                f.encode(e);
                e.put_u16(r.0);
            });
        }
        e.put_usize(self.cache_order.len());
        for dir in &self.cache_order {
            e.put_u64(dir.raw());
        }
        e.put_u32(self.issued_this_tick);
        e.put_bool(self.finished);
        e.put_option(&self.finished_at, |e, t| e.put_u64(*t));
        e.put_u64(self.data_pending);
        e.put_u64(self.ops_done);
        e.put_u64(self.starts_at);
        e.put_usize(self.cache_cap);
        e.put_u64(self.data_window);
        e.put_u64(self.cache_evictions);
    }

    /// Inverse of [`Client::encode`], wrapping `stream` (freshly built from
    /// the run configuration) and replaying its saved cursor state. Rejects
    /// caches whose FIFO order disagrees with the map, duplicate or empty
    /// cache entries, and malformed stream payloads.
    pub(crate) fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
        mut stream: Box<dyn OpStream>,
    ) -> Result<Self, lunule_util::codec::CodecError> {
        use lunule_util::codec::{CodecError, Decoder};
        let id = d.get_usize("client.id")?;
        let payload = d.get_bytes("client.stream")?;
        let mut sd = Decoder::new(&payload);
        stream.load_state(&mut sd)?;
        sd.finish()?;
        let pending = d.get_option("client.pending", |d| {
            let op = MetaOp::decode(d)?;
            let first_attempt = d.get_u64("client.pending_tick")?;
            Ok((op, first_attempt))
        })?;
        let n_dirs = d.get_usize("client.cache")?;
        let mut cache: BTreeMap<InodeId, Vec<(Frag, MdsRank)>> = BTreeMap::new();
        let mut cache_count = 0usize;
        for _ in 0..n_dirs {
            let dir = crate::request::inode_from_raw(d.get_u64("client.cache_dir")?)?;
            let entries = d.get_seq("client.cache_entries", |d| {
                let f = Frag::decode(d)?;
                let r = MdsRank(d.get_u16("client.cache_rank")?);
                Ok((f, r))
            })?;
            if entries.is_empty() {
                return Err(CodecError::Invalid {
                    what: "client.cache_entries",
                });
            }
            cache_count += entries.len();
            if cache.insert(dir, entries).is_some() {
                return Err(CodecError::Invalid {
                    what: "client.cache_dir",
                });
            }
        }
        let n_order = d.get_usize("client.cache_order")?;
        let mut cache_order = std::collections::VecDeque::with_capacity(n_order.min(1024));
        for _ in 0..n_order {
            cache_order.push_back(crate::request::inode_from_raw(
                d.get_u64("client.cache_order_dir")?,
            )?);
        }
        // The FIFO must list exactly the cached directories, once each.
        if cache_order.len() != cache.len() {
            return Err(CodecError::Invalid {
                what: "client.cache_order",
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for dir in &cache_order {
            if !cache.contains_key(dir) || !seen.insert(*dir) {
                return Err(CodecError::Invalid {
                    what: "client.cache_order",
                });
            }
        }
        let issued_this_tick = d.get_u32("client.issued_this_tick")?;
        let finished = d.get_bool("client.finished")?;
        let finished_at =
            d.get_option("client.finished_at", |d| d.get_u64("client.finished_at"))?;
        let data_pending = d.get_u64("client.data_pending")?;
        let ops_done = d.get_u64("client.ops_done")?;
        let starts_at = d.get_u64("client.starts_at")?;
        let cache_cap = d.get_usize("client.cache_cap")?;
        let data_window = d.get_u64("client.data_window")?;
        let cache_evictions = d.get_u64("client.cache_evictions")?;
        Ok(Client {
            id,
            stream,
            pending,
            cache,
            cache_order,
            cache_count,
            issued_this_tick,
            finished,
            finished_at,
            data_pending,
            ops_done,
            starts_at,
            cache_cap,
            data_window,
            cache_evictions,
        })
    }
}

/// True when directory `dir` lies strictly inside the subtree rooted at
/// `subtree` (i.e. one of `dir`'s ancestors-or-self is a child of
/// `subtree.dir` whose dentry hash falls in `subtree.frag`).
fn dir_inside_subtree(ns: &Namespace, dir: InodeId, subtree: &FragKey) -> bool {
    let chain = ns.path_chain(dir);
    for w in chain.windows(2) {
        if w[0] == subtree.dir {
            return subtree.frag.contains_hash(dentry_hash(w[1].raw()));
        }
    }
    false
}

/// Authority of the would-be child of `dir` with dentry hash `hash`, given
/// the directory's own resolved authority.
fn resolve_child(
    map: &SubtreeMap,
    ns: &Namespace,
    dir: InodeId,
    hash: u32,
    dir_auth: MdsRank,
) -> MdsRank {
    let frag = ns.frag_for_hash(dir, hash);
    map.covering_entry_rank(dir, &frag)
        .or_else(|| {
            // An entry deeper than the live frag (mid-split) still applies
            // if it contains the hash.
            map.explicit_entry_rank(dir, &frag)
        })
        .unwrap_or(dir_auth)
}

/// Convenience: the (dir, hash) pair an op routes by.
pub fn routing_anchor(ns: &Namespace, op: &MetaOp) -> (InodeId, u32) {
    match op {
        MetaOp::Read(ino) | MetaOp::Remove(ino) => {
            let dir = ns.inode(*ino).parent().unwrap_or(*ino);
            (dir, dentry_hash(ino.raw()))
        }
        MetaOp::Create { parent, .. } => {
            // The created inode's id (and hence dentry hash) is the next
            // arena slot.
            let next = InodeId::from_index(ns.len());
            (*parent, dentry_hash(next.raw()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::FixedStream;
    use lunule_namespace::FragKey;

    fn setup() -> (Namespace, SubtreeMap, InodeId, InodeId) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let f = ns.create_file(d, "f", 1).unwrap();
        let map = SubtreeMap::new(MdsRank(0));
        (ns, map, d, f)
    }

    /// The three resolve implementations — live walk, tick-cached, and
    /// pre-primed read-only — must be observationally identical for every
    /// cache state (miss, fresh hit, stale hit). The cohort engine relies
    /// on this to keep journals byte-identical across `--jobs` widths.
    #[test]
    fn resolve_variants_agree_on_every_cache_state() {
        let mut ns = Namespace::new();
        let mut map = SubtreeMap::new(MdsRank(0));
        let mut files = Vec::new();
        for i in 0..4 {
            let d = ns.mkdir(InodeId::ROOT, &format!("d{i}")).unwrap();
            let sub = ns.mkdir(d, "sub").unwrap();
            for j in 0..5 {
                files.push((sub, ns.create_file(sub, &format!("f{j}"), 1).unwrap()));
            }
            if i % 2 == 0 {
                map.set_authority(FragKey::whole(d), MdsRank(1));
            }
            if i == 1 {
                map.set_authority(FragKey::whole(sub), MdsRank(2));
            }
        }
        // Three cache states: empty (miss), correct entry (fresh hit),
        // wrong entry (stale hit → one forward).
        let empty = BTreeMap::new();
        for &(dir, f) in &files {
            let hash = dentry_hash(f.raw());
            let mut fresh = BTreeMap::new();
            fresh.insert(
                dir,
                vec![(ns.frag_for_hash(dir, hash), map.authority(&ns, f))],
            );
            let mut stale = BTreeMap::new();
            stale.insert(dir, vec![(ns.frag_for_hash(dir, hash), MdsRank(9))]);
            for cache in [&empty, &fresh, &stale] {
                let live = resolve_route(cache, &ns, &map, dir, hash);
                let mut auth = AuthorityCache::new();
                let cached = resolve_route_cached(cache, &ns, &map, &mut auth, dir, hash);
                assert_eq!(live, cached, "cached variant diverged");
                // Prime a cache the way the parallel phase does, then
                // resolve through the read-only view.
                let mut primed = AuthorityCache::new();
                primed.authority(&map, &ns, dir);
                let par = resolve_route_primed(cache, &ns, &map, &primed, dir, hash);
                assert_eq!(live, par, "primed variant diverged");
                // An unprimed cache must fall back to the live walk.
                let cold = AuthorityCache::new();
                let cold_r = resolve_route_primed(cache, &ns, &map, &cold, dir, hash);
                assert_eq!(live, cold_r, "fallback path diverged");
            }
        }
    }

    #[test]
    fn resolve_learns_only_after_serve() {
        let (ns, map, d, f) = setup();
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![])), 0);
        let hash = dentry_hash(f.raw());
        let (r1, hit1) = c.resolve(&ns, &map, d, hash);
        assert!(!hit1);
        assert_eq!(r1.target, MdsRank(0));
        assert!(r1.forwards.is_empty(), "single-authority path: no forwards");
        // A retry before the op was served is still a miss (stalled ops must
        // keep paying their traversal when eventually served).
        let (_, hit_retry) = c.resolve(&ns, &map, d, hash);
        assert!(!hit_retry);
        c.learn_route(&ns, d, hash, r1.target);
        let (r2, hit2) = c.resolve(&ns, &map, d, hash);
        assert!(hit2);
        assert_eq!(
            r2,
            Route {
                target: MdsRank(0),
                forwards: vec![]
            }
        );
    }

    #[test]
    fn stale_cache_entry_causes_redirect() {
        let (ns, mut map, d, f) = setup();
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![])), 0);
        let hash = dentry_hash(f.raw());
        let (r0, _) = c.resolve(&ns, &map, d, hash);
        c.learn_route(&ns, d, hash, r0.target);
        assert!(c.cache_len() > 0);
        map.set_authority(FragKey::whole(d), MdsRank(1));
        let (r, hit) = c.resolve(&ns, &map, d, hash);
        assert!(!hit, "stale entry is not a hit");
        assert_eq!(r.target, MdsRank(1));
        // The stale rank 0 redirects the request: one forward.
        assert_eq!(r.forwards, vec![MdsRank(0)]);
    }

    #[test]
    fn cap_transfer_updates_cache_in_place() {
        let (ns, mut map, d, f) = setup();
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![])), 0);
        let hash = dentry_hash(f.raw());
        let (r0, _) = c.resolve(&ns, &map, d, hash);
        c.learn_route(&ns, d, hash, r0.target);
        map.set_authority(FragKey::whole(d), MdsRank(1));
        c.apply_migration(&ns, &FragKey::whole(d), MdsRank(1));
        let (r, hit) = c.resolve(&ns, &map, d, hash);
        assert!(hit, "cap transfer keeps the cache fresh");
        assert_eq!(r.target, MdsRank(1));
        assert!(r.forwards.is_empty());
    }

    #[test]
    fn cache_cap_evicts_fifo() {
        let mut ns = Namespace::new();
        let mut dirs = Vec::new();
        for i in 0..6 {
            let d = ns.mkdir(InodeId::ROOT, &format!("d{i}")).unwrap();
            let f = ns.create_file(d, "f", 1).unwrap();
            dirs.push((d, dentry_hash(f.raw())));
        }
        let map = SubtreeMap::new(MdsRank(0));
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![])), 0);
        c.cache_cap = 4;
        for (d, h) in &dirs {
            c.learn_route(&ns, *d, *h, MdsRank(0));
        }
        assert!(
            c.cache_len() <= 4,
            "cap must bound the cache: {}",
            c.cache_len()
        );
        assert!(c.cache_evictions > 0, "evictions must be counted");
        // The oldest entry was evicted: resolving it is a miss again.
        let (_, hit) = c.resolve(&ns, &map, dirs[0].0, dirs[0].1);
        assert!(!hit);
        // The newest entry is still cached.
        let (_, hit) = c.resolve(&ns, &map, dirs[5].0, dirs[5].1);
        assert!(hit);
    }

    #[test]
    fn rate_limiting_and_lifecycle() {
        let (ns, _map, _d, f) = setup();
        let mut c = Client::new(7, Box::new(FixedStream::new(vec![f])), 5);
        assert!(!c.can_issue(0, 10.0), "not started yet");
        assert!(c.can_issue(5, 10.0));
        assert_eq!(c.peek_op(&ns, 5), Some(MetaOp::Read(f)));
        assert_eq!(c.consume_op(7), 2, "stalled two ticks before serving");
        assert_eq!(c.ops_done, 1);
        assert_eq!(c.peek_op(&ns, 7), None);
        assert!(c.finished);
        assert!(!c.can_issue(6, 10.0));
    }

    #[test]
    fn pending_op_survives_stall() {
        let (ns, _map, _d, f) = setup();
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![f])), 0);
        // Peek twice without consuming: same op, stream not advanced.
        assert_eq!(c.peek_op(&ns, 0), Some(MetaOp::Read(f)));
        assert_eq!(c.peek_op(&ns, 3), Some(MetaOp::Read(f)));
        assert_eq!(c.consume_op(0), 0);
        assert!(c.peek_op(&ns, 4).is_none());
    }

    #[test]
    fn stalled_op_rerouted_when_target_rank_dies() {
        // Regression: a client stalls against rank 1, rank 1 crashes and
        // its subtree fails over to rank 2, and the buffered retry op must
        // re-resolve to the new authority — never route through (or to)
        // the dead rank.
        let (ns, mut map, d, f) = setup();
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![f])), 0);
        let hash = dentry_hash(f.raw());
        map.set_authority(FragKey::whole(d), MdsRank(1));
        let (r0, _) = c.resolve(&ns, &map, d, hash);
        assert_eq!(r0.target, MdsRank(1));
        c.learn_route(&ns, d, hash, r0.target);
        // The op is buffered (stalled against rank 1, which is out of
        // budget), then rank 1 dies: the failover re-homes the subtree and
        // the simulation evicts the dead rank from every client cache.
        assert_eq!(c.peek_op(&ns, 3), Some(MetaOp::Read(f)));
        map.set_authority(FragKey::whole(d), MdsRank(2));
        c.forget_rank(MdsRank(1));
        // The buffered op is still pending, and its retry resolves to the
        // survivor with a fresh traversal — no forward via the dead rank.
        assert_eq!(c.peek_op(&ns, 4), Some(MetaOp::Read(f)));
        let (r, hit) = c.resolve(&ns, &map, d, hash);
        assert!(!hit, "dead-rank entries were evicted, this is a miss");
        assert_eq!(r.target, MdsRank(2));
        assert!(
            !r.forwards.contains(&MdsRank(1)),
            "retry must not route through the crashed rank: {:?}",
            r.forwards
        );
    }

    #[test]
    fn routing_anchor_for_create_uses_next_id() {
        let (ns, _map, d, _f) = setup();
        let (dir, hash) = routing_anchor(&ns, &MetaOp::Create { parent: d, size: 0 });
        assert_eq!(dir, d);
        assert_eq!(hash, dentry_hash(InodeId::from_index(ns.len()).raw()));
    }

    #[test]
    fn codec_round_trips_cache_and_pending_op() {
        use lunule_util::codec::{Decoder, Encoder};
        let (ns, map, d, f) = setup();
        let ids = vec![f, f, f];
        let mut c = Client::new(3, Box::new(FixedStream::new(ids.clone())), 2);
        c.cache_cap = 7;
        c.data_window = 1024;
        let hash = dentry_hash(f.raw());
        let (r0, _) = c.resolve(&ns, &map, d, hash);
        c.learn_route(&ns, d, hash, r0.target);
        assert_eq!(c.peek_op(&ns, 5), Some(MetaOp::Read(f)));
        assert_eq!(c.consume_op(6), 1);
        assert_eq!(c.peek_op(&ns, 7), Some(MetaOp::Read(f)));
        c.data_pending = 99;

        let mut e = Encoder::new();
        c.encode(&mut e);
        let bytes = e.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let mut back = Client::decode(&mut dec, Box::new(FixedStream::new(ids))).unwrap();
        dec.finish().unwrap();

        assert_eq!(back.id, 3);
        assert_eq!(back.cache_cap, 7);
        assert_eq!(back.data_window, 1024);
        assert_eq!(back.data_pending, 99);
        assert_eq!(back.ops_done, 1);
        assert_eq!(back.starts_at, 2);
        assert_eq!(back.cache_len(), c.cache_len());
        // The buffered retry op survives with its first-attempt stamp.
        assert_eq!(back.peek_op(&ns, 9), Some(MetaOp::Read(f)));
        assert_eq!(back.consume_op(9), 2, "stamped at tick 7, served at 9");
        // The cache still answers and the stream resumes where it left off.
        let (_, hit) = back.resolve(&ns, &map, d, hash);
        assert!(hit, "restored cache must answer");
        assert_eq!(back.peek_op(&ns, 9), Some(MetaOp::Read(f)), "third op");
        // Re-encoding the restored client is byte-identical.
        let mut e2 = Encoder::new();
        let mut dec = Decoder::new(&bytes);
        Client::decode(&mut dec, Box::new(FixedStream::new(vec![f, f, f])))
            .unwrap()
            .encode(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_inconsistent_fifo_order() {
        use lunule_util::codec::{CodecError, Decoder, Encoder};
        let (ns, _map, d, f) = setup();
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![])), 0);
        c.learn_route(&ns, d, dentry_hash(f.raw()), MdsRank(0));
        let mut e = Encoder::new();
        c.encode(&mut e);
        let mut bytes = e.into_bytes();
        // The FIFO holds exactly one dir id, sitting right before the 54
        // bytes of fixed-width trailer fields (issued 4 + finished 1 +
        // finished_at-none 1 + six u64 counters). Flip its low byte so it
        // no longer matches the cached directory.
        let at = bytes.len() - 54 - 8;
        bytes[at] ^= 0x01;
        let mut dec = Decoder::new(&bytes);
        let got = Client::decode(&mut dec, Box::new(FixedStream::new(vec![])));
        assert!(matches!(
            got,
            Err(CodecError::Invalid {
                what: "client.cache_order"
            })
        ));
    }

    #[test]
    fn data_pending_blocks_issuing() {
        let (_ns, _map, _d, f) = setup();
        let mut c = Client::new(0, Box::new(FixedStream::new(vec![f])), 0);
        c.data_pending = 100;
        assert!(!c.can_issue(0, 10.0));
        c.data_pending = 0;
        assert!(c.can_issue(0, 10.0));
    }
}
