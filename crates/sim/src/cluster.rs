//! The simulation driver: tick loop, request routing, balancer epochs.

use crate::client::{routing_anchor, Client};
use crate::cohort::{Cohort, CohortSet, Interval};
use crate::config::{ClientModel, SimConfig};
use crate::datapath::DataPath;
use crate::latency::LatencyHistogram;
use crate::mds::MdsState;
use crate::migration::MigrationCounters;
use crate::migration::Migrator;
use crate::request::{MetaOp, OpStream};
use crate::results::{EpochRecord, RunResult};
use lunule_core::{Access, Balancer, EpochStats, OpKind};
use lunule_faults::FaultKind;
use lunule_namespace::{FragKey, MdsRank, Namespace, SubtreeMap};
use lunule_snapshot::{Snapshot, SnapshotError};
use lunule_telemetry::{Event, Telemetry};
use lunule_util::codec::{CodecError, Decoder, Encoder};
use lunule_util::convert::{
    u32_to_usize, u64_to_f64, u64_to_usize, usize_to_f64, usize_to_u32, usize_to_u64,
};
#[cfg(feature = "strict-invariants")]
use lunule_verify::InvariantChecker;

/// A running MDS-cluster simulation.
///
/// Construct with a namespace, a balancer and per-client op streams, then
/// either [`Simulation::run`] to completion or [`Simulation::run_until`]
/// interleaved with [`Simulation::add_mds`] / [`Simulation::add_clients`]
/// for the dynamic-adaptation experiments.
pub struct Simulation {
    pub(crate) cfg: SimConfig,
    pub(crate) ns: Namespace,
    pub(crate) map: SubtreeMap,
    pub(crate) mds: Vec<MdsState>,
    /// Per-client state under [`ClientModel::Legacy`]; empty otherwise.
    clients: Vec<Client>,
    /// Aggregated client state under [`ClientModel::Cohort`] (the
    /// default); `None` under the legacy model. Wrapped in `Option` so the
    /// cohort engine can temporarily move the set out while it borrows the
    /// rest of the simulation mutably.
    pub(crate) cohorts: Option<CohortSet>,
    /// Worker pool for the cohort engine's parallel resolve phase (and any
    /// future sharded work). Worker count never affects results.
    pub(crate) pool: lunule_util::par::WorkerPool,
    pub(crate) migrator: Migrator,
    pub(crate) balancer: Box<dyn Balancer>,
    pub(crate) datapath: Option<DataPath>,
    pub(crate) latency: LatencyHistogram,
    /// Resident (authoritative) inodes per rank, maintained incrementally
    /// on creates, removes, migrations, and drains.
    pub(crate) resident: Vec<u64>,
    tick: u64,
    epochs: Vec<EpochRecord>,
    /// Shared handle every layer journals into (cloned from the config;
    /// disabled by default, in which case each site is a single branch).
    pub(crate) telemetry: Telemetry,
    /// Events of `cfg.faults` injected so far (the schedule is tick-sorted,
    /// so a cursor suffices).
    fault_cursor: usize,
    /// Operator-queued faults (daemon control plane), drained at the next
    /// tick start — after the scheduled events — so their journal entries
    /// carry the tick they actually fire at.
    pending_faults: Vec<FaultKind>,
    /// Per-rank crash state: `Some((recover_at, crashed_at))` while down.
    down_until: Vec<Option<(u64, u64)>>,
    /// Capacity saved at crash time, restored on recovery.
    saved_capacity: Vec<f64>,
    /// Per-rank degradation: `Some((factor, until_tick))` while limping.
    limp: Vec<Option<(f64, u64)>>,
    /// Per-rank report loss: the rank's epoch reports are treated as
    /// missing while `tick < report_loss_until[rank]`.
    report_loss_until: Vec<u64>,
    /// Migration journal-event counts (`start`, `commit`, `abandon`)
    /// accumulated by runs *before* the last restore. A restored run's
    /// telemetry journal starts empty, so the ledger audit adds these
    /// offsets to the fresh journal's counts to reconcile against the
    /// migrator's cumulative counters. `(0, 0, 0)` for an uninterrupted run.
    journal_base: (u64, u64, u64),
    /// Per-client stall flags reused across ticks so the issue loop does
    /// not allocate every simulated second.
    stall_scratch: Vec<bool>,
    /// Per-rank route-cost accumulator reused across ops; a traversal
    /// touches a handful of ranks, and this buffer used to be allocated
    /// once per issued op.
    pub(crate) costs_scratch: Vec<(usize, f64)>,
    /// Memoized subtree-map authority lookups, shared by every resolve
    /// site. Self-invalidating on subtree-map generation bumps, so it is
    /// pure transient state: never serialized, rebuilt on demand after a
    /// restore, and worker-count-independent (the parallel resolve phase
    /// only reads a cache primed serially beforehand).
    pub(crate) auth_cache: lunule_namespace::AuthorityCache,
    /// Per-tick served-op metric accumulator, flushed to telemetry once
    /// per tick (see [`crate::tick_ledger`]). Always empty between
    /// ticks, so it is transient state like the scratch buffers above
    /// and never appears in snapshots.
    pub(crate) op_ledger: crate::tick_ledger::TickOpLedger,
    /// Cross-layer invariant auditor (strict builds only): the cheap map
    /// checks run after every tick, the full battery — conservation, frag
    /// partitions, IF-model laws — at every epoch close. Any violation
    /// panics with a readable report.
    #[cfg(feature = "strict-invariants")]
    checker: InvariantChecker,
}

impl Simulation {
    /// Builds a simulation. The balancer's `setup` hook runs here (static
    /// policies pin the namespace now); all metadata starts on rank 0
    /// otherwise, CephFS's initial single-subtree state.
    pub fn new(
        cfg: SimConfig,
        ns: Namespace,
        balancer: Box<dyn Balancer>,
        streams: Vec<Box<dyn OpStream>>,
    ) -> Self {
        // Every stream is its own group of one: distinct clients never
        // merge (cohorts only merge within a group), so this is safe for
        // arbitrary per-client streams, cloneable or not. Aggregation wins
        // come from [`Simulation::new_grouped`].
        let groups = streams.into_iter().map(|s| (s, 1)).collect();
        Self::build(cfg, ns, balancer, groups)
    }

    /// Builds a simulation whose clients arrive as *groups*: `count`
    /// identical clients per op stream, advanced as one cohort until their
    /// states diverge. This is the million-client entry point — memory and
    /// per-tick work scale with the number of *distinct* client states,
    /// not the member count. Group streams with `count > 1` must be
    /// cloneable ([`OpStream::try_clone_box`]) so cohorts can split.
    ///
    /// Under [`ClientModel::Legacy`] the groups are expanded to individual
    /// clients (clones of the group stream), which is exactly what the
    /// differential-equivalence battery compares against.
    pub fn new_grouped(
        cfg: SimConfig,
        ns: Namespace,
        balancer: Box<dyn Balancer>,
        groups: Vec<(Box<dyn OpStream>, u64)>,
    ) -> Self {
        Self::build(cfg, ns, balancer, groups)
    }

    fn build(
        cfg: SimConfig,
        ns: Namespace,
        mut balancer: Box<dyn Balancer>,
        groups: Vec<(Box<dyn OpStream>, u64)>,
    ) -> Self {
        cfg.validate();
        let telemetry = cfg.telemetry.clone();
        telemetry.emit(|| Event::RunStart {
            n_mds: usize_to_u32(cfg.n_mds),
        });
        let mut map = SubtreeMap::new(MdsRank(0));
        balancer.setup(&ns, &mut map, cfg.n_mds);
        balancer.attach_telemetry(telemetry.clone());
        let resident: Vec<u64> = map
            .inode_counts(&ns, cfg.n_mds)
            .into_iter()
            .map(usize_to_u64)
            .collect();
        let new_client = |id: usize, s: Box<dyn OpStream>| {
            let mut c = Client::new(id, s, 0);
            c.cache_cap = cfg.client_cache_cap;
            c.data_window = cfg.data_path.map(|dp| dp.client_window).unwrap_or(0);
            c
        };
        let (clients, cohorts): (Vec<Client>, Option<CohortSet>) = match cfg.client_model {
            ClientModel::Cohort => {
                let mut at = 0usize;
                let groups: Vec<(Client, u64)> = groups
                    .into_iter()
                    .map(|(s, count)| {
                        assert!(count >= 1, "client group must have at least one member");
                        assert!(
                            count == 1 || s.try_clone_box().is_some(),
                            "multi-member client group needs a cloneable op stream"
                        );
                        let c = new_client(at, s);
                        at += u64_to_usize(count);
                        (c, count)
                    })
                    .collect();
                (Vec::new(), Some(CohortSet::new(groups)))
            }
            ClientModel::Legacy => {
                let mut clients = Vec::new();
                for (s, count) in groups {
                    assert!(count >= 1, "client group must have at least one member");
                    assert!(
                        count == 1 || s.try_clone_box().is_some(),
                        "multi-member client group needs a cloneable op stream"
                    );
                    // Clones for the first count-1 members, the group's own
                    // stream for the last, so singleton groups never clone.
                    for _ in 1..count {
                        if let Some(st) = s.try_clone_box() {
                            let id = clients.len();
                            clients.push(new_client(id, st));
                        }
                    }
                    let id = clients.len();
                    clients.push(new_client(id, s));
                }
                (clients, None)
            }
        };
        let mut migrator = Migrator::new(
            cfg.migration_bw,
            cfg.migration_freeze_secs,
            cfg.migration_op_cost,
        );
        migrator.configure_retry(
            cfg.migration_timeout_ticks,
            cfg.migration_max_retries,
            cfg.migration_backoff_ticks,
        );
        migrator.set_telemetry(telemetry.clone());
        Simulation {
            mds: (0..cfg.n_mds)
                .map(|r| {
                    MdsState::new(
                        cfg.mds_capacities
                            .get(r)
                            .copied()
                            .unwrap_or(cfg.mds_capacity),
                    )
                })
                .collect(),
            migrator,
            datapath: cfg.data_path.map(|dp| DataPath::new(dp.osd_bandwidth)),
            latency: LatencyHistogram::new(),
            resident,
            clients,
            cohorts,
            pool: lunule_util::par::WorkerPool::new(cfg.jobs),
            balancer,
            ns,
            map,
            tick: 0,
            epochs: Vec::new(),
            telemetry,
            fault_cursor: 0,
            pending_faults: Vec::new(),
            down_until: vec![None; cfg.n_mds],
            saved_capacity: vec![0.0; cfg.n_mds],
            limp: vec![None; cfg.n_mds],
            report_loss_until: vec![0; cfg.n_mds],
            journal_base: (0, 0, 0),
            stall_scratch: Vec::new(),
            costs_scratch: Vec::new(),
            auth_cache: lunule_namespace::AuthorityCache::new(),
            op_ledger: crate::tick_ledger::TickOpLedger::new(cfg.n_mds),
            #[cfg(feature = "strict-invariants")]
            checker: InvariantChecker::new(lunule_core::IfModelConfig {
                mds_capacity: cfg.mds_capacity,
                ..lunule_core::IfModelConfig::default()
            }),
            cfg,
        }
    }

    /// Subtrees currently inside their commit window, paired with the
    /// exporter their authority must keep resolving to until the flip.
    #[cfg(feature = "strict-invariants")]
    fn frozen_subtrees(&self) -> Vec<(lunule_namespace::FragKey, MdsRank)> {
        self.migrator
            .jobs()
            .iter()
            .filter(|j| j.is_committing())
            .map(|j| (j.subtree, j.from))
            .collect()
    }

    /// Cheap per-tick audit: subtree-map well-formedness plus frozen-subtree
    /// stability. O(map entries), so safe to run every simulated second.
    #[cfg(feature = "strict-invariants")]
    fn audit_tick(&mut self) {
        let frozen = self.frozen_subtrees();
        self.checker.check_subtree_map(&self.ns, &self.map);
        self.checker
            .check_frozen_subtrees(&self.ns, &self.map, &frozen);
        let down: Vec<bool> = self.down_until.iter().map(Option::is_some).collect();
        self.checker.check_down_ranks(&self.map, &down);
        self.checker.assert_clean();
    }

    /// Full per-epoch audit: everything in [`Simulation::audit_tick`] plus
    /// fragment-partition coverage, migration conservation, and the
    /// IF-model laws on the epoch's load vector.
    #[cfg(feature = "strict-invariants")]
    fn audit_epoch(&mut self, iops: &[f64]) {
        let frozen = self.frozen_subtrees();
        self.checker
            .audit(&self.ns, &self.map, self.mds.len(), &frozen);
        self.checker.check_if_model(iops, &self.cfg.mds_capacities);
        // Migration lifecycle ledger: started == committed + abandoned +
        // in-flight, and — when a telemetry journal is kept — its event
        // counts must agree with the engine's counters.
        let c = self.migrator.counters();
        let journal = self.telemetry.is_enabled().then(|| {
            (
                self.journal_base.0 + self.telemetry.count_kind("migration_start"),
                self.journal_base.1 + self.telemetry.count_kind("migration_commit"),
                self.journal_base.2 + self.telemetry.count_kind("migration_abandon"),
            )
        });
        self.checker.check_migration_ledger(
            c.started_jobs,
            c.completed_jobs,
            c.abandoned_jobs,
            self.migrator.in_flight(),
            journal,
        );
        // Cohort model: member conservation against the configured client
        // total, the id-interval partition's integrity, and the shard
        // plan's coverage of the inode arena. The checker re-derives these
        // from plain data rather than trusting `CohortSet::check_invariants`
        // — an independent implementation is the point of the audit.
        if let Some(set) = &self.cohorts {
            let counts: Vec<u64> = set.cohorts.iter().map(|c| c.count).collect();
            let ids: Vec<usize> = set.cohorts.iter().map(|c| c.state.id).collect();
            let intervals: Vec<(usize, usize, usize)> = set
                .intervals
                .iter()
                .map(|iv| (iv.start, iv.len, iv.cohort))
                .collect();
            self.checker
                .check_cohort_conservation(&counts, None, usize_to_u64(set.n_clients()));
            self.checker
                .check_cohort_partition(&intervals, &counts, &ids, set.n_clients());
            let plan = lunule_namespace::ShardPlan::new(self.ns.len(), self.pool.jobs());
            let ranges: Vec<(usize, usize)> = plan.ranges().collect();
            self.checker.check_shard_coverage(&ranges, self.ns.len());
        }
        self.checker.assert_clean();
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Number of MDS ranks currently in the cluster.
    pub fn n_mds(&self) -> usize {
        self.mds.len()
    }

    /// The namespace being served (grows under create workloads).
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// The live partition map.
    pub fn subtree_map(&self) -> &SubtreeMap {
        &self.map
    }

    /// Adds one MDS rank to the cluster (Fig. 12a's expansion events).
    pub fn add_mds(&mut self) {
        let rank = usize_to_u32(self.mds.len());
        self.mds.push(MdsState::new(self.cfg.mds_capacity));
        self.resident.push(0);
        self.down_until.push(None);
        self.saved_capacity.push(0.0);
        self.limp.push(None);
        self.report_loss_until.push(0);
        self.telemetry.emit(|| Event::MdsAdd { rank });
    }

    /// Resident (authoritative) inode count per rank.
    pub fn resident_inodes(&self) -> &[u64] {
        &self.resident
    }

    /// The migrator's lifecycle counters (started/committed/abandoned
    /// ledger plus migrated-inode totals).
    pub fn migration_counters(&self) -> MigrationCounters {
        self.migrator.counters()
    }

    /// The telemetry handle this simulation journals into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Drains MDS `rank`: every subtree it is authoritative for fails over
    /// to the surviving ranks (least-loaded first), in-flight migrations
    /// touching it are abandoned, and its capacity drops to zero so it
    /// serves nothing further. Models planned decommission or failure with
    /// instant journal replay — an extension beyond the paper, which only
    /// grows the cluster.
    ///
    /// Rank indices stay stable (CephFS ranks are also stable identifiers);
    /// the drained rank simply goes dark in the per-epoch series.
    pub fn drain_mds(&mut self, rank: MdsRank) {
        assert!(rank.index() < self.mds.len(), "no such rank");
        // Zero the capacity first so the fail-over sees this rank as dead
        // and never picks it as a survivor.
        self.mds[rank.index()].capacity = 0.0;
        self.mds[rank.index()].budget = 0.0;
        let subtrees_failed_over = self.fail_over_subtrees(rank);
        self.telemetry.emit(|| Event::MdsDrain {
            rank: u32::from(rank.0),
            subtrees_failed_over,
        });
    }

    /// Re-homes every subtree `rank` is authoritative for onto the live
    /// survivors, abandoning in-flight migrations that touch the rank.
    ///
    /// Placement is load-aware: each subtree root (largest first) goes to
    /// the survivor with the lowest estimated load, where a survivor's
    /// load is its observed served rate and each re-homed subtree adds the
    /// failed rank's rate proportionally to the subtree's inode count.
    /// Ties break toward the lowest rank index, keeping the assignment
    /// fully deterministic. Returns how many subtrees were re-homed.
    fn fail_over_subtrees(&mut self, rank: MdsRank) -> u64 {
        self.migrator.abandon_jobs_touching(rank);
        let survivors: Vec<MdsRank> = (0..self.mds.len())
            .filter(|r| *r != rank.index() && self.mds[*r].capacity > 0.0)
            .map(MdsRank::from_index)
            .collect();
        assert!(!survivors.is_empty(), "no live rank to fail over to");
        // Subtree roots to move, largest first; deterministic order via
        // (inode count desc, dir, frag).
        let mut roots: Vec<(FragKey, u64)> = self
            .map
            .subtree_roots_of(rank)
            .into_iter()
            .map(|k| {
                let n = usize_to_u64(self.ns.subtree_inode_count(k.dir, &k.frag));
                (k, n)
            })
            .collect();
        roots.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0.dir.cmp(&b.0.dir))
                .then(a.0.frag.cmp(&b.0.frag))
        });
        let elapsed = u64_to_f64(self.tick.max(1));
        let failed_rate = u64_to_f64(self.mds[rank.index()].served_total) / elapsed;
        let failing_inodes: u64 = roots.iter().map(|(_, n)| *n).sum();
        let rate_per_inode = failed_rate / u64_to_f64(failing_inodes.max(1));
        let mut est: Vec<f64> = survivors
            .iter()
            .map(|s| u64_to_f64(self.mds[s.index()].served_total) / elapsed)
            .collect();
        let argmin = |est: &[f64]| {
            let mut best = 0usize;
            for (i, e) in est.iter().enumerate() {
                if *e < est[best] {
                    best = i;
                }
            }
            best
        };
        let mut failed_over = 0u64;
        for (key, n) in &roots {
            let best = argmin(&est);
            self.map.set_authority(*key, survivors[best]);
            est[best] += u64_to_f64(*n) * rate_per_inode;
            failed_over += 1;
        }
        // If the failed rank held the implicit root subtree, re-point the
        // root default at the least-loaded survivor — the default cannot be
        // shadowed for `/` itself, so it must be rewritten, not overlaid.
        if self.map.root_rank() == rank {
            self.map.set_root_rank(survivors[argmin(&est)]);
            failed_over += 1;
        }
        self.map.simplify(&self.ns);
        // A dead rank cannot even answer redirects: evict it from every
        // client's cache so the next access pays a fresh traversal instead
        // of stalling against a zero-capacity rank forever.
        for c in &mut self.clients {
            c.forget_rank(rank);
        }
        if let Some(set) = &mut self.cohorts {
            set.for_each_state_mut(|st, _| st.forget_rank(rank));
        }
        // Failover rewrote authorities wholesale; recompute residency.
        self.resident = self
            .map
            .inode_counts(&self.ns, self.mds.len())
            .into_iter()
            .map(usize_to_u64)
            .collect();
        failed_over
    }

    /// Injects every scheduled fault whose tick the clock has reached.
    fn apply_fault_events(&mut self, tick: u64) {
        while let Some(event) = self.cfg.faults.events().get(self.fault_cursor).copied() {
            if event.at_tick > tick {
                break;
            }
            self.fault_cursor += 1;
            self.inject_fault(event.kind, tick);
        }
    }

    /// Applies one fault. Invalid targets (unknown rank, already-down rank,
    /// last live rank for a crash) are skipped silently — seeded schedules
    /// draw ranks blind and the simulator is the safety net.
    fn inject_fault(&mut self, kind: FaultKind, tick: u64) {
        let rank = kind.rank();
        if rank.index() >= self.mds.len() {
            return;
        }
        if self.down_until[rank.index()].is_some() {
            return;
        }
        if let FaultKind::Crash { .. } = kind {
            let has_live_survivor = self
                .mds
                .iter()
                .enumerate()
                .any(|(i, m)| i != rank.index() && m.capacity > 0.0);
            if !has_live_survivor {
                return;
            }
        }
        self.telemetry.counter_add("faults.injected", 1);
        self.telemetry.emit(|| Event::FaultInjected {
            kind: kind.label().to_string(),
            rank: u32::from(rank.0),
            param: kind.param(),
        });
        match kind {
            FaultKind::Crash { rank, down_ticks } => {
                self.telemetry.emit(|| Event::RankCrashed {
                    rank: u32::from(rank.0),
                    down_ticks,
                });
                self.saved_capacity[rank.index()] = self.mds[rank.index()].capacity;
                self.down_until[rank.index()] = Some((tick.saturating_add(down_ticks), tick));
                self.mds[rank.index()].capacity = 0.0;
                self.mds[rank.index()].budget = 0.0;
                self.fail_over_subtrees(rank);
            }
            FaultKind::Limp {
                rank,
                factor,
                duration_ticks,
            } => {
                self.limp[rank.index()] = Some((factor, tick.saturating_add(duration_ticks)));
            }
            FaultKind::ReportLoss { rank, epochs } => {
                let until = tick.saturating_add(epochs.saturating_mul(self.cfg.epoch_secs));
                let slot = &mut self.report_loss_until[rank.index()];
                *slot = (*slot).max(until);
            }
            FaultKind::MigrationStall {
                rank,
                duration_ticks,
            } => {
                self.migrator
                    .set_exporter_stall(rank, tick.saturating_add(duration_ticks));
            }
        }
    }

    /// Brings crashed ranks whose outage elapsed back online. A recovered
    /// rank rejoins *empty* (its subtrees failed over at crash time) with
    /// its original capacity; the balancer re-fills it over the following
    /// epochs.
    fn recover_ranks(&mut self, tick: u64) {
        for i in 0..self.mds.len() {
            let Some((recover_at, crashed_at)) = self.down_until[i] else {
                continue;
            };
            if tick < recover_at {
                continue;
            }
            self.down_until[i] = None;
            self.mds[i].capacity = self.saved_capacity[i];
            self.telemetry.counter_add("faults.recovered", 1);
            self.telemetry.emit(|| Event::RankRecovered {
                rank: usize_to_u32(i),
                down_ticks: tick.saturating_sub(crashed_at),
            });
        }
    }

    /// Per-rank crash status (`true` = currently down).
    pub fn down_ranks(&self) -> Vec<bool> {
        self.down_until.iter().map(Option::is_some).collect()
    }

    /// True when `rank` is currently crashed.
    pub fn is_rank_down(&self, rank: MdsRank) -> bool {
        self.down_until
            .get(rank.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Migration jobs the ledger counts as in flight: transferring,
    /// committing, or parked awaiting a retry.
    pub fn inflight_migrations(&self) -> u64 {
        self.migrator.in_flight()
    }

    /// Adds clients mid-run; they start issuing on the next tick (Fig. 12b's
    /// staged client arrival).
    pub fn add_clients(&mut self, streams: Vec<Box<dyn OpStream>>) {
        let count = usize_to_u64(streams.len());
        let start = self.tick;
        let cap = self.cfg.client_cache_cap;
        let window = self.cfg.data_path.map(|dp| dp.client_window).unwrap_or(0);
        let new_client = |id: usize, s: Box<dyn OpStream>| {
            let mut c = Client::new(id, s, start);
            c.cache_cap = cap;
            c.data_window = window;
            c
        };
        match &mut self.cohorts {
            Some(set) => {
                for s in streams {
                    let id = set.n_clients();
                    set.append_group(new_client(id, s), 1);
                }
            }
            None => {
                let base = self.clients.len();
                self.clients.extend(
                    streams
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| new_client(base + i, s)),
                );
            }
        }
        self.telemetry.emit(|| Event::ClientsAdd { count });
    }

    /// True once every client has drained its stream and data debt.
    pub fn all_done(&self) -> bool {
        match &self.cohorts {
            Some(set) => set.all_done(),
            None => self
                .clients
                .iter()
                .all(|c| c.finished && c.data_pending == 0),
        }
    }

    /// Runs until `deadline` (simulated seconds) or until all clients are
    /// done when `stop_when_done` is set.
    pub fn run_until(&mut self, deadline: u64) {
        while self.tick < deadline.min(self.cfg.duration_secs) {
            if self.cfg.stop_when_done && self.all_done() {
                break;
            }
            self.step_tick();
        }
    }

    /// Advances the simulation by exactly one tick, honoring the same stop
    /// conditions as [`Simulation::run_until`]: returns `false` (without
    /// stepping) once the configured duration is reached or, under
    /// `stop_when_done`, once every client has drained. A loop of `step()`
    /// calls is therefore tick-for-tick identical to one `run_until` over
    /// the full duration — the daemon's pacing layer relies on this.
    pub fn step(&mut self) -> bool {
        if self.tick >= self.cfg.duration_secs {
            return false;
        }
        if self.cfg.stop_when_done && self.all_done() {
            return false;
        }
        self.step_tick();
        true
    }

    /// Queues a fault for injection at the start of the next tick, after
    /// any events the configured schedule has due. Going through the queue
    /// (rather than injecting immediately) stamps the fault's journal
    /// events with the tick it takes effect on, exactly like a scheduled
    /// fault — the daemon's interactive `crash`/`limp`/... commands land
    /// here.
    pub fn queue_fault(&mut self, kind: FaultKind) {
        self.pending_faults.push(kind);
    }

    /// Schedules a crashed rank for recovery at the start of the next tick
    /// regardless of its remaining outage (the operator's `recover`
    /// command). Returns `false` when the rank is unknown or not down.
    pub fn force_recover(&mut self, rank: MdsRank) -> bool {
        let Some(slot) = self.down_until.get_mut(rank.index()) else {
            return false;
        };
        let Some((_, crashed_at)) = *slot else {
            return false;
        };
        *slot = Some((0, crashed_at));
        true
    }

    /// Sets a named balancer tuning knob (see [`Balancer::set_knob`]),
    /// journaling a `knob_set` event when the policy accepts it. Returns
    /// whether the knob was applied.
    pub fn set_balancer_knob(&mut self, name: &str, value: f64) -> bool {
        let applied = self.balancer.set_knob(name, value);
        if applied {
            let name = name.to_string();
            self.telemetry.emit(|| Event::KnobSet { name, value });
        }
        applied
    }

    /// Number of clients attached (including finished ones). Under the
    /// cohort model this counts *members*, not cohorts.
    pub fn n_clients(&self) -> usize {
        match &self.cohorts {
            Some(set) => set.n_clients(),
            None => self.clients.len(),
        }
    }

    /// Number of distinct client flows currently materialised: cohorts
    /// under the cohort model (the quantity per-tick work scales with),
    /// individual clients under the legacy model.
    pub fn n_flows(&self) -> usize {
        match &self.cohorts {
            Some(set) => set.n_cohorts(),
            None => self.clients.len(),
        }
    }

    /// Total metadata operations completed by all clients so far.
    pub fn total_ops(&self) -> u64 {
        match &self.cohorts {
            Some(set) => set.total_ops(),
            None => self.clients.iter().map(|c| c.ops_done).sum(),
        }
    }

    /// The configuration this simulation was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs the whole configured duration and returns the results.
    pub fn run(mut self) -> RunResult {
        self.run_until(self.cfg.duration_secs);
        self.finish()
    }

    /// Finalises the run: flushes a partial epoch and assembles results.
    pub fn finish(mut self) -> RunResult {
        if self.mds.iter().any(|m| m.epoch_requests() > 0) {
            self.close_epoch();
        }
        RunResult {
            balancer: self.balancer.name().to_string(),
            per_mds_requests_total: self.mds.iter().map(|m| m.served_total).collect(),
            per_mds_forwards_total: self.mds.iter().map(|m| m.forwards_total).collect(),
            client_completion_secs: match &self.cohorts {
                Some(set) => set.completion_expanded(),
                None => self
                    .clients
                    .iter()
                    .map(|c| {
                        if c.finished && c.data_pending == 0 {
                            c.finished_at
                        } else {
                            None
                        }
                    })
                    .collect(),
            },
            duration_secs: self.tick,
            total_ops: self.total_ops(),
            final_inodes: self.ns.len(),
            rejected_choices: self.migrator.counters().rejected_choices,
            latency: self.latency,
            epochs: self.epochs,
        }
    }

    /// One simulated second.
    fn step_tick(&mut self) {
        let tick = self.tick;
        // Telemetry timestamps derive from the simulated clock, never wall
        // time, so journals from same-seed runs are byte-identical.
        self.telemetry.begin_tick(tick, || Event::TickStart);

        // 0. Fault schedule: inject everything due this tick (scheduled
        // events first, then operator-queued ones), then bring ranks whose
        // outage has elapsed back online.
        self.apply_fault_events(tick);
        if !self.pending_faults.is_empty() {
            let queued = std::mem::take(&mut self.pending_faults);
            for kind in queued {
                self.inject_fault(kind, tick);
            }
        }
        self.recover_ranks(tick);

        // 1. Migration progress; transfer costs drain MDS budgets. A rank
        // whose resident metadata exceeds the memory limit thrashes its
        // cache against the object store and serves at reduced rate; a
        // limping rank is further degraded by its fault factor. The two
        // compose multiplicatively.
        let limit = self.cfg.mds_memory_inodes;
        for (i, m) in self.mds.iter_mut().enumerate() {
            let mut factor = 1.0;
            if limit > 0 && self.resident.get(i).copied().unwrap_or(0) > limit {
                factor *= self.cfg.memory_thrash_factor;
            }
            if let Some((f, until)) = self.limp[i] {
                if tick < until {
                    factor *= f;
                } else {
                    self.limp[i] = None;
                }
            }
            if factor < 1.0 {
                m.refill_scaled(factor);
            } else {
                m.refill();
            }
        }
        for (rank, cost) in self.migrator.step(&self.ns, &mut self.map, tick) {
            if rank.index() < self.mds.len() {
                self.mds[rank.index()].drain(cost);
            }
        }
        // Cap/session transfer: clients working in a migrated subtree are
        // handed to the importer at commit (no per-client redirect storm).
        // Resident accounting moves with the subtree.
        for job in self.migrator.completed_last_step().to_vec() {
            for c in &mut self.clients {
                c.apply_migration(&self.ns, &job.subtree, job.to);
            }
            if let Some(set) = &mut self.cohorts {
                let ns = &self.ns;
                set.for_each_state_mut(|st, _| st.apply_migration(ns, &job.subtree, job.to));
            }
            if let Some(r) = self.resident.get_mut(job.from.index()) {
                *r = r.saturating_sub(job.total_inodes);
            }
            if let Some(r) = self.resident.get_mut(job.to.index()) {
                *r += job.total_inodes;
            }
        }

        // 2. Data-path progress frees blocked clients.
        if self.cohorts.is_some() {
            if let Some(dp) = &self.datapath {
                let bandwidth = dp.bandwidth();
                self.cohort_datapath_step(bandwidth);
            }
            self.cohort_tick_reset(tick);
        } else {
            if let Some(dp) = &self.datapath {
                dp.step(&mut self.clients);
            }
            for c in &mut self.clients {
                c.issued_this_tick = 0;
                if c.finished && c.data_pending == 0 && c.finished_at.is_none() {
                    c.finished_at = Some(tick);
                }
            }
        }

        // 3. Closed-loop issue rounds: one op per client per round, rotating
        // the starting client for fairness, until nobody can make progress.
        if self.cohorts.is_some() {
            self.cohort_issue_rounds(tick);
        } else {
            let n_clients = self.clients.len();
            if n_clients > 0 {
                let offset = u64_to_usize(tick) % n_clients;
                self.stall_scratch.clear();
                self.stall_scratch.resize(n_clients, false);
                loop {
                    let mut progressed = false;
                    for i in 0..n_clients {
                        let idx = (offset + i) % n_clients;
                        if self.stall_scratch[idx] {
                            continue;
                        }
                        match self.try_issue(idx, tick) {
                            IssueOutcome::Served => progressed = true,
                            IssueOutcome::Stalled | IssueOutcome::Inactive => {
                                self.stall_scratch[idx] = true;
                            }
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
            }
        }

        // The tick's served-op metrics reach telemetry as one batch, so
        // every between-tick reader sees fully settled totals.
        self.op_ledger.flush(&self.telemetry);

        // 4. Epoch boundary: stats, balancer, plan execution.
        self.tick += 1;
        if self.tick.is_multiple_of(self.cfg.epoch_secs) {
            self.close_epoch();
        }
        #[cfg(feature = "strict-invariants")]
        self.audit_tick();
    }

    /// Attempts to issue one op for client `idx`.
    fn try_issue(&mut self, idx: usize, tick: u64) -> IssueOutcome {
        let client = &mut self.clients[idx];
        if !client.can_issue(tick, self.cfg.client_rate) {
            if client.finished && client.data_pending == 0 && client.finished_at.is_none() {
                client.finished_at = Some(tick);
            }
            return IssueOutcome::Inactive;
        }
        let Some(op) = client.peek_op(&self.ns, tick) else {
            if client.data_pending == 0 && client.finished_at.is_none() {
                client.finished_at = Some(tick);
            }
            return IssueOutcome::Inactive;
        };

        // Frozen subtrees stall their ops for the commit window.
        if self.migrator.is_frozen(&self.ns, op.anchor()) {
            return IssueOutcome::Stalled;
        }

        let (dir, hash) = routing_anchor(&self.ns, &op);
        let (route, _hit) =
            client.resolve_with(&self.ns, &self.map, &mut self.auth_cache, dir, hash);

        // Budget check across the whole route, aggregated per rank — a
        // traversal can cross the same rank more than once (e.g. 0→1→0→2),
        // so per-hop checks alone would over-commit a nearly drained MDS.
        let target_idx = route.target.index();
        if target_idx >= self.mds.len() {
            return IssueOutcome::Stalled;
        }
        self.costs_scratch.clear();
        let add_cost = |costs: &mut Vec<(usize, f64)>, idx: usize| match costs
            .iter_mut()
            .find(|(i, _)| *i == idx)
        {
            Some((_, c)) => *c += 1.0,
            None => costs.push((idx, 1.0)),
        };
        for r in &route.forwards {
            if r.index() >= self.mds.len() {
                return IssueOutcome::Stalled;
            }
            add_cost(&mut self.costs_scratch, r.index());
        }
        add_cost(&mut self.costs_scratch, target_idx);
        if self
            .costs_scratch
            .iter()
            .any(|(idx, cost)| self.mds[*idx].budget < *cost)
        {
            return IssueOutcome::Stalled;
        }
        for (idx, cost) in &self.costs_scratch {
            let ok = self.mds[*idx].try_consume(*cost);
            debug_assert!(ok, "budget pre-checked per rank");
        }
        for r in &route.forwards {
            self.mds[r.index()].record_forward();
        }
        self.mds[target_idx].record_served();

        // Execute the op.
        let (ino, kind, data_bytes) = match op {
            MetaOp::Read(ino) => {
                let size = self.ns.inode(ino).size();
                (ino, OpKind::Read, size)
            }
            MetaOp::Create { parent, size } => {
                let name = format!("c{}_{}", client.id, client.ops_done);
                match self.ns.create_file(parent, &name, size) {
                    Ok(id) => {
                        client.notify_created(id);
                        (id, OpKind::Create, size)
                    }
                    // Streams only create under live directories; a failure
                    // means the op went stale. Account it against the parent
                    // as a plain read so the stream still advances.
                    Err(e) => {
                        debug_assert!(false, "stale create under {parent:?}: {e}");
                        (parent, OpKind::Read, 0)
                    }
                }
            }
            MetaOp::Remove(ino) => (ino, OpKind::Remove, 0),
        };
        let stall_ticks = client.consume_op(tick);
        self.latency.record(stall_ticks);
        if self.telemetry.is_enabled() {
            self.op_ledger.record(route.target.index(), stall_ticks, 1);
        }
        client.learn_route(&self.ns, dir, hash, route.target);
        if self.datapath.is_some() && data_bytes > 0 {
            client.data_pending += data_bytes;
        }
        // Record the access while the inode is still resolvable, then apply
        // the unlink for removes. Resident metadata follows creates/removes.
        self.balancer.record_access(
            &self.ns,
            Access {
                ino,
                served_by: route.target,
                kind,
            },
        );
        match kind {
            OpKind::Create => {
                if let Some(r) = self.resident.get_mut(route.target.index()) {
                    *r += 1;
                }
            }
            OpKind::Remove => {
                // Streams only remove live files; swallow a stale remove
                // rather than abort the whole simulation on a workload bug.
                let removed = self.ns.unlink(ino);
                debug_assert!(removed.is_ok(), "stale remove of {ino:?}");
                if removed.is_ok() {
                    if let Some(r) = self.resident.get_mut(route.target.index()) {
                        *r = r.saturating_sub(1);
                    }
                }
            }
            OpKind::Read => {}
        }
        IssueOutcome::Served
    }

    /// Epoch boundary bookkeeping: record the epoch, consult the balancer,
    /// enqueue its plan.
    fn close_epoch(&mut self) {
        let _span = self.telemetry.span("sim.close_epoch");
        let epoch = usize_to_u64(self.epochs.len());
        let epoch_secs = u64_to_f64(self.cfg.epoch_secs);
        let requests: Vec<u64> = self.mds.iter().map(|m| m.epoch_requests()).collect();
        // A crashed rank files no load report; a report-loss fault drops an
        // otherwise-healthy rank's report on the floor. Either way the
        // balancer sees the rank as missing and falls back to its last
        // known-good figure (see `LunuleBalancer::patch_missing_reports`).
        let missing: Vec<bool> = (0..self.mds.len())
            .map(|i| self.down_until[i].is_some() || self.tick < self.report_loss_until[i])
            .collect();
        let stats = EpochStats::new(epoch, epoch_secs, requests).with_missing(missing);
        let record = EpochRecord {
            migrated_inodes_cum: self.migrator.counters().migrated_inodes,
            forwards_cum: self.mds.iter().map(|m| m.forwards_total).sum(),
            active_clients: match &self.cohorts {
                Some(set) => set.active_members(),
                None => self
                    .clients
                    .iter()
                    .filter(|c| !c.finished || c.data_pending > 0)
                    .count(),
            },
            inflight_migrations: u64_to_usize(self.migrator.in_flight()),
            per_mds_resident_inodes: self.resident.clone(),
            ..EpochRecord::from_stats(&stats, self.tick, self.cfg.mds_capacity)
        };
        if self.telemetry.is_enabled() {
            for (r, iops) in record.per_mds_iops.iter().enumerate() {
                self.telemetry.gauge_set("mds.iops", usize_to_u32(r), *iops);
            }
            for (r, res) in self.resident.iter().enumerate() {
                self.telemetry
                    .gauge_set("mds.resident_inodes", usize_to_u32(r), u64_to_f64(*res));
            }
            for (r, m) in self.mds.iter().enumerate() {
                self.telemetry
                    .gauge_set("mds.utilisation", usize_to_u32(r), m.utilisation());
            }
            self.telemetry
                .gauge_set("clients.active", 0, usize_to_f64(record.active_clients));
            let evictions: u64 = match &self.cohorts {
                Some(set) => set.evictions_total(),
                None => self.clients.iter().map(|c| c.cache_evictions).sum(),
            };
            self.telemetry
                .gauge_set("clients.cache_evictions", 0, u64_to_f64(evictions));
        }
        let (record_if, record_iops) = (record.imbalance_factor, record.total_iops);
        self.epochs.push(record);

        let mut plan = self.balancer.on_epoch(&self.ns, &self.map, &stats);
        // Never migrate into (or out of) a dead rank: a drained MDS reports
        // zero load, which a capacity-unaware policy reads as spare room.
        plan.exports.retain(|t| {
            let alive = |r: lunule_namespace::MdsRank| {
                self.mds
                    .get(r.index())
                    .map(|m| m.capacity > 0.0)
                    .unwrap_or(false)
            };
            alive(t.from) && alive(t.to)
        });
        let plan_subtrees = usize_to_u64(plan.subtree_count());
        if !plan.is_empty() {
            self.migrator
                .enqueue_plan(&mut self.ns, &self.map, &plan, self.tick);
        }
        self.telemetry.emit(|| Event::EpochClose {
            epoch,
            imbalance_factor: record_if,
            total_iops: record_iops,
            plan_subtrees,
        });
        for m in &mut self.mds {
            m.reset_epoch();
        }
        // Cohorts whose members re-converged (same stream position, cache,
        // debt) merge back into one flow. Epoch close is the natural seam:
        // it bounds within-tick divergence growth without scanning every
        // tick, and runs at a point where no issue round is in flight.
        if let Some(set) = &mut self.cohorts {
            set.merge_equal_states();
        }
        #[cfg(feature = "strict-invariants")]
        {
            let iops = self
                .epochs
                .last()
                .map(|e| e.per_mds_iops.clone())
                .unwrap_or_default();
            self.audit_epoch(&iops);
        }
    }

    /// Captures the complete simulation state into a snapshot container.
    ///
    /// A snapshot is always taken *between* ticks: everything tick
    /// `self.now() - 1` did is included, nothing of tick `self.now()` has
    /// happened yet. Restoring via [`Simulation::restore`] and stepping on
    /// produces the byte-identical telemetry journal an uninterrupted run
    /// would have written — that is the contract the daemon's crash-safety
    /// and the warm-started benches rely on.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new(
            self.tick,
            self.cfg.seed,
            crate::config::config_digest(&self.cfg),
        );

        let mut e = Encoder::new();
        self.ns.encode(&mut e);
        snap.push_section("namespace", e.into_bytes());

        let mut e = Encoder::new();
        self.map.encode(&mut e);
        snap.push_section("subtrees", e.into_bytes());

        // MDS budgets/counters plus the incremental residency ledger (kept
        // verbatim rather than recomputed, so restarts cannot drift).
        let mut e = Encoder::new();
        e.put_seq(&self.mds, |e, m| {
            e.put_f64(m.capacity);
            e.put_f64(m.budget);
            e.put_u64(m.served_epoch);
            e.put_u64(m.forwards_epoch);
            e.put_u64(m.served_total);
            e.put_u64(m.forwards_total);
        });
        e.put_seq(&self.resident, |e, r| e.put_u64(*r));
        snap.push_section("mds", e.into_bytes());

        // Client state: one section per model, so a cross-model restore
        // fails on a missing section even before the digest check would.
        match &self.cohorts {
            Some(set) => {
                let mut e = Encoder::new();
                encode_cohorts(set, &mut e);
                snap.push_section("cohorts", e.into_bytes());
            }
            None => {
                let mut e = Encoder::new();
                e.put_seq(&self.clients, |e, c| c.encode(e));
                snap.push_section("clients", e.into_bytes());
            }
        }

        let mut e = Encoder::new();
        self.migrator.save_state(&mut e);
        snap.push_section("migrator", e.into_bytes());

        // The policy name is written alongside its state so a restore with
        // the wrong balancer fails loudly instead of misreading the bytes.
        let mut e = Encoder::new();
        e.put_str(self.balancer.name());
        self.balancer.save_state(&mut e);
        snap.push_section("balancer", e.into_bytes());

        let mut e = Encoder::new();
        self.latency.encode(&mut e);
        e.put_seq(&self.epochs, |e, r| r.encode(e));
        snap.push_section("results", e.into_bytes());

        let mut e = Encoder::new();
        e.put_usize(self.fault_cursor);
        e.put_seq(&self.pending_faults, |e, k| k.encode(e));
        e.put_seq(&self.down_until, |e, v| {
            e.put_option(v, |e, (recover_at, crashed_at)| {
                e.put_u64(*recover_at);
                e.put_u64(*crashed_at);
            });
        });
        e.put_seq(&self.saved_capacity, |e, c| e.put_f64(*c));
        e.put_seq(&self.limp, |e, v| {
            e.put_option(v, |e, (factor, until)| {
                e.put_f64(*factor);
                e.put_u64(*until);
            });
        });
        e.put_seq(&self.report_loss_until, |e, t| e.put_u64(*t));
        snap.push_section("faults", e.into_bytes());

        // Stamping position plus cumulative migration journal counts; the
        // restored run's fresh journal continues from this position and the
        // ledger audit offsets its counts by these totals.
        let (clock, seq) = self.telemetry.clock_position();
        let mut e = Encoder::new();
        e.put_u64(clock);
        e.put_u64(seq);
        e.put_u64(self.journal_base.0 + self.telemetry.count_kind("migration_start"));
        e.put_u64(self.journal_base.1 + self.telemetry.count_kind("migration_commit"));
        e.put_u64(self.journal_base.2 + self.telemetry.count_kind("migration_abandon"));
        snap.push_section("telemetry", e.into_bytes());

        snap
    }

    /// Rebuilds a simulation from a snapshot and continues byte-identically.
    ///
    /// The caller supplies the same *inputs* the original run was built
    /// from — the configuration (whose digest must match the snapshot's),
    /// a freshly constructed balancer of the same policy, and one freshly
    /// built op stream per original client — and the snapshot supplies all
    /// *state*: the namespace replaces whatever the streams were built
    /// against, stream cursors/RNG positions are replayed via
    /// [`OpStream::load_state`], and the balancer's dynamic state via
    /// [`Balancer::load_state`] (its `setup` hook does **not** run again).
    /// No `RunStart` event is re-emitted; telemetry stamping resumes from
    /// the saved position.
    pub fn restore(
        cfg: SimConfig,
        mut balancer: Box<dyn Balancer>,
        streams: Vec<Box<dyn OpStream>>,
        snap: &Snapshot,
    ) -> Result<Self, SnapshotError> {
        cfg.validate();
        snap.check_digest(crate::config::config_digest(&cfg))?;
        if snap.seed != cfg.seed {
            return Err(SnapshotError::DigestMismatch {
                found: snap.seed,
                expected: cfg.seed,
            });
        }
        let telemetry = cfg.telemetry.clone();

        let ns = decode_section(snap, "namespace", Namespace::decode)?;
        let map = decode_section(snap, "subtrees", SubtreeMap::decode)?;

        let (mds, resident) = decode_section(snap, "mds", |d| {
            let mds = d.get_seq("mds states", |d| {
                let mut m = MdsState::new(1.0);
                m.capacity = d.get_f64("mds.capacity")?;
                m.budget = d.get_f64("mds.budget")?;
                m.served_epoch = d.get_u64("mds.served_epoch")?;
                m.forwards_epoch = d.get_u64("mds.forwards_epoch")?;
                m.served_total = d.get_u64("mds.served_total")?;
                m.forwards_total = d.get_u64("mds.forwards_total")?;
                if !m.capacity.is_finite()
                    || m.capacity < 0.0
                    || !m.budget.is_finite()
                    || m.budget < 0.0
                {
                    return Err(CodecError::Invalid {
                        what: "mds.capacity",
                    });
                }
                Ok(m)
            })?;
            let resident = d.get_seq("mds residency", |d| d.get_u64("mds.resident"))?;
            // The cluster only ever grows, and every parallel ledger is
            // indexed by rank.
            if mds.len() < cfg.n_mds || resident.len() != mds.len() {
                return Err(CodecError::Invalid { what: "mds.count" });
            }
            Ok((mds, resident))
        })?;
        let n_ranks = mds.len();
        if map.root_rank().index() >= n_ranks
            || map.all_entries().iter().any(|(_, r)| r.index() >= n_ranks)
        {
            return Err(SnapshotError::Decode {
                section: "subtrees",
                source: CodecError::Invalid {
                    what: "subtree rank",
                },
            });
        }

        // Client state: the model is part of the config digest, so the
        // matching section is guaranteed present for an honest snapshot —
        // a tampered one fails on the missing section. Under the cohort
        // model `streams` carries one stream per *group*, not per member.
        let (clients, cohorts) = match cfg.client_model {
            ClientModel::Legacy => {
                let clients = decode_section(snap, "clients", |d| {
                    let n = d.get_usize("clients")?;
                    if n != streams.len() {
                        return Err(CodecError::Invalid { what: "clients" });
                    }
                    let mut clients = Vec::with_capacity(n);
                    for (i, stream) in streams.into_iter().enumerate() {
                        let c = Client::decode(d, stream)?;
                        if c.id != i {
                            return Err(CodecError::Invalid { what: "client.id" });
                        }
                        clients.push(c);
                    }
                    Ok(clients)
                })?;
                (clients, None)
            }
            ClientModel::Cohort => {
                let set = decode_section(snap, "cohorts", |d| decode_cohorts(d, streams))?;
                (Vec::new(), Some(set))
            }
        };

        let mut migrator = Migrator::new(
            cfg.migration_bw,
            cfg.migration_freeze_secs,
            cfg.migration_op_cost,
        );
        migrator.configure_retry(
            cfg.migration_timeout_ticks,
            cfg.migration_max_retries,
            cfg.migration_backoff_ticks,
        );
        migrator.set_telemetry(telemetry.clone());
        decode_section(snap, "migrator", |d| migrator.load_state(d))?;

        balancer.attach_telemetry(telemetry.clone());
        decode_section(snap, "balancer", |d| {
            let name = d.get_str("balancer.name")?;
            if name != balancer.name() {
                return Err(CodecError::Invalid {
                    what: "balancer.name",
                });
            }
            balancer.load_state(d)
        })?;

        let (latency, epochs) = decode_section(snap, "results", |d| {
            let latency = LatencyHistogram::decode(d)?;
            let epochs = d.get_seq("epoch records", EpochRecord::decode)?;
            Ok((latency, epochs))
        })?;

        let (fault_cursor, pending_faults, down_until, saved_capacity, limp, report_loss_until) =
            decode_section(snap, "faults", |d| {
                let cursor = d.get_usize("fault.cursor")?;
                if cursor > cfg.faults.events().len() {
                    return Err(CodecError::Invalid {
                        what: "fault.cursor",
                    });
                }
                let pending = d.get_seq("fault.pending", FaultKind::decode)?;
                let down = d.get_seq("fault.down", |d| {
                    d.get_option("fault.down_until", |d| {
                        Ok((
                            d.get_u64("fault.recover_at")?,
                            d.get_u64("fault.crashed_at")?,
                        ))
                    })
                })?;
                let saved = d.get_seq("fault.saved_capacity", |d| {
                    d.get_f64("fault.saved_capacity")
                })?;
                let limp = d.get_seq("fault.limp", |d| {
                    d.get_option("fault.limp_entry", |d| {
                        Ok((
                            d.get_f64("fault.limp_factor")?,
                            d.get_u64("fault.limp_until")?,
                        ))
                    })
                })?;
                let loss = d.get_seq("fault.report_loss", |d| d.get_u64("fault.report_loss"))?;
                if down.len() != n_ranks
                    || saved.len() != n_ranks
                    || limp.len() != n_ranks
                    || loss.len() != n_ranks
                {
                    return Err(CodecError::Invalid {
                        what: "fault.ranks",
                    });
                }
                Ok((cursor, pending, down, saved, limp, loss))
            })?;

        let (clock, seq, journal_base) = decode_section(snap, "telemetry", |d| {
            let clock = d.get_u64("telemetry.clock")?;
            let seq = d.get_u64("telemetry.seq")?;
            let base = (
                d.get_u64("telemetry.migration_start")?,
                d.get_u64("telemetry.migration_commit")?,
                d.get_u64("telemetry.migration_abandon")?,
            );
            Ok((clock, seq, base))
        })?;
        telemetry.restore_clock_position(clock, seq);

        Ok(Simulation {
            mds,
            migrator,
            datapath: cfg.data_path.map(|dp| DataPath::new(dp.osd_bandwidth)),
            latency,
            resident,
            clients,
            cohorts,
            pool: lunule_util::par::WorkerPool::new(cfg.jobs),
            balancer,
            ns,
            map,
            tick: snap.tick,
            epochs,
            telemetry,
            fault_cursor,
            pending_faults,
            down_until,
            saved_capacity,
            limp,
            report_loss_until,
            journal_base,
            stall_scratch: Vec::new(),
            costs_scratch: Vec::new(),
            auth_cache: lunule_namespace::AuthorityCache::new(),
            op_ledger: crate::tick_ledger::TickOpLedger::new(cfg.n_mds),
            #[cfg(feature = "strict-invariants")]
            checker: InvariantChecker::new(lunule_core::IfModelConfig {
                mds_capacity: cfg.mds_capacity,
                ..lunule_core::IfModelConfig::default()
            }),
            cfg,
        })
    }
}

/// Writes a cohort set's persistent state.
///
/// Cohorts are written in canonical-member-id order, *not* internal index
/// order: indices depend on the split/merge history (an uninterrupted run
/// and a restored one can interleave slots differently), while the lowest
/// member id of each cohort is a stable name. Ordering by it keeps
/// snapshots of equal logical state byte-identical — the property the
/// snapshot round-trip battery pins.
fn encode_cohorts(set: &CohortSet, e: &mut Encoder) {
    e.put_usize(set.n_groups);
    e.put_usize(set.n_clients);
    let mut order: Vec<usize> = (0..set.cohorts.len())
        .filter(|&c| set.cohorts[c].count > 0)
        .collect();
    // How many live cohorts each origin currently has: the restore side
    // needs this *before* decoding a cohort to know whether the origin's
    // freshly built stream can be moved in or must be cloned.
    let mut per_origin = vec![0usize; set.n_groups];
    for &c in &order {
        per_origin[u32_to_usize(set.cohorts[c].origin)] += 1;
    }
    e.put_seq(&per_origin, |e, n| e.put_usize(*n));
    order.sort_by_key(|&c| set.cohorts[c].state.id);
    e.put_seq(&order, |e, &c| {
        let co = &set.cohorts[c];
        e.put_u32(co.origin);
        let ivs: Vec<(usize, usize)> = set
            .intervals
            .iter()
            .filter(|iv| iv.cohort == c)
            .map(|iv| (iv.start, iv.len))
            .collect();
        e.put_seq(&ivs, |e, (start, len)| {
            e.put_usize(*start);
            e.put_usize(*len);
        });
        co.state.encode(e);
    });
}

/// Rebuilds a cohort set from snapshot bytes plus one freshly built op
/// stream per original client *group*. An origin that still has a single
/// cohort takes its group stream directly; origins that split clone the
/// stream per cohort (the stream cursor is then overwritten by the state
/// replay inside [`Client::decode`], so clones land at the right position).
fn decode_cohorts(
    d: &mut Decoder<'_>,
    streams: Vec<Box<dyn OpStream>>,
) -> Result<CohortSet, CodecError> {
    let n_groups = d.get_usize("cohorts.groups")?;
    let n_clients = d.get_usize("cohorts.members")?;
    if n_groups != streams.len() {
        return Err(CodecError::Invalid {
            what: "cohorts.groups",
        });
    }
    let per_origin = d.get_seq("cohorts.per_origin", |d| d.get_usize("cohorts.per_origin"))?;
    if per_origin.len() != n_groups {
        return Err(CodecError::Invalid {
            what: "cohorts.per_origin",
        });
    }
    let mut masters: Vec<Option<Box<dyn OpStream>>> = streams.into_iter().map(Some).collect();
    let mut cohorts: Vec<Cohort> = Vec::new();
    let mut intervals: Vec<Interval> = Vec::new();
    d.get_seq("cohorts", |d| {
        let origin = d.get_u32("cohort.origin")?;
        let og = u32_to_usize(origin);
        if og >= n_groups {
            return Err(CodecError::Invalid {
                what: "cohort.origin",
            });
        }
        let ivs = d.get_seq("cohort.intervals", |d| {
            let start = d.get_usize("interval.start")?;
            let len = d.get_usize("interval.len")?;
            if len == 0 {
                return Err(CodecError::Invalid {
                    what: "interval.len",
                });
            }
            Ok((start, len))
        })?;
        let members: u64 = ivs.iter().map(|&(_, len)| usize_to_u64(len)).sum();
        let stream = if per_origin[og] == 1 {
            let m = masters[og].take().ok_or(CodecError::Invalid {
                what: "cohort.origin",
            })?;
            // Even a lone cohort must stay splittable if it has members
            // to diverge.
            if members > 1 && m.try_clone_box().is_none() {
                return Err(CodecError::Invalid {
                    what: "cohort.stream",
                });
            }
            m
        } else {
            masters[og]
                .as_ref()
                .and_then(|m| m.try_clone_box())
                .ok_or(CodecError::Invalid {
                    what: "cohort.stream",
                })?
        };
        let state = Client::decode(d, stream)?;
        let slot = cohorts.len();
        for (start, len) in ivs {
            intervals.push(Interval {
                start,
                len,
                cohort: slot,
            });
        }
        cohorts.push(Cohort {
            state,
            origin,
            count: members,
        });
        Ok(())
    })?;
    intervals.sort_by_key(|iv| iv.start);
    let set = CohortSet {
        cohorts,
        intervals,
        n_clients,
        n_groups,
    };
    set.check_invariants()
        .map_err(|_| CodecError::Invalid { what: "cohorts" })?;
    Ok(set)
}

/// Reads the number of client *members* recorded in a snapshot — from the
/// `clients` section (legacy model) or the `cohorts` header (cohort
/// model). A session that attached clients mid-run snapshots more than it
/// started with, so restoring callers size their stream split from here
/// rather than from their initial-client configuration.
pub fn snapshot_client_count(snap: &Snapshot) -> Result<usize, SnapshotError> {
    if let Some(payload) = snap.section("cohorts") {
        let mut d = Decoder::new(payload);
        return (|| {
            let _groups = d.get_usize("cohorts.groups")?;
            d.get_usize("cohorts.members")
        })()
        .map_err(|source| SnapshotError::Decode {
            section: "cohorts",
            source,
        });
    }
    let payload = snap.require_section("clients")?;
    let mut d = Decoder::new(payload);
    d.get_usize("clients")
        .map_err(|source| SnapshotError::Decode {
            section: "clients",
            source,
        })
}

/// Reads the number of op streams [`Simulation::restore`] expects for a
/// snapshot: the client count under the legacy model, the *group* count
/// under the cohort model (one stream per group, however many cohorts the
/// group has split into).
pub fn snapshot_stream_count(snap: &Snapshot) -> Result<usize, SnapshotError> {
    if let Some(payload) = snap.section("cohorts") {
        let mut d = Decoder::new(payload);
        return d
            .get_usize("cohorts.groups")
            .map_err(|source| SnapshotError::Decode {
                section: "cohorts",
                source,
            });
    }
    snapshot_client_count(snap)
}

/// Runs a section decoder, mapping codec failures (including trailing
/// bytes) to a [`SnapshotError::Decode`] that names the section.
fn decode_section<T>(
    snap: &Snapshot,
    section: &'static str,
    f: impl FnOnce(&mut Decoder<'_>) -> Result<T, CodecError>,
) -> Result<T, SnapshotError> {
    let payload = snap.require_section(section)?;
    let mut d = Decoder::new(payload);
    let value = f(&mut d).map_err(|source| SnapshotError::Decode { section, source })?;
    d.finish()
        .map_err(|source| SnapshotError::Decode { section, source })?;
    Ok(value)
}

enum IssueOutcome {
    Served,
    Stalled,
    Inactive,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::FixedStream;
    use lunule_core::{make_balancer, BalancerKind, NoopBalancer};
    use lunule_namespace::InodeId;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            n_mds: 2,
            mds_capacity: 100.0,
            epoch_secs: 2,
            duration_secs: 20,
            stop_when_done: true,
            migration_bw: 1_000.0,
            migration_freeze_secs: 1,
            migration_op_cost: 0.0,
            client_rate: 50.0,
            client_cache_cap: 256,
            mds_capacities: Vec::new(),
            mds_memory_inodes: 0,
            memory_thrash_factor: 0.25,
            data_path: None,
            seed: 1,
            ..SimConfig::default()
        }
    }

    fn tiny_ns(files: usize) -> (Namespace, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let ids = (0..files)
            .map(|i| ns.create_file(d, &format!("f{i}"), 4).unwrap())
            .collect();
        (ns, ids)
    }

    #[test]
    fn run_serves_all_ops_and_stops_early() {
        let (ns, ids) = tiny_ns(30);
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids.clone()))];
        let sim = Simulation::new(tiny_cfg(), ns, Box::new(NoopBalancer), streams);
        let result = sim.run();
        assert_eq!(result.total_ops, 30);
        assert!(result.duration_secs < 20, "should stop when done");
        assert_eq!(result.client_completion_secs.len(), 1);
        assert!(result.client_completion_secs[0].is_some());
        // All ops landed on rank 0 (no balancing).
        assert_eq!(result.per_mds_requests_total[0], 30);
        assert_eq!(result.per_mds_requests_total[1], 0);
    }

    #[test]
    fn capacity_gates_throughput() {
        // One client with rate 50 against capacity 10: 10 ops/tick max.
        let (ns, ids) = tiny_ns(100);
        let cfg = SimConfig {
            mds_capacity: 10.0,
            duration_secs: 4,
            stop_when_done: false,
            ..tiny_cfg()
        };
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
        let sim = Simulation::new(cfg, ns, Box::new(NoopBalancer), streams);
        let result = sim.run();
        assert_eq!(result.total_ops, 40, "4 ticks x 10 capacity");
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let (ns, ids) = tiny_ns(50);
            let streams: Vec<Box<dyn OpStream>> = vec![
                Box::new(FixedStream::new(ids.clone())),
                Box::new(FixedStream::new(ids)),
            ];
            Simulation::new(
                tiny_cfg(),
                ns,
                make_balancer(BalancerKind::Lunule, 100.0),
                streams,
            )
            .run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.per_mds_requests_total, b.per_mds_requests_total);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.epochs.len(), b.epochs.len());
    }

    #[test]
    fn add_mds_grows_cluster() {
        let (ns, ids) = tiny_ns(10);
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
        let mut sim = Simulation::new(
            SimConfig {
                stop_when_done: false,
                ..tiny_cfg()
            },
            ns,
            Box::new(NoopBalancer),
            streams,
        );
        assert_eq!(sim.n_mds(), 2);
        sim.run_until(4);
        sim.add_mds();
        assert_eq!(sim.n_mds(), 3);
        sim.run_until(8);
        let result = sim.finish();
        // Later epochs report three ranks.
        assert_eq!(result.epochs.last().unwrap().per_mds_iops.len(), 3);
    }

    #[test]
    fn add_clients_mid_run() {
        let (ns, ids) = tiny_ns(10);
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids.clone()))];
        let mut sim = Simulation::new(
            SimConfig {
                stop_when_done: false,
                duration_secs: 10,
                ..tiny_cfg()
            },
            ns,
            Box::new(NoopBalancer),
            streams,
        );
        sim.run_until(4);
        sim.add_clients(vec![Box::new(FixedStream::new(ids))]);
        sim.run_until(10);
        let result = sim.finish();
        assert_eq!(result.client_completion_secs.len(), 2);
        assert_eq!(result.total_ops, 20);
    }

    #[test]
    fn step_loop_is_tick_identical_to_run_until() {
        let journal = |stepped: bool| {
            let (ns, ids) = tiny_ns(50);
            let streams: Vec<Box<dyn OpStream>> = vec![
                Box::new(FixedStream::new(ids.clone())),
                Box::new(FixedStream::new(ids)),
            ];
            let cfg = SimConfig {
                stop_when_done: false,
                duration_secs: 12,
                telemetry: Telemetry::enabled(),
                ..tiny_cfg()
            };
            let mut sim =
                Simulation::new(cfg, ns, make_balancer(BalancerKind::Lunule, 100.0), streams);
            if stepped {
                while sim.step() {}
            } else {
                sim.run_until(u64::MAX);
            }
            let snap = sim.telemetry().snapshot().unwrap();
            let _ = sim.finish();
            lunule_telemetry::events_jsonl(&snap)
        };
        assert_eq!(
            journal(true),
            journal(false),
            "step loop must equal run_until"
        );
    }

    #[test]
    fn queued_fault_and_forced_recovery() {
        let (ns, ids) = tiny_ns(10);
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
        let mut sim = Simulation::new(
            SimConfig {
                stop_when_done: false,
                duration_secs: 50,
                telemetry: Telemetry::enabled(),
                ..tiny_cfg()
            },
            ns,
            Box::new(NoopBalancer),
            streams,
        );
        sim.run_until(3);
        assert!(!sim.force_recover(MdsRank(1)), "rank 1 is not down yet");
        sim.queue_fault(FaultKind::Crash {
            rank: MdsRank(1),
            down_ticks: 1_000,
        });
        assert!(!sim.is_rank_down(MdsRank(1)), "queued, not yet injected");
        sim.step();
        assert!(sim.is_rank_down(MdsRank(1)), "fires at next tick start");
        assert!(sim.force_recover(MdsRank(1)));
        sim.step();
        assert!(
            !sim.is_rank_down(MdsRank(1)),
            "forced recovery beats outage"
        );
        let t = sim.telemetry();
        assert_eq!(t.count_kind("rank_crashed"), 1);
        assert_eq!(t.count_kind("rank_recovered"), 1);
    }

    #[test]
    fn balancer_knob_journals_when_applied() {
        let (ns, ids) = tiny_ns(10);
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
        let mut sim = Simulation::new(
            SimConfig {
                telemetry: Telemetry::enabled(),
                ..tiny_cfg()
            },
            ns,
            make_balancer(BalancerKind::Lunule, 100.0),
            streams,
        );
        assert!(sim.set_balancer_knob("if_threshold", 0.2));
        assert!(!sim.set_balancer_knob("not_a_knob", 1.0));
        assert_eq!(sim.telemetry().count_kind("knob_set"), 1);
    }

    #[test]
    fn datapath_delays_completion() {
        let run = |dp: Option<crate::config::DataPathConfig>| {
            let (ns, ids) = tiny_ns(20);
            let cfg = SimConfig {
                data_path: dp,
                duration_secs: 200,
                ..tiny_cfg()
            };
            let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
            Simulation::new(cfg, ns, Box::new(NoopBalancer), streams).run()
        };
        let meta_only = run(None);
        let with_data = run(Some(crate::config::DataPathConfig {
            osd_bandwidth: 8,
            client_window: 0,
        }));
        let jct_meta = meta_only.client_completion_secs[0].unwrap();
        let jct_data = with_data.client_completion_secs[0].unwrap();
        assert!(
            jct_data > jct_meta,
            "data path must lengthen JCT: {jct_meta} vs {jct_data}"
        );
    }

    /// Plans one export of `dir` (whole) from rank 0 to `to` at the first
    /// epoch close, then goes quiet — a deterministic way to get exactly
    /// one migration in flight for the drain-failover tests.
    struct PlanOnce {
        dir: InodeId,
        to: MdsRank,
        planned: bool,
    }

    impl Balancer for PlanOnce {
        fn name(&self) -> &'static str {
            "plan-once"
        }
        fn record_access(&mut self, _ns: &Namespace, _access: Access) {}
        fn on_epoch(
            &mut self,
            _ns: &Namespace,
            _map: &SubtreeMap,
            _stats: &EpochStats,
        ) -> lunule_core::MigrationPlan {
            if self.planned {
                return lunule_core::MigrationPlan::default();
            }
            self.planned = true;
            lunule_core::MigrationPlan {
                exports: vec![lunule_core::ExportTask {
                    from: MdsRank(0),
                    to: self.to,
                    target_amount: 1e9,
                    subtrees: vec![lunule_core::SubtreeChoice {
                        subtree: lunule_namespace::FragKey::whole(self.dir),
                        estimated_load: 1e9,
                    }],
                }],
            }
        }
    }

    /// Builds a 3-rank cluster with one slow migration (100 inodes at 5
    /// inodes/sec) planned at the first epoch close, runs it until the
    /// transfer is mid-flight, and returns the simulation plus the hot
    /// directory being exported.
    fn mid_migration_sim() -> (Simulation, InodeId) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let ids: Vec<InodeId> = (0..100)
            .map(|i| ns.create_file(d, &format!("f{i}"), 4).unwrap())
            .collect();
        let cfg = SimConfig {
            n_mds: 3,
            epoch_secs: 2,
            duration_secs: 60,
            stop_when_done: false,
            migration_bw: 5.0,
            telemetry: lunule_telemetry::Telemetry::enabled(),
            ..tiny_cfg()
        };
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
        let balancer = Box::new(PlanOnce {
            dir: d,
            to: MdsRank(1),
            planned: false,
        });
        let mut sim = Simulation::new(cfg, ns, balancer, streams);
        sim.run_until(6);
        let c = sim.migration_counters();
        assert_eq!(c.started_jobs, 1, "exactly one job must have started");
        assert_eq!(c.completed_jobs, 0, "5 in/s x 100 inodes is still moving");
        assert_eq!(c.abandoned_jobs, 0);
        (sim, d)
    }

    #[test]
    fn drain_importer_mid_migration_abandons_and_reconciles() {
        let (mut sim, d) = mid_migration_sim();
        sim.drain_mds(MdsRank(1));

        // The in-flight job touching the importer was abandoned, and the
        // conservation ledger still balances: 1 started = 0 + 1 + 0.
        let c = sim.migration_counters();
        assert_eq!(c.abandoned_jobs, 1);
        assert_eq!(c.completed_jobs, 0);
        assert_eq!(
            c.started_jobs,
            c.completed_jobs + c.abandoned_jobs,
            "no job may be in flight after the drain"
        );

        // Authority never resolves to the drained rank.
        assert_ne!(sim.subtree_map().authority(sim.namespace(), d), MdsRank(1));
        for (key, rank) in sim.subtree_map().all_entries() {
            assert_ne!(rank, MdsRank(1), "entry ({key:?}) on the drained rank");
        }

        // Residency was recounted against the rewritten map.
        let expect: Vec<u64> = sim
            .subtree_map()
            .inode_counts(sim.namespace(), sim.n_mds())
            .into_iter()
            .map(usize_to_u64)
            .collect();
        assert_eq!(sim.resident_inodes(), expect.as_slice());
        assert_eq!(sim.resident_inodes()[1], 0);

        // The journal narrates the same story as the counters.
        let tel = sim.telemetry().clone();
        assert_eq!(tel.count_kind("migration_start"), 1);
        assert_eq!(tel.count_kind("migration_abandon"), 1);
        assert_eq!(tel.count_kind("migration_commit"), 0);
        assert_eq!(tel.count_kind("mds_drain"), 1);

        // The cluster keeps serving on the survivors.
        sim.run_until(20);
        let result = sim.finish();
        assert!(result.total_ops > 0);
        assert_eq!(result.per_mds_requests_total[1], 0, "dead rank serves none");
    }

    #[test]
    fn drain_exporter_mid_migration_rehomes_root() {
        let (mut sim, d) = mid_migration_sim();
        // Rank 0 is both the exporter and the implicit root authority.
        sim.drain_mds(MdsRank(0));

        let c = sim.migration_counters();
        assert_eq!(c.abandoned_jobs, 1);
        assert_eq!(c.started_jobs, c.completed_jobs + c.abandoned_jobs);

        // The namespace below `/` was re-homed by planting an explicit root
        // entry on a survivor; every op anchor now resolves off rank 0.
        assert_ne!(sim.subtree_map().authority(sim.namespace(), d), MdsRank(0));
        for (_, rank) in sim.subtree_map().all_entries() {
            assert_ne!(rank, MdsRank(0));
        }
        let expect: Vec<u64> = sim
            .subtree_map()
            .inode_counts(sim.namespace(), sim.n_mds())
            .into_iter()
            .map(usize_to_u64)
            .collect();
        assert_eq!(sim.resident_inodes(), expect.as_slice());
        assert!(
            sim.resident_inodes()[0] <= 1,
            "at most the root inode itself may still count against rank 0"
        );

        // Survivors finish the workload.
        sim.run_until(60);
        let result = sim.finish();
        assert!(result.client_completion_secs[0].is_some());
        assert!(
            result.per_mds_requests_total[0] > 0,
            "rank 0 served before it was drained"
        );
    }

    #[test]
    fn scripted_crash_fails_over_then_recovers_empty() {
        let (ns, ids) = tiny_ns(10);
        let cfg = SimConfig {
            stop_when_done: false,
            duration_secs: 20,
            telemetry: lunule_telemetry::Telemetry::enabled(),
            faults: lunule_faults::FaultPlan::new()
                .crash(4, MdsRank(0), 6)
                .build(),
            ..tiny_cfg()
        };
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
        let mut sim = Simulation::new(cfg, ns, Box::new(NoopBalancer), streams);

        // Mid-outage: rank 0 is down and owns nothing; the root subtree
        // failed over to the lone survivor.
        sim.run_until(6);
        assert!(sim.is_rank_down(MdsRank(0)));
        assert_eq!(sim.down_ranks(), vec![true, false]);
        for (key, rank) in sim.subtree_map().all_entries() {
            assert_ne!(rank, MdsRank(0), "entry ({key:?}) on the crashed rank");
        }
        assert_eq!(
            sim.resident_inodes()[0],
            0,
            "crashed rank must own nothing, not even the root default"
        );

        // After the outage elapses the rank rejoins — empty, since nothing
        // moves back without a balancer — and the journal narrates both
        // transitions exactly once.
        sim.run_until(14);
        assert!(!sim.is_rank_down(MdsRank(0)));
        assert_eq!(sim.down_ranks(), vec![false, false]);
        let tel = sim.telemetry().clone();
        assert_eq!(tel.count_kind("fault_injected"), 1);
        assert_eq!(tel.count_kind("rank_crashed"), 1);
        assert_eq!(tel.count_kind("rank_recovered"), 1);

        let result = sim.finish();
        assert!(result.total_ops > 0, "survivor kept serving");
    }

    #[test]
    fn crash_of_last_live_rank_is_skipped() {
        let (ns, ids) = tiny_ns(5);
        let cfg = SimConfig {
            n_mds: 1,
            stop_when_done: false,
            duration_secs: 10,
            telemetry: lunule_telemetry::Telemetry::enabled(),
            faults: lunule_faults::FaultPlan::new()
                .crash(2, MdsRank(0), 4)
                .build(),
            ..tiny_cfg()
        };
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
        let mut sim = Simulation::new(cfg, ns, Box::new(NoopBalancer), streams);
        sim.run_until(8);
        assert!(!sim.is_rank_down(MdsRank(0)), "sole rank must not crash");
        assert_eq!(sim.telemetry().count_kind("fault_injected"), 0);
        assert!(sim.finish().total_ops > 0);
    }

    #[test]
    fn limp_fault_slows_completion() {
        let run = |faults: lunule_faults::FaultSchedule| {
            let (ns, ids) = tiny_ns(60);
            let cfg = SimConfig {
                n_mds: 1,
                mds_capacity: 10.0,
                client_rate: 1_000.0,
                duration_secs: 200,
                faults,
                ..tiny_cfg()
            };
            let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids))];
            Simulation::new(cfg, ns, Box::new(NoopBalancer), streams)
                .run()
                .client_completion_secs[0]
                .unwrap()
        };
        let healthy = run(lunule_faults::FaultSchedule::empty());
        let limping = run(lunule_faults::FaultPlan::new()
            .limp(1, MdsRank(0), 0.1, 50)
            .build());
        assert!(
            limping > healthy,
            "limp must lengthen JCT: {healthy} vs {limping}"
        );
    }

    /// The kill-anywhere guarantee at the library level: snapshot a run
    /// mid-flight (with a crash fault in progress), restore into a fresh
    /// simulation, continue — and the pre-kill journal concatenated with
    /// the post-restore journal is byte-identical to an uninterrupted run.
    #[test]
    fn snapshot_restore_continues_byte_identically() {
        let cfg = || SimConfig {
            stop_when_done: false,
            duration_secs: 30,
            telemetry: Telemetry::enabled(),
            faults: lunule_faults::FaultPlan::new()
                .crash(8, MdsRank(1), 10)
                .build(),
            ..tiny_cfg()
        };
        let build = |cfg: SimConfig| {
            let (ns, ids) = tiny_ns(300);
            let streams: Vec<Box<dyn OpStream>> = vec![
                Box::new(FixedStream::new(ids.clone())),
                Box::new(FixedStream::new(ids)),
            ];
            Simulation::new(cfg, ns, make_balancer(BalancerKind::Lunule, 100.0), streams)
        };
        let mut reference = build(cfg());
        reference.run_until(30);
        let full = lunule_telemetry::events_jsonl(&reference.telemetry().snapshot().unwrap());

        let mut first = build(cfg());
        first.run_until(12);
        let snap = first.snapshot();
        assert_eq!(snap.tick, 12);
        let pre = lunule_telemetry::events_jsonl(&first.telemetry().snapshot().unwrap());
        drop(first); // the "kill"

        // Streams are rebuilt exactly as the original run built them; the
        // namespace they were built against is discarded in favour of the
        // snapshot's.
        let (_, ids) = tiny_ns(300);
        let streams: Vec<Box<dyn OpStream>> = vec![
            Box::new(FixedStream::new(ids.clone())),
            Box::new(FixedStream::new(ids)),
        ];
        let mut resumed = Simulation::restore(
            cfg(),
            make_balancer(BalancerKind::Lunule, 100.0),
            streams,
            &snap,
        )
        .unwrap();
        assert_eq!(resumed.now(), 12);
        assert!(resumed.is_rank_down(MdsRank(1)), "mid-outage crash state");
        resumed.run_until(30);
        let post = lunule_telemetry::events_jsonl(&resumed.telemetry().snapshot().unwrap());
        assert_eq!(
            format!("{pre}{post}"),
            full,
            "stitched journal must equal the uninterrupted run's"
        );
        assert_eq!(
            resumed.finish().per_mds_requests_total,
            reference.finish().per_mds_requests_total
        );
    }

    #[test]
    fn snapshot_restore_snapshot_is_byte_stable() {
        for enabled in [false, true] {
            let cfg = || SimConfig {
                stop_when_done: false,
                duration_secs: 20,
                telemetry: if enabled {
                    Telemetry::enabled()
                } else {
                    Telemetry::disabled()
                },
                ..tiny_cfg()
            };
            let streams = || -> Vec<Box<dyn OpStream>> {
                let (_, ids) = tiny_ns(60);
                vec![Box::new(FixedStream::new(ids))]
            };
            let (ns, _) = tiny_ns(60);
            let mut sim = Simulation::new(
                cfg(),
                ns,
                make_balancer(BalancerKind::Lunule, 100.0),
                streams(),
            );
            sim.run_until(7);
            let s1 = sim.snapshot();
            let resumed = Simulation::restore(
                cfg(),
                make_balancer(BalancerKind::Lunule, 100.0),
                streams(),
                &s1,
            )
            .unwrap();
            let s2 = resumed.snapshot();
            assert_eq!(
                s1.to_bytes(),
                s2.to_bytes(),
                "snapshot -> restore -> snapshot must be byte-stable (telemetry={enabled})"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_identity() {
        use lunule_snapshot::SnapshotError;
        let (ns, ids) = tiny_ns(20);
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(FixedStream::new(ids.clone()))];
        let mut sim = Simulation::new(tiny_cfg(), ns, Box::new(NoopBalancer), streams);
        sim.run_until(3);
        let snap = sim.snapshot();

        let reseeded = SimConfig {
            seed: 999,
            ..tiny_cfg()
        };
        let reject = |r: Result<Simulation, SnapshotError>| match r {
            Ok(_) => panic!("restore must be refused"),
            Err(e) => e,
        };
        let err = reject(Simulation::restore(
            reseeded,
            Box::new(NoopBalancer),
            vec![Box::new(FixedStream::new(ids.clone()))],
            &snap,
        ));
        assert!(matches!(err, SnapshotError::DigestMismatch { .. }));

        let err = reject(Simulation::restore(
            tiny_cfg(),
            make_balancer(BalancerKind::Lunule, 100.0),
            vec![Box::new(FixedStream::new(ids.clone()))],
            &snap,
        ));
        assert!(
            matches!(
                err,
                SnapshotError::Decode {
                    section: "balancer",
                    ..
                }
            ),
            "wrong policy must be refused: {err}"
        );

        let err = reject(Simulation::restore(
            tiny_cfg(),
            Box::new(NoopBalancer),
            Vec::new(),
            &snap,
        ));
        assert!(
            matches!(
                err,
                SnapshotError::Decode {
                    section: "cohorts",
                    ..
                }
            ),
            "stream count must match: {err}"
        );
    }

    #[test]
    fn create_ops_grow_namespace() {
        struct Creator {
            parent: InodeId,
            left: usize,
            created: Vec<InodeId>,
        }
        impl OpStream for Creator {
            fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
                if self.left == 0 {
                    return None;
                }
                self.left -= 1;
                Some(MetaOp::Create {
                    parent: self.parent,
                    size: 0,
                })
            }
            fn on_created(&mut self, id: InodeId) {
                self.created.push(id);
            }
        }
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "out").unwrap();
        let before = ns.len();
        let streams: Vec<Box<dyn OpStream>> = vec![Box::new(Creator {
            parent: d,
            left: 25,
            created: Vec::new(),
        })];
        let sim = Simulation::new(tiny_cfg(), ns, Box::new(NoopBalancer), streams);
        let result = sim.run();
        assert_eq!(result.total_ops, 25);
        assert_eq!(result.final_inodes, before + 25);
    }
}
