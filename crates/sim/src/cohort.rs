//! Cohort-aggregated client population.
//!
//! A *cohort* is a set of clients whose entire dynamic state — op-stream
//! position, buffered retry op, authority cache, counters — is identical,
//! represented once (a shared [`Client`]) together with a member count.
//! Identical clients advance in lock-step, so a cohort of a million zipf
//! readers costs the same per tick as one client; cohorts split lazily the
//! moment members diverge (a partial budget stall, a data-path remainder,
//! a per-member create) and re-merge at epoch close when their states
//! re-converge byte-for-byte.
//!
//! Membership is tracked as a sorted list of disjoint client-id intervals
//! that exactly partitions `0..n_clients`; the legacy engine's rotated
//! per-client issue order becomes a rotated walk over these intervals, so
//! the cohort engine can reproduce the legacy effect order exactly (see
//! `cohort_engine`).
//!
//! Invariants (audited under `strict-invariants`):
//! - intervals are sorted, disjoint, non-empty, and cover `0..n_clients`;
//! - every cohort's `count` equals the total length of its intervals;
//! - every live cohort's `state.id` is its lowest member id (the canonical
//!   id — what a create op's file name derives from);
//! - the per-origin member totals never change (clients are conserved).

use crate::client::Client;
use lunule_util::convert::{u32_to_usize, u64_to_usize, usize_to_u32, usize_to_u64};

/// One contiguous run of client ids belonging to a single cohort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// First client id of the run.
    pub start: usize,
    /// Number of consecutive ids (always >= 1).
    pub len: usize,
    /// Index into `CohortSet::cohorts`.
    pub cohort: usize,
}

impl Interval {
    /// One-past-the-last client id.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// A set of identical clients advancing as one.
pub struct Cohort {
    /// The shared per-client state; `state.id` is the canonical (lowest)
    /// member id.
    pub state: Client,
    /// The construction-time group this cohort descends from. Splits and
    /// merges stay within an origin, and snapshot restore rebuilds one op
    /// stream per origin.
    pub origin: u32,
    /// Member count; 0 marks a dead slot awaiting `CohortSet::compact`.
    pub count: u64,
}

/// The whole client population, as cohorts plus an id-interval partition.
pub struct CohortSet {
    pub(crate) cohorts: Vec<Cohort>,
    /// Sorted by `start`; disjoint; exactly covers `0..n_clients`.
    pub(crate) intervals: Vec<Interval>,
    pub(crate) n_clients: usize,
    /// Origin groups ever created (grows with `append_group`).
    pub(crate) n_groups: usize,
}

impl CohortSet {
    /// Builds a population from construction-time groups: group `g` holds
    /// `counts[g]` clients with shared state `states[g]`, occupying the
    /// next contiguous id range. Each group becomes one cohort with origin
    /// `g`; callers must have set `state.id` to the group's first member id
    /// (this constructor enforces it).
    pub fn new(groups: Vec<(Client, u64)>) -> CohortSet {
        let mut cohorts = Vec::with_capacity(groups.len());
        let mut intervals = Vec::with_capacity(groups.len());
        let mut at = 0usize;
        for (g, (state, count)) in groups.into_iter().enumerate() {
            assert!(count >= 1, "empty cohort group");
            assert_eq!(state.id, at, "group state id must be its first member");
            intervals.push(Interval {
                start: at,
                len: u64_to_usize(count),
                cohort: g,
            });
            at += u64_to_usize(count);
            cohorts.push(Cohort {
                state,
                origin: usize_to_u32(g),
                count,
            });
        }
        let n_groups = cohorts.len();
        CohortSet {
            cohorts,
            intervals,
            n_clients: at,
            n_groups,
        }
    }

    /// Appends a new group of `count` clients (ids `n_clients..+count`)
    /// under a fresh origin. Returns the new cohort's index.
    pub fn append_group(&mut self, state: Client, count: u64) -> usize {
        assert!(count >= 1, "empty cohort group");
        assert_eq!(
            state.id, self.n_clients,
            "group state id must be first member"
        );
        let idx = self.cohorts.len();
        self.intervals.push(Interval {
            start: self.n_clients,
            len: u64_to_usize(count),
            cohort: idx,
        });
        self.n_clients += u64_to_usize(count);
        self.cohorts.push(Cohort {
            state,
            origin: usize_to_u32(self.n_groups),
            count,
        });
        self.n_groups += 1;
        idx
    }

    /// Total clients represented.
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// Live cohorts (count > 0).
    pub fn n_cohorts(&self) -> usize {
        self.cohorts.iter().filter(|c| c.count > 0).count()
    }

    /// Origin groups ever created.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Iterates every live cohort's shared state with its member count.
    pub fn for_each_state(&self, mut f: impl FnMut(&Client, u64)) {
        for c in &self.cohorts {
            if c.count > 0 {
                f(&c.state, c.count);
            }
        }
    }

    /// Mutable variant of [`CohortSet::for_each_state`].
    pub fn for_each_state_mut(&mut self, mut f: impl FnMut(&mut Client, u64)) {
        for c in &mut self.cohorts {
            if c.count > 0 {
                f(&mut c.state, c.count);
            }
        }
    }

    /// Reassigns the id range `[at, at + n)` — which must lie inside a
    /// single existing interval — to cohort `to`, splitting the interval
    /// and moving `n` members between the cohorts' counts. Canonical ids
    /// are *not* refreshed here; callers batch their carves and then call
    /// [`CohortSet::refresh_canonical_id`] on the affected cohorts.
    pub(crate) fn carve(&mut self, at: usize, n: usize, to: usize) {
        assert!(n >= 1, "empty carve");
        let i = self.intervals.binary_search_by(|iv| {
            if at < iv.start {
                std::cmp::Ordering::Greater
            } else if at >= iv.end() {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        });
        assert!(i.is_ok(), "carve range outside the partition");
        let Ok(i) = i else { return };
        let iv = self.intervals[i];
        assert!(at + n <= iv.end(), "carve range spans intervals");
        let from = iv.cohort;
        if from == to {
            return;
        }
        self.cohorts[from].count -= usize_to_u64(n);
        self.cohorts[to].count += usize_to_u64(n);
        // Replace interval i with up to three pieces, in id order.
        let mut pieces = Vec::with_capacity(3);
        if at > iv.start {
            pieces.push(Interval {
                start: iv.start,
                len: at - iv.start,
                cohort: from,
            });
        }
        pieces.push(Interval {
            start: at,
            len: n,
            cohort: to,
        });
        if at + n < iv.end() {
            pieces.push(Interval {
                start: at + n,
                len: iv.end() - (at + n),
                cohort: from,
            });
        }
        self.intervals.splice(i..=i, pieces);
    }

    /// Recomputes `state.id` for cohort `idx` as its lowest member id.
    /// No-op for dead cohorts.
    pub(crate) fn refresh_canonical_id(&mut self, idx: usize) {
        if self.cohorts[idx].count == 0 {
            return;
        }
        let lowest = self
            .intervals
            .iter()
            .filter(|iv| iv.cohort == idx)
            .map(|iv| iv.start)
            .min()
            .unwrap_or_else(|| {
                // A live count with no interval breaks the partition
                // invariant; keep the old id rather than abort.
                debug_assert!(false, "live cohort must own an interval");
                self.cohorts[idx].state.id
            });
        self.cohorts[idx].state.id = lowest;
    }

    /// Splits cohort `idx` into singletons: each member id becomes its own
    /// one-member cohort carrying a deep copy of the shared state with its
    /// true id. The first member keeps slot `idx`; the rest are appended.
    /// Returns the indices of all resulting singletons in member-id order.
    ///
    /// # Panics
    /// Panics when the cohort has more than one member and its op stream is
    /// not cloneable ([`crate::OpStream::try_clone_box`] returned `None`) —
    /// grouped construction asserts clonability up front, so this fires
    /// only on a constructor bypass.
    pub(crate) fn explode(&mut self, idx: usize) -> Vec<usize> {
        let count = u64_to_usize(self.cohorts[idx].count);
        if count <= 1 {
            return vec![idx];
        }
        let origin = self.cohorts[idx].origin;
        let members: Vec<usize> = self
            .intervals
            .iter()
            .filter(|iv| iv.cohort == idx)
            .flat_map(|iv| iv.start..iv.end())
            .collect();
        debug_assert_eq!(members.len(), count);
        let mut result = Vec::with_capacity(count);
        result.push(idx);
        // Clone for members after the first; the original state stays in
        // slot idx for the lowest member.
        for &member in &members[1..] {
            let clone = self.cohorts[idx].state.try_clone();
            assert!(
                clone.is_some(),
                "multi-member cohort stream must be cloneable"
            );
            let Some(mut state) = clone else { continue };
            state.id = member;
            let slot = self.cohorts.len();
            self.cohorts.push(Cohort {
                state,
                origin,
                count: 0, // carve moves the member in below
            });
            result.push(slot);
            self.carve(member, 1, slot);
        }
        self.cohorts[idx].state.id = members[0];
        debug_assert_eq!(self.cohorts[idx].count, 1);
        result
    }

    /// Merges cohorts of the same origin whose states have re-converged
    /// byte-for-byte (ignoring the canonical id), then compacts. Merging
    /// into the lowest-id cohort keeps the result independent of split
    /// history, so `--jobs 1` and `--jobs N` runs converge to identical
    /// cohort structure.
    pub fn merge_equal_states(&mut self) {
        use std::collections::BTreeMap;
        // Origin → live cohort indices, in canonical-id order (intervals
        // are sorted, so first-seen order by scanning them is id order).
        let mut by_origin: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        let mut seen = vec![false; self.cohorts.len()];
        for iv in &self.intervals {
            if !seen[iv.cohort] {
                seen[iv.cohort] = true;
                by_origin
                    .entry(self.cohorts[iv.cohort].origin)
                    .or_default()
                    .push(iv.cohort);
            }
        }
        for (_, members) in by_origin {
            if members.len() < 2 {
                continue;
            }
            let mut by_state: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
            for idx in members {
                let key = self.cohorts[idx].state.state_bytes_sans_id();
                match by_state.get(&key) {
                    None => {
                        by_state.insert(key, idx);
                    }
                    Some(&survivor) => {
                        // Move every member of `idx` into `survivor`.
                        let ranges: Vec<(usize, usize)> = self
                            .intervals
                            .iter()
                            .filter(|iv| iv.cohort == idx)
                            .map(|iv| (iv.start, iv.len))
                            .collect();
                        for (start, len) in ranges {
                            self.carve(start, len, survivor);
                        }
                        self.refresh_canonical_id(survivor);
                    }
                }
            }
        }
        self.compact();
    }

    /// Drops dead cohorts, remaps interval indices, and coalesces adjacent
    /// intervals of the same cohort. Cohort indices change; callers must
    /// not hold indices across this call.
    pub(crate) fn compact(&mut self) {
        let mut remap = vec![usize::MAX; self.cohorts.len()];
        let mut alive = 0usize;
        for (i, c) in self.cohorts.iter().enumerate() {
            if c.count > 0 {
                remap[i] = alive;
                alive += 1;
            }
        }
        let mut i = 0;
        self.cohorts.retain(|c| c.count > 0);
        for iv in &mut self.intervals {
            iv.cohort = remap[iv.cohort];
            debug_assert_ne!(iv.cohort, usize::MAX, "interval points at dead cohort");
        }
        // Coalesce adjacent same-cohort intervals.
        while i + 1 < self.intervals.len() {
            if self.intervals[i].cohort == self.intervals[i + 1].cohort
                && self.intervals[i].end() == self.intervals[i + 1].start
            {
                self.intervals[i].len += self.intervals[i + 1].len;
                self.intervals.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Clients still active: not finished, or still owing data transfer.
    pub fn active_members(&self) -> usize {
        let mut n = 0u64;
        self.for_each_state(|s, count| {
            if !s.finished || s.data_pending > 0 {
                n += count;
            }
        });
        u64_to_usize(n)
    }

    /// Total metadata ops served across all members.
    pub fn total_ops(&self) -> u64 {
        let mut n = 0u64;
        self.for_each_state(|s, count| n += s.ops_done * count);
        n
    }

    /// Total cache evictions across all members.
    pub fn evictions_total(&self) -> u64 {
        let mut n = 0u64;
        self.for_each_state(|s, count| n += s.cache_evictions * count);
        n
    }

    /// True once every member has drained its stream and data debt.
    pub fn all_done(&self) -> bool {
        self.cohorts
            .iter()
            .filter(|c| c.count > 0)
            .all(|c| c.state.finished && c.state.data_pending == 0)
    }

    /// Per-client completion ticks, expanded to one entry per member id —
    /// the shape [`crate::results::RunResult::client_completion_secs`]
    /// carries.
    pub fn completion_expanded(&self) -> Vec<Option<u64>> {
        let mut out = vec![None; self.n_clients];
        for iv in &self.intervals {
            let s = &self.cohorts[iv.cohort].state;
            let done = if s.finished && s.data_pending == 0 {
                s.finished_at
            } else {
                None
            };
            for slot in &mut out[iv.start..iv.end()] {
                *slot = done;
            }
        }
        out
    }

    /// Checks every structural invariant, returning a readable description
    /// of the first violation. Used by tests and the strict-invariants
    /// auditor.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut at = 0usize;
        let mut counted = vec![0u64; self.cohorts.len()];
        let mut lowest: Vec<Option<usize>> = vec![None; self.cohorts.len()];
        for iv in &self.intervals {
            if iv.len == 0 {
                return Err(format!("empty interval at {}", iv.start));
            }
            if iv.start != at {
                return Err(format!(
                    "gap/overlap: expected start {at}, got {}",
                    iv.start
                ));
            }
            if iv.cohort >= self.cohorts.len() {
                return Err(format!("interval points at cohort {}", iv.cohort));
            }
            counted[iv.cohort] += usize_to_u64(iv.len);
            let slot = &mut lowest[iv.cohort];
            if slot.is_none() {
                *slot = Some(iv.start);
            }
            at = iv.end();
        }
        if at != self.n_clients {
            return Err(format!(
                "partition covers {at}, expected {}",
                self.n_clients
            ));
        }
        for (i, c) in self.cohorts.iter().enumerate() {
            if counted[i] != c.count {
                return Err(format!(
                    "cohort {i}: count {} but intervals hold {}",
                    c.count, counted[i]
                ));
            }
            if c.count > 0 {
                let Some(low) = lowest[i] else {
                    return Err(format!("cohort {i}: live but owns no interval"));
                };
                if c.state.id != low {
                    return Err(format!(
                        "cohort {i}: canonical id {} but lowest member {low}",
                        c.state.id
                    ));
                }
            }
            if u32_to_usize(c.origin) >= self.n_groups {
                return Err(format!("cohort {i}: origin {} out of range", c.origin));
            }
        }
        Ok(())
    }

    /// The id-interval partition (sorted, disjoint, covering).
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Per-origin member totals, indexed by origin.
    pub fn origin_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.n_groups];
        for c in &self.cohorts {
            totals[u32_to_usize(c.origin)] += c.count;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::FixedStream;
    use lunule_namespace::InodeId;

    fn member(id: usize, ops: Vec<InodeId>) -> Client {
        Client::new(id, Box::new(FixedStream::new(ops)), 0)
    }

    fn set_of(counts: &[u64]) -> CohortSet {
        let mut groups = Vec::new();
        let mut at = 0usize;
        for &c in counts {
            groups.push((member(at, vec![InodeId::ROOT]), c));
            at += c as usize;
        }
        CohortSet::new(groups)
    }

    #[test]
    fn construction_partitions_exactly() {
        let s = set_of(&[3, 1, 4]);
        assert_eq!(s.n_clients(), 8);
        assert_eq!(s.n_cohorts(), 3);
        assert_eq!(s.n_groups(), 3);
        s.check_invariants().unwrap();
        assert_eq!(s.origin_totals(), vec![3, 1, 4]);
    }

    #[test]
    fn carve_splits_and_conserves_members() {
        let mut s = set_of(&[10]);
        let stalled = s.cohorts.len();
        let state = s.cohorts[0].state.try_clone().unwrap();
        s.cohorts.push(Cohort {
            state,
            origin: 0,
            count: 0,
        });
        s.carve(4, 3, stalled);
        s.refresh_canonical_id(0);
        s.refresh_canonical_id(stalled);
        s.check_invariants().unwrap();
        assert_eq!(s.cohorts[0].count, 7);
        assert_eq!(s.cohorts[stalled].count, 3);
        assert_eq!(s.cohorts[stalled].state.id, 4);
        assert_eq!(s.cohorts[0].state.id, 0);
        assert_eq!(s.origin_totals(), vec![10], "members conserved");
        // Intervals: [0,4)→0, [4,7)→1, [7,10)→0.
        assert_eq!(s.intervals().len(), 3);
    }

    #[test]
    #[should_panic(expected = "spans intervals")]
    fn carve_across_interval_boundary_rejected() {
        let mut s = set_of(&[5, 5]);
        s.carve(3, 4, 0);
    }

    #[test]
    fn explode_makes_singletons_with_true_ids() {
        let mut s = set_of(&[1, 4]);
        let parts = s.explode(1);
        assert_eq!(parts.len(), 4);
        s.check_invariants().unwrap();
        assert_eq!(s.origin_totals(), vec![1, 4]);
        for (k, &idx) in parts.iter().enumerate() {
            assert_eq!(s.cohorts[idx].count, 1);
            assert_eq!(s.cohorts[idx].state.id, 1 + k);
            assert_eq!(s.cohorts[idx].origin, 1);
        }
        // Exploding a singleton is a no-op.
        assert_eq!(s.explode(0), vec![0]);
    }

    #[test]
    fn merge_requires_equal_state_and_same_origin() {
        let mut s = set_of(&[4, 4]);
        // Split cohort 0; both halves keep identical state → re-merge.
        let clone = s.cohorts[0].state.try_clone().unwrap();
        let idx = s.cohorts.len();
        s.cohorts.push(Cohort {
            state: clone,
            origin: 0,
            count: 0,
        });
        s.carve(2, 2, idx);
        s.refresh_canonical_id(idx);
        s.check_invariants().unwrap();
        assert_eq!(s.n_cohorts(), 3);
        s.merge_equal_states();
        s.check_invariants().unwrap();
        assert_eq!(s.n_cohorts(), 2, "identical halves re-merge");
        // Cohort 1 (different origin) stays separate even though its state
        // bytes match cohort 0's sans id and stream payload position.
        assert_eq!(s.origin_totals(), vec![4, 4]);
    }

    #[test]
    fn merge_skips_diverged_states() {
        let mut s = set_of(&[4]);
        let clone = s.cohorts[0].state.try_clone().unwrap();
        let idx = s.cohorts.len();
        s.cohorts.push(Cohort {
            state: clone,
            origin: 0,
            count: 0,
        });
        s.carve(0, 1, idx);
        s.refresh_canonical_id(0);
        s.refresh_canonical_id(idx);
        // Diverge the split-off singleton.
        s.cohorts[idx].state.ops_done = 99;
        s.merge_equal_states();
        s.check_invariants().unwrap();
        assert_eq!(s.n_cohorts(), 2, "diverged states must not merge");
    }

    #[test]
    fn merge_canonicalises_to_lowest_member() {
        let mut s = set_of(&[6]);
        // Carve the middle out, then re-merge: canonical id returns to 0
        // and the intervals coalesce back to one.
        let clone = s.cohorts[0].state.try_clone().unwrap();
        let idx = s.cohorts.len();
        s.cohorts.push(Cohort {
            state: clone,
            origin: 0,
            count: 0,
        });
        s.carve(2, 2, idx);
        s.refresh_canonical_id(idx);
        s.merge_equal_states();
        s.check_invariants().unwrap();
        assert_eq!(s.n_cohorts(), 1);
        assert_eq!(s.cohorts[0].state.id, 0);
        assert_eq!(s.intervals().len(), 1, "adjacent intervals coalesce");
    }

    #[test]
    fn aggregates_scale_by_count() {
        let mut s = set_of(&[5, 2]);
        s.cohorts[0].state.ops_done = 3;
        s.cohorts[0].state.cache_evictions = 2;
        s.cohorts[1].state.ops_done = 10;
        s.cohorts[1].state.finished = true;
        s.cohorts[1].state.finished_at = Some(7);
        assert_eq!(s.total_ops(), 5 * 3 + 2 * 10);
        assert_eq!(s.evictions_total(), 10);
        assert_eq!(s.active_members(), 5);
        assert!(!s.all_done());
        let done = s.completion_expanded();
        assert_eq!(done.len(), 7);
        assert_eq!(done[0], None);
        assert_eq!(done[5], Some(7));
        assert_eq!(done[6], Some(7));
    }

    #[test]
    fn append_group_gets_fresh_origin() {
        let mut s = set_of(&[3]);
        let c = member(3, vec![InodeId::ROOT]);
        let idx = s.append_group(c, 2);
        s.check_invariants().unwrap();
        assert_eq!(s.n_clients(), 5);
        assert_eq!(s.cohorts[idx].origin, 1);
        assert_eq!(s.origin_totals(), vec![3, 2]);
    }

    /// Randomised battery: arbitrary carve/explode/merge sequences keep
    /// every structural invariant and conserve members per origin.
    #[test]
    fn random_split_merge_conserves_members() {
        let mut rng = 0x1234_5678_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..30 {
            let counts: Vec<u64> = (0..(1 + next() % 4)).map(|_| 1 + next() % 9).collect();
            let mut s = set_of(&counts);
            let totals = s.origin_totals();
            for _ in 0..12 {
                match next() % 3 {
                    0 => {
                        // Carve a random sub-range of a random interval
                        // into a fresh clone cohort.
                        let ivs: Vec<Interval> = s.intervals().to_vec();
                        let iv = ivs[(next() as usize) % ivs.len()];
                        let n = 1 + (next() as usize) % iv.len;
                        let at = iv.start + (next() as usize) % (iv.len - n + 1);
                        let state = s.cohorts[iv.cohort].state.try_clone().unwrap();
                        let origin = s.cohorts[iv.cohort].origin;
                        let slot = s.cohorts.len();
                        s.cohorts.push(Cohort {
                            state,
                            origin,
                            count: 0,
                        });
                        s.carve(at, n, slot);
                        s.refresh_canonical_id(iv.cohort);
                        s.refresh_canonical_id(slot);
                        if s.cohorts[iv.cohort].count == 0 {
                            s.compact();
                        }
                    }
                    1 => {
                        let live: Vec<usize> = (0..s.cohorts.len())
                            .filter(|&i| s.cohorts[i].count > 0)
                            .collect();
                        let idx = live[(next() as usize) % live.len()];
                        s.explode(idx);
                    }
                    _ => s.merge_equal_states(),
                }
                if let Err(e) = s.check_invariants() {
                    panic!("round {round}: {e}");
                }
                assert_eq!(s.origin_totals(), totals, "round {round}: members leaked");
            }
            // Final merge collapses everything back to one cohort per
            // origin: no state ever diverged in this battery.
            s.merge_equal_states();
            assert_eq!(s.n_cohorts(), counts.len());
            s.check_invariants().unwrap();
        }
    }

    /// Live `(origin, state-bytes)` equivalence classes — exactly the
    /// cohorts that must remain after a merge pass.
    fn state_classes(s: &CohortSet) -> usize {
        let mut classes = std::collections::BTreeSet::new();
        for c in &s.cohorts {
            if c.count > 0 {
                classes.insert((c.origin, c.state.state_bytes_sans_id()));
            }
        }
        classes.len()
    }

    /// Propcheck battery with *divergence*: random carve/explode/merge
    /// sequences interleaved with random state mutations. Three laws:
    /// members conserve per origin, every structural invariant holds after
    /// every step, and a merge pass unifies exactly the byte-equal
    /// same-origin classes — diverged states never merge, re-converged
    /// states always do.
    #[test]
    fn propcheck_split_merge_laws() {
        lunule_util::propcheck::run(64, |rng| {
            let counts: Vec<u64> = (0..rng.gen_range(1..5))
                .map(|_| 1 + rng.gen_range(0..9) as u64)
                .collect();
            let mut s = set_of(&counts);
            let totals = s.origin_totals();
            for _ in 0..rng.gen_range(1..16) {
                match rng.gen_range(0..5) {
                    0 | 1 => {
                        // Carve a random sub-range into a fresh clone.
                        let ivs: Vec<Interval> = s.intervals().to_vec();
                        let iv = ivs[rng.gen_range(0..ivs.len())];
                        let n = 1 + rng.gen_range(0..iv.len);
                        let at = iv.start + rng.gen_range(0..iv.len - n + 1);
                        let state = s.cohorts[iv.cohort].state.try_clone().unwrap();
                        let origin = s.cohorts[iv.cohort].origin;
                        let slot = s.cohorts.len();
                        s.cohorts.push(Cohort {
                            state,
                            origin,
                            count: 0,
                        });
                        s.carve(at, n, slot);
                        s.refresh_canonical_id(iv.cohort);
                        s.refresh_canonical_id(slot);
                        if s.cohorts[iv.cohort].count == 0 {
                            s.compact();
                        }
                    }
                    2 => {
                        let live: Vec<usize> = (0..s.cohorts.len())
                            .filter(|&i| s.cohorts[i].count > 0)
                            .collect();
                        s.explode(live[rng.gen_range(0..live.len())]);
                    }
                    3 => {
                        // Diverge one live cohort's state so it becomes
                        // its own equivalence class.
                        let live: Vec<usize> = (0..s.cohorts.len())
                            .filter(|&i| s.cohorts[i].count > 0)
                            .collect();
                        let idx = live[rng.gen_range(0..live.len())];
                        s.cohorts[idx].state.ops_done += 1 + rng.gen_range(0..3) as u64;
                    }
                    _ => {
                        let classes = state_classes(&s);
                        s.merge_equal_states();
                        assert_eq!(
                            s.n_cohorts(),
                            classes,
                            "merge must unify exactly the byte-equal same-origin classes"
                        );
                    }
                }
                s.check_invariants().unwrap();
                assert_eq!(s.origin_totals(), totals, "members leaked");
            }
            // Final law: merging is idempotent and lands on the class count.
            s.merge_equal_states();
            let classes = state_classes(&s);
            assert_eq!(s.n_cohorts(), classes);
            s.merge_equal_states();
            assert_eq!(s.n_cohorts(), classes, "merge must be idempotent");
            s.check_invariants().unwrap();
        });
    }
}
