//! The cohort issue engine: the legacy per-client tick loop, re-derived
//! over aggregated cohorts.
//!
//! The legacy engine's tick is a sequence of *rounds*: each round walks
//! every client once in rotation order (starting at `tick % n_clients`),
//! serving at most one op per client, until a round serves nothing. The
//! cohort engine reproduces that walk exactly, but a run of consecutive
//! identical clients advances as one batch:
//!
//! 1. **Classify** (sequential, cohort-local): per round, each live cohort
//!    is inactive (rate-capped, finished, data-blocked), frozen behind a
//!    migration commit window, a batchable read, or a mutating op. Multi-
//!    member cohorts holding a create/remove explode into singletons first
//!    — mutations change the namespace mid-round, so they serve one at a
//!    time exactly like legacy clients.
//! 2. **Resolve** (parallel, pure): read/remove routes are looked up
//!    against the immutable namespace + subtree map, grouped by the
//!    [`ShardPlan`] shard owning the anchor directory and fanned out over
//!    the workspace [`WorkerPool`]. Results merge in submission order, so
//!    `--jobs 1` and `--jobs N` are byte-identical.
//! 3. **Serve** (sequential, effect-ordered): runs are walked in rotation
//!    order; each run drains MDS budgets member-by-member (f64 budget
//!    arithmetic in exactly the legacy order) and applies the world
//!    effects — forwards, served counters, latency/telemetry, balancer
//!    accesses — as batched equivalents at the run's position.
//!
//! After a round, each cohort that served advances its shared state once
//! (stream cursor, route cache, data debt). A cohort that only partially
//! served splits: the stalled members keep the pre-round state in a new
//! cohort that sits out the rest of the tick, mirroring the legacy
//! per-client stall flags.
//!
//! Equivalence to the legacy engine holds member-for-member because within
//! a round (a) identical clients resolve identical routes against state
//! that cannot change until the round ends, (b) budgets only ever decrease
//! within a tick, so the first member of a run to fail a budget check
//! decides for every member after it, and (c) every batched recorder
//! (`record_n`-style) is an exact aggregate of its sequential form.

use crate::client::{resolve_route_cached, resolve_route_primed, routing_anchor, Client, Route};
use crate::cluster::Simulation;
use crate::cohort::{Cohort, CohortSet};
use crate::request::MetaOp;
use lunule_core::{Access, OpKind};
use lunule_namespace::{Frag, InodeId, MdsRank, ShardPlan};
use lunule_util::convert::{u64_to_usize, usize_to_u64};
use std::collections::BTreeMap;

/// What a classified cohort does this round.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Read/remove with a precomputed route from the parallel phase.
    Resolve,
    /// Singleton create: resolved and served inline at its run position
    /// (its routing anchor depends on the live arena length).
    CreateInline,
}

/// A client-authority-cache reference — the only part of a client the
/// parallel resolve phase reads, and (unlike the full `Client`, whose op
/// stream is `Send`-only) safely shareable across worker threads.
type CacheRef<'a> = &'a BTreeMap<InodeId, Vec<(Frag, MdsRank)>>;

/// Smallest resolve batch worth fanning out. The pool spawns scoped
/// threads per call (it keeps none between calls), which costs tens of
/// microseconds — far more than resolving a handful of routes inline. A
/// round below this cutoff resolves serially; the outcome is identical
/// either way (resolution is pure and results are keyed by cohort), so
/// the threshold is invisible to journals.
const PAR_RESOLVE_MIN: usize = 256;

/// Transient per-round buffers, reused across the rounds of one tick. The
/// round loop runs once per served op per client at small populations, so
/// fresh allocations every round dominate small-run profiles; none of this
/// is simulation state and none of it is ever snapshotted.
#[derive(Default)]
struct RoundScratch {
    runs: Vec<(usize, usize, usize)>,
    seen: Vec<bool>,
    worklist: Vec<usize>,
    class: Vec<Option<Class>>,
    anchor_of: Vec<Option<(InodeId, u32)>>,
    resolve_reqs: Vec<(usize, InodeId, u32)>,
    routes: Vec<Option<(Route, bool)>>,
    served_count: Vec<u64>,
    budget_stalled: Vec<bool>,
    runs_of: Vec<Vec<(usize, usize, usize)>>,
    costs_of: Vec<Vec<(usize, f64)>>,
    costs_built: Vec<bool>,
    bytes_of: Vec<u64>,
    touched: Vec<usize>,
}

impl Simulation {
    /// Cohort-model issue phase for one tick: rounds until no member
    /// serves, exactly like the legacy `stall_scratch` loop.
    pub(crate) fn cohort_issue_rounds(&mut self, tick: u64) {
        let Some(mut set) = self.cohorts.take() else {
            return;
        };
        let n = set.n_clients();
        if n == 0 {
            self.cohorts = Some(set);
            return;
        }
        let offset = u64_to_usize(tick) % n;
        // Per-tick stall flags, indexed by cohort: the cohort analogue of
        // the legacy per-client `stall_scratch`. Transient scratch — ticks
        // never snapshot mid-round, so these are never persisted.
        let mut tick_stalled = vec![false; set.cohorts.len()];
        let mut scratch = RoundScratch::default();
        while self.cohort_round(&mut set, &mut tick_stalled, offset, tick, &mut scratch) {}
        self.cohorts = Some(set);
    }

    /// One issue round. Returns whether any member was served.
    fn cohort_round(
        &mut self,
        set: &mut CohortSet,
        stalled: &mut Vec<bool>,
        offset: usize,
        tick: u64,
        scratch: &mut RoundScratch,
    ) -> bool {
        let rate = self.cfg.client_rate;

        // Phase 1: classify cohorts in rotation (first-encounter) order.
        // Classification only touches cohort-local state, so handling each
        // cohort once at its first member's position matches the legacy
        // per-member checks exactly.
        let mut worklist = std::mem::take(&mut scratch.worklist);
        worklist.clear();
        {
            let mut seen = std::mem::take(&mut scratch.seen);
            seen.clear();
            seen.resize(set.cohorts.len(), false);
            let mut runs = std::mem::take(&mut scratch.runs);
            rotated_runs_into(set, offset, &mut runs);
            for &(_, _, c) in &runs {
                if !seen[c] {
                    seen[c] = true;
                    if !stalled[c] {
                        worklist.push(c);
                    }
                }
            }
            scratch.seen = seen;
            scratch.runs = runs;
        }
        let mut class = std::mem::take(&mut scratch.class);
        class.clear();
        class.resize(set.cohorts.len(), None);
        let mut anchor_of = std::mem::take(&mut scratch.anchor_of);
        anchor_of.clear();
        anchor_of.resize(set.cohorts.len(), None);
        let mut resolve_reqs = std::mem::take(&mut scratch.resolve_reqs);
        resolve_reqs.clear();
        let mut exploded = false;
        let mut wi = 0;
        while wi < worklist.len() {
            let c = worklist[wi];
            wi += 1;
            let st = &mut set.cohorts[c].state;
            if !st.can_issue(tick, rate) {
                if st.finished && st.data_pending == 0 && st.finished_at.is_none() {
                    st.finished_at = Some(tick);
                }
                stalled[c] = true;
                continue;
            }
            let Some(op) = st.peek_op(&self.ns, tick) else {
                let st = &mut set.cohorts[c].state;
                if st.data_pending == 0 && st.finished_at.is_none() {
                    st.finished_at = Some(tick);
                }
                stalled[c] = true;
                continue;
            };
            if set.cohorts[c].count > 1 && !matches!(op, MetaOp::Read(_)) {
                // Creates and removes mutate the namespace as they serve,
                // so members must go one at a time: explode to singletons
                // and re-classify each (the checks above re-run cheaply
                // and identically). The op type can change every round,
                // which is why this is a per-round check, not a
                // construction-time property.
                let parts = set.explode(c);
                exploded = true;
                stalled.resize(set.cohorts.len(), false);
                class.resize(set.cohorts.len(), None);
                anchor_of.resize(set.cohorts.len(), None);
                worklist.extend(parts);
                continue;
            }
            if self.migrator.is_frozen(&self.ns, op.anchor()) {
                stalled[c] = true;
                continue;
            }
            match op {
                MetaOp::Read(_) | MetaOp::Remove(_) => {
                    let (dir, hash) = routing_anchor(&self.ns, &op);
                    class[c] = Some(Class::Resolve);
                    anchor_of[c] = Some((dir, hash));
                    resolve_reqs.push((c, dir, hash));
                }
                MetaOp::Create { .. } => {
                    class[c] = Some(Class::CreateInline);
                }
            }
        }

        // Phase 2: resolve routes in parallel, sharded by the arena shard
        // that owns the anchor directory. Resolution is pure (namespace,
        // subtree map, and caches are all frozen for the round) and the
        // pool merges results in submission order, so worker count cannot
        // leak into the outcome.
        let mut routes = std::mem::take(&mut scratch.routes);
        routes.clear();
        routes.resize(set.cohorts.len(), None);
        if resolve_reqs.len() < PAR_RESOLVE_MIN || self.pool.jobs() == 1 {
            for &(c, dir, hash) in &resolve_reqs {
                routes[c] = Some(resolve_route_cached(
                    &set.cohorts[c].state.cache,
                    &self.ns,
                    &self.map,
                    &mut self.auth_cache,
                    dir,
                    hash,
                ));
            }
        } else {
            // Prime the authority memo for every anchor directory before
            // fanning out: "resolve once per directory cohort". Distinct
            // anchors are few (one per cohort at most) and the memo
            // deduplicates repeats, so this serial pass is cheap; the
            // workers below then only do pure reads of the primed cache.
            for &(_, dir, _) in &resolve_reqs {
                self.auth_cache.authority(&self.map, &self.ns, dir);
            }
            let plan = ShardPlan::new(self.ns.len(), self.pool.jobs());
            let mut buckets: Vec<Vec<(usize, CacheRef<'_>, InodeId, u32)>> =
                (0..plan.n_shards()).map(|_| Vec::new()).collect();
            for &(c, dir, hash) in &resolve_reqs {
                buckets[plan.shard_of(dir)].push((c, &set.cohorts[c].state.cache, dir, hash));
            }
            let ns = &self.ns;
            let map = &self.map;
            let auth = &self.auth_cache;
            let resolved = self.pool.map(&buckets, |_, bucket| {
                bucket
                    .iter()
                    .map(|&(c, cache, dir, hash)| {
                        (c, resolve_route_primed(cache, ns, map, auth, dir, hash))
                    })
                    .collect::<Vec<_>>()
            });
            for shard in resolved {
                for (c, r) in shard {
                    routes[c] = Some(r);
                }
            }
        }

        // Phase 3: serve runs in rotation order with legacy effect order.
        let n_cohorts = set.cohorts.len();
        let mut served_count = std::mem::take(&mut scratch.served_count);
        served_count.clear();
        served_count.resize(n_cohorts, 0);
        let mut budget_stalled = std::mem::take(&mut scratch.budget_stalled);
        budget_stalled.clear();
        budget_stalled.resize(n_cohorts, false);
        // Per cohort: (run start, members served, run length) per run, in
        // rotation order — the split bookkeeping. Inner vectors keep their
        // capacity across rounds; entries past this round's cohort count
        // are simply never indexed.
        let mut runs_of = std::mem::take(&mut scratch.runs_of);
        for v in runs_of.iter_mut() {
            v.clear();
        }
        if runs_of.len() < n_cohorts {
            runs_of.resize_with(n_cohorts, Vec::new);
        }
        let mut costs_of = std::mem::take(&mut scratch.costs_of);
        for v in costs_of.iter_mut() {
            v.clear();
        }
        if costs_of.len() < n_cohorts {
            costs_of.resize_with(n_cohorts, Vec::new);
        }
        let mut costs_built = std::mem::take(&mut scratch.costs_built);
        costs_built.clear();
        costs_built.resize(n_cohorts, false);
        let mut bytes_of = std::mem::take(&mut scratch.bytes_of);
        bytes_of.clear();
        bytes_of.resize(n_cohorts, 0);
        let mut touched = std::mem::take(&mut scratch.touched);
        touched.clear();
        let mut progressed = false;
        // Phase 1 already computed the rotation; it only goes stale when an
        // explode re-tiled the intervals mid-classify.
        let mut serve_runs = std::mem::take(&mut scratch.runs);
        if exploded {
            rotated_runs_into(set, offset, &mut serve_runs);
        }
        for &(start, len, c) in &serve_runs {
            if stalled[c] {
                continue;
            }
            match class[c] {
                None => {}
                Some(Class::CreateInline) => {
                    debug_assert_eq!(len, 1, "creates serve as singletons");
                    let st = &mut set.cohorts[c].state;
                    if self.serve_singleton_create(st, tick) {
                        progressed = true;
                    } else {
                        stalled[c] = true;
                    }
                }
                Some(Class::Resolve) => {
                    if runs_of[c].is_empty() {
                        touched.push(c);
                    }
                    if budget_stalled[c] {
                        // Budgets only decrease within a tick: once one
                        // member failed the check, every later member of
                        // the cohort fails it identically.
                        runs_of[c].push((start, 0, len));
                        continue;
                    }
                    let Some((route, _hit)) = routes[c].as_ref() else {
                        debug_assert!(false, "resolve-classified cohort has a route");
                        stalled[c] = true;
                        continue;
                    };
                    let target_idx = route.target.index();
                    if target_idx >= self.mds.len()
                        || route.forwards.iter().any(|r| r.index() >= self.mds.len())
                    {
                        stalled[c] = true;
                        continue;
                    }
                    if !costs_built[c] {
                        // Aggregate per-rank route cost, forwards first
                        // then target — the legacy accumulation order. The
                        // per-cohort buffer keeps its capacity round over
                        // round.
                        costs_built[c] = true;
                        let costs = &mut costs_of[c];
                        let add = |costs: &mut Vec<(usize, f64)>, idx: usize| match costs
                            .iter_mut()
                            .find(|(i, _)| *i == idx)
                        {
                            Some((_, cost)) => *cost += 1.0,
                            None => costs.push((idx, 1.0)),
                        };
                        for r in &route.forwards {
                            add(costs, r.index());
                        }
                        add(costs, target_idx);
                    }
                    let costs = &costs_of[c];
                    // Member-by-member budget drain: identical f64
                    // operations in identical order to the legacy loop.
                    let mut s = 0usize;
                    for _ in 0..len {
                        if costs.iter().any(|&(i, cost)| self.mds[i].budget < cost) {
                            break;
                        }
                        for &(i, cost) in costs {
                            let ok = self.mds[i].try_consume(cost);
                            debug_assert!(ok, "budget pre-checked per rank");
                        }
                        s += 1;
                    }
                    runs_of[c].push((start, s, len));
                    if s < len {
                        budget_stalled[c] = true;
                    }
                    if s == 0 {
                        continue;
                    }
                    progressed = true;
                    served_count[c] += usize_to_u64(s);
                    let m = usize_to_u64(s);
                    for r in &route.forwards {
                        self.mds[r.index()].record_forward_n(m);
                    }
                    self.mds[target_idx].record_served_n(m);
                    let Some((op, first_attempt)) = set.cohorts[c].state.pending else {
                        debug_assert!(false, "resolve-classified cohort has a pending op");
                        continue;
                    };
                    let (ino, kind) = match op {
                        MetaOp::Read(ino) => (ino, OpKind::Read),
                        MetaOp::Remove(ino) => (ino, OpKind::Remove),
                        MetaOp::Create { .. } => unreachable!("creates serve inline"),
                    };
                    if kind == OpKind::Read {
                        bytes_of[c] = self.ns.inode(ino).size();
                    }
                    let stall_ticks = tick.saturating_sub(first_attempt);
                    self.latency.record_n(stall_ticks, m);
                    if self.telemetry.is_enabled() {
                        self.op_ledger.record(target_idx, stall_ticks, m);
                    }
                    // Record the access while the inode is still
                    // resolvable, then apply the unlink for removes —
                    // same order as the legacy serve.
                    self.balancer.record_access_n(
                        &self.ns,
                        Access {
                            ino,
                            served_by: route.target,
                            kind,
                        },
                        m,
                    );
                    if kind == OpKind::Remove {
                        debug_assert_eq!(s, 1, "removes serve as singletons");
                        let removed = self.ns.unlink(ino);
                        debug_assert!(removed.is_ok(), "stale remove of {ino:?}");
                        if removed.is_ok() {
                            if let Some(r) = self.resident.get_mut(target_idx) {
                                *r = r.saturating_sub(1);
                            }
                        }
                    }
                }
            }
        }

        // Post-round: split partially served cohorts, then advance each
        // served cohort's shared state exactly once (stream cursor, route
        // cache, data debt — all member-private, so deferring them past
        // the round's world effects changes nothing observable).
        for &c in &touched {
            if served_count[c] == 0 {
                stalled[c] = true;
                continue;
            }
            let total = set.cohorts[c].count;
            if served_count[c] < total {
                // Stalled members keep the pre-advance state in a fresh
                // cohort that sits out the rest of the tick.
                let origin = set.cohorts[c].origin;
                let clone = set.cohorts[c].state.try_clone();
                assert!(
                    clone.is_some(),
                    "multi-member cohort stream must be cloneable"
                );
                let Some(clone) = clone else { continue };
                let slot = set.cohorts.len();
                set.cohorts.push(Cohort {
                    state: clone,
                    origin,
                    count: 0,
                });
                for &(run_start, srv, run_len) in &runs_of[c] {
                    if srv < run_len {
                        set.carve(run_start + srv, run_len - srv, slot);
                    }
                }
                set.refresh_canonical_id(c);
                set.refresh_canonical_id(slot);
                stalled.push(true);
                debug_assert_eq!(stalled.len(), set.cohorts.len());
            }
            let (Some((route, _)), Some((dir, hash))) = (routes[c].as_ref(), anchor_of[c]) else {
                debug_assert!(false, "served cohort has a route and an anchor");
                continue;
            };
            let target = route.target;
            let st = &mut set.cohorts[c].state;
            st.consume_op(tick);
            st.learn_route(&self.ns, dir, hash, target);
            if self.datapath.is_some() && bytes_of[c] > 0 {
                st.data_pending += bytes_of[c];
            }
        }
        scratch.runs = serve_runs;
        scratch.worklist = worklist;
        scratch.class = class;
        scratch.anchor_of = anchor_of;
        scratch.resolve_reqs = resolve_reqs;
        scratch.routes = routes;
        scratch.served_count = served_count;
        scratch.budget_stalled = budget_stalled;
        scratch.runs_of = runs_of;
        scratch.costs_of = costs_of;
        scratch.costs_built = costs_built;
        scratch.bytes_of = bytes_of;
        scratch.touched = touched;
        progressed
    }

    /// Serves one create for a singleton cohort — the legacy `try_issue`
    /// serve path verbatim, minus the checks phase 1 already ran this
    /// round. Returns whether the op was served.
    fn serve_singleton_create(&mut self, st: &mut Client, tick: u64) -> bool {
        let Some((op, _)) = st.pending else {
            debug_assert!(false, "create-classified cohort lost its pending op");
            return false;
        };
        let (dir, hash) = routing_anchor(&self.ns, &op);
        let (route, _hit) = st.resolve_with(&self.ns, &self.map, &mut self.auth_cache, dir, hash);
        let target_idx = route.target.index();
        if target_idx >= self.mds.len() {
            return false;
        }
        self.costs_scratch.clear();
        let add_cost = |costs: &mut Vec<(usize, f64)>, idx: usize| match costs
            .iter_mut()
            .find(|(i, _)| *i == idx)
        {
            Some((_, c)) => *c += 1.0,
            None => costs.push((idx, 1.0)),
        };
        for r in &route.forwards {
            if r.index() >= self.mds.len() {
                return false;
            }
            add_cost(&mut self.costs_scratch, r.index());
        }
        add_cost(&mut self.costs_scratch, target_idx);
        if self
            .costs_scratch
            .iter()
            .any(|(idx, cost)| self.mds[*idx].budget < *cost)
        {
            return false;
        }
        for (idx, cost) in &self.costs_scratch {
            let ok = self.mds[*idx].try_consume(*cost);
            debug_assert!(ok, "budget pre-checked per rank");
        }
        for r in &route.forwards {
            self.mds[r.index()].record_forward();
        }
        self.mds[target_idx].record_served();

        let MetaOp::Create { parent, size } = op else {
            unreachable!("serve_singleton_create takes creates only")
        };
        let name = format!("c{}_{}", st.id, st.ops_done);
        let (ino, kind, data_bytes) = match self.ns.create_file(parent, &name, size) {
            Ok(id) => {
                st.notify_created(id);
                (id, OpKind::Create, size)
            }
            // Streams only create under live directories; a failure means
            // the op went stale. Account it against the parent as a plain
            // read so the stream still advances.
            Err(e) => {
                debug_assert!(false, "stale create under {parent:?}: {e}");
                (parent, OpKind::Read, 0)
            }
        };
        let stall_ticks = st.consume_op(tick);
        self.latency.record(stall_ticks);
        if self.telemetry.is_enabled() {
            self.op_ledger.record(route.target.index(), stall_ticks, 1);
        }
        st.learn_route(&self.ns, dir, hash, route.target);
        if self.datapath.is_some() && data_bytes > 0 {
            st.data_pending += data_bytes;
        }
        self.balancer.record_access(
            &self.ns,
            Access {
                ino,
                served_by: route.target,
                kind,
            },
        );
        if kind == OpKind::Create {
            if let Some(r) = self.resident.get_mut(route.target.index()) {
                *r += 1;
            }
        }
        true
    }

    /// Cohort-model data-path tick: the legacy max-min fair-share loop
    /// over per-client data debt, run over id-ordered member segments.
    /// Members of one cohort all owe the same debt, so a segment advances
    /// as a unit until the budget runs out inside it — at which point the
    /// segment splits (full share / partial / nothing), and cohorts whose
    /// members ended the tick with different debts split to match.
    pub(crate) fn cohort_datapath_step(&mut self, bandwidth: u64) {
        let Some(mut set) = self.cohorts.take() else {
            return;
        };
        // Working segments in id order; `pending` starts as the owning
        // cohort's shared debt and diverges as the budget cuts across.
        let mut segs: Vec<(usize, usize, usize, u64)> = set
            .intervals()
            .iter()
            .map(|iv| {
                (
                    iv.start,
                    iv.len,
                    iv.cohort,
                    set.cohorts[iv.cohort].state.data_pending,
                )
            })
            .collect();
        let mut budget = bandwidth;
        loop {
            let waiting: u64 = segs
                .iter()
                .filter(|s| s.3 > 0)
                .map(|s| usize_to_u64(s.1))
                .sum();
            if waiting == 0 || budget == 0 {
                break;
            }
            let share = (budget / waiting).max(1);
            let mut spent = 0u64;
            let mut i = 0;
            while i < segs.len() {
                let (start, len, cohort, pending) = segs[i];
                if pending == 0 {
                    i += 1;
                    continue;
                }
                let t = share.min(pending);
                let avail = budget - spent;
                // Members each take `min(t, budget left)`: the first q
                // take the full t, at most one takes a partial remainder,
                // the rest take nothing — the legacy per-member loop.
                let q = u64_to_usize((avail / t).min(usize_to_u64(len)));
                if q == len {
                    segs[i].3 -= t;
                    spent += usize_to_u64(len) * t;
                    if spent >= budget {
                        break;
                    }
                    i += 1;
                    continue;
                }
                let partial = avail - usize_to_u64(q) * t;
                let mut pieces: Vec<(usize, usize, usize, u64)> = Vec::with_capacity(3);
                if q > 0 {
                    pieces.push((start, q, cohort, pending - t));
                }
                if partial > 0 {
                    pieces.push((start + q, 1, cohort, pending - partial));
                }
                let rest = start + q + usize::from(partial > 0);
                if rest < start + len {
                    pieces.push((rest, start + len - rest, cohort, pending));
                }
                segs.splice(i..=i, pieces);
                spent = budget;
                break;
            }
            if spent == 0 {
                break;
            }
            budget -= spent;
        }
        // Apply: cohorts whose members ended with distinct debts split,
        // one cohort per distinct value in id order of first occurrence
        // (the first group contains the lowest member, so the original
        // cohort keeps its canonical id).
        let n_cohorts = set.cohorts.len();
        let mut by_cohort: Vec<Vec<(usize, usize, u64)>> = vec![Vec::new(); n_cohorts];
        for &(start, len, cohort, pending) in &segs {
            by_cohort[cohort].push((start, len, pending));
        }
        for (c, parts) in by_cohort.iter().enumerate() {
            if parts.is_empty() {
                continue;
            }
            let mut values: Vec<u64> = Vec::new();
            for &(_, _, p) in parts {
                if !values.contains(&p) {
                    values.push(p);
                }
            }
            set.cohorts[c].state.data_pending = values[0];
            for &v in values.iter().skip(1) {
                let origin = set.cohorts[c].origin;
                let clone = set.cohorts[c].state.try_clone();
                assert!(
                    clone.is_some(),
                    "multi-member cohort stream must be cloneable"
                );
                let Some(mut clone) = clone else { continue };
                clone.data_pending = v;
                let slot = set.cohorts.len();
                set.cohorts.push(Cohort {
                    state: clone,
                    origin,
                    count: 0,
                });
                for &(start, len, p) in parts {
                    if p == v {
                        set.carve(start, len, slot);
                    }
                }
                set.refresh_canonical_id(slot);
            }
            if values.len() > 1 {
                set.refresh_canonical_id(c);
            }
        }
        self.cohorts = Some(set);
    }

    /// Per-tick client reset + completion stamping (legacy step 2), over
    /// cohorts.
    pub(crate) fn cohort_tick_reset(&mut self, tick: u64) {
        if let Some(set) = &mut self.cohorts {
            set.for_each_state_mut(|st, _| {
                st.issued_this_tick = 0;
                if st.finished && st.data_pending == 0 && st.finished_at.is_none() {
                    st.finished_at = Some(tick);
                }
            });
        }
    }
}

/// The id-interval partition walked in rotation order: members `offset,
/// offset+1, …, n-1, 0, …, offset-1`, as `(start, len, cohort)` runs. An
/// interval containing the rotation point contributes two runs. Fills the
/// caller's buffer so the round loop can reuse one allocation.
fn rotated_runs_into(set: &CohortSet, offset: usize, out: &mut Vec<(usize, usize, usize)>) {
    out.clear();
    let ivs = set.intervals();
    if offset == 0 || ivs.is_empty() {
        out.extend(ivs.iter().map(|iv| (iv.start, iv.len, iv.cohort)));
        return;
    }
    let pos = ivs.partition_point(|iv| iv.end() <= offset);
    let pivot = ivs[pos];
    out.push((offset, pivot.end() - offset, pivot.cohort));
    for iv in &ivs[pos + 1..] {
        out.push((iv.start, iv.len, iv.cohort));
    }
    for iv in &ivs[..pos] {
        out.push((iv.start, iv.len, iv.cohort));
    }
    if pivot.start < offset {
        out.push((pivot.start, offset - pivot.start, pivot.cohort));
    }
}

#[cfg(test)]
fn rotated_runs(set: &CohortSet, offset: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    rotated_runs_into(set, offset, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::FixedStream;

    fn set_of(counts: &[u64]) -> CohortSet {
        let mut groups = Vec::new();
        let mut at = 0usize;
        for &c in counts {
            groups.push((
                Client::new(at, Box::new(FixedStream::new(vec![InodeId::ROOT])), 0),
                c,
            ));
            at += u64_to_usize(c);
        }
        CohortSet::new(groups)
    }

    #[test]
    fn rotation_covers_every_member_exactly_once() {
        let set = set_of(&[3, 5, 2]);
        for offset in 0..10 {
            let runs = rotated_runs(&set, offset);
            let members: Vec<usize> = runs
                .iter()
                .flat_map(|&(start, len, _)| start..start + len)
                .collect();
            assert_eq!(members.len(), 10, "offset {offset}");
            // Order must be offset, offset+1, ..., wrapping.
            for (k, &m) in members.iter().enumerate() {
                assert_eq!(m, (offset + k) % 10, "offset {offset}");
            }
        }
    }

    #[test]
    fn rotation_splits_the_pivot_interval() {
        let set = set_of(&[10]);
        let runs = rotated_runs(&set, 4);
        assert_eq!(runs, vec![(4, 6, 0), (0, 4, 0)]);
        // Offset on an interval boundary: no split.
        let set = set_of(&[4, 6]);
        let runs = rotated_runs(&set, 4);
        assert_eq!(runs, vec![(4, 6, 1), (0, 4, 0)]);
    }
}
