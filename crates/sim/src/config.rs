//! Simulation configuration.

use lunule_faults::FaultSchedule;
use lunule_telemetry::Telemetry;

/// Configuration of the data path (OSD cluster) model, used by the
/// end-to-end experiments (Fig. 8). When absent, runs are metadata-only,
/// matching the paper's default measurement mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataPathConfig {
    /// Aggregate bandwidth of the OSD cluster, bytes per simulated second.
    /// Shared fairly among all clients currently transferring data.
    pub osd_bandwidth: u64,
    /// Per-client in-flight data window, bytes: a client keeps issuing
    /// metadata ops while its outstanding data debt stays below this
    /// (clients pipeline reads; with a 1-second tick, blocking on every
    /// single file transfer would quantise each op to a full second).
    /// The client blocks once the window is exceeded, which is how a slow
    /// data path throttles metadata progress.
    pub client_window: u64,
}

impl DataPathConfig {
    /// A data path with the default 4 MiB per-client window.
    pub fn with_bandwidth(osd_bandwidth: u64) -> Self {
        DataPathConfig {
            osd_bandwidth,
            client_window: 4 << 20,
        }
    }
}

impl Default for DataPathConfig {
    fn default() -> Self {
        DataPathConfig::with_bandwidth(1 << 30)
    }
}

lunule_util::impl_json_struct!(DataPathConfig {
    osd_bandwidth,
    client_window,
});

/// Which client-side execution engine the simulation runs.
///
/// Both engines produce byte-identical telemetry journals for the same
/// config and seed — `Legacy` exists as the differential oracle the cohort
/// engine's equivalence tests compare against, and as an escape hatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClientModel {
    /// Cohort-aggregated clients: identical clients advance as one flow
    /// carrying a member count, splitting lazily on divergence and
    /// re-merging when state re-converges. The only engine that scales to
    /// millions of clients.
    #[default]
    Cohort,
    /// One `Client` object stepped per client per tick — the original
    /// engine, O(clients) memory and time.
    Legacy,
}

lunule_util::impl_json_enum!(ClientModel { Cohort, Legacy });

lunule_util::impl_json_struct!(SimConfig {
    n_mds,
    mds_capacity,
    mds_capacities,
    epoch_secs,
    duration_secs,
    stop_when_done,
    migration_bw,
    migration_freeze_secs,
    migration_op_cost,
    migration_timeout_ticks,
    migration_max_retries,
    migration_backoff_ticks,
    client_rate,
    client_cache_cap,
    mds_memory_inodes,
    memory_thrash_factor,
    data_path,
    client_model,
    seed,
});

/// Configuration of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of MDS ranks at start (can grow via
    /// [`crate::Simulation::add_mds`]).
    pub n_mds: usize,
    /// Metadata requests one MDS can serve per simulated second. This is
    /// `C` in the urgency model and the budget gating request processing.
    pub mds_capacity: f64,
    /// Per-rank capacity overrides for heterogeneous clusters (extension
    /// beyond the paper). Ranks beyond the vector's length — and MDSs added
    /// at runtime — use `mds_capacity`.
    pub mds_capacities: Vec<f64>,
    /// Epoch (re-balance interval) length in simulated seconds. The paper's
    /// default is 10 s.
    pub epoch_secs: u64,
    /// Maximum run length in simulated seconds.
    pub duration_secs: u64,
    /// Stop early once every client has finished its op stream.
    pub stop_when_done: bool,
    /// Inodes per second one exporter can ship (shared across its active
    /// migration jobs).
    pub migration_bw: f64,
    /// Length of the final commit window during which the migrating subtree
    /// is frozen (ops targeting it stall), in seconds.
    pub migration_freeze_secs: u64,
    /// MDS request-units consumed per migrated inode, charged to both
    /// exporter and importer — the "background traffic contends with
    /// foreground requests" cost.
    pub migration_op_cost: f64,
    /// Transfer deadline per migration job, in ticks: a job still
    /// transferring this long after its (re)start times out and enters the
    /// retry/backoff path. `0` (the default) disables timeouts, preserving
    /// the pre-fault-injection behaviour.
    pub migration_timeout_ticks: u64,
    /// How many times a timed-out migration restarts before being
    /// abandoned (with its subtree staying on the exporter).
    pub migration_max_retries: u32,
    /// Base backoff before a timed-out migration restarts, in ticks;
    /// doubles on every further attempt (exponential, shift-capped).
    pub migration_backoff_ticks: u64,
    /// Maximum metadata ops one client can issue per second.
    pub client_rate: f64,
    /// Maximum dirfrag→rank entries each client caches (CephFS clients hold
    /// a bounded subtree-map view; see `lunule_sim::client`).
    pub client_cache_cap: usize,
    /// Metadata-cache memory limit per MDS, expressed as a resident-inode
    /// count (0 = unlimited). The paper's MDtest runs ended when MDSs ran
    /// out of memory; with a limit set, a rank whose authoritative inode
    /// population exceeds it degrades (cache thrash against the object
    /// store) by [`SimConfig::memory_thrash_factor`].
    pub mds_memory_inodes: u64,
    /// Effective-capacity multiplier applied while a rank is over its
    /// memory limit, in (0, 1].
    pub memory_thrash_factor: f64,
    /// Optional data path; `None` = metadata-only run.
    pub data_path: Option<DataPathConfig>,
    /// Client execution engine (see [`ClientModel`]). Part of the config
    /// digest: the two engines write different snapshot client sections, so
    /// a snapshot must be restored under the model that took it.
    pub client_model: ClientModel,
    /// Worker threads for the cohort engine's sharded fan-out: `0` sizes
    /// from the `LUNULE_JOBS` env var / machine (see
    /// [`lunule_util::par::WorkerPool::auto`]). Excluded from the JSON dump
    /// and digest — thread count is an execution detail that never changes
    /// output bytes, like `telemetry`.
    pub jobs: usize,
    /// Master seed; all stochastic components derive from it.
    pub seed: u64,
    /// Telemetry handle the simulation (and its balancer/migrator) records
    /// into. Defaults to [`Telemetry::disabled`], which keeps the hot path
    /// to a single branch per instrumentation site. Deliberately excluded
    /// from the JSON round-trip: a handle is run state, not configuration
    /// data, so parsed configs always come back disabled.
    pub telemetry: Telemetry,
    /// Fault schedule the run replays (crashes, limps, report losses,
    /// migration stalls); empty = fault-free. Like `telemetry`, excluded
    /// from the JSON round-trip: schedules are reproduced from their seed
    /// or spec string, not from config dumps.
    pub faults: FaultSchedule,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_mds: 5,
            mds_capacity: 5_000.0,
            mds_capacities: Vec::new(),
            epoch_secs: 10,
            duration_secs: 1_800,
            stop_when_done: true,
            migration_bw: 20_000.0,
            migration_freeze_secs: 1,
            migration_op_cost: 0.05,
            migration_timeout_ticks: 0,
            migration_max_retries: 3,
            migration_backoff_ticks: 8,
            client_rate: 500.0,
            client_cache_cap: 256,
            mds_memory_inodes: 0,
            memory_thrash_factor: 0.25,
            data_path: None,
            client_model: ClientModel::Cohort,
            jobs: 0,
            seed: 0xC0FFEE,
            telemetry: Telemetry::disabled(),
            faults: FaultSchedule::empty(),
        }
    }
}

/// Digest identifying a run setup for snapshot compatibility: FNV-1a over
/// the config's canonical JSON (which carries the seed) plus the fault
/// schedule's spec string (excluded from the JSON round-trip, but part of
/// what makes two runs byte-identical). A snapshot restored under a
/// different digest would silently diverge, so the container refuses it.
pub fn config_digest(cfg: &SimConfig) -> u64 {
    use lunule_util::ToJson;
    let mut canonical = cfg.to_json().to_string_compact();
    canonical.push('\n');
    canonical.push_str(&lunule_faults::format_spec(&cfg.faults));
    lunule_util::codec::fnv1a64(canonical.as_bytes())
}

impl SimConfig {
    /// Validates internal consistency; called by the simulation constructor.
    pub fn validate(&self) {
        assert!(self.n_mds >= 1, "need at least one MDS");
        assert!(self.mds_capacity > 0.0, "MDS capacity must be positive");
        assert!(
            self.mds_capacities.iter().all(|c| *c > 0.0),
            "per-rank capacities must be positive"
        );
        assert!(self.epoch_secs >= 1, "epoch must be at least one second");
        assert!(self.duration_secs >= 1, "duration must be positive");
        assert!(self.migration_bw >= 0.0, "migration bandwidth must be >= 0");
        assert!(
            self.migration_op_cost >= 0.0,
            "migration op cost must be >= 0"
        );
        if self.migration_timeout_ticks > 0 {
            assert!(
                self.migration_backoff_ticks >= 1,
                "retry backoff must be at least one tick"
            );
        }
        assert!(self.client_rate > 0.0, "client rate must be positive");
        assert!(
            self.memory_thrash_factor > 0.0 && self.memory_thrash_factor <= 1.0,
            "thrash factor must be in (0, 1]"
        );
        if let Some(dp) = &self.data_path {
            assert!(dp.osd_bandwidth > 0, "OSD bandwidth must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate();
    }

    #[test]
    #[should_panic]
    fn zero_mds_rejected() {
        SimConfig {
            n_mds: 0,
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn zero_osd_bandwidth_rejected() {
        SimConfig {
            data_path: Some(DataPathConfig {
                osd_bandwidth: 0,
                client_window: 0,
            }),
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    fn config_roundtrips_through_json() {
        use lunule_util::{FromJson, Json, ToJson};
        let cfg = SimConfig {
            data_path: Some(DataPathConfig::with_bandwidth(123)),
            ..SimConfig::default()
        };
        let json = cfg.to_json().to_string_pretty();
        let back = SimConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(cfg, back);
        // Missing fields keep their defaults, matching old dumps.
        let partial = SimConfig::from_json(&Json::parse(r#"{"n_mds": 3}"#).unwrap()).unwrap();
        assert_eq!(partial.n_mds, 3);
        assert_eq!(partial.epoch_secs, SimConfig::default().epoch_secs);
    }

    #[test]
    fn telemetry_defaults_disabled_and_stays_out_of_json() {
        use lunule_util::{FromJson, Json, ToJson};
        assert!(!SimConfig::default().telemetry.is_enabled());
        let cfg = SimConfig {
            telemetry: Telemetry::enabled(),
            ..SimConfig::default()
        };
        let json = cfg.to_json().to_string_compact();
        assert!(!json.contains("telemetry"), "handle must not serialise");
        let back = SimConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert!(!back.telemetry.is_enabled(), "parsed configs are disabled");
    }

    #[test]
    fn digest_is_stable_and_covers_seed_and_faults() {
        let base = SimConfig::default();
        assert_eq!(config_digest(&base), config_digest(&SimConfig::default()));
        let reseeded = SimConfig {
            seed: base.seed + 1,
            ..SimConfig::default()
        };
        assert_ne!(config_digest(&base), config_digest(&reseeded));
        let faulted = SimConfig {
            faults: lunule_faults::FaultPlan::new()
                .crash(10, lunule_namespace::MdsRank(1), 5)
                .build(),
            ..SimConfig::default()
        };
        assert_ne!(
            config_digest(&base),
            config_digest(&faulted),
            "fault schedules are outside the JSON dump but inside the digest"
        );
    }

    #[test]
    fn fault_schedule_stays_out_of_json() {
        use lunule_util::ToJson;
        let cfg = SimConfig {
            faults: lunule_faults::FaultPlan::new()
                .crash(10, lunule_namespace::MdsRank(1), 5)
                .build(),
            ..SimConfig::default()
        };
        let json = cfg.to_json().to_string_compact();
        assert!(!json.contains("faults"), "schedules must not serialise");
        assert!(json.contains("migration_timeout_ticks"));
    }
}
