//! The data-path (OSD cluster) model for end-to-end runs.
//!
//! Fig. 8 of the paper measures job completion time with data access
//! enabled. The effect it demonstrates is dilution: the data path adds a
//! per-op cost that is independent of metadata balance, so workloads whose
//! time is dominated by data transfer benefit less from a better balancer.
//! A shared bandwidth pool reproduces exactly that: after each successful
//! metadata op, the client owes `file size` bytes, and all indebted clients
//! share the OSD cluster's aggregate bandwidth fairly until paid off.

use crate::client::Client;
use lunule_util::convert::usize_to_u64;

/// Fair-share bandwidth pool standing in for the OSD cluster.
#[derive(Clone, Copy, Debug)]
pub struct DataPath {
    /// Aggregate bytes per simulated second.
    bandwidth: u64,
}

impl DataPath {
    /// Pool with the given aggregate bandwidth (bytes/second).
    pub fn new(bandwidth: u64) -> Self {
        DataPath { bandwidth }
    }

    /// The pool's aggregate per-tick byte budget.
    pub fn bandwidth(&self) -> u64 {
        self.bandwidth
    }

    /// Advances one tick: distributes this second's bytes among clients
    /// with outstanding data, equally, with leftover re-distributed to
    /// still-indebted clients (max-min fairness within one tick).
    pub fn step(&self, clients: &mut [Client]) {
        let mut budget = self.bandwidth;
        loop {
            let waiting: Vec<usize> = clients
                .iter()
                .enumerate()
                .filter(|(_, c)| c.data_pending > 0)
                .map(|(i, _)| i)
                .collect();
            if waiting.is_empty() || budget == 0 {
                return;
            }
            let share = (budget / usize_to_u64(waiting.len())).max(1);
            let mut spent = 0u64;
            for i in waiting {
                let c = &mut clients[i];
                let take = share.min(c.data_pending).min(budget - spent);
                c.data_pending -= take;
                spent += take;
                if spent >= budget {
                    break;
                }
            }
            if spent == 0 {
                return;
            }
            budget -= spent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::FixedStream;

    fn client(id: usize, pending: u64) -> Client {
        let mut c = Client::new(id, Box::new(FixedStream::new(vec![])), 0);
        c.data_pending = pending;
        c
    }

    #[test]
    fn fair_share_split() {
        let dp = DataPath::new(100);
        let mut clients = vec![client(0, 500), client(1, 500)];
        dp.step(&mut clients);
        assert_eq!(clients[0].data_pending, 450);
        assert_eq!(clients[1].data_pending, 450);
    }

    #[test]
    fn leftover_redistributes() {
        let dp = DataPath::new(100);
        // Client 0 only needs 10; the remaining 90 goes to client 1.
        let mut clients = vec![client(0, 10), client(1, 500)];
        dp.step(&mut clients);
        assert_eq!(clients[0].data_pending, 0);
        assert_eq!(clients[1].data_pending, 410);
    }

    #[test]
    fn drains_exactly() {
        let dp = DataPath::new(1000);
        let mut clients = vec![client(0, 30)];
        dp.step(&mut clients);
        assert_eq!(clients[0].data_pending, 0);
    }

    #[test]
    fn idle_pool_no_waiting_clients() {
        let dp = DataPath::new(1000);
        let mut clients = vec![client(0, 0)];
        dp.step(&mut clients);
        assert_eq!(clients[0].data_pending, 0);
    }
}
