//! Stall-latency accounting.
//!
//! In a closed-loop simulation with one-second ticks, an op's "latency" is
//! the number of ticks it spent stalled before the cluster could serve it —
//! waiting out a saturated MDS, a saturated forwarding path, or a frozen
//! migrating subtree. Most ops are served on their first attempt (0 ticks);
//! the tail of this distribution is where imbalance hurts, which is why the
//! paper lists latency next to throughput and job completion time.

use lunule_util::convert::{f64_to_u64, u64_to_f64, u64_to_usize, usize_to_u64};

/// Upper bucket bound: stalls this long or longer land in the last bucket.
const MAX_TRACKED: usize = 64;

/// A fixed-bucket histogram of per-op stall latencies, in ticks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[k]` counts ops stalled exactly `k` ticks (last bucket: `>=`).
    buckets: Vec<u64>,
    total_ops: u64,
    total_stall_ticks: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; MAX_TRACKED + 1],
            total_ops: 0,
            total_stall_ticks: 0,
        }
    }

    /// Records one served op that stalled for `ticks`.
    pub fn record(&mut self, ticks: u64) {
        let idx = u64_to_usize(ticks).min(MAX_TRACKED);
        self.buckets[idx] += 1;
        self.total_ops += 1;
        self.total_stall_ticks += ticks;
    }

    /// Records `n` ops that each stalled for `ticks`, identically to `n`
    /// sequential [`LatencyHistogram::record`] calls (integer counters add
    /// associatively).
    pub fn record_n(&mut self, ticks: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = u64_to_usize(ticks).min(MAX_TRACKED);
        self.buckets[idx] += n;
        self.total_ops += n;
        self.total_stall_ticks += ticks * n;
    }

    /// Number of ops recorded.
    pub fn count(&self) -> u64 {
        self.total_ops
    }

    /// Mean stall in ticks.
    pub fn mean(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            u64_to_f64(self.total_stall_ticks) / u64_to_f64(self.total_ops)
        }
    }

    /// Share of ops served without any stall.
    pub fn immediate_share(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            u64_to_f64(self.buckets[0]) / u64_to_f64(self.total_ops)
        }
    }

    /// Stall percentile (`p` in 0.0–1.0), in ticks. The last bucket is
    /// open-ended, so the returned value saturates at its bound.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.total_ops == 0 {
            return 0;
        }
        let threshold = f64_to_u64((u64_to_f64(self.total_ops) * p).ceil());
        let mut seen = 0;
        for (ticks, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= threshold {
                return usize_to_u64(ticks);
            }
        }
        usize_to_u64(MAX_TRACKED)
    }

    /// Serialises the histogram for a snapshot section.
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_seq(&self.buckets, |e, b| e.put_u64(*b));
        e.put_u64(self.total_ops);
        e.put_u64(self.total_stall_ticks);
    }

    /// Inverse of [`LatencyHistogram::encode`]; rejects a bucket vector of
    /// the wrong width and counters that disagree with the buckets.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<Self, lunule_util::codec::CodecError> {
        use lunule_util::codec::CodecError;
        let buckets = d.get_seq("latency.buckets", |d| d.get_u64("latency.bucket"))?;
        if buckets.len() != MAX_TRACKED + 1 {
            return Err(CodecError::Invalid {
                what: "latency.buckets",
            });
        }
        let total_ops = d.get_u64("latency.total_ops")?;
        let total_stall_ticks = d.get_u64("latency.total_stall_ticks")?;
        let summed = buckets
            .iter()
            .try_fold(0u64, |acc, b| acc.checked_add(*b))
            .ok_or(CodecError::Invalid {
                what: "latency.buckets",
            })?;
        if summed != total_ops {
            return Err(CodecError::Invalid {
                what: "latency.total_ops",
            });
        }
        Ok(LatencyHistogram {
            buckets,
            total_ops,
            total_stall_ticks,
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total_ops += other.total_ops;
        self.total_stall_ticks += other.total_stall_ticks;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

lunule_util::impl_json_struct!(LatencyHistogram {
    buckets,
    total_ops,
    total_stall_ticks,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = LatencyHistogram::new();
        for t in [0, 0, 0, 1, 2, 10] {
            h.record(t);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 13.0 / 6.0).abs() < 1e-9);
        assert!((h.immediate_share() - 0.5).abs() < 1e-9);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 10);
        assert_eq!(h.percentile(1.0), 10);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.immediate_share(), 0.0);
    }

    #[test]
    fn oversized_stalls_saturate() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        assert_eq!(h.percentile(1.0), 64);
        assert_eq!(h.mean(), 1_000_000.0);
    }

    #[test]
    fn histogram_roundtrips_through_json() {
        use lunule_util::{FromJson, Json, ToJson};
        let mut h = LatencyHistogram::new();
        for t in [0, 2, 7, 99] {
            h.record(t);
        }
        let text = h.to_json().to_string_compact();
        let back = LatencyHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        use lunule_util::codec::{CodecError, Decoder, Encoder};
        let mut h = LatencyHistogram::new();
        for t in [0, 0, 2, 7, 99] {
            h.record(t);
        }
        let mut e = Encoder::new();
        h.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = LatencyHistogram::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, h);
        // Corrupting the op counter trips the bucket/counter cross-check.
        let mut e = Encoder::new();
        h.encode(&mut e);
        let mut bytes = e.into_bytes();
        let n = bytes.len();
        bytes[n - 16] ^= 0xFF; // low byte of total_ops
        assert!(matches!(
            LatencyHistogram::decode(&mut Decoder::new(&bytes)),
            Err(CodecError::Invalid {
                what: "latency.total_ops"
            })
        ));
    }

    #[test]
    fn merge_adds_up() {
        let mut a = LatencyHistogram::new();
        a.record(0);
        a.record(3);
        let mut b = LatencyHistogram::new();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(1.0), 5);
    }
}
