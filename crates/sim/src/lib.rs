//! # lunule-sim
//!
//! A deterministic, discrete-time simulator of a CephFS-style MDS cluster:
//! capacity-constrained metadata servers, closed-loop clients with authority
//! caching, bandwidth-limited subtree migration with commit-window freezes,
//! and an optional OSD data path for end-to-end runs.
//!
//! One tick is one simulated second. Every `epoch_secs` ticks the configured
//! [`lunule_core::Balancer`] receives the cluster's load snapshot and may
//! return a migration plan, which the [`migration::Migrator`] then executes
//! with realistic lag and resource costs. The per-epoch series a run records
//! ([`results::RunResult`]) are exactly the series the paper's figures plot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod cohort;
mod cohort_engine;
pub mod config;
pub mod datapath;
pub mod latency;
pub mod mds;
pub mod migration;
pub mod request;
pub mod results;
mod tick_ledger;

pub use client::{Client, Route};
pub use cohort::{Cohort, CohortSet, Interval};
// Fault-injection types, re-exported so simulator users need not depend on
// `lunule-faults` directly to build a `SimConfig::faults` schedule.
pub use cluster::{snapshot_client_count, snapshot_stream_count, Simulation};
pub use config::{ClientModel, DataPathConfig, SimConfig};
pub use datapath::DataPath;
pub use latency::LatencyHistogram;
pub use lunule_faults::{seeded, ChaosProfile, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
pub use mds::MdsState;
pub use migration::{MigrationCounters, MigrationJob, Migrator};
pub use request::{FixedStream, MetaOp, OpStream};
pub use results::{EpochRecord, RunResult};
