//! Per-MDS capacity accounting.

/// One metadata server's runtime state.
///
/// An MDS is modelled purely as a request-processing budget: every served
/// request, forward, and migrated inode consumes part of the per-tick
/// budget, and whatever demand the budget cannot absorb stalls at the
/// clients — which is exactly how a saturated hot MDS throttles the cluster
/// in the paper's measurements.
#[derive(Clone, Debug)]
pub struct MdsState {
    /// Requests the MDS can process per simulated second.
    pub capacity: f64,
    /// Budget remaining in the current tick.
    pub budget: f64,
    /// Requests served (as final authority) in the current epoch.
    pub served_epoch: u64,
    /// Forwards performed in the current epoch.
    pub forwards_epoch: u64,
    /// Requests served over the whole run.
    pub served_total: u64,
    /// Forwards performed over the whole run.
    pub forwards_total: u64,
}

impl MdsState {
    /// New MDS with a full first-tick budget.
    pub fn new(capacity: f64) -> Self {
        MdsState {
            capacity,
            budget: capacity,
            served_epoch: 0,
            forwards_epoch: 0,
            served_total: 0,
            forwards_total: 0,
        }
    }

    /// Refills the budget at a tick boundary.
    pub fn refill(&mut self) {
        self.budget = self.capacity;
    }

    /// Refills to a scaled budget (memory-thrash degradation).
    pub fn refill_scaled(&mut self, factor: f64) {
        self.budget = self.capacity * factor;
    }

    /// Attempts to reserve `cost` units of budget; returns false (leaving
    /// the budget untouched) when there is not enough left.
    pub fn try_consume(&mut self, cost: f64) -> bool {
        if self.budget >= cost {
            self.budget -= cost;
            true
        } else {
            false
        }
    }

    /// Charges a non-gating cost (e.g. migration traffic), clamping at 0.
    pub fn drain(&mut self, cost: f64) {
        self.budget = (self.budget - cost).max(0.0);
    }

    /// Records one served request.
    pub fn record_served(&mut self) {
        self.served_epoch += 1;
        self.served_total += 1;
    }

    /// Records one forwarded request.
    pub fn record_forward(&mut self) {
        self.forwards_epoch += 1;
        self.forwards_total += 1;
    }

    /// Records `n` served requests (cohort batch; integer counters add
    /// associatively, so this equals `n` [`MdsState::record_served`] calls).
    pub fn record_served_n(&mut self, n: u64) {
        self.served_epoch += n;
        self.served_total += n;
    }

    /// Records `n` forwarded requests (cohort batch).
    pub fn record_forward_n(&mut self, n: u64) {
        self.forwards_epoch += n;
        self.forwards_total += n;
    }

    /// Requests handled this epoch (served + forwards), the paper's
    /// per-MDS load metric.
    pub fn epoch_requests(&self) -> u64 {
        self.served_epoch + self.forwards_epoch
    }

    /// Resets the per-epoch counters (epoch boundary).
    pub fn reset_epoch(&mut self) {
        self.served_epoch = 0;
        self.forwards_epoch = 0;
    }

    /// Fraction of this tick's budget already consumed, in `[0, 1]` — the
    /// per-tick utilisation gauge telemetry samples. A drained rank
    /// (capacity 0) reads as fully utilised: it can serve nothing.
    pub fn utilisation(&self) -> f64 {
        if self.capacity <= 0.0 {
            1.0
        } else {
            (1.0 - self.budget / self.capacity).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_gates_consumption() {
        let mut m = MdsState::new(2.0);
        assert!(m.try_consume(1.0));
        assert!(m.try_consume(1.0));
        assert!(!m.try_consume(0.5));
        m.refill();
        assert!(m.try_consume(2.0));
    }

    #[test]
    fn drain_clamps_at_zero() {
        let mut m = MdsState::new(1.0);
        m.drain(5.0);
        assert_eq!(m.budget, 0.0);
        assert!(!m.try_consume(0.1));
    }

    #[test]
    fn utilisation_tracks_budget() {
        let mut m = MdsState::new(10.0);
        assert_eq!(m.utilisation(), 0.0);
        assert!(m.try_consume(5.0));
        assert!((m.utilisation() - 0.5).abs() < 1e-12);
        m.drain(100.0);
        assert_eq!(m.utilisation(), 1.0);
        m.capacity = 0.0;
        assert_eq!(m.utilisation(), 1.0, "dead rank reads fully utilised");
    }

    #[test]
    fn epoch_counters_roll() {
        let mut m = MdsState::new(10.0);
        m.record_served();
        m.record_served();
        m.record_forward();
        assert_eq!(m.epoch_requests(), 3);
        m.reset_epoch();
        assert_eq!(m.epoch_requests(), 0);
        assert_eq!(m.served_total, 2);
        assert_eq!(m.forwards_total, 1);
    }
}
