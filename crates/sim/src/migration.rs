//! The Migrator: executes migration plans with real transfer costs.
//!
//! CephFS ships subtrees with a two-phase protocol: the exporter freezes and
//! packages the subtree, streams it to the importer, and authority flips at
//! commit. The two properties of that protocol that shape the paper's
//! findings are (a) a transfer takes *time* proportional to its inode count,
//! during which load stays on the exporter (migration lag — the root of the
//! ping-pong effect), and (b) the transfer consumes MDS resources that
//! foreground requests then cannot use. Both are modelled here; the final
//! commit window additionally freezes the subtree (ops targeting it stall).

use lunule_core::{subtrees_overlap, MigrationPlan};
use lunule_namespace::{FragKey, MdsRank, Namespace, SubtreeMap};
use lunule_telemetry::{Event, Telemetry};
use lunule_util::convert::{f64_to_u64, u64_to_f64, usize_to_f64, usize_to_u64};

/// Phase of one in-flight migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Inodes streaming from exporter to importer.
    Transferring,
    /// Final commit: subtree frozen until the stored tick.
    Committing { until: u64 },
}

/// One in-flight subtree migration.
#[derive(Clone, Debug)]
pub struct MigrationJob {
    /// Source rank.
    pub from: MdsRank,
    /// Destination rank.
    pub to: MdsRank,
    /// The migrating subtree.
    pub subtree: FragKey,
    /// Inodes the subtree contained when the job started.
    pub total_inodes: u64,
    /// Inodes shipped so far.
    pub moved: u64,
    /// Tick the job was enqueued at (for commit-latency telemetry).
    pub started_at: u64,
    /// Retry attempts already consumed (0 on a job's first run).
    pub attempt: u32,
    phase: Phase,
    /// Tick by which the transfer must finish or time out
    /// (`u64::MAX` = no deadline).
    deadline: u64,
}

impl MigrationJob {
    /// True once the job entered its freeze/commit window.
    pub fn is_committing(&self) -> bool {
        matches!(self.phase, Phase::Committing { .. })
    }
}

/// Counters the migrator exposes for reporting (Fig. 4's migrated-inode
/// curves and the invalid-migration analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationCounters {
    /// Total inodes whose authority changed, cumulative.
    pub migrated_inodes: u64,
    /// Completed migrations.
    pub completed_jobs: u64,
    /// Subtree choices dropped because the exporter no longer owned them or
    /// they overlapped an in-flight job.
    pub rejected_choices: u64,
    /// Jobs accepted into the transfer pipeline, cumulative. The ledger law
    /// `started == completed + abandoned + in-flight` holds at all times
    /// and is audited by the invariant checker under `strict-invariants`.
    pub started_jobs: u64,
    /// Jobs dropped mid-flight (endpoint drained/failed), cumulative.
    pub abandoned_jobs: u64,
    /// Transfer deadlines blown, cumulative. Each timeout either re-queues
    /// the job with backoff (also counted in `retried_jobs` once it
    /// restarts) or abandons it after the retry budget runs out.
    pub timed_out_jobs: u64,
    /// Timed-out jobs that restarted after their backoff, cumulative.
    pub retried_jobs: u64,
}

/// A timed-out job parked until its backoff elapses. Parked jobs still
/// count as in-flight for the migration ledger.
#[derive(Clone, Debug)]
struct RetryEntry {
    job: MigrationJob,
    /// Tick the job becomes eligible to restart.
    ready_at: u64,
    /// The backoff that was applied, for telemetry.
    backoff: u64,
}

/// The migration engine.
#[derive(Clone, Debug)]
pub struct Migrator {
    jobs: Vec<MigrationJob>,
    bw_per_exporter: f64,
    freeze_secs: u64,
    op_cost_per_inode: f64,
    counters: MigrationCounters,
    /// Jobs whose authority flipped during the last `step` call — consumed
    /// by the simulator for client cap transfer and resident accounting.
    completed_last_step: Vec<MigrationJob>,
    /// Journal for migration lifecycle events; disabled by default.
    telemetry: Telemetry,
    /// Transfer deadline in ticks (0 = timeouts disabled).
    timeout_ticks: u64,
    /// Retry budget per job before a timed-out transfer is abandoned.
    max_retries: u32,
    /// Base backoff; doubles per attempt (`backoff << (attempt-1)`).
    backoff_ticks: u64,
    /// Timed-out jobs waiting out their backoff.
    retry_queue: Vec<RetryEntry>,
    /// Exporters whose outbound transfers are stalled until the given tick
    /// (fault injection).
    stalls: Vec<(MdsRank, u64)>,
}

impl Migrator {
    /// Builds the engine. `bw_per_exporter` is the inodes/second one
    /// exporter can stream across all of its jobs.
    pub fn new(bw_per_exporter: f64, freeze_secs: u64, op_cost_per_inode: f64) -> Self {
        Migrator {
            jobs: Vec::new(),
            bw_per_exporter,
            freeze_secs,
            op_cost_per_inode,
            counters: MigrationCounters::default(),
            completed_last_step: Vec::new(),
            telemetry: Telemetry::disabled(),
            timeout_ticks: 0,
            max_retries: 0,
            backoff_ticks: 1,
            retry_queue: Vec::new(),
            stalls: Vec::new(),
        }
    }

    /// Enables transfer deadlines: a job still transferring `timeout_ticks`
    /// after its (re)start times out; it restarts after an exponential
    /// backoff (`backoff_ticks << attempt`, capped) up to `max_retries`
    /// times, then is abandoned. `timeout_ticks == 0` disables the whole
    /// mechanism.
    pub fn configure_retry(&mut self, timeout_ticks: u64, max_retries: u32, backoff_ticks: u64) {
        self.timeout_ticks = timeout_ticks;
        self.max_retries = max_retries;
        self.backoff_ticks = backoff_ticks.max(1);
    }

    /// Stalls `rank`'s outbound transfers (zero export progress) until
    /// `until_tick`. Extends any existing stall rather than shortening it.
    pub fn set_exporter_stall(&mut self, rank: MdsRank, until_tick: u64) {
        match self.stalls.iter_mut().find(|(r, _)| *r == rank) {
            Some((_, until)) => *until = (*until).max(until_tick),
            None => self.stalls.push((rank, until_tick)),
        }
    }

    /// Jobs the ledger counts as in flight: actively transferring or
    /// committing, plus timed-out jobs waiting out their backoff.
    pub fn in_flight(&self) -> u64 {
        usize_to_u64(self.jobs.len() + self.retry_queue.len())
    }

    /// Timed-out jobs currently waiting to restart.
    pub fn retry_queue_len(&self) -> usize {
        self.retry_queue.len()
    }

    /// Attaches the telemetry handle migration lifecycle events flow into.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Jobs whose authority flipped during the most recent
    /// [`Migrator::step`].
    pub fn completed_last_step(&self) -> &[MigrationJob] {
        &self.completed_last_step
    }

    /// Reporting counters.
    pub fn counters(&self) -> MigrationCounters {
        self.counters
    }

    /// In-flight jobs.
    pub fn jobs(&self) -> &[MigrationJob] {
        &self.jobs
    }

    /// Drops every in-flight job whose exporter or importer is `rank` —
    /// used when a rank is drained/fails. Abandoned transfers count as
    /// rejected choices, not migrations.
    pub fn abandon_jobs_touching(&mut self, rank: MdsRank) {
        let before = self.jobs.len() + self.retry_queue.len();
        let mut dropped = Vec::new();
        self.jobs.retain(|j| {
            let keep = j.from != rank && j.to != rank;
            if !keep {
                dropped.push((j.from, j.to, j.subtree.dir, j.moved));
            }
            keep
        });
        self.retry_queue.retain(|e| {
            let keep = e.job.from != rank && e.job.to != rank;
            if !keep {
                dropped.push((e.job.from, e.job.to, e.job.subtree.dir, e.job.moved));
            }
            keep
        });
        let n_dropped = usize_to_u64(before - self.jobs.len() - self.retry_queue.len());
        self.counters.rejected_choices += n_dropped;
        self.counters.abandoned_jobs += n_dropped;
        if n_dropped > 0 {
            self.telemetry.counter_add("migration.abandoned", n_dropped);
        }
        for (from, to, dir, moved) in dropped {
            self.telemetry.emit(|| Event::MigrationAbandon {
                from: u32::from(from.0),
                to: u32::from(to.0),
                dir: dir.raw(),
                moved,
            });
        }
    }

    /// Accepts a plan at tick `tick`, splitting namespace fragments where
    /// the selector chose a sub-fragment, and rejecting choices that are
    /// stale (exporter no longer authoritative) or overlap an active job.
    pub fn enqueue_plan(
        &mut self,
        ns: &mut Namespace,
        map: &SubtreeMap,
        plan: &MigrationPlan,
        tick: u64,
    ) {
        for task in &plan.exports {
            for choice in &task.subtrees {
                let key = choice.subtree;
                if map.frag_authority(ns, key.dir, &key.frag) != task.from || task.from == task.to {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                if self
                    .jobs
                    .iter()
                    .map(|j| &j.subtree)
                    .chain(self.retry_queue.iter().map(|e| &e.job.subtree))
                    .any(|s| subtrees_overlap(ns, s, &key))
                {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                // Materialise the chosen fragment in the directory's live
                // frag set if the selector split below it.
                if !ensure_frag_live(ns, key, &self.telemetry) {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                let total_inodes = usize_to_u64(ns.subtree_inode_count(key.dir, &key.frag));
                if total_inodes == 0 {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                self.counters.started_jobs += 1;
                self.telemetry.counter_add("migration.started", 1);
                self.telemetry.emit(|| Event::MigrationStart {
                    from: u32::from(task.from.0),
                    to: u32::from(task.to.0),
                    dir: key.dir.raw(),
                    frag_value: key.frag.value(),
                    frag_bits: u32::from(key.frag.bits()),
                    inodes: total_inodes,
                });
                self.jobs.push(MigrationJob {
                    from: task.from,
                    to: task.to,
                    subtree: key,
                    total_inodes,
                    moved: 0,
                    started_at: tick,
                    attempt: 0,
                    phase: Phase::Transferring,
                    deadline: deadline_after(tick, self.timeout_ticks),
                });
            }
        }
    }

    /// Advances all jobs by one tick. Authority flips exactly when a job's
    /// commit window elapses; the subtree map is re-coalesced after any
    /// completion so traversal paths stay as short as CephFS keeps them.
    /// Returns the per-rank migration op-cost to charge ((rank, cost) pairs
    /// for both endpoints of each active job).
    pub fn step(&mut self, ns: &Namespace, map: &mut SubtreeMap, tick: u64) -> Vec<(MdsRank, f64)> {
        self.completed_last_step.clear();
        self.reactivate_retries(ns, map, tick);
        self.sweep_timeouts(tick);
        let mut charges: Vec<(MdsRank, f64)> = Vec::new();
        // Split bandwidth evenly among each exporter's transferring jobs.
        let mut active_per_exporter: Vec<(MdsRank, usize)> = Vec::new();
        for j in &self.jobs {
            if matches!(j.phase, Phase::Transferring) {
                match active_per_exporter.iter_mut().find(|(r, _)| *r == j.from) {
                    Some((_, n)) => *n += 1,
                    None => active_per_exporter.push((j.from, 1)),
                }
            }
        }
        let freeze = self.freeze_secs;
        let bw = self.bw_per_exporter;
        let op_cost = self.op_cost_per_inode;
        for job in &mut self.jobs {
            match job.phase {
                Phase::Transferring => {
                    // A stalled exporter makes no export progress at all;
                    // long enough stalls blow the transfer deadline and
                    // exercise the retry path.
                    if self
                        .stalls
                        .iter()
                        .any(|(r, until)| *r == job.from && tick < *until)
                    {
                        continue;
                    }
                    let n_active = active_per_exporter
                        .iter()
                        .find(|(r, _)| *r == job.from)
                        .map(|(_, n)| *n)
                        .map_or(1.0, usize_to_f64);
                    let quota = (bw / n_active).max(1.0);
                    let moved_now = f64_to_u64(quota.min(u64_to_f64(job.total_inodes - job.moved)));
                    job.moved += moved_now;
                    let cost = u64_to_f64(moved_now) * op_cost;
                    if cost > 0.0 {
                        charges.push((job.from, cost));
                        charges.push((job.to, cost));
                    }
                    if job.moved >= job.total_inodes {
                        job.phase = Phase::Committing {
                            until: tick + freeze,
                        };
                    }
                }
                Phase::Committing { until } => {
                    if tick >= until {
                        map.set_authority(job.subtree, job.to);
                        self.counters.migrated_inodes += job.total_inodes;
                        self.counters.completed_jobs += 1;
                        let duration_ticks = tick.saturating_sub(job.started_at);
                        self.telemetry.counter_add("migration.committed", 1);
                        self.telemetry
                            .histogram_record("migration.duration_ticks", duration_ticks);
                        self.telemetry.emit(|| Event::MigrationCommit {
                            from: u32::from(job.from.0),
                            to: u32::from(job.to.0),
                            dir: job.subtree.dir.raw(),
                            inodes: job.total_inodes,
                            duration_ticks,
                        });
                        self.completed_last_step.push(job.clone());
                        job.moved = u64::MAX; // mark for sweep
                    }
                }
            }
        }
        let before = self.jobs.len();
        self.jobs.retain(|j| j.moved != u64::MAX);
        if self.jobs.len() != before {
            map.simplify(ns);
        }
        self.stalls.retain(|(_, until)| *until > tick);
        charges
    }

    /// Restarts parked jobs whose backoff elapsed. A restart re-validates
    /// the job against the *current* map and namespace — the world may have
    /// moved on during the backoff — and abandons it if the exporter lost
    /// authority or the subtree emptied out.
    fn reactivate_retries(&mut self, ns: &Namespace, map: &SubtreeMap, tick: u64) {
        if self.retry_queue.is_empty() {
            return;
        }
        let due: Vec<RetryEntry> = {
            let mut due = Vec::new();
            self.retry_queue.retain_mut(|e| {
                if e.ready_at <= tick {
                    due.push(e.clone());
                    false
                } else {
                    true
                }
            });
            due
        };
        for entry in due {
            let mut job = entry.job;
            let still_owned =
                map.frag_authority(ns, job.subtree.dir, &job.subtree.frag) == job.from;
            let total_inodes =
                usize_to_u64(ns.subtree_inode_count(job.subtree.dir, &job.subtree.frag));
            if !still_owned || total_inodes == 0 {
                self.counters.abandoned_jobs += 1;
                self.counters.rejected_choices += 1;
                self.telemetry.counter_add("migration.abandoned", 1);
                self.telemetry.emit(|| Event::MigrationAbandon {
                    from: u32::from(job.from.0),
                    to: u32::from(job.to.0),
                    dir: job.subtree.dir.raw(),
                    moved: job.moved,
                });
                continue;
            }
            job.total_inodes = total_inodes;
            job.moved = 0;
            job.phase = Phase::Transferring;
            job.deadline = deadline_after(tick, self.timeout_ticks);
            self.counters.retried_jobs += 1;
            self.telemetry.counter_add("migration.retried", 1);
            self.telemetry.emit(|| Event::MigrationRetried {
                from: u32::from(job.from.0),
                to: u32::from(job.to.0),
                dir: job.subtree.dir.raw(),
                attempt: job.attempt,
                backoff_ticks: entry.backoff,
            });
            self.jobs.push(job);
        }
    }

    /// Times out transferring jobs past their deadline: re-queue with
    /// exponential backoff while the retry budget lasts, abandon after.
    fn sweep_timeouts(&mut self, tick: u64) {
        if self.timeout_ticks == 0 {
            return;
        }
        let max_retries = self.max_retries;
        let backoff_base = self.backoff_ticks;
        let mut kept = Vec::with_capacity(self.jobs.len());
        for mut job in self.jobs.drain(..) {
            let timed_out = matches!(job.phase, Phase::Transferring) && tick >= job.deadline;
            if !timed_out {
                kept.push(job);
                continue;
            }
            self.counters.timed_out_jobs += 1;
            self.telemetry.counter_add("migration.timed_out", 1);
            self.telemetry.emit(|| Event::MigrationTimedOut {
                from: u32::from(job.from.0),
                to: u32::from(job.to.0),
                dir: job.subtree.dir.raw(),
                attempt: job.attempt,
                moved: job.moved,
            });
            if job.attempt < max_retries {
                job.attempt += 1;
                // Exponential backoff, shift-capped so it cannot overflow.
                let backoff = backoff_base.saturating_mul(1u64 << (job.attempt - 1).min(16));
                self.retry_queue.push(RetryEntry {
                    ready_at: tick.saturating_add(backoff),
                    backoff,
                    job,
                });
            } else {
                self.counters.abandoned_jobs += 1;
                self.counters.rejected_choices += 1;
                self.telemetry.counter_add("migration.abandoned", 1);
                self.telemetry.emit(|| Event::MigrationAbandon {
                    from: u32::from(job.from.0),
                    to: u32::from(job.to.0),
                    dir: job.subtree.dir.raw(),
                    moved: job.moved,
                });
            }
        }
        self.jobs = kept;
    }

    /// Serialises the engine's dynamic state — in-flight jobs, lifecycle
    /// counters, the retry queue, and active exporter stalls — for a
    /// snapshot section. Bandwidth/freeze/retry tuning is run configuration
    /// and is rebuilt by the restoring constructor, not stored.
    pub(crate) fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_seq(&self.jobs, encode_job);
        let c = &self.counters;
        e.put_u64(c.migrated_inodes);
        e.put_u64(c.completed_jobs);
        e.put_u64(c.rejected_choices);
        e.put_u64(c.started_jobs);
        e.put_u64(c.abandoned_jobs);
        e.put_u64(c.timed_out_jobs);
        e.put_u64(c.retried_jobs);
        e.put_seq(&self.retry_queue, |e, r| {
            encode_job(e, &r.job);
            e.put_u64(r.ready_at);
            e.put_u64(r.backoff);
        });
        e.put_seq(&self.stalls, |e, (rank, until)| {
            e.put_u16(rank.0);
            e.put_u64(*until);
        });
    }

    /// Inverse of [`Migrator::save_state`], applied to an engine freshly
    /// built from the same run configuration. `completed_last_step` is
    /// deliberately not restored: snapshots are taken between ticks, after
    /// the simulator consumed the last step's completions.
    pub(crate) fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        self.jobs = d.get_seq("migrator.jobs", decode_job)?;
        self.counters = MigrationCounters {
            migrated_inodes: d.get_u64("migrator.migrated_inodes")?,
            completed_jobs: d.get_u64("migrator.completed_jobs")?,
            rejected_choices: d.get_u64("migrator.rejected_choices")?,
            started_jobs: d.get_u64("migrator.started_jobs")?,
            abandoned_jobs: d.get_u64("migrator.abandoned_jobs")?,
            timed_out_jobs: d.get_u64("migrator.timed_out_jobs")?,
            retried_jobs: d.get_u64("migrator.retried_jobs")?,
        };
        self.retry_queue = d.get_seq("migrator.retry_queue", |d| {
            let job = decode_job(d)?;
            let ready_at = d.get_u64("migrator.retry_ready_at")?;
            let backoff = d.get_u64("migrator.retry_backoff")?;
            Ok(RetryEntry {
                job,
                ready_at,
                backoff,
            })
        })?;
        self.stalls = d.get_seq("migrator.stalls", |d| {
            let rank = MdsRank(d.get_u16("migrator.stall_rank")?);
            let until = d.get_u64("migrator.stall_until")?;
            Ok((rank, until))
        })?;
        self.completed_last_step.clear();
        Ok(())
    }

    /// True when `(dir of ino's path) ∩ (a committing subtree)` is
    /// non-empty — i.e. the op must stall because its metadata is frozen.
    pub fn is_frozen(&self, ns: &Namespace, ino: lunule_namespace::InodeId) -> bool {
        let committing: Vec<&MigrationJob> =
            self.jobs.iter().filter(|j| j.is_committing()).collect();
        if committing.is_empty() {
            return false;
        }
        let chain = ns.path_chain(ino);
        for w in chain.windows(2) {
            let (dir, child) = (w[0], w[1]);
            let hash = ns.dentry_hash_of(child);
            for job in &committing {
                if job.subtree.dir == dir && job.subtree.frag.contains_hash(hash) {
                    return true;
                }
            }
        }
        false
    }
}

/// Serialises one migration job for the snapshot codec.
fn encode_job(e: &mut lunule_util::codec::Encoder, job: &MigrationJob) {
    e.put_u16(job.from.0);
    e.put_u16(job.to.0);
    e.put_u64(job.subtree.dir.raw());
    job.subtree.frag.encode(e);
    e.put_u64(job.total_inodes);
    e.put_u64(job.moved);
    e.put_u64(job.started_at);
    e.put_u32(job.attempt);
    match job.phase {
        Phase::Transferring => e.put_u8(0),
        Phase::Committing { until } => {
            e.put_u8(1);
            e.put_u64(until);
        }
    }
    e.put_u64(job.deadline);
}

/// Inverse of [`encode_job`]; rejects jobs that have moved more inodes
/// than they contain, empty subtrees, and unknown phase tags.
fn decode_job(
    d: &mut lunule_util::codec::Decoder<'_>,
) -> Result<MigrationJob, lunule_util::codec::CodecError> {
    use lunule_util::codec::CodecError;
    let from = MdsRank(d.get_u16("job.from")?);
    let to = MdsRank(d.get_u16("job.to")?);
    let dir = crate::request::inode_from_raw(d.get_u64("job.dir")?)?;
    let frag = lunule_namespace::Frag::decode(d)?;
    let total_inodes = d.get_u64("job.total_inodes")?;
    let moved = d.get_u64("job.moved")?;
    let started_at = d.get_u64("job.started_at")?;
    let attempt = d.get_u32("job.attempt")?;
    let phase = match d.get_u8("job.phase")? {
        0 => Phase::Transferring,
        1 => Phase::Committing {
            until: d.get_u64("job.commit_until")?,
        },
        _ => return Err(CodecError::Invalid { what: "job.phase" }),
    };
    let deadline = d.get_u64("job.deadline")?;
    if total_inodes == 0 || moved > total_inodes {
        return Err(CodecError::Invalid {
            what: "job.progress",
        });
    }
    Ok(MigrationJob {
        from,
        to,
        subtree: FragKey { dir, frag },
        total_inodes,
        moved,
        started_at,
        attempt,
        phase,
        deadline,
    })
}

/// Transfer deadline for a job (re)starting at `tick`; `u64::MAX` when
/// timeouts are disabled.
fn deadline_after(tick: u64, timeout_ticks: u64) -> u64 {
    if timeout_ticks == 0 {
        u64::MAX
    } else {
        tick.saturating_add(timeout_ticks)
    }
}

/// Splits `key.dir`'s live fragment set until `key.frag` is live. Returns
/// false when `key.frag` is *shallower* than the live fragmentation (cannot
/// be represented without a merge) — callers treat that as a stale choice.
fn ensure_frag_live(ns: &mut Namespace, key: FragKey, telemetry: &Telemetry) -> bool {
    loop {
        let frags = ns.frags_of(key.dir);
        if frags.contains(&key.frag) {
            return true;
        }
        // Find the live frag strictly containing the target and split it.
        match frags.iter().find(|f| f.contains_frag(&key.frag)) {
            // A split of a frag we just observed live can only fail if the
            // set was mutated under us; treat that as a stale choice too.
            Some(parent) => {
                let parent = *parent;
                if ns.split_frag(key.dir, &parent, 1).is_err() {
                    return false;
                }
                telemetry.emit(|| Event::FragSplit {
                    dir: key.dir.raw(),
                    value: parent.value(),
                    bits: u32::from(parent.bits()),
                });
            }
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_core::{ExportTask, SubtreeChoice};
    use lunule_namespace::{Frag, InodeId};

    fn fixture() -> (Namespace, SubtreeMap, InodeId) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        for i in 0..100 {
            ns.create_file(d, &format!("f{i}"), 1).unwrap();
        }
        (ns, SubtreeMap::new(MdsRank(0)), d)
    }

    fn plan_for(d: InodeId, from: u16, to: u16) -> MigrationPlan {
        MigrationPlan {
            exports: vec![ExportTask {
                from: MdsRank(from),
                to: MdsRank(to),
                target_amount: 100.0,
                subtrees: vec![SubtreeChoice {
                    subtree: FragKey::whole(d),
                    estimated_load: 100.0,
                }],
            }],
        }
    }

    #[test]
    fn transfer_takes_time_and_flips_authority() {
        let (mut ns, mut map, d) = fixture();
        // 100 inodes at 30 inodes/sec -> 4 ticks transfer + 1 freeze.
        let mut mig = Migrator::new(30.0, 1, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        assert_eq!(mig.jobs().len(), 1);
        let mut flipped_at = None;
        for tick in 0..10u64 {
            mig.step(&ns, &mut map, tick);
            if map.frag_authority(&ns, d, &Frag::root()) == MdsRank(1) {
                flipped_at = Some(tick);
                break;
            }
        }
        let t = flipped_at.expect("authority must eventually flip");
        assert!(t >= 4, "100/30 inodes takes >= 4 ticks, flipped at {t}");
        assert_eq!(mig.counters().migrated_inodes, 100);
        assert_eq!(mig.counters().completed_jobs, 1);
    }

    #[test]
    fn stale_choice_rejected() {
        let (mut ns, map, d) = fixture();
        let mut mig = Migrator::new(1e9, 0, 0.0);
        // Exporter 1 does not own the subtree (rank 0 does).
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 1, 2), 0);
        assert!(mig.jobs().is_empty());
        assert_eq!(mig.counters().rejected_choices, 1);
    }

    #[test]
    fn overlapping_choice_rejected() {
        let (mut ns, map, d) = fixture();
        let mut mig = Migrator::new(1.0, 1, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 2), 0);
        assert_eq!(mig.jobs().len(), 1);
        assert_eq!(mig.counters().rejected_choices, 1);
    }

    #[test]
    fn sub_fragment_choice_splits_live_set() {
        let (mut ns, map, d) = fixture();
        let (left, _) = Frag::root().split_in_two();
        let plan = MigrationPlan {
            exports: vec![ExportTask {
                from: MdsRank(0),
                to: MdsRank(1),
                target_amount: 50.0,
                subtrees: vec![SubtreeChoice {
                    subtree: FragKey { dir: d, frag: left },
                    estimated_load: 50.0,
                }],
            }],
        };
        let mut mig = Migrator::new(1e9, 0, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan, 0);
        assert_eq!(mig.jobs().len(), 1);
        assert_eq!(ns.frags_of(d).len(), 2, "live set must have split");
        let job = &mig.jobs()[0];
        assert!(job.total_inodes > 0 && job.total_inodes < 100);
    }

    #[test]
    fn freeze_window_blocks_subtree() {
        let (mut ns, mut map, d) = fixture();
        let f0 = ns.inode(d).children()[0];
        let mut mig = Migrator::new(1e9, 5, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        // Tick 0: whole transfer completes, enters commit until tick 5.
        mig.step(&ns, &mut map, 0);
        assert!(mig.is_frozen(&ns, f0));
        assert!(!mig.is_frozen(&ns, d), "the dir inode itself is outside");
        // Ticks pass; at the commit tick the authority flips and thaw.
        for tick in 1..=5 {
            mig.step(&ns, &mut map, tick);
        }
        assert!(!mig.is_frozen(&ns, f0));
        assert_eq!(map.frag_authority(&ns, d, &Frag::root()), MdsRank(1));
    }

    #[test]
    fn migration_charges_both_endpoints() {
        let (mut ns, mut map, d) = fixture();
        let mut mig = Migrator::new(50.0, 1, 0.1);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        let charges = mig.step(&ns, &mut map, 0);
        assert_eq!(charges.len(), 2);
        let total: f64 = charges.iter().map(|(_, c)| c).sum();
        assert!((total - 2.0 * 50.0 * 0.1).abs() < 1e-9);
        assert!(charges.iter().any(|(r, _)| *r == MdsRank(0)));
        assert!(charges.iter().any(|(r, _)| *r == MdsRank(1)));
    }

    #[test]
    fn stalled_transfer_times_out_retries_and_commits() {
        let (mut ns, mut map, d) = fixture();
        let mut mig = Migrator::new(1e9, 0, 0.0);
        mig.configure_retry(3, 2, 2);
        mig.set_exporter_stall(MdsRank(0), 10);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        let mut committed_at = None;
        for tick in 1..40u64 {
            mig.step(&ns, &mut map, tick);
            if mig.counters().completed_jobs == 1 {
                committed_at = Some(tick);
                break;
            }
        }
        let t = committed_at.expect("retry must eventually commit");
        assert!(t > 10, "cannot commit while the exporter is stalled");
        let c = mig.counters();
        assert!(c.timed_out_jobs >= 1, "the stall must blow the deadline");
        assert_eq!(c.retried_jobs, c.timed_out_jobs, "every timeout retried");
        assert_eq!(c.started_jobs, 1, "retries are not new starts");
        assert_eq!(c.abandoned_jobs, 0);
        assert_eq!(
            c.started_jobs,
            c.completed_jobs + c.abandoned_jobs + mig.in_flight()
        );
        assert_eq!(map.frag_authority(&ns, d, &Frag::root()), MdsRank(1));
    }

    #[test]
    fn retry_budget_exhausted_abandons_without_flip() {
        let (mut ns, mut map, d) = fixture();
        let mut mig = Migrator::new(1e9, 0, 0.0);
        mig.configure_retry(2, 1, 1);
        mig.set_exporter_stall(MdsRank(0), 1_000);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        for tick in 1..30u64 {
            mig.step(&ns, &mut map, tick);
        }
        let c = mig.counters();
        assert_eq!(c.timed_out_jobs, 2, "initial attempt + one retry");
        assert_eq!(c.retried_jobs, 1);
        assert_eq!(c.abandoned_jobs, 1, "budget exhausted => abandoned");
        assert_eq!(c.completed_jobs, 0);
        assert_eq!(mig.in_flight(), 0);
        assert_eq!(
            c.started_jobs,
            c.completed_jobs + c.abandoned_jobs + mig.in_flight()
        );
        assert_eq!(
            map.frag_authority(&ns, d, &Frag::root()),
            MdsRank(0),
            "an abandoned migration must never flip authority"
        );
    }

    #[test]
    fn parked_retry_counts_in_flight_and_blocks_overlap() {
        let (mut ns, mut map, d) = fixture();
        let mut mig = Migrator::new(1e9, 0, 0.0);
        mig.configure_retry(1, 3, 50);
        mig.set_exporter_stall(MdsRank(0), 100);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        mig.step(&ns, &mut map, 1); // deadline blown -> parked
        assert_eq!(mig.jobs().len(), 0);
        assert_eq!(mig.retry_queue_len(), 1);
        assert_eq!(mig.in_flight(), 1, "parked jobs are still in flight");
        // A new plan for the same subtree must be rejected as overlapping.
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 2), 1);
        assert_eq!(mig.in_flight(), 1);
        assert!(mig.counters().rejected_choices >= 1);
        // Draining the exporter abandons the parked job too.
        mig.abandon_jobs_touching(MdsRank(0));
        assert_eq!(mig.in_flight(), 0);
        assert_eq!(mig.counters().abandoned_jobs, 1);
    }

    #[test]
    fn codec_round_trips_mid_flight_state() {
        use lunule_util::codec::{Decoder, Encoder};
        let (mut ns, mut map, d) = fixture();
        // 100 inodes at 30/s: still transferring after two ticks; add a
        // parked retry and an active stall so every branch serialises.
        let mut mig = Migrator::new(30.0, 1, 0.1);
        mig.configure_retry(50, 2, 4);
        mig.set_exporter_stall(MdsRank(2), 40);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        mig.step(&ns, &mut map, 0);
        mig.step(&ns, &mut map, 1);
        assert_eq!(mig.jobs().len(), 1);
        let mut e = Encoder::new();
        mig.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut back = Migrator::new(30.0, 1, 0.1);
        back.configure_retry(50, 2, 4);
        let mut dec = Decoder::new(&bytes);
        back.load_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.counters(), mig.counters());
        assert_eq!(back.jobs().len(), 1);
        assert_eq!(back.jobs()[0].moved, mig.jobs()[0].moved);
        assert_eq!(back.in_flight(), mig.in_flight());

        // Re-encoding is byte-identical, and both engines finish the
        // transfer on the same tick with the same ledger.
        let mut e2 = Encoder::new();
        back.save_state(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
        let mut map2 = map.clone();
        let ns2 = ns.clone();
        for tick in 2..10u64 {
            mig.step(&ns, &mut map, tick);
            back.step(&ns2, &mut map2, tick);
            assert_eq!(back.counters(), mig.counters(), "diverged at {tick}");
        }
        assert_eq!(mig.counters().completed_jobs, 1);
        let _ = ns2;
    }

    #[test]
    fn codec_rejects_impossible_progress() {
        use lunule_util::codec::{CodecError, Decoder, Encoder};
        let mut e = Encoder::new();
        // One job claiming moved > total_inodes.
        e.put_usize(1);
        e.put_u16(0);
        e.put_u16(1);
        e.put_u64(1); // dir
        Frag::root().encode(&mut e);
        e.put_u64(10); // total
        e.put_u64(11); // moved: impossible
        e.put_u64(0);
        e.put_u32(0);
        e.put_u8(0);
        e.put_u64(u64::MAX);
        for _ in 0..7 {
            e.put_u64(0); // counters
        }
        e.put_usize(0); // retry queue
        e.put_usize(0); // stalls
        let bytes = e.into_bytes();
        let mut mig = Migrator::new(1.0, 1, 0.0);
        assert!(matches!(
            mig.load_state(&mut Decoder::new(&bytes)),
            Err(CodecError::Invalid {
                what: "job.progress"
            })
        ));
    }

    #[test]
    fn empty_subtree_rejected() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "empty").unwrap();
        let map = SubtreeMap::new(MdsRank(0));
        let mut mig = Migrator::new(1.0, 0, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        assert!(mig.jobs().is_empty());
    }
}
