//! The Migrator: executes migration plans with real transfer costs.
//!
//! CephFS ships subtrees with a two-phase protocol: the exporter freezes and
//! packages the subtree, streams it to the importer, and authority flips at
//! commit. The two properties of that protocol that shape the paper's
//! findings are (a) a transfer takes *time* proportional to its inode count,
//! during which load stays on the exporter (migration lag — the root of the
//! ping-pong effect), and (b) the transfer consumes MDS resources that
//! foreground requests then cannot use. Both are modelled here; the final
//! commit window additionally freezes the subtree (ops targeting it stall).

use lunule_core::{subtrees_overlap, MigrationPlan};
use lunule_namespace::{FragKey, MdsRank, Namespace, SubtreeMap};
use lunule_telemetry::{Event, Telemetry};

/// Phase of one in-flight migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Inodes streaming from exporter to importer.
    Transferring,
    /// Final commit: subtree frozen until the stored tick.
    Committing { until: u64 },
}

/// One in-flight subtree migration.
#[derive(Clone, Debug)]
pub struct MigrationJob {
    /// Source rank.
    pub from: MdsRank,
    /// Destination rank.
    pub to: MdsRank,
    /// The migrating subtree.
    pub subtree: FragKey,
    /// Inodes the subtree contained when the job started.
    pub total_inodes: u64,
    /// Inodes shipped so far.
    pub moved: u64,
    /// Tick the job was enqueued at (for commit-latency telemetry).
    pub started_at: u64,
    phase: Phase,
}

impl MigrationJob {
    /// True once the job entered its freeze/commit window.
    pub fn is_committing(&self) -> bool {
        matches!(self.phase, Phase::Committing { .. })
    }
}

/// Counters the migrator exposes for reporting (Fig. 4's migrated-inode
/// curves and the invalid-migration analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationCounters {
    /// Total inodes whose authority changed, cumulative.
    pub migrated_inodes: u64,
    /// Completed migrations.
    pub completed_jobs: u64,
    /// Subtree choices dropped because the exporter no longer owned them or
    /// they overlapped an in-flight job.
    pub rejected_choices: u64,
    /// Jobs accepted into the transfer pipeline, cumulative. The ledger law
    /// `started == completed + abandoned + in-flight` holds at all times
    /// and is audited by the invariant checker under `strict-invariants`.
    pub started_jobs: u64,
    /// Jobs dropped mid-flight (endpoint drained/failed), cumulative.
    pub abandoned_jobs: u64,
}

/// The migration engine.
#[derive(Clone, Debug)]
pub struct Migrator {
    jobs: Vec<MigrationJob>,
    bw_per_exporter: f64,
    freeze_secs: u64,
    op_cost_per_inode: f64,
    counters: MigrationCounters,
    /// Jobs whose authority flipped during the last `step` call — consumed
    /// by the simulator for client cap transfer and resident accounting.
    completed_last_step: Vec<MigrationJob>,
    /// Journal for migration lifecycle events; disabled by default.
    telemetry: Telemetry,
}

impl Migrator {
    /// Builds the engine. `bw_per_exporter` is the inodes/second one
    /// exporter can stream across all of its jobs.
    pub fn new(bw_per_exporter: f64, freeze_secs: u64, op_cost_per_inode: f64) -> Self {
        Migrator {
            jobs: Vec::new(),
            bw_per_exporter,
            freeze_secs,
            op_cost_per_inode,
            counters: MigrationCounters::default(),
            completed_last_step: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches the telemetry handle migration lifecycle events flow into.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Jobs whose authority flipped during the most recent
    /// [`Migrator::step`].
    pub fn completed_last_step(&self) -> &[MigrationJob] {
        &self.completed_last_step
    }

    /// Reporting counters.
    pub fn counters(&self) -> MigrationCounters {
        self.counters
    }

    /// In-flight jobs.
    pub fn jobs(&self) -> &[MigrationJob] {
        &self.jobs
    }

    /// Drops every in-flight job whose exporter or importer is `rank` —
    /// used when a rank is drained/fails. Abandoned transfers count as
    /// rejected choices, not migrations.
    pub fn abandon_jobs_touching(&mut self, rank: MdsRank) {
        let before = self.jobs.len();
        let mut dropped = Vec::new();
        self.jobs.retain(|j| {
            let keep = j.from != rank && j.to != rank;
            if !keep {
                dropped.push((j.from, j.to, j.subtree.dir, j.moved));
            }
            keep
        });
        let n_dropped = (before - self.jobs.len()) as u64;
        self.counters.rejected_choices += n_dropped;
        self.counters.abandoned_jobs += n_dropped;
        if n_dropped > 0 {
            self.telemetry.counter_add("migration.abandoned", n_dropped);
        }
        for (from, to, dir, moved) in dropped {
            self.telemetry.emit(|| Event::MigrationAbandon {
                from: u32::from(from.0),
                to: u32::from(to.0),
                dir: dir.raw(),
                moved,
            });
        }
    }

    /// Accepts a plan at tick `tick`, splitting namespace fragments where
    /// the selector chose a sub-fragment, and rejecting choices that are
    /// stale (exporter no longer authoritative) or overlap an active job.
    pub fn enqueue_plan(
        &mut self,
        ns: &mut Namespace,
        map: &SubtreeMap,
        plan: &MigrationPlan,
        tick: u64,
    ) {
        for task in &plan.exports {
            for choice in &task.subtrees {
                let key = choice.subtree;
                if map.frag_authority(ns, key.dir, &key.frag) != task.from || task.from == task.to {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                if self
                    .jobs
                    .iter()
                    .any(|j| subtrees_overlap(ns, &j.subtree, &key))
                {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                // Materialise the chosen fragment in the directory's live
                // frag set if the selector split below it.
                if !ensure_frag_live(ns, key, &self.telemetry) {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                let total_inodes = ns.subtree_inode_count(key.dir, &key.frag) as u64;
                if total_inodes == 0 {
                    self.counters.rejected_choices += 1;
                    continue;
                }
                self.counters.started_jobs += 1;
                self.telemetry.counter_add("migration.started", 1);
                self.telemetry.emit(|| Event::MigrationStart {
                    from: u32::from(task.from.0),
                    to: u32::from(task.to.0),
                    dir: key.dir.raw(),
                    frag_value: key.frag.value(),
                    frag_bits: u32::from(key.frag.bits()),
                    inodes: total_inodes,
                });
                self.jobs.push(MigrationJob {
                    from: task.from,
                    to: task.to,
                    subtree: key,
                    total_inodes,
                    moved: 0,
                    started_at: tick,
                    phase: Phase::Transferring,
                });
            }
        }
    }

    /// Advances all jobs by one tick. Authority flips exactly when a job's
    /// commit window elapses; the subtree map is re-coalesced after any
    /// completion so traversal paths stay as short as CephFS keeps them.
    /// Returns the per-rank migration op-cost to charge ((rank, cost) pairs
    /// for both endpoints of each active job).
    pub fn step(&mut self, ns: &Namespace, map: &mut SubtreeMap, tick: u64) -> Vec<(MdsRank, f64)> {
        self.completed_last_step.clear();
        let mut charges: Vec<(MdsRank, f64)> = Vec::new();
        // Split bandwidth evenly among each exporter's transferring jobs.
        let mut active_per_exporter: Vec<(MdsRank, usize)> = Vec::new();
        for j in &self.jobs {
            if matches!(j.phase, Phase::Transferring) {
                match active_per_exporter.iter_mut().find(|(r, _)| *r == j.from) {
                    Some((_, n)) => *n += 1,
                    None => active_per_exporter.push((j.from, 1)),
                }
            }
        }
        let freeze = self.freeze_secs;
        let bw = self.bw_per_exporter;
        let op_cost = self.op_cost_per_inode;
        for job in &mut self.jobs {
            match job.phase {
                Phase::Transferring => {
                    let n_active = active_per_exporter
                        .iter()
                        .find(|(r, _)| *r == job.from)
                        .map(|(_, n)| *n)
                        .unwrap_or(1) as f64;
                    let quota = (bw / n_active).max(1.0);
                    let moved_now = quota.min((job.total_inodes - job.moved) as f64) as u64;
                    job.moved += moved_now;
                    let cost = moved_now as f64 * op_cost;
                    if cost > 0.0 {
                        charges.push((job.from, cost));
                        charges.push((job.to, cost));
                    }
                    if job.moved >= job.total_inodes {
                        job.phase = Phase::Committing {
                            until: tick + freeze,
                        };
                    }
                }
                Phase::Committing { until } => {
                    if tick >= until {
                        map.set_authority(job.subtree, job.to);
                        self.counters.migrated_inodes += job.total_inodes;
                        self.counters.completed_jobs += 1;
                        let duration_ticks = tick.saturating_sub(job.started_at);
                        self.telemetry.counter_add("migration.committed", 1);
                        self.telemetry
                            .histogram_record("migration.duration_ticks", duration_ticks);
                        self.telemetry.emit(|| Event::MigrationCommit {
                            from: u32::from(job.from.0),
                            to: u32::from(job.to.0),
                            dir: job.subtree.dir.raw(),
                            inodes: job.total_inodes,
                            duration_ticks,
                        });
                        self.completed_last_step.push(job.clone());
                        job.moved = u64::MAX; // mark for sweep
                    }
                }
            }
        }
        let before = self.jobs.len();
        self.jobs.retain(|j| j.moved != u64::MAX);
        if self.jobs.len() != before {
            map.simplify(ns);
        }
        charges
    }

    /// True when `(dir of ino's path) ∩ (a committing subtree)` is
    /// non-empty — i.e. the op must stall because its metadata is frozen.
    pub fn is_frozen(&self, ns: &Namespace, ino: lunule_namespace::InodeId) -> bool {
        let committing: Vec<&MigrationJob> =
            self.jobs.iter().filter(|j| j.is_committing()).collect();
        if committing.is_empty() {
            return false;
        }
        let chain = ns.path_chain(ino);
        for w in chain.windows(2) {
            let (dir, child) = (w[0], w[1]);
            let hash = ns.dentry_hash_of(child);
            for job in &committing {
                if job.subtree.dir == dir && job.subtree.frag.contains_hash(hash) {
                    return true;
                }
            }
        }
        false
    }
}

/// Splits `key.dir`'s live fragment set until `key.frag` is live. Returns
/// false when `key.frag` is *shallower* than the live fragmentation (cannot
/// be represented without a merge) — callers treat that as a stale choice.
fn ensure_frag_live(ns: &mut Namespace, key: FragKey, telemetry: &Telemetry) -> bool {
    loop {
        let frags = ns.frags_of(key.dir);
        if frags.contains(&key.frag) {
            return true;
        }
        // Find the live frag strictly containing the target and split it.
        match frags.iter().find(|f| f.contains_frag(&key.frag)) {
            // A split of a frag we just observed live can only fail if the
            // set was mutated under us; treat that as a stale choice too.
            Some(parent) => {
                let parent = *parent;
                if ns.split_frag(key.dir, &parent, 1).is_err() {
                    return false;
                }
                telemetry.emit(|| Event::FragSplit {
                    dir: key.dir.raw(),
                    value: parent.value(),
                    bits: u32::from(parent.bits()),
                });
            }
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_core::{ExportTask, SubtreeChoice};
    use lunule_namespace::{Frag, InodeId};

    fn fixture() -> (Namespace, SubtreeMap, InodeId) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        for i in 0..100 {
            ns.create_file(d, &format!("f{i}"), 1).unwrap();
        }
        (ns, SubtreeMap::new(MdsRank(0)), d)
    }

    fn plan_for(d: InodeId, from: u16, to: u16) -> MigrationPlan {
        MigrationPlan {
            exports: vec![ExportTask {
                from: MdsRank(from),
                to: MdsRank(to),
                target_amount: 100.0,
                subtrees: vec![SubtreeChoice {
                    subtree: FragKey::whole(d),
                    estimated_load: 100.0,
                }],
            }],
        }
    }

    #[test]
    fn transfer_takes_time_and_flips_authority() {
        let (mut ns, mut map, d) = fixture();
        // 100 inodes at 30 inodes/sec -> 4 ticks transfer + 1 freeze.
        let mut mig = Migrator::new(30.0, 1, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        assert_eq!(mig.jobs().len(), 1);
        let mut flipped_at = None;
        for tick in 0..10u64 {
            mig.step(&ns, &mut map, tick);
            if map.frag_authority(&ns, d, &Frag::root()) == MdsRank(1) {
                flipped_at = Some(tick);
                break;
            }
        }
        let t = flipped_at.expect("authority must eventually flip");
        assert!(t >= 4, "100/30 inodes takes >= 4 ticks, flipped at {t}");
        assert_eq!(mig.counters().migrated_inodes, 100);
        assert_eq!(mig.counters().completed_jobs, 1);
    }

    #[test]
    fn stale_choice_rejected() {
        let (mut ns, map, d) = fixture();
        let mut mig = Migrator::new(1e9, 0, 0.0);
        // Exporter 1 does not own the subtree (rank 0 does).
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 1, 2), 0);
        assert!(mig.jobs().is_empty());
        assert_eq!(mig.counters().rejected_choices, 1);
    }

    #[test]
    fn overlapping_choice_rejected() {
        let (mut ns, map, d) = fixture();
        let mut mig = Migrator::new(1.0, 1, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 2), 0);
        assert_eq!(mig.jobs().len(), 1);
        assert_eq!(mig.counters().rejected_choices, 1);
    }

    #[test]
    fn sub_fragment_choice_splits_live_set() {
        let (mut ns, map, d) = fixture();
        let (left, _) = Frag::root().split_in_two();
        let plan = MigrationPlan {
            exports: vec![ExportTask {
                from: MdsRank(0),
                to: MdsRank(1),
                target_amount: 50.0,
                subtrees: vec![SubtreeChoice {
                    subtree: FragKey { dir: d, frag: left },
                    estimated_load: 50.0,
                }],
            }],
        };
        let mut mig = Migrator::new(1e9, 0, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan, 0);
        assert_eq!(mig.jobs().len(), 1);
        assert_eq!(ns.frags_of(d).len(), 2, "live set must have split");
        let job = &mig.jobs()[0];
        assert!(job.total_inodes > 0 && job.total_inodes < 100);
    }

    #[test]
    fn freeze_window_blocks_subtree() {
        let (mut ns, mut map, d) = fixture();
        let f0 = ns.inode(d).children()[0];
        let mut mig = Migrator::new(1e9, 5, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        // Tick 0: whole transfer completes, enters commit until tick 5.
        mig.step(&ns, &mut map, 0);
        assert!(mig.is_frozen(&ns, f0));
        assert!(!mig.is_frozen(&ns, d), "the dir inode itself is outside");
        // Ticks pass; at the commit tick the authority flips and thaw.
        for tick in 1..=5 {
            mig.step(&ns, &mut map, tick);
        }
        assert!(!mig.is_frozen(&ns, f0));
        assert_eq!(map.frag_authority(&ns, d, &Frag::root()), MdsRank(1));
    }

    #[test]
    fn migration_charges_both_endpoints() {
        let (mut ns, mut map, d) = fixture();
        let mut mig = Migrator::new(50.0, 1, 0.1);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        let charges = mig.step(&ns, &mut map, 0);
        assert_eq!(charges.len(), 2);
        let total: f64 = charges.iter().map(|(_, c)| c).sum();
        assert!((total - 2.0 * 50.0 * 0.1).abs() < 1e-9);
        assert!(charges.iter().any(|(r, _)| *r == MdsRank(0)));
        assert!(charges.iter().any(|(r, _)| *r == MdsRank(1)));
    }

    #[test]
    fn empty_subtree_rejected() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "empty").unwrap();
        let map = SubtreeMap::new(MdsRank(0));
        let mut mig = Migrator::new(1.0, 0, 0.0);
        mig.enqueue_plan(&mut ns, &map, &plan_for(d, 0, 1), 0);
        assert!(mig.jobs().is_empty());
    }
}
