//! Metadata operations and the op-stream interface workloads implement.

use lunule_namespace::{InodeId, Namespace};
use lunule_util::convert::usize_to_u64;

/// One metadata operation a client issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaOp {
    /// Read-side metadata access (lookup/getattr/open/readdir) of an
    /// existing inode.
    Read(InodeId),
    /// Create a new file under `parent` with the given size in bytes.
    Create {
        /// Directory the new file lands in.
        parent: InodeId,
        /// Size of the created file (drives the data-path model).
        size: u64,
    },
    /// Unlink an existing file (mdtest's remove phase).
    Remove(InodeId),
}

impl MetaOp {
    /// The inode whose authority serves this op. For creates this is the
    /// parent directory (the new dentry lives there).
    pub fn anchor(&self) -> InodeId {
        match self {
            MetaOp::Read(ino) | MetaOp::Remove(ino) => *ino,
            MetaOp::Create { parent, .. } => *parent,
        }
    }
}

/// A client's metadata op generator.
///
/// Implementations live in `lunule-workloads`; the simulator pulls one op at
/// a time and reports back created inode ids so streams can re-reference
/// what they made (none of the paper's workloads need to, but the interface
/// allows it).
pub trait OpStream: Send {
    /// The next operation, or `None` when the client's job is complete.
    /// A returned op is only consumed once the simulator manages to serve
    /// it; stalled ops are retried verbatim.
    fn next_op(&mut self, ns: &Namespace) -> Option<MetaOp>;

    /// Notification that the previously returned `Create` materialised as
    /// inode `id`.
    fn on_created(&mut self, _id: InodeId) {}

    /// Total number of ops this stream will emit, if known (used for
    /// progress reporting only).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A trivial op stream replaying a fixed list of reads; handy in tests.
#[derive(Debug, Clone)]
pub struct FixedStream {
    ops: Vec<InodeId>,
    pos: usize,
}

impl FixedStream {
    /// Builds the stream from inode ids to read in order.
    pub fn new(ops: Vec<InodeId>) -> Self {
        FixedStream { ops, pos: 0 }
    }
}

impl OpStream for FixedStream {
    fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
        let op = self.ops.get(self.pos).copied().map(MetaOp::Read);
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn len_hint(&self) -> Option<u64> {
        Some(usize_to_u64(self.ops.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_of_ops() {
        let ino = InodeId::from_index(3);
        assert_eq!(MetaOp::Read(ino).anchor(), ino);
        assert_eq!(
            MetaOp::Create {
                parent: ino,
                size: 10
            }
            .anchor(),
            ino
        );
    }

    #[test]
    fn fixed_stream_drains_in_order() {
        let ns = Namespace::new();
        let ids: Vec<_> = (0..3).map(InodeId::from_index).collect();
        let mut s = FixedStream::new(ids.clone());
        assert_eq!(s.len_hint(), Some(3));
        for id in ids {
            assert_eq!(s.next_op(&ns), Some(MetaOp::Read(id)));
        }
        assert_eq!(s.next_op(&ns), None);
        assert_eq!(s.next_op(&ns), None);
    }
}
