//! Metadata operations and the op-stream interface workloads implement.

use lunule_namespace::{InodeId, Namespace};
use lunule_util::convert::usize_to_u64;

/// One metadata operation a client issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaOp {
    /// Read-side metadata access (lookup/getattr/open/readdir) of an
    /// existing inode.
    Read(InodeId),
    /// Create a new file under `parent` with the given size in bytes.
    Create {
        /// Directory the new file lands in.
        parent: InodeId,
        /// Size of the created file (drives the data-path model).
        size: u64,
    },
    /// Unlink an existing file (mdtest's remove phase).
    Remove(InodeId),
}

impl MetaOp {
    /// The inode whose authority serves this op. For creates this is the
    /// parent directory (the new dentry lives there).
    pub fn anchor(&self) -> InodeId {
        match self {
            MetaOp::Read(ino) | MetaOp::Remove(ino) => *ino,
            MetaOp::Create { parent, .. } => *parent,
        }
    }

    /// Serialises the op for a snapshot section (a client's buffered retry
    /// op is part of its restorable state).
    pub fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        match self {
            MetaOp::Read(ino) => {
                e.put_u8(0);
                e.put_u64(ino.raw());
            }
            MetaOp::Create { parent, size } => {
                e.put_u8(1);
                e.put_u64(parent.raw());
                e.put_u64(*size);
            }
            MetaOp::Remove(ino) => {
                e.put_u8(2);
                e.put_u64(ino.raw());
            }
        }
    }

    /// Inverse of [`MetaOp::encode`]; rejects unknown tags and inode ids
    /// outside the arena's 32-bit id space.
    pub fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<Self, lunule_util::codec::CodecError> {
        match d.get_u8("op.tag")? {
            0 => Ok(MetaOp::Read(inode_from_raw(d.get_u64("op.ino")?)?)),
            1 => Ok(MetaOp::Create {
                parent: inode_from_raw(d.get_u64("op.parent")?)?,
                size: d.get_u64("op.size")?,
            }),
            2 => Ok(MetaOp::Remove(inode_from_raw(d.get_u64("op.ino")?)?)),
            _ => Err(lunule_util::codec::CodecError::Invalid { what: "op.tag" }),
        }
    }
}

/// Rebuilds an [`InodeId`] from its journal/snapshot representation,
/// bounds-checking against the 32-bit id space before the (panicking)
/// index constructor runs.
pub(crate) fn inode_from_raw(raw: u64) -> Result<InodeId, lunule_util::codec::CodecError> {
    let idx = u32::try_from(raw)
        .map_err(|_| lunule_util::codec::CodecError::Invalid { what: "inode id" })?;
    Ok(InodeId::from_index(lunule_util::convert::u32_to_usize(idx)))
}

/// A client's metadata op generator.
///
/// Implementations live in `lunule-workloads`; the simulator pulls one op at
/// a time and reports back created inode ids so streams can re-reference
/// what they made (none of the paper's workloads need to, but the interface
/// allows it).
pub trait OpStream: Send {
    /// The next operation, or `None` when the client's job is complete.
    /// A returned op is only consumed once the simulator manages to serve
    /// it; stalled ops are retried verbatim.
    fn next_op(&mut self, ns: &Namespace) -> Option<MetaOp>;

    /// Notification that the previously returned `Create` materialised as
    /// inode `id`.
    fn on_created(&mut self, _id: InodeId) {}

    /// Total number of ops this stream will emit, if known (used for
    /// progress reporting only).
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Serialises the stream's *dynamic* state (cursors, RNG positions,
    /// remaining-op counters) into a snapshot section. Structural inputs —
    /// which inodes a replay visits, a workload's shape parameters — are
    /// rebuilt from the run configuration on restore, so stateless streams
    /// keep the default no-op.
    fn save_state(&self, _e: &mut lunule_util::codec::Encoder) {}

    /// Restores what [`OpStream::save_state`] wrote, applied to a stream
    /// freshly built from the same run configuration.
    fn load_state(
        &mut self,
        _d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        Ok(())
    }

    /// A deep copy of the stream *including* its dynamic state (cursor, RNG
    /// position), or `None` for streams that cannot be duplicated. The
    /// cohort client engine splits a many-member cohort by cloning its
    /// shared stream, so grouped construction with a member count above one
    /// requires `Some`; per-client (singleton) streams never split and may
    /// keep the default.
    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        None
    }
}

/// A trivial op stream replaying a fixed list of reads; handy in tests.
#[derive(Debug, Clone)]
pub struct FixedStream {
    ops: Vec<InodeId>,
    pos: usize,
}

impl FixedStream {
    /// Builds the stream from inode ids to read in order.
    pub fn new(ops: Vec<InodeId>) -> Self {
        FixedStream { ops, pos: 0 }
    }
}

impl OpStream for FixedStream {
    fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
        let op = self.ops.get(self.pos).copied().map(MetaOp::Read);
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn len_hint(&self) -> Option<u64> {
        Some(usize_to_u64(self.ops.len()))
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_usize(self.pos);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        let pos = d.get_usize("fixed_stream.pos")?;
        if pos > self.ops.len() {
            return Err(lunule_util::codec::CodecError::Invalid {
                what: "fixed_stream.pos",
            });
        }
        self.pos = pos;
        Ok(())
    }

    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_of_ops() {
        let ino = InodeId::from_index(3);
        assert_eq!(MetaOp::Read(ino).anchor(), ino);
        assert_eq!(
            MetaOp::Create {
                parent: ino,
                size: 10
            }
            .anchor(),
            ino
        );
    }

    #[test]
    fn stream_state_round_trips_mid_drain() {
        use lunule_util::codec::{Decoder, Encoder};
        let ns = Namespace::new();
        let ids: Vec<_> = (0..4).map(InodeId::from_index).collect();
        let mut s = FixedStream::new(ids.clone());
        s.next_op(&ns);
        s.next_op(&ns);
        let mut e = Encoder::new();
        s.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = FixedStream::new(ids.clone());
        let mut d = Decoder::new(&bytes);
        fresh.load_state(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(fresh.next_op(&ns), Some(MetaOp::Read(ids[2])));
        // A cursor past the end of the op list is rejected.
        let mut e = Encoder::new();
        e.put_usize(99);
        let bytes = e.into_bytes();
        let mut fresh = FixedStream::new(ids);
        assert!(fresh.load_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn meta_op_codec_round_trips() {
        use lunule_util::codec::{Decoder, Encoder};
        let ops = [
            MetaOp::Read(InodeId::from_index(5)),
            MetaOp::Create {
                parent: InodeId::from_index(1),
                size: 4096,
            },
            MetaOp::Remove(InodeId::from_index(9)),
        ];
        let mut e = Encoder::new();
        for op in &ops {
            op.encode(&mut e);
        }
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        for op in &ops {
            assert_eq!(MetaOp::decode(&mut d).unwrap(), *op);
        }
        d.finish().unwrap();
        // An id past the 32-bit arena space must not reach the panicking
        // index constructor.
        let mut e = Encoder::new();
        e.put_u8(0);
        e.put_u64(u64::from(u32::MAX) + 1);
        let bytes = e.into_bytes();
        assert!(MetaOp::decode(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn fixed_stream_drains_in_order() {
        let ns = Namespace::new();
        let ids: Vec<_> = (0..3).map(InodeId::from_index).collect();
        let mut s = FixedStream::new(ids.clone());
        assert_eq!(s.len_hint(), Some(3));
        for id in ids {
            assert_eq!(s.next_op(&ns), Some(MetaOp::Read(id)));
        }
        assert_eq!(s.next_op(&ns), None);
        assert_eq!(s.next_op(&ns), None);
    }
}
