//! Run results: the per-epoch series every experiment binary plots.

use crate::latency::LatencyHistogram;
use lunule_core::EpochStats;
use lunule_util::convert::{f64_to_usize, usize_to_f64};

/// One epoch's worth of observed cluster behaviour.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: u64,
    /// Simulated time at the end of the epoch, seconds.
    pub time_secs: u64,
    /// Requests handled by each MDS this epoch (served + forwards).
    pub per_mds_requests: Vec<u64>,
    /// Per-MDS IOPS this epoch.
    pub per_mds_iops: Vec<f64>,
    /// Aggregate cluster IOPS this epoch.
    pub total_iops: f64,
    /// Imbalance factor of the epoch's load vector (Eq. 3).
    pub imbalance_factor: f64,
    /// Cumulative migrated inodes up to the end of this epoch.
    pub migrated_inodes_cum: u64,
    /// Cumulative forwards up to the end of this epoch.
    pub forwards_cum: u64,
    /// Clients still running at the end of the epoch.
    pub active_clients: usize,
    /// Migration jobs in flight at the end of the epoch.
    pub inflight_migrations: usize,
    /// Resident (authoritative) inodes per MDS at the end of the epoch —
    /// the metadata-cache footprint driving the memory model.
    pub per_mds_resident_inodes: Vec<u64>,
}

/// The complete outcome of one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunResult {
    /// Policy that was driving the cluster.
    pub balancer: String,
    /// Per-epoch series.
    pub epochs: Vec<EpochRecord>,
    /// Total requests served per MDS over the whole run (Fig. 2's bars).
    pub per_mds_requests_total: Vec<u64>,
    /// Total forwards performed per MDS over the whole run.
    pub per_mds_forwards_total: Vec<u64>,
    /// Per-client job completion time in simulated seconds (`None` when the
    /// client had not finished when the run ended).
    pub client_completion_secs: Vec<Option<u64>>,
    /// Simulated seconds the run lasted.
    pub duration_secs: u64,
    /// Total metadata ops served.
    pub total_ops: u64,
    /// Final number of inodes in the namespace.
    pub final_inodes: usize,
    /// Subtree choices the migrator rejected as stale/overlapping.
    pub rejected_choices: u64,
    /// Per-op stall-latency distribution across the whole run.
    pub latency: LatencyHistogram,
}

impl EpochRecord {
    /// Serialises the record for the snapshot's results section (the
    /// per-epoch series accumulated so far must survive a restore so the
    /// stitched run's `RunResult` matches an uninterrupted one).
    pub(crate) fn encode(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_u64(self.epoch);
        e.put_u64(self.time_secs);
        e.put_seq(&self.per_mds_requests, |e, v| e.put_u64(*v));
        e.put_seq(&self.per_mds_iops, |e, v| e.put_f64(*v));
        e.put_f64(self.total_iops);
        e.put_f64(self.imbalance_factor);
        e.put_u64(self.migrated_inodes_cum);
        e.put_u64(self.forwards_cum);
        e.put_usize(self.active_clients);
        e.put_usize(self.inflight_migrations);
        e.put_seq(&self.per_mds_resident_inodes, |e, v| e.put_u64(*v));
    }

    /// Inverse of [`EpochRecord::encode`]; rejects per-rank vectors of
    /// mismatched widths.
    pub(crate) fn decode(
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<Self, lunule_util::codec::CodecError> {
        let epoch = d.get_u64("epoch.index")?;
        let time_secs = d.get_u64("epoch.time_secs")?;
        let per_mds_requests = d.get_seq("epoch.requests", |d| d.get_u64("epoch.requests"))?;
        let per_mds_iops = d.get_seq("epoch.iops", |d| d.get_f64("epoch.iops"))?;
        let total_iops = d.get_f64("epoch.total_iops")?;
        let imbalance_factor = d.get_f64("epoch.imbalance_factor")?;
        let migrated_inodes_cum = d.get_u64("epoch.migrated_inodes_cum")?;
        let forwards_cum = d.get_u64("epoch.forwards_cum")?;
        let active_clients = d.get_usize("epoch.active_clients")?;
        let inflight_migrations = d.get_usize("epoch.inflight_migrations")?;
        let per_mds_resident_inodes =
            d.get_seq("epoch.resident", |d| d.get_u64("epoch.resident"))?;
        if per_mds_iops.len() != per_mds_requests.len() {
            return Err(lunule_util::codec::CodecError::Invalid { what: "epoch.iops" });
        }
        Ok(EpochRecord {
            epoch,
            time_secs,
            per_mds_requests,
            per_mds_iops,
            total_iops,
            imbalance_factor,
            migrated_inodes_cum,
            forwards_cum,
            active_clients,
            inflight_migrations,
            per_mds_resident_inodes,
        })
    }

    /// Builds the stats-derived half of a record from an epoch's load
    /// vector, routing IOPS and imbalance-factor math through
    /// `lunule-core` (the single authoritative implementation of Eq. 3)
    /// instead of recomputing it here. The cluster-state fields
    /// (migration counters, residency, clients) stay at their defaults
    /// for the caller to fill in.
    pub fn from_stats(stats: &EpochStats, time_secs: u64, mds_capacity: f64) -> Self {
        let iops = stats.iops();
        EpochRecord {
            epoch: stats.epoch,
            time_secs,
            per_mds_requests: stats.requests.clone(),
            total_iops: stats.total_iops(),
            imbalance_factor: lunule_core::imbalance_factor(&iops, mds_capacity),
            per_mds_iops: iops,
            ..EpochRecord::default()
        }
    }
}

/// Mean of `value` over epochs that saw any load — idle warm-up/tail
/// epochs would otherwise drag every run-level average toward zero.
fn mean_over_active(epochs: &[EpochRecord], value: impl Fn(&EpochRecord) -> f64) -> f64 {
    let active: Vec<f64> = epochs
        .iter()
        .filter(|e| e.total_iops > 0.0)
        .map(value)
        .collect();
    if active.is_empty() {
        0.0
    } else {
        active.iter().sum::<f64>() / usize_to_f64(active.len())
    }
}

lunule_util::impl_json_struct!(EpochRecord {
    epoch,
    time_secs,
    per_mds_requests,
    per_mds_iops,
    total_iops,
    imbalance_factor,
    migrated_inodes_cum,
    forwards_cum,
    active_clients,
    inflight_migrations,
    per_mds_resident_inodes,
});

lunule_util::impl_json_struct!(RunResult {
    balancer,
    epochs,
    per_mds_requests_total,
    per_mds_forwards_total,
    client_completion_secs,
    duration_secs,
    total_ops,
    final_inodes,
    rejected_choices,
    latency,
});

impl RunResult {
    /// Mean imbalance factor across epochs with any load.
    pub fn mean_if(&self) -> f64 {
        mean_over_active(&self.epochs, |e| e.imbalance_factor)
    }

    /// Peak aggregate IOPS over the run.
    pub fn peak_iops(&self) -> f64 {
        self.epochs.iter().map(|e| e.total_iops).fold(0.0, f64::max)
    }

    /// Mean aggregate IOPS over epochs with any load.
    pub fn mean_iops(&self) -> f64 {
        mean_over_active(&self.epochs, |e| e.total_iops)
    }

    /// Completion-time percentile (0.0–1.0) over *finished* clients, or
    /// `None` when fewer than the requested share finished.
    pub fn jct_percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        let mut done: Vec<u64> = self
            .client_completion_secs
            .iter()
            .flatten()
            .copied()
            .collect();
        if done.is_empty() {
            return None;
        }
        let finished_share =
            usize_to_f64(done.len()) / usize_to_f64(self.client_completion_secs.len().max(1));
        if finished_share < p {
            return None;
        }
        done.sort_unstable();
        let idx = f64_to_usize((usize_to_f64(done.len()) * p).ceil())
            .saturating_sub(1)
            .min(done.len() - 1);
        Some(done[idx])
    }

    /// Total migrated inodes over the run.
    pub fn migrated_inodes(&self) -> u64 {
        self.epochs
            .last()
            .map(|e| e.migrated_inodes_cum)
            .unwrap_or(0)
    }

    /// Total forwards over the run.
    pub fn total_forwards(&self) -> u64 {
        self.per_mds_forwards_total.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, iops: Vec<f64>, ifv: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            time_secs: (epoch + 1) * 10,
            per_mds_requests: iops.iter().map(|i| (*i * 10.0) as u64).collect(),
            total_iops: iops.iter().sum(),
            per_mds_iops: iops,
            imbalance_factor: ifv,
            migrated_inodes_cum: epoch * 100,
            forwards_cum: 0,
            active_clients: 1,
            inflight_migrations: 0,
            per_mds_resident_inodes: Vec::new(),
        }
    }

    #[test]
    fn from_stats_matches_core_math() {
        let stats = EpochStats::new(3, 10.0, vec![900, 100]);
        let rec = EpochRecord::from_stats(&stats, 40, 100.0);
        assert_eq!(rec.epoch, 3);
        assert_eq!(rec.time_secs, 40);
        assert_eq!(rec.per_mds_requests, vec![900, 100]);
        assert!((rec.total_iops - 100.0).abs() < 1e-9);
        assert_eq!(rec.per_mds_iops, vec![90.0, 10.0]);
        let expect = lunule_core::imbalance_factor(&[90.0, 10.0], 100.0);
        assert_eq!(rec.imbalance_factor, expect);
        // Cluster-state fields stay at defaults for the caller.
        assert_eq!(rec.migrated_inodes_cum, 0);
        assert_eq!(rec.active_clients, 0);
    }

    #[test]
    fn summary_statistics() {
        let r = RunResult {
            balancer: "test".into(),
            epochs: vec![
                record(0, vec![100.0, 0.0], 0.8),
                record(1, vec![50.0, 50.0], 0.1),
                record(2, vec![0.0, 0.0], 0.0), // idle epoch excluded
            ],
            client_completion_secs: vec![Some(10), Some(20), Some(30), None],
            ..RunResult::default()
        };
        assert!((r.mean_if() - 0.45).abs() < 1e-9);
        assert_eq!(r.peak_iops(), 100.0);
        assert_eq!(r.mean_iops(), 100.0);
        assert_eq!(r.migrated_inodes(), 200);
    }

    #[test]
    fn percentiles_over_finished_clients() {
        let r = RunResult {
            client_completion_secs: vec![Some(10), Some(20), Some(30), Some(40)],
            ..RunResult::default()
        };
        assert_eq!(r.jct_percentile(0.5), Some(20));
        assert_eq!(r.jct_percentile(1.0), Some(40));
        assert_eq!(r.jct_percentile(0.0), Some(10));
    }

    #[test]
    fn percentile_unavailable_when_unfinished() {
        let r = RunResult {
            client_completion_secs: vec![Some(10), None, None, None],
            ..RunResult::default()
        };
        assert_eq!(r.jct_percentile(0.99), None);
        assert_eq!(r.jct_percentile(0.25), Some(10));
    }

    #[test]
    fn empty_run_is_safe() {
        let r = RunResult::default();
        assert_eq!(r.mean_if(), 0.0);
        assert_eq!(r.peak_iops(), 0.0);
        assert_eq!(r.jct_percentile(0.5), None);
        assert_eq!(r.migrated_inodes(), 0);
    }

    #[test]
    fn serializes_to_json() {
        let r = RunResult {
            balancer: "Lunule".into(),
            epochs: vec![record(0, vec![1.0], 0.0)],
            ..RunResult::default()
        };
        use lunule_util::{FromJson, Json, ToJson};
        let s = r.to_json().to_string_compact();
        let back = RunResult::from_json(&Json::parse(&s).unwrap()).unwrap();
        assert_eq!(back.balancer, "Lunule");
        assert_eq!(back.epochs.len(), 1);
        assert_eq!(back, r);
    }
}
