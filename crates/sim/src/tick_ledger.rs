//! Per-tick operation ledger: the hot-path op metrics accumulated in
//! plain dense columns and flushed to telemetry once per tick.
//!
//! The serve loop used to push two telemetry records per served op
//! (`client.stall_ticks`, `ops.served`) — even through the lock-free
//! ring that is the dominant share of the enabled/disabled gap in the
//! `telemetry_on`/`telemetry_off` benches. Both metrics are associative
//! (counter deltas add; `histogram_record_n(v, a + b)` is defined as
//! identical to recording `a` then `b` samples), and the registry keys
//! them in `BTreeMap`s, so the order records reach the collector within
//! a tick is unobservable. That makes a tick's worth of ops free to
//! collapse into one flush: a per-rank served column plus a tiny
//! (value, count) run of stall samples, pushed at the end of the tick.
//!
//! The ledger is always empty between ticks — `flush` runs before the
//! tick counter advances — so snapshots never need to serialize it and
//! every between-tick reader (daemon RPCs, exporters, `counter_value`)
//! observes exactly the totals the per-op path would have produced.

use lunule_telemetry::{MetricRecord, Telemetry};
use lunule_util::convert::usize_to_u32;

/// Accumulates one tick's served-op metrics; see the module docs.
#[derive(Debug)]
pub(crate) struct TickOpLedger {
    /// Ops served this tick, indexed by MDS rank.
    served: Vec<u64>,
    /// Stall samples this tick as `(stall_ticks, count)`, in first-seen
    /// order. Stalls cluster around zero and a few small backoff values,
    /// so a linear probe beats any keyed structure here.
    stalls: Vec<(u64, u64)>,
    /// True when anything was recorded since the last flush.
    dirty: bool,
}

impl TickOpLedger {
    pub fn new(n_mds: usize) -> TickOpLedger {
        TickOpLedger {
            served: vec![0; n_mds],
            stalls: Vec::new(),
            dirty: false,
        }
    }

    /// Accounts `n` ops served by `rank` that each stalled for
    /// `stall_ticks` before being served.
    #[inline]
    pub fn record(&mut self, rank: usize, stall_ticks: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(s) = self.served.get_mut(rank) {
            *s += n;
        }
        match self.stalls.iter_mut().find(|(v, _)| *v == stall_ticks) {
            Some((_, c)) => *c += n,
            None => self.stalls.push((stall_ticks, n)),
        }
        self.dirty = true;
    }

    /// Pushes the tick's totals to `telemetry` and resets the ledger.
    /// Flush order is fixed (stall values in first-seen order, then
    /// ranks ascending), independent of the order ops were served in —
    /// legitimate because the collector keys both metrics in sorted
    /// maps, so identical totals mean identical observable state.
    pub fn flush(&mut self, telemetry: &Telemetry) {
        if !self.dirty {
            return;
        }
        telemetry.record_batch(
            self.stalls
                .iter()
                .map(|&(value, count)| MetricRecord::Histogram {
                    name: "client.stall_ticks",
                    value,
                    count,
                })
                .chain(self.served.iter().enumerate().filter(|(_, n)| **n > 0).map(
                    |(rank, &n)| MetricRecord::Counter {
                        name: "ops.served",
                        label: usize_to_u32(rank),
                        delta: n,
                    },
                )),
        );
        self.stalls.clear();
        self.served.fill(0);
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_flush_matches_per_op_records() {
        // The same op stream recorded per-op and via the ledger must
        // leave identical collector state.
        let per_op = Telemetry::enabled();
        let ledger_tel = Telemetry::enabled();
        let mut ledger = TickOpLedger::new(4);
        let ops = [(0usize, 0u64, 1u64), (2, 3, 2), (0, 0, 1), (1, 3, 1)];
        for &(rank, stall, n) in &ops {
            per_op.histogram_record_n("client.stall_ticks", stall, n);
            per_op.counter_add_labeled("ops.served", usize_to_u32(rank), n);
            ledger.record(rank, stall, n);
        }
        ledger.flush(&ledger_tel);
        assert_eq!(
            per_op.counter_value("ops.served"),
            ledger_tel.counter_value("ops.served")
        );
        let (a, b) = (per_op.snapshot().unwrap(), ledger_tel.snapshot().unwrap());
        assert_eq!(
            lunule_telemetry::export::metrics_csv(&a),
            lunule_telemetry::export::metrics_csv(&b),
            "ledger flush must be byte-identical to per-op records"
        );
    }

    #[test]
    fn empty_and_zero_records_flush_nothing() {
        let tel = Telemetry::enabled();
        let mut ledger = TickOpLedger::new(2);
        ledger.record(0, 5, 0); // n == 0 is a no-op
        ledger.flush(&tel);
        assert_eq!(tel.counter_value("ops.served"), 0);
    }

    #[test]
    fn out_of_range_rank_still_counts_stalls() {
        // A defensive path: the serve loop validates ranks first, but the
        // ledger must not panic (or lose the histogram sample) if not.
        let tel = Telemetry::enabled();
        let mut ledger = TickOpLedger::new(1);
        ledger.record(7, 2, 1);
        ledger.flush(&tel);
        assert_eq!(tel.counter_value("ops.served"), 0);
    }
}
