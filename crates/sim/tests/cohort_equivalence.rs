//! Differential equivalence of the cohort client engine.
//!
//! The cohort engine's correctness claim is *byte-identity*, twice over:
//!
//! 1. **Cohort vs legacy** — for any config and seed, the cohort engine
//!    must produce exactly the telemetry journal (and results) the legacy
//!    one-struct-per-client engine produces. The legacy path is the
//!    oracle; it stays in the tree behind `--client-model legacy` for this
//!    battery.
//! 2. **Jobs 1 vs N** — the sharded route-resolution fan-out may change
//!    wall time only, never a journal byte.
//!
//! The matrix runs seeds × fault schedules × simulator knobs (memory
//! pressure, data path) over a mixed read/create/remove workload, plus a
//! grouped-construction battery where a population built as shared-stream
//! cohorts must match the same population expanded one client at a time.

use lunule_core::{make_balancer, BalancerKind};
use lunule_faults::FaultPlan;
use lunule_namespace::{InodeId, MdsRank, Namespace};
use lunule_sim::{
    ClientModel, DataPathConfig, FixedStream, MetaOp, OpStream, SimConfig, Simulation,
};
use lunule_telemetry::{events_jsonl, Telemetry};

const DIRS: usize = 6;
const FILES: usize = 12;
/// File slots 0..REMOVE_POOL are reserved as per-client removal victims;
/// reads only ever touch slots at or above it. Removes must be
/// client-unique AND never read afterwards: a second remove (or a read of
/// the tombstone) is stale in *both* engines and trips debug asserts.
const REMOVE_POOL: usize = 4;

/// An op stream replaying an explicit script of mixed metadata ops —
/// `FixedStream` only reads, and equivalence wants creates and removes in
/// the mix too.
#[derive(Clone, Debug)]
struct ScriptStream {
    ops: Vec<MetaOp>,
    pos: usize,
}

impl ScriptStream {
    fn new(ops: Vec<MetaOp>) -> Self {
        ScriptStream { ops, pos: 0 }
    }
}

impl OpStream for ScriptStream {
    fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
        let op = self.ops.get(self.pos).copied();
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.ops.len() as u64)
    }

    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }
}

/// `DIRS` directories with `FILES` files each; returns the dir ids and
/// the file ids grouped by directory. Deterministic, so separate calls
/// yield id-compatible namespaces.
fn fixture() -> (Namespace, Vec<InodeId>, Vec<Vec<InodeId>>) {
    let mut ns = Namespace::new();
    let mut dirs = Vec::new();
    let files = (0..DIRS)
        .map(|d| {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            dirs.push(dir);
            (0..FILES)
                .map(|f| ns.create_file(dir, &format!("f{f}"), 8).unwrap())
                .collect()
        })
        .collect();
    (ns, dirs, files)
}

/// A mixed per-client script: reads spread over the shared pool, a few
/// creates under live directories, and one remove of a file only this
/// client ever touches.
fn script_for(client: usize, dirs: &[InodeId], files: &[Vec<InodeId>], seed: u64) -> Vec<MetaOp> {
    let mut ops = Vec::new();
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(((client as u64) << 7) | 1);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for k in 0..16 {
        let d = (next() as usize) % DIRS;
        let f = REMOVE_POOL + (next() as usize) % (FILES - REMOVE_POOL);
        ops.push(MetaOp::Read(files[d][f]));
        if k % 5 == 3 {
            ops.push(MetaOp::Create {
                parent: dirs[(next() as usize) % DIRS],
                size: 64,
            });
        }
    }
    // Client c's victim: dir (c mod DIRS), file slot (c div DIRS) — unique
    // per client for populations up to DIRS * REMOVE_POOL members.
    let d = client % DIRS;
    let f = client / DIRS;
    assert!(f < REMOVE_POOL, "population too large for the victim pool");
    ops.push(MetaOp::Remove(files[d][f]));
    ops
}

fn base_cfg(seed: u64) -> SimConfig {
    SimConfig {
        n_mds: 3,
        mds_capacity: 60.0,
        epoch_secs: 3,
        duration_secs: 21,
        stop_when_done: false,
        migration_bw: 1_000.0,
        migration_freeze_secs: 1,
        client_rate: 6.0,
        client_cache_cap: 8,
        seed,
        telemetry: Telemetry::enabled(),
        ..SimConfig::default()
    }
}

fn streams_for(n: usize, seed: u64) -> Vec<Box<dyn OpStream>> {
    let (_, dirs, files) = fixture();
    (0..n)
        .map(|c| {
            Box::new(ScriptStream::new(script_for(c, &dirs, &files, seed))) as Box<dyn OpStream>
        })
        .collect()
}

/// Builds and runs one simulation to its configured duration; returns the
/// journal and the headline result numbers.
fn run_once(
    cfg: SimConfig,
    model: ClientModel,
    jobs: usize,
    streams: Vec<Box<dyn OpStream>>,
) -> (String, u64, Vec<u64>) {
    let (ns, _, _) = fixture();
    let cfg = SimConfig {
        client_model: model,
        jobs,
        telemetry: Telemetry::enabled(),
        ..cfg
    };
    let tel = cfg.telemetry.clone();
    let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
    let mut sim = Simulation::new(cfg, ns, balancer, streams);
    sim.run_until(u64::MAX);
    let journal = events_jsonl(&tel.snapshot().unwrap());
    let r = sim.finish();
    (journal, r.total_ops, r.per_mds_requests_total)
}

/// The headline matrix: seeds × fault schedules × knobs, cohort vs legacy,
/// journals compared byte-for-byte.
#[test]
fn cohort_matches_legacy_across_the_matrix() {
    type KnobFn = fn(SimConfig) -> SimConfig;
    let plain: KnobFn = |c| c;
    let memory: KnobFn = |c| SimConfig {
        mds_memory_inodes: 40,
        memory_thrash_factor: 0.5,
        ..c
    };
    let datapath: KnobFn = |c| SimConfig {
        data_path: Some(DataPathConfig {
            osd_bandwidth: 4_096,
            client_window: 1_024,
        }),
        ..c
    };
    let knobs: [(&str, KnobFn); 3] = [("plain", plain), ("memory", memory), ("datapath", datapath)];
    let schedules = [
        ("quiet", FaultPlan::new().build()),
        (
            "chaotic",
            FaultPlan::new()
                .crash(4, MdsRank(1), 5)
                .limp(8, MdsRank(2), 0.5, 6)
                .build(),
        ),
    ];
    for seed in [7u64, 42] {
        for (sched_label, schedule) in &schedules {
            for (knob_label, knob) in &knobs {
                let cfg = knob(SimConfig {
                    faults: schedule.clone(),
                    ..base_cfg(seed)
                });
                let (lj, lops, lreq) =
                    run_once(cfg.clone(), ClientModel::Legacy, 1, streams_for(10, seed));
                let (cj, cops, creq) =
                    run_once(cfg.clone(), ClientModel::Cohort, 1, streams_for(10, seed));
                assert_eq!(
                    lj, cj,
                    "seed {seed} / {sched_label} / {knob_label}: journals must be byte-identical"
                );
                assert_eq!(lops, cops, "seed {seed} / {sched_label} / {knob_label}");
                assert_eq!(lreq, creq, "seed {seed} / {sched_label} / {knob_label}");
            }
        }
    }
}

/// The worker count may never change a journal byte, with or without
/// faults in play.
#[test]
fn jobs_one_vs_n_is_byte_identical() {
    let schedules = [
        FaultPlan::new().build(),
        FaultPlan::new().crash(4, MdsRank(0), 4).build(),
    ];
    for seed in [7u64, 42] {
        for schedule in &schedules {
            let cfg = SimConfig {
                faults: schedule.clone(),
                ..base_cfg(seed)
            };
            let (j1, ops1, _) =
                run_once(cfg.clone(), ClientModel::Cohort, 1, streams_for(10, seed));
            let (j3, ops3, _) =
                run_once(cfg.clone(), ClientModel::Cohort, 3, streams_for(10, seed));
            assert_eq!(j1, j3, "seed {seed}: jobs 1 vs 3 journals differ");
            assert_eq!(ops1, ops3);
        }
    }
}

/// A wide population of read-only clients, every script distinct so no two
/// cohorts ever merge. Read-only keeps multi-member explosion out of the
/// way: the point is a *large* per-round resolve batch.
fn wide_streams(n: usize, seed: u64) -> Vec<Box<dyn OpStream>> {
    let (_, _, files) = fixture();
    (0..n)
        .map(|c| {
            let mut x = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(((c as u64) << 9) | 1);
            let ops: Vec<MetaOp> = (0..20)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let d = (x as usize) % DIRS;
                    let f = REMOVE_POOL + ((x >> 32) as usize) % (FILES - REMOVE_POOL);
                    MetaOp::Read(files[d][f])
                })
                .collect();
            Box::new(ScriptStream::new(ops)) as Box<dyn OpStream>
        })
        .collect()
}

/// The small-population jobs test above never leaves the engine's serial
/// fast path (batches under its cutoff resolve inline). This one runs 320
/// distinct single-member cohorts — past the cutoff — so the sharded
/// worker-pool fan-out itself is what must reproduce the serial journal,
/// and the legacy oracle must match both.
#[test]
fn wide_population_engages_the_parallel_resolver() {
    let seed = 13u64;
    let cfg = base_cfg(seed);
    let (j1, ops1, req1) = run_once(cfg.clone(), ClientModel::Cohort, 1, wide_streams(320, seed));
    let (j3, ops3, req3) = run_once(cfg.clone(), ClientModel::Cohort, 3, wide_streams(320, seed));
    let (lj, lops, lreq) = run_once(cfg, ClientModel::Legacy, 1, wide_streams(320, seed));
    assert_eq!(j1, j3, "pooled resolve must reproduce the serial journal");
    assert_eq!(ops1, ops3);
    assert_eq!(req1, req3);
    assert_eq!(j1, lj, "wide cohort population must match legacy");
    assert_eq!(ops1, lops);
    assert_eq!(req1, lreq);
}

/// Grouped construction (one shared cloneable stream carrying a member
/// count) must journal identically to the same population handed over as
/// per-client streams — in both engines. This pins the cohort model's
/// aggregation semantics end to end: a group of identical readers is
/// *exactly* k copies of that reader.
#[test]
fn grouped_population_matches_expanded_population() {
    let (_, _, files) = fixture();
    let read_list: Vec<InodeId> = files.iter().map(|d| d[REMOVE_POOL]).collect();
    let second_list: Vec<InodeId> = files[1][REMOVE_POOL..].to_vec();
    let grouped = || -> Vec<(Box<dyn OpStream>, u64)> {
        vec![
            (
                Box::new(FixedStream::new(read_list.clone())) as Box<dyn OpStream>,
                5,
            ),
            (
                Box::new(FixedStream::new(second_list.clone())) as Box<dyn OpStream>,
                3,
            ),
        ]
    };
    let run_grouped = |model: ClientModel| -> (String, u64) {
        let (ns, _, _) = fixture();
        let cfg = SimConfig {
            client_model: model,
            telemetry: Telemetry::enabled(),
            ..base_cfg(7)
        };
        let tel = cfg.telemetry.clone();
        let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
        let mut sim = Simulation::new_grouped(cfg, ns, balancer, grouped());
        sim.run_until(u64::MAX);
        let j = events_jsonl(&tel.snapshot().unwrap());
        (j, sim.finish().total_ops)
    };
    // The same population, expanded one stream per client.
    let expanded: Vec<Box<dyn OpStream>> = (0..8)
        .map(|c| {
            let list = if c < 5 {
                read_list.clone()
            } else {
                second_list.clone()
            };
            Box::new(FixedStream::new(list)) as Box<dyn OpStream>
        })
        .collect();
    let (ej, eops, _) = run_once(base_cfg(7), ClientModel::Legacy, 1, expanded);

    let (gj_cohort, gops_cohort) = run_grouped(ClientModel::Cohort);
    let (gj_legacy, gops_legacy) = run_grouped(ClientModel::Legacy);
    assert_eq!(
        gj_cohort, ej,
        "grouped cohort population must journal like the expanded one"
    );
    assert_eq!(gj_legacy, ej, "grouped legacy expansion must match too");
    assert_eq!(gops_cohort, eops);
    assert_eq!(gops_legacy, eops);
}

/// Creates force multi-member cohorts apart (created names derive from the
/// true client id, so members diverge at the moment of creation); the
/// journal must still match legacy exactly.
#[test]
fn grouped_creates_match_legacy() {
    let (_, dirs, files) = fixture();
    let script = vec![
        MetaOp::Read(files[0][REMOVE_POOL]),
        MetaOp::Create {
            parent: dirs[2],
            size: 16,
        },
        MetaOp::Read(files[3][REMOVE_POOL + 1]),
        MetaOp::Create {
            parent: dirs[4],
            size: 16,
        },
        MetaOp::Read(files[5][REMOVE_POOL + 2]),
    ];
    let run_model = |model: ClientModel| -> (String, u64, usize) {
        let (ns, _, _) = fixture();
        let cfg = SimConfig {
            client_model: model,
            telemetry: Telemetry::enabled(),
            ..base_cfg(11)
        };
        let tel = cfg.telemetry.clone();
        let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
        let mut sim = Simulation::new_grouped(
            cfg,
            ns,
            balancer,
            vec![(
                Box::new(ScriptStream::new(script.clone())) as Box<dyn OpStream>,
                6,
            )],
        );
        sim.run_until(u64::MAX);
        let j = events_jsonl(&tel.snapshot().unwrap());
        let clients = sim.n_clients();
        (j, sim.finish().total_ops, clients)
    };
    let (cj, cops, cclients) = run_model(ClientModel::Cohort);
    let (lj, lops, lclients) = run_model(ClientModel::Legacy);
    assert_eq!(
        cj, lj,
        "create-heavy grouped run must match legacy byte-for-byte"
    );
    assert_eq!(cops, lops);
    assert_eq!(cclients, 6);
    assert_eq!(lclients, 6);
}
