//! Property-based tests for the simulator's conservation invariants,
//! cross-checked by `lunule-verify`'s [`InvariantChecker`].

use lunule_core::{ExportTask, MigrationPlan, SubtreeChoice};
use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace, SubtreeMap};
use lunule_sim::Migrator;
use lunule_util::propcheck;
use lunule_verify::InvariantChecker;

/// A namespace of `dirs` directories with `files` files each.
fn fixture(dirs: usize, files: usize) -> (Namespace, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let ids = (0..dirs)
        .map(|d| {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            for i in 0..files {
                ns.create_file(dir, &format!("f{i}"), 1).unwrap();
            }
            dir
        })
        .collect();
    (ns, ids)
}

/// Any sequence of (possibly conflicting, possibly stale) migration plans
/// leaves every inode with a valid authority, conserves the total inode
/// count across ranks, and keeps both map and namespace invariants — the
/// checker audits the map before, during, and after every migration step.
#[test]
fn migrations_conserve_authority() {
    propcheck::run(48, |rng| {
        let n_mds = 4u16;
        let (mut ns, dirs) = fixture(8, 12);
        let mut map = SubtreeMap::new(MdsRank(0));
        let bw = rng.gen_f64_in(1.0, 10_000.0);
        let freeze = rng.gen_range(0..4) as u64;
        let mut mig = Migrator::new(bw, freeze, 0.0);
        let mut checker = InvariantChecker::default();
        let mut tick = 0u64;
        for _ in 0..rng.gen_range(0..24) {
            let dir = dirs[rng.gen_range(0..dirs.len())];
            let plan = MigrationPlan {
                exports: vec![ExportTask {
                    from: MdsRank(rng.gen_range(0..n_mds as usize) as u16),
                    to: MdsRank(rng.gen_range(0..n_mds as usize) as u16),
                    target_amount: 10.0,
                    subtrees: vec![SubtreeChoice {
                        subtree: FragKey::whole(dir),
                        estimated_load: 10.0,
                    }],
                }],
            };
            mig.enqueue_plan(&mut ns, &map, &plan, 0);
            // Advance a few ticks so some jobs finish mid-sequence; audit
            // conservation and frozen-subtree stability at every step.
            for _ in 0..3 {
                mig.step(&ns, &mut map, tick);
                tick += 1;
                let frozen: Vec<(FragKey, MdsRank)> = mig
                    .jobs()
                    .iter()
                    .filter(|j| j.is_committing())
                    .map(|j| (j.subtree, j.from))
                    .collect();
                checker.check_subtree_map(&ns, &map);
                checker.check_frozen_subtrees(&ns, &map, &frozen);
                checker.check_conservation(&ns, &map, n_mds as usize);
                checker.assert_clean();
            }
        }
        // Drain every remaining job.
        for _ in 0..10_000 {
            if mig.jobs().is_empty() {
                break;
            }
            mig.step(&ns, &mut map, tick);
            tick += 1;
        }
        assert!(mig.jobs().is_empty(), "all jobs must drain");
        assert!(map.invariants_hold());
        assert!(ns.invariants_hold());
        checker.audit(&ns, &map, n_mds as usize, &[]);
        checker.assert_clean();
        let counts = map.inode_counts(&ns, n_mds as usize);
        assert_eq!(counts.iter().sum::<usize>(), ns.live_count());
    });
}

/// Simplify never changes any inode's resolved authority, and the
/// simplified map stays clean under the checker.
#[test]
fn simplify_preserves_resolution() {
    propcheck::run(96, |rng| {
        let (ns, dirs) = fixture(8, 4);
        let mut map = SubtreeMap::new(MdsRank(0));
        for _ in 0..rng.gen_range(0..16) {
            let dir = dirs[rng.gen_range(0..dirs.len())];
            let rank = MdsRank(rng.gen_range(0..4) as u16);
            map.set_authority(FragKey::whole(dir), rank);
        }
        let before: Vec<MdsRank> = (0..ns.len())
            .map(|i| map.authority(&ns, InodeId::from_index(i)))
            .collect();
        map.simplify(&ns);
        let after: Vec<MdsRank> = (0..ns.len())
            .map(|i| map.authority(&ns, InodeId::from_index(i)))
            .collect();
        assert_eq!(before, after);
        let mut checker = InvariantChecker::default();
        checker.audit(&ns, &map, 4, &[]);
        checker.assert_clean();
    });
}

/// Random interleavings of creates, unlinks, rmdirs and renames keep the
/// namespace arena consistent and the subtree map total-covering.
#[test]
fn mutations_keep_namespace_and_map_consistent() {
    propcheck::run(48, |rng| {
        let mut ns = Namespace::new();
        let mut dirs = vec![InodeId::ROOT];
        let mut files: Vec<InodeId> = Vec::new();
        let mut map = SubtreeMap::new(MdsRank(0));
        for _ in 0..rng.gen_range(1..120) {
            let a = rng.gen_range(0..32);
            let b = rng.gen_range(0..32);
            match rng.gen_range(0..5) {
                0 => {
                    let parent = dirs[a % dirs.len()];
                    dirs.push(ns.mkdir(parent, "d").unwrap());
                }
                1 => {
                    let parent = dirs[a % dirs.len()];
                    files.push(ns.create_file(parent, "f", 1).unwrap());
                }
                2 => {
                    if !files.is_empty() {
                        let f = files.swap_remove(a % files.len());
                        ns.unlink(f).unwrap();
                    }
                }
                3 => {
                    // rmdir an empty non-root dir, if the pick qualifies.
                    let d = dirs[a % dirs.len()];
                    if d != InodeId::ROOT && ns.inode(d).children().is_empty() {
                        ns.rmdir(d).unwrap();
                        dirs.retain(|x| *x != d);
                    }
                }
                _ => {
                    // rename a dir under another, when legal.
                    let d = dirs[a % dirs.len()];
                    let target = dirs[b % dirs.len()];
                    if d != InodeId::ROOT
                        && ns.inode(target).is_alive()
                        && !ns.path_chain(target).contains(&d)
                    {
                        ns.rename(d, target, "moved").unwrap();
                    }
                }
            }
            assert!(ns.invariants_hold());
        }
        // Pin a couple of live dirs and check total coverage.
        for d in dirs.iter().take(3) {
            map.set_authority(FragKey::whole(*d), MdsRank(1));
        }
        let counts = map.inode_counts(&ns, 2);
        assert_eq!(counts.iter().sum::<usize>(), ns.live_count());
        let mut checker = InvariantChecker::default();
        checker.check_frag_partitions(&ns);
        checker.check_conservation(&ns, &map, 2);
        checker.assert_clean();
    });
}
