//! Property-based tests for the simulator's conservation invariants.

use lunule_core::{ExportTask, MigrationPlan, SubtreeChoice};
use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace, SubtreeMap};
use lunule_sim::Migrator;
use proptest::prelude::*;

/// A namespace of `dirs` directories with `files` files each.
fn fixture(dirs: usize, files: usize) -> (Namespace, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let ids = (0..dirs)
        .map(|d| {
            let dir = ns.mkdir(InodeId::ROOT, &format!("d{d}")).unwrap();
            for i in 0..files {
                ns.create_file(dir, &format!("f{i}"), 1).unwrap();
            }
            dir
        })
        .collect();
    (ns, ids)
}

proptest! {
    /// Any sequence of (possibly conflicting, possibly stale) migration
    /// plans leaves every inode with a valid authority, conserves the total
    /// inode count across ranks, and keeps both map and namespace
    /// invariants.
    #[test]
    fn migrations_conserve_authority(
        moves in proptest::collection::vec((0usize..8, 0u16..4, 0u16..4), 0..24),
        bw in 1.0f64..10_000.0,
        freeze in 0u64..4,
    ) {
        let n_mds = 4;
        let (mut ns, dirs) = fixture(8, 12);
        let mut map = SubtreeMap::new(MdsRank(0));
        let mut mig = Migrator::new(bw, freeze, 0.0);
        let mut tick = 0u64;
        for (dsel, from, to) in moves {
            let dir = dirs[dsel % dirs.len()];
            let plan = MigrationPlan {
                exports: vec![ExportTask {
                    from: MdsRank(from % n_mds),
                    to: MdsRank(to % n_mds),
                    target_amount: 10.0,
                    subtrees: vec![SubtreeChoice {
                        subtree: FragKey::whole(dir),
                        estimated_load: 10.0,
                    }],
                }],
            };
            mig.enqueue_plan(&mut ns, &map, &plan);
            // Advance a few ticks so some jobs finish mid-sequence.
            for _ in 0..3 {
                mig.step(&ns, &mut map, tick);
                tick += 1;
            }
        }
        // Drain every remaining job.
        for _ in 0..10_000 {
            if mig.jobs().is_empty() {
                break;
            }
            mig.step(&ns, &mut map, tick);
            tick += 1;
        }
        prop_assert!(mig.jobs().is_empty(), "all jobs must drain");
        prop_assert!(map.invariants_hold());
        prop_assert!(ns.invariants_hold());
        let counts = map.inode_counts(&ns, n_mds as usize);
        prop_assert_eq!(counts.iter().sum::<usize>(), ns.live_count());
    }

    /// Simplify never changes any inode's resolved authority.
    #[test]
    fn simplify_preserves_resolution(
        assignments in proptest::collection::vec((0usize..8, 0u16..4), 0..16),
    ) {
        let (ns, dirs) = fixture(8, 4);
        let mut map = SubtreeMap::new(MdsRank(0));
        for (dsel, rank) in assignments {
            map.set_authority(FragKey::whole(dirs[dsel % dirs.len()]), MdsRank(rank));
        }
        let before: Vec<MdsRank> = (0..ns.len())
            .map(|i| map.authority(&ns, InodeId::from_index(i)))
            .collect();
        map.simplify(&ns);
        let after: Vec<MdsRank> = (0..ns.len())
            .map(|i| map.authority(&ns, InodeId::from_index(i)))
            .collect();
        prop_assert_eq!(before, after);
    }

    /// Random interleavings of creates, unlinks, rmdirs and renames keep
    /// the namespace arena consistent and the subtree map total-covering.
    #[test]
    fn mutations_keep_namespace_and_map_consistent(
        ops in proptest::collection::vec((0u8..5, 0usize..32, 0usize..32), 1..120),
    ) {
        let mut ns = Namespace::new();
        let mut dirs = vec![InodeId::ROOT];
        let mut files: Vec<InodeId> = Vec::new();
        let mut map = SubtreeMap::new(MdsRank(0));
        for (op, a, b) in ops {
            match op {
                0 => {
                    let parent = dirs[a % dirs.len()];
                    dirs.push(ns.mkdir(parent, "d").unwrap());
                }
                1 => {
                    let parent = dirs[a % dirs.len()];
                    files.push(ns.create_file(parent, "f", 1).unwrap());
                }
                2 => {
                    if !files.is_empty() {
                        let f = files.swap_remove(a % files.len());
                        ns.unlink(f).unwrap();
                    }
                }
                3 => {
                    // rmdir an empty non-root dir, if the pick qualifies.
                    let d = dirs[a % dirs.len()];
                    if d != InodeId::ROOT && ns.inode(d).children().is_empty() {
                        ns.rmdir(d).unwrap();
                        dirs.retain(|x| *x != d);
                    }
                }
                _ => {
                    // rename a dir under another, when legal.
                    let d = dirs[a % dirs.len()];
                    let target = dirs[b % dirs.len()];
                    if d != InodeId::ROOT
                        && ns.inode(target).is_alive()
                        && !ns.path_chain(target).contains(&d)
                    {
                        ns.rename(d, target, "moved").unwrap();
                    }
                }
            }
            prop_assert!(ns.invariants_hold());
        }
        // Pin a couple of live dirs and check total coverage.
        for d in dirs.iter().take(3) {
            map.set_authority(FragKey::whole(*d), MdsRank(1));
        }
        let counts = map.inode_counts(&ns, 2);
        prop_assert_eq!(counts.iter().sum::<usize>(), ns.live_count());
    }
}
